// Reproduces paper Fig. 6 (LAN, conf2.1 — 3 concurrent queries, upper
// limit 7000, b1=1200):
//   (a) average response times at fixed block sizes (12 runs),
//   (b) decisions of the traditional controllers: constant gain with
//       b1=800 and b1=1200, and adaptive gain (overshoot + instability),
//   (c) decisions of the hybrid controller under the Eq. (5) vs Eq. (6)
//       phase-transition criteria.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Figure 6",
      "LAN conf2.1: fixed-size sweep (a), classic controller decisions "
      "(b), hybrid criterion comparison (c)",
      "(a) sharp bowl, optimum ~2.2K; (b) adaptive overshoots to the "
      "upper limit, constant needs small b1; (c) hybrid stays near the "
      "optimum, Eq.(5) no worse than Eq.(6)");

  const ConfiguredProfile conf = Conf2_1();

  // (a) fixed-size sweep, 12 runs like the paper.
  const GroundTruth gt = GroundTruthFor(conf, /*runs=*/12, /*grid_step=*/500);
  TextTable sweep({"block size", "mean (s)", "sd (s)"});
  CsvWriter sweep_csv({"block_size", "mean_ms", "stddev_ms"});
  for (const SweepPoint& point : gt.sweep) {
    sweep.AddRow({std::to_string(point.block_size),
                  FormatDouble(point.mean_ms / 1000.0, 1),
                  FormatDouble(point.stddev_ms / 1000.0, 1)});
    sweep_csv.AddNumericRow({static_cast<double>(point.block_size),
                             point.mean_ms, point.stddev_ms},
                            1);
  }
  std::printf("--- Fig. 6(a): fixed sizes ---\n%s", sweep.ToString().c_str());
  std::printf("post-mortem optimum: %lld tuples\n\n",
              static_cast<long long>(gt.optimum_block_size));
  MaybeDumpCsv(sweep_csv, "fig6a_lan_conf21_sweep");

  // (b) classic controllers.
  struct Candidate {
    const char* label;
    ControllerFactoryFn factory;
  };
  const Candidate classic[] = {
      {"constant, b1=800", SwitchingFactory(conf, GainMode::kConstant, 800.0)},
      {"constant, b1=1200",
       SwitchingFactory(conf, GainMode::kConstant, 1200.0)},
      {"adaptive gain", SwitchingFactory(conf, GainMode::kAdaptive)},
  };
  std::printf("--- Fig. 6(b): classic controllers (decisions every 3 steps) ---\n");
  for (const Candidate& candidate : classic) {
    Result<RepeatedRunSummary> summary = RunRepeated(
        candidate.factory, *conf.profile, 12, OptionsFor(conf));
    if (!summary.ok()) std::exit(1);
    std::printf("%-18s: %s\n", candidate.label,
                DecisionSeries(summary.value().mean_decision_per_step, 3)
                    .c_str());
  }

  // (c) hybrid criteria.
  const Candidate hybrids[] = {
      {"hybrid, Eq. (5)",
       HybridFactory(conf, HybridFlavor::kNoSwitchBack,
                     PhaseCriterion::kSignSwitches)},
      {"hybrid, Eq. (6)",
       HybridFactory(conf, HybridFlavor::kNoSwitchBack,
                     PhaseCriterion::kWindowMeans)},
  };
  std::printf("\n--- Fig. 6(c): hybrid criteria (decisions every 3 steps) ---\n");
  for (const Candidate& candidate : hybrids) {
    Result<RepeatedRunSummary> summary = RunRepeated(
        candidate.factory, *conf.profile, 12, OptionsFor(conf));
    if (!summary.ok()) std::exit(1);
    std::printf("%-18s: %s  (total %.1fs, normalized %.2f)\n",
                candidate.label,
                DecisionSeries(summary.value().mean_decision_per_step, 3)
                    .c_str(),
                summary.value().total_time_ms.mean() / 1000.0,
                summary.value().NormalizedMean(gt.optimum_mean_ms));
  }
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
