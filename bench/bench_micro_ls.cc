// Microbenchmarks for the system-identification math: 6-sample LS fits
// (the paper's identification step) and RLS updates (the self-tuning
// extension). Both must be negligible next to a block fetch.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

std::pair<std::vector<double>, std::vector<double>> Samples(int n) {
  std::vector<double> x;
  std::vector<double> y;
  Random rng(5);
  for (int i = 0; i < n; ++i) {
    const double v = 100.0 + i * (19900.0 / std::max(n - 1, 1));
    x.push_back(v);
    y.push_back((5000.0 / v + 0.0002 * v + 1.0) * rng.Uniform(0.9, 1.1));
  }
  return {x, y};
}

void BM_FitQuadratic6(benchmark::State& state) {
  auto [x, y] = Samples(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitQuadratic(x, y));
  }
}
BENCHMARK(BM_FitQuadratic6);

void BM_FitParabolic6(benchmark::State& state) {
  auto [x, y] = Samples(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitParabolic(x, y));
  }
}
BENCHMARK(BM_FitParabolic6);

void BM_FitQuadraticN(benchmark::State& state) {
  auto [x, y] = Samples(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitQuadratic(x, y));
  }
}
BENCHMARK(BM_FitQuadraticN)->Arg(12)->Arg(48)->Arg(192);

void BM_RlsUpdate(benchmark::State& state) {
  RecursiveLeastSquares rls(3, 0.98);
  Random rng(7);
  for (auto _ : state) {
    const double x = rng.Uniform(100, 20000);
    benchmark::DoNotOptimize(
        rls.Update({x * x, x, 1.0}, 5000.0 / x + 0.0002 * x));
  }
}
BENCHMARK(BM_RlsUpdate);

void BM_AnalyticOptimum(benchmark::State& state) {
  BlockSizeLimits limits{100, 20000};
  bool failed = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyticOptimum(
        IdentificationModel::kParabolic, {5000.0, 0.0002, 1.0}, limits,
        &failed));
  }
}
BENCHMARK(BM_AnalyticOptimum);

void BM_SolveLinearSystem3x3(benchmark::State& state) {
  Matrix a{{4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 2.0}};
  Matrix b{{1.0}, {2.0}, {3.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLinearSystem(a, b));
  }
}
BENCHMARK(BM_SolveLinearSystem3x3);

}  // namespace
}  // namespace wsq::bench
