// Cross-validation of Fig. 2 with *true* concurrency: instead of the
// LoadModel shortcut (static multipliers), real concurrent client
// sessions share one processor-sharing server on an event-driven
// timeline. The same shape facts must emerge: concurrency degrades and
// bends the curve, and the optimum block size shifts left.

#include <memory>

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

constexpr int64_t kBlockSizes[] = {500,  1000, 2000,  3000, 4000,
                                   6000, 8000, 10000, 12000};
constexpr int64_t kDatasetTuples = 75000;

double MeanResponseMs(int num_clients, int64_t block_size) {
  EventSimConfig config;
  config.jitter_sigma = 0.10;
  config.seed = 31;
  std::vector<std::unique_ptr<FixedController>> controllers;
  std::vector<ClientSpec> clients;
  for (int i = 0; i < num_clients; ++i) {
    controllers.push_back(std::make_unique<FixedController>(block_size));
    clients.push_back({kDatasetTuples, controllers.back().get(), 0.0});
  }
  auto outcomes = RunEventSimulation(config, clients);
  if (!outcomes.ok()) {
    std::fprintf(stderr, "%s\n", outcomes.status().ToString().c_str());
    std::exit(1);
  }
  RunningStats stats;
  for (const ClientOutcome& outcome : outcomes.value()) {
    stats.Add(outcome.response_time_ms);
  }
  return stats.mean();
}

void Run() {
  PrintHeader(
      "Figure 2 (event-driven cross-check)",
      "mean per-query response time (ms) vs block size, with 1/2/3 truly "
      "concurrent clients on a processor-sharing server",
      "same shape as the LoadModel-based Fig. 2: concurrency degrades "
      "every point, bends the curve, and pushes the optimum left");

  TextTable table({"block size", "1 client", "2 clients", "3 clients"});
  CsvWriter csv({"block_size", "c1_ms", "c2_ms", "c3_ms"});
  int64_t best[4] = {0, 0, 0, 0};
  double best_time[4] = {0, 1e300, 1e300, 1e300};

  for (int64_t size : kBlockSizes) {
    std::vector<std::string> row = {std::to_string(size)};
    std::vector<double> csv_row = {static_cast<double>(size)};
    for (int clients = 1; clients <= 3; ++clients) {
      const double mean = MeanResponseMs(clients, size);
      row.push_back(FormatDouble(mean, 0));
      csv_row.push_back(mean);
      if (mean < best_time[clients]) {
        best_time[clients] = mean;
        best[clients] = size;
      }
    }
    table.AddRow(row);
    csv.AddNumericRow(csv_row, 1);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nmeasured optima: 1 client -> %lld, 2 -> %lld, 3 -> %lld\n",
              static_cast<long long>(best[1]),
              static_cast<long long>(best[2]),
              static_cast<long long>(best[3]));

  // And the adaptive story: a hybrid controller per client, three
  // concurrent, must land near the crowded optimum on its own.
  EventSimConfig config;
  config.jitter_sigma = 0.10;
  config.seed = 7;
  std::vector<std::unique_ptr<Controller>> controllers;
  std::vector<ClientSpec> clients;
  for (int i = 0; i < 3; ++i) {
    controllers.push_back(
        ControllerFactory::FromName("hybrid").value());
    clients.push_back({kDatasetTuples, controllers.back().get(), 0.0});
  }
  auto outcomes = RunEventSimulation(config, clients);
  if (!outcomes.ok()) std::exit(1);
  std::printf("\n3 concurrent hybrid controllers:");
  for (const ClientOutcome& outcome : outcomes.value()) {
    std::printf("  %.0f ms (final block %lld)", outcome.response_time_ms,
                static_cast<long long>(outcome.block_sizes.back()));
  }
  std::printf("\n(fixed at the crowded optimum: %.0f ms)\n",
              best_time[3]);
  MaybeDumpCsv(csv, "fig2_event_driven");
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
