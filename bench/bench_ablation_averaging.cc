// Ablation: the averaging horizon n of Eq. (2). The paper: "a proper
// choice of the averaging horizon must be made to trade off speed of
// response with noise removal". Sweeps n on a noisy (conf2.2) and a
// clean (conf1.1) profile.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Ablation: averaging horizon n",
      "normalized response time of the hybrid controller vs n, 10 runs",
      "n=1 reacts fast but chases noise; large n lags; the paper's n=3 "
      "sits near the sweet spot on noisy profiles");

  TextTable table({"config", "n=1", "n=2", "n=3", "n=5", "n=9"});
  for (const ConfiguredProfile& conf : {Conf1_1(), Conf2_1(), Conf2_2()}) {
    const GroundTruth gt = GroundTruthFor(conf);
    std::vector<double> row;
    for (int n : {1, 2, 3, 5, 9}) {
      auto factory = [conf, n]() {
        HybridConfig config = PaperHybridConfig();
        config.base = BaseFor(conf, GainMode::kConstant);
        config.base.averaging_horizon = n;
        return std::unique_ptr<Controller>(new HybridController(config));
      };
      Result<RepeatedRunSummary> summary =
          RunRepeated(factory, *conf.profile, 10, OptionsFor(conf));
      if (!summary.ok()) std::exit(1);
      row.push_back(summary.value().NormalizedMean(gt.optimum_mean_ms));
    }
    table.AddNumericRow(conf.profile->name(), row, 3);
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
