// Ablation: the identification sample budget. The paper fixes 6 sizes x
// 1 measurement and notes single measurements are "very prone to
// errors". Sweeps both the number of sizes and measurements per size;
// more samples buy accuracy but push the decision later into the query.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Ablation: identification sample budget",
      "model-based (best of quadratic/parabolic) normalized response "
      "time vs sampling plan, 10 runs",
      "6x1 (the paper's choice) is already decent; repeated measurements "
      "help on noisy profiles until sampling time dominates");

  struct Plan {
    int sizes;
    int per_size;
  };
  const Plan plans[] = {{4, 1}, {6, 1}, {6, 3}, {10, 1}, {10, 3}, {16, 2}};

  std::vector<std::string> header = {"config"};
  for (const Plan& plan : plans) {
    header.push_back(std::to_string(plan.sizes) + "x" +
                     std::to_string(plan.per_size));
  }
  TextTable table(header);

  for (const ConfiguredProfile& conf : {Conf1_3(), Conf2_1(), Conf2_2()}) {
    const GroundTruth gt = GroundTruthFor(conf);
    std::vector<double> row;
    for (const Plan& plan : plans) {
      double best = 1e300;
      for (IdentificationModel model : {IdentificationModel::kQuadratic,
                                        IdentificationModel::kParabolic}) {
        auto factory = [conf, plan, model]() {
          ModelBasedConfig config = PaperModelBasedConfig();
          config.model = model;
          config.limits = conf.limits;
          config.num_samples = plan.sizes;
          config.samples_per_size = plan.per_size;
          return std::unique_ptr<Controller>(
              new ModelBasedController(config));
        };
        Result<RepeatedRunSummary> summary =
            RunRepeated(factory, *conf.profile, 10, OptionsFor(conf));
        if (!summary.ok()) std::exit(1);
        best = std::min(best,
                        summary.value().NormalizedMean(gt.optimum_mean_ms));
      }
      row.push_back(best);
    }
    table.AddNumericRow(conf.profile->name(), row, 3);
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
