// Reproduces paper Fig. 1: response time vs block size on the WAN when
// the web server runs 1+{0,1,2,5,10} concurrent non-database jobs.
// Runs the *empirical* path: TPC-H Customer through the full simulated
// OGSA-DAI stack (SOAP + network + loaded container), exactly the
// motivation scenario of Section II.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

constexpr int kJobCounts[] = {0, 1, 2, 5, 10};
constexpr int64_t kBlockSizes[] = {100,  500,  1000,  2000,  4000, 6000,
                                   8000, 9000, 10000, 12000, 14000};
// Half-scale Customer keeps the full sweep in ~15s while leaving enough
// blocks per query for the bowl to be visible; the cost structure
// (bytes/tuple, per-request overhead, buffer knee) is unchanged.
constexpr double kScale = 0.5;  // 75000 tuples

double RunOnce(const std::shared_ptr<Table>& customer, int jobs,
               int64_t block_size, uint64_t seed) {
  EmpiricalSetup setup;
  setup.table = customer;
  setup.query.table_name = "customer";
  setup.link = WanUkToSwitzerland();
  setup.load.concurrent_jobs = jobs;
  setup.seed = seed;
  auto session = QuerySession::Create(setup);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    std::exit(1);
  }
  FixedController controller(block_size);
  auto outcome = session.value()->Execute(&controller);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    std::exit(1);
  }
  return outcome.value().total_time_ms;
}

void Run() {
  PrintHeader(
      "Figure 1",
      "response time (ms) at the client vs block size, 1+k concurrent "
      "non-DB jobs on the web server (empirical path, Customer x" +
          FormatDouble(kScale, 2) + ")",
      "more jobs -> more concave curve and the optimum shifts left "
      "(paper: 10K -> 9K @2 jobs -> 8K @5 jobs)");

  TpchGenOptions gen;
  gen.scale = kScale;
  auto customer = GenerateCustomer(gen);
  if (!customer.ok()) std::exit(1);

  std::vector<std::string> header = {"block size"};
  for (int jobs : kJobCounts) {
    header.push_back("1+" + std::to_string(jobs) + " jobs");
  }
  TextTable table(header);
  CsvWriter csv(header);

  std::vector<int64_t> best_size(std::size(kJobCounts), 0);
  std::vector<double> best_time(std::size(kJobCounts), 1e300);

  for (int64_t block_size : kBlockSizes) {
    std::vector<std::string> row = {std::to_string(block_size)};
    std::vector<double> csv_row = {static_cast<double>(block_size)};
    for (size_t j = 0; j < std::size(kJobCounts); ++j) {
      RunningStats stats;
      for (uint64_t run = 0; run < 2; ++run) {
        stats.Add(RunOnce(customer.value(), kJobCounts[j], block_size,
                          17 + run * 131));
      }
      row.push_back(FormatDouble(stats.mean(), 0));
      csv_row.push_back(stats.mean());
      if (stats.mean() < best_time[j]) {
        best_time[j] = stats.mean();
        best_size[j] = block_size;
      }
    }
    table.AddRow(row);
    csv.AddNumericRow(csv_row, 1);
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("measured optima:");
  for (size_t j = 0; j < std::size(kJobCounts); ++j) {
    std::printf("  1+%d jobs -> %lld tuples", kJobCounts[j],
                static_cast<long long>(best_size[j]));
  }
  std::printf("\n");
  MaybeDumpCsv(csv, "fig1_concurrent_jobs");
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
