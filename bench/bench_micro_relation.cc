// Microbenchmarks for the relational substrate: TPC-H generation, block
// cursor scans and the end-to-end simulated service dispatch.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void BM_GenerateCustomer(benchmark::State& state) {
  TpchGenOptions gen;
  gen.scale = 0.01;  // 1500 rows
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCustomer(gen));
  }
  state.SetItemsProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_GenerateCustomer);

void BM_CursorFetchBlocks(benchmark::State& state) {
  TpchGenOptions gen;
  gen.scale = 0.1;
  auto table = GenerateCustomer(gen).value();
  ScanProjectQuery query;
  query.table_name = "customer";
  const int64_t block_size = state.range(0);
  for (auto _ : state) {
    auto cursor = QueryCursor::Open(table.get(), query).value();
    while (!cursor->exhausted()) {
      benchmark::DoNotOptimize(cursor->FetchBlock(block_size));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table->num_rows()));
}
BENCHMARK(BM_CursorFetchBlocks)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ServiceDispatchBlock(benchmark::State& state) {
  TpchGenOptions gen;
  gen.scale = 0.1;
  auto table = GenerateCustomer(gen).value();
  Dbms dbms;
  (void)dbms.RegisterTable(table);
  DataService service(&dbms);
  LoadModelConfig load;
  load.noise_sigma = 0.0;
  ServiceContainer container(&service, load, 1);

  OpenSessionRequest open;
  open.table = "customer";
  auto opened = ParseEnvelope(
      container.Dispatch(EncodeOpenSession(open)).response);
  const int64_t session =
      DecodeOpenSessionResponse(opened.value()).value().session_id;

  RequestBlockRequest request;
  request.session_id = session;
  request.block_size = state.range(0);
  const std::string doc = EncodeRequestBlock(request);
  for (auto _ : state) {
    benchmark::DoNotOptimize(container.Dispatch(doc));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServiceDispatchBlock)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SimEngineQuery(benchmark::State& state) {
  const ConfiguredProfile conf = Conf1_1();
  SimOptions options = OptionsFor(conf);
  for (auto _ : state) {
    SimEngine engine(options);
    FixedController controller(5000);
    benchmark::DoNotOptimize(engine.RunQuery(&controller, *conf.profile));
  }
}
BENCHMARK(BM_SimEngineQuery);

}  // namespace
}  // namespace wsq::bench
