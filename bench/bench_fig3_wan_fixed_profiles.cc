// Reproduces paper Fig. 3: average response times (and stddev) of the
// WAN configurations conf1.1 / conf1.2 / conf1.3 when the block size is
// fixed — the sweeps that define the post-mortem ground truth for
// Table I. Simulation path over the calibrated profiles, 10 runs per
// point like the paper.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Figure 3",
      "mean +- stddev response time (s) over 10 fixed-block-size runs, "
      "WAN configurations, limits [100, 20000]",
      "conf1.1: smooth, optimum at the upper limit; conf1.2: same optimum "
      "but larger stddev; conf1.3: memory load adds local minima and "
      "shifts the optimum slightly left");

  const ConfiguredProfile confs[] = {Conf1_1(), Conf1_2(), Conf1_3()};

  std::vector<std::string> header = {"block size"};
  for (const auto& conf : confs) {
    header.push_back(conf.profile->name() + " mean(s)");
    header.push_back(conf.profile->name() + " sd(s)");
  }
  TextTable table(header);
  CsvWriter csv(header);

  std::vector<GroundTruth> truths;
  for (const auto& conf : confs) {
    truths.push_back(GroundTruthFor(conf, /*runs=*/10, /*grid_step=*/1000));
  }

  for (size_t point = 0; point < truths[0].sweep.size(); ++point) {
    std::vector<std::string> row = {
        std::to_string(truths[0].sweep[point].block_size)};
    std::vector<double> csv_row = {
        static_cast<double>(truths[0].sweep[point].block_size)};
    for (const GroundTruth& gt : truths) {
      row.push_back(FormatDouble(gt.sweep[point].mean_ms / 1000.0, 1));
      row.push_back(FormatDouble(gt.sweep[point].stddev_ms / 1000.0, 1));
      csv_row.push_back(gt.sweep[point].mean_ms);
      csv_row.push_back(gt.sweep[point].stddev_ms);
    }
    table.AddRow(row);
    csv.AddNumericRow(csv_row, 1);
  }
  std::printf("%s\n", table.ToString().c_str());

  for (size_t i = 0; i < std::size(confs); ++i) {
    std::printf("%s post-mortem optimum: %lld tuples (%.1f s)\n",
                confs[i].profile->name().c_str(),
                static_cast<long long>(truths[i].optimum_block_size),
                truths[i].optimum_mean_ms / 1000.0);
  }
  MaybeDumpCsv(csv, "fig3_wan_fixed_profiles");
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
