// Reproduces paper Fig. 2: response time vs block size when (a) 2 queries
// and (b) 3 queries (plus memory load) are answered concurrently, sharing
// the web server, the DBMS and the network. Empirical path.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

constexpr int64_t kBlockSizes[] = {100,  500,  1000, 2000, 3000, 4000,
                                   6000, 8000, 10000, 12000};
constexpr double kScale = 0.25;  // 37500 tuples

double RunOnce(const std::shared_ptr<Table>& customer, int queries,
               double memory_pressure, int64_t block_size, uint64_t seed) {
  EmpiricalSetup setup;
  setup.table = customer;
  setup.query.table_name = "customer";
  setup.link = WanUkToSwitzerland();
  // Concurrent queries share the network path too.
  setup.link.bandwidth_share = 1.0 / static_cast<double>(queries);
  setup.load.concurrent_queries = queries;
  setup.load.memory_pressure = memory_pressure;
  setup.seed = seed;
  auto session = QuerySession::Create(setup);
  if (!session.ok()) std::exit(1);
  FixedController controller(block_size);
  auto outcome = session.value()->Execute(&controller);
  if (!outcome.ok()) std::exit(1);
  return outcome.value().total_time_ms;
}

void SweepPanel(const char* panel, const std::shared_ptr<Table>& customer,
                const std::vector<std::pair<int, double>>& loads) {
  std::vector<std::string> header = {"block size"};
  for (const auto& [queries, memory] : loads) {
    std::string label = std::to_string(queries) + (queries == 1 ? " query" : " queries");
    if (memory > 0.0) label += "+mem";
    header.push_back(label);
  }
  TextTable table(header);
  CsvWriter csv(header);
  std::vector<int64_t> best_size(loads.size(), 0);
  std::vector<double> best_time(loads.size(), 1e300);

  for (int64_t block_size : kBlockSizes) {
    std::vector<std::string> row = {std::to_string(block_size)};
    std::vector<double> csv_row = {static_cast<double>(block_size)};
    for (size_t i = 0; i < loads.size(); ++i) {
      RunningStats stats;
      for (uint64_t run = 0; run < 2; ++run) {
        stats.Add(RunOnce(customer, loads[i].first, loads[i].second,
                          block_size, 29 + run * 151));
      }
      row.push_back(FormatDouble(stats.mean(), 0));
      csv_row.push_back(stats.mean());
      if (stats.mean() < best_time[i]) {
        best_time[i] = stats.mean();
        best_size[i] = block_size;
      }
    }
    table.AddRow(row);
    csv.AddNumericRow(csv_row, 1);
  }
  std::printf("--- Fig. 2(%s) ---\n%s", panel, table.ToString().c_str());
  std::printf("measured optima:");
  for (size_t i = 0; i < loads.size(); ++i) {
    std::printf("  %s -> %lld", header[i + 1].c_str(),
                static_cast<long long>(best_size[i]));
  }
  // The paper's headline: under the heaviest load, the 2-query-optimal
  // block size costs ~an order of magnitude more than the loaded optimum.
  std::printf("\n\n");
  MaybeDumpCsv(csv, std::string("fig2") + panel + "_concurrent_queries");
}

void Run() {
  PrintHeader(
      "Figure 2",
      "response time (ms) vs block size under concurrent queries sharing "
      "WS + DBMS + network (empirical path, Customer x" +
          FormatDouble(kScale, 2) + ")",
      "(a) 2 queries: degradation + increased concavity; (b) 3 queries + "
      "memory load: optimum shifts strongly left, a block sized for 2 "
      "queries costs up to an order of magnitude more than optimal");

  TpchGenOptions gen;
  gen.scale = kScale;
  auto customer = GenerateCustomer(gen);
  if (!customer.ok()) std::exit(1);

  SweepPanel("a", customer.value(), {{1, 0.0}, {2, 0.0}});
  SweepPanel("b", customer.value(), {{1, 0.0}, {2, 0.0}, {3, 0.6}});
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
