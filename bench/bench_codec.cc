// Codec microbenchmark: the full block data path — encode a result
// block, decode it, then *read every value* — through each BlockCodec,
// on realistic TPC-H Customer rows. This is the number behind the PR's
// "binary wire" claim: the columnar codec must beat the seed-era
// SOAP/XML round-trip by >= 10x.
//
// Both codecs are measured to the same endpoint: every value of the
// block read back out. To get there SOAP has to parse its text payload
// into tuples; binary reads straight through the zero-copy WireRows
// views — that asymmetry is the design being measured, not an
// unfairness. Correctness is validated untimed on the warm-up rep: the
// codecs must agree on a checksum at SOAP's documented 2-decimal
// double precision, and binary must additionally round-trip the source
// doubles bit-exactly (the precision SOAP drops).
//
// Flags (besides the standard BenchSession set):
//   --rows=N    tuples per block (default 10000)
//   --reps=R    measured repetitions per codec (default 30)
//
// Output ends with the machine-readable line CI's codec-smoke step
// asserts on:
//
//   codec-speedup: binary vs soap = 25.3x (encode+decode+scan)
//
// --bench-json records one sample per *binary* repetition, so
// BENCH_codec.json tracks the shipped codec's round-trip latency.

#include <chrono>
#include <cmath>

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

struct CodecBenchFlags {
  int rows = 10000;
  int reps = 30;
};

void ParseCodecFlags(int argc, char** argv, CodecBenchFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--rows=", 7) == 0) flags->rows = std::atoi(arg + 7);
    if (std::strncmp(arg, "--reps=", 7) == 0) flags->reps = std::atoi(arg + 7);
  }
  if (flags->rows < 1) flags->rows = 1;
  if (flags->reps < 1) flags->reps = 1;
}

struct CodecTiming {
  double encode_ms = 0.0;
  double decode_ms = 0.0;
  double scan_ms = 0.0;  // read every value (SOAP: includes text parse)
  size_t wire_bytes = 0;
  uint64_t checksum = 0;
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline uint64_t Fold(uint64_t hash, uint64_t value) {
  return hash * 1099511628211ull ^ value;
}

uint64_t FoldDouble(uint64_t hash, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return Fold(hash, bits);
}

uint64_t FoldBytes(uint64_t hash, std::string_view bytes) {
  hash = Fold(hash, bytes.size());
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes.data() + i, 8);
    hash = Fold(hash, word);
  }
  uint64_t tail = 0;
  if (i < bytes.size()) std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
  return Fold(hash, tail);
}

/// Reads every value of the decoded block, folding raw values (doubles
/// by bit pattern). For binary this walks the zero-copy views;
/// text-mode (SOAP) rows must be materialized first. The hash exists
/// so the reads can't be optimized away; cross-codec agreement is
/// checked separately at SOAP's precision.
Result<uint64_t> ScanAll(const codec::WireRows& rows,
                         const TupleSerializer& serializer) {
  uint64_t hash = 1469598103934665603ull;
  if (rows.text_mode()) {
    Result<std::vector<Tuple>> tuples = rows.Materialize(&serializer);
    if (!tuples.ok()) return tuples.status();
    const Schema& schema = serializer.schema();
    for (const Tuple& tuple : tuples.value()) {
      for (size_t col = 0; col < schema.num_columns(); ++col) {
        switch (schema.column(col).type) {
          case ColumnType::kInt64:
            hash = Fold(hash,
                        static_cast<uint64_t>(std::get<int64_t>(tuple.value(col))));
            break;
          case ColumnType::kDouble:
            hash = FoldDouble(hash, std::get<double>(tuple.value(col)));
            break;
          case ColumnType::kString:
            hash = FoldBytes(hash, std::get<std::string>(tuple.value(col)));
            break;
        }
      }
    }
    return hash;
  }
  for (size_t row = 0; row < rows.num_rows(); ++row) {
    for (size_t col = 0; col < rows.num_columns(); ++col) {
      switch (rows.column_type(col)) {
        case ColumnType::kInt64:
          hash = Fold(hash, static_cast<uint64_t>(rows.Int64At(row, col)));
          break;
        case ColumnType::kDouble:
          hash = FoldDouble(hash, rows.DoubleAt(row, col));
          break;
        case ColumnType::kString:
          hash = FoldBytes(hash, rows.StringAt(row, col));
          break;
      }
    }
  }
  return hash;
}

/// Untimed validation checksum at SOAP's wire precision: doubles fold
/// as their 2-decimal rendering, everything else exactly — the one
/// representation every codec can agree on.
Result<uint64_t> ValidationChecksum(const codec::WireRows& rows,
                                    const TupleSerializer& serializer) {
  Result<std::vector<Tuple>> tuples = rows.Materialize(&serializer);
  if (!tuples.ok()) return tuples.status();
  const Schema& schema = serializer.schema();
  uint64_t hash = 1469598103934665603ull;
  for (const Tuple& tuple : tuples.value()) {
    for (size_t col = 0; col < schema.num_columns(); ++col) {
      switch (schema.column(col).type) {
        case ColumnType::kInt64:
          hash = Fold(hash,
                      static_cast<uint64_t>(std::get<int64_t>(tuple.value(col))));
          break;
        case ColumnType::kDouble:
          hash = FoldBytes(hash,
                           FormatDouble(std::get<double>(tuple.value(col)), 2));
          break;
        case ColumnType::kString:
          hash = FoldBytes(hash, std::get<std::string>(tuple.value(col)));
          break;
      }
    }
  }
  return hash;
}

/// Untimed encode→decode→checksum pass for the cross-codec agreement
/// check.
uint64_t ValidateCodec(const codec::BlockCodec& codec, const Schema& schema,
                       const std::vector<Tuple>& block,
                       const TupleSerializer& serializer) {
  Result<std::string> encoded = codec.EncodeBlockResponse(
      /*session_id=*/1, /*end_of_results=*/false, schema, block);
  if (!encoded.ok()) std::exit(1);
  Result<codec::DecodedBlock> decoded =
      codec.DecodeBlockResponse(std::move(encoded).value());
  if (!decoded.ok()) std::exit(1);
  Result<uint64_t> checksum =
      ValidationChecksum(decoded.value().rows, serializer);
  if (!checksum.ok()) {
    std::fprintf(stderr, "%s validation failed: %s\n",
                 std::string(codec.name()).c_str(),
                 checksum.status().ToString().c_str());
    std::exit(1);
  }
  return checksum.value();
}

/// Binary must preserve what SOAP cannot: every source double comes
/// back bit-identical through the binary wire.
void CheckBitExactDoubles(const codec::BlockCodec& codec, const Schema& schema,
                          const std::vector<Tuple>& block) {
  Result<std::string> encoded = codec.EncodeBlockResponse(
      /*session_id=*/1, /*end_of_results=*/false, schema, block);
  if (!encoded.ok()) std::exit(1);
  Result<codec::DecodedBlock> decoded =
      codec.DecodeBlockResponse(std::move(encoded).value());
  if (!decoded.ok()) std::exit(1);
  for (size_t col = 0; col < schema.num_columns(); ++col) {
    if (schema.column(col).type != ColumnType::kDouble) continue;
    for (size_t row = 0; row < block.size(); ++row) {
      const double sent = std::get<double>(block[row].value(col));
      const double got = decoded.value().rows.DoubleAt(row, col);
      uint64_t sent_bits, got_bits;
      std::memcpy(&sent_bits, &sent, sizeof(sent_bits));
      std::memcpy(&got_bits, &got, sizeof(got_bits));
      if (sent_bits != got_bits) {
        std::fprintf(stderr,
                     "FAIL: %s double row %zu col %zu not bit-exact\n",
                     std::string(codec.name()).c_str(), row, col);
        std::exit(1);
      }
    }
  }
}

/// One timed round-trip; validates the decode so a broken codec can't
/// post a great number.
CodecTiming RoundTrip(const codec::BlockCodec& codec, const Schema& schema,
                      const std::vector<Tuple>& block,
                      const TupleSerializer& serializer) {
  CodecTiming timing;

  const double encode_start = NowMs();
  Result<std::string> encoded =
      codec.EncodeBlockResponse(/*session_id=*/1, /*end_of_results=*/false,
                                schema, block);
  timing.encode_ms = NowMs() - encode_start;
  if (!encoded.ok()) {
    std::fprintf(stderr, "%s encode failed: %s\n",
                 std::string(codec.name()).c_str(),
                 encoded.status().ToString().c_str());
    std::exit(1);
  }
  timing.wire_bytes = encoded.value().size();

  const double decode_start = NowMs();
  Result<codec::DecodedBlock> decoded =
      codec.DecodeBlockResponse(std::move(encoded).value());
  timing.decode_ms = NowMs() - decode_start;
  if (!decoded.ok() ||
      decoded.value().num_tuples != static_cast<int64_t>(block.size())) {
    std::fprintf(stderr, "%s decode failed\n",
                 std::string(codec.name()).c_str());
    std::exit(1);
  }

  const double scan_start = NowMs();
  Result<uint64_t> checksum = ScanAll(decoded.value().rows, serializer);
  timing.scan_ms = NowMs() - scan_start;
  if (!checksum.ok()) {
    std::fprintf(stderr, "%s scan failed: %s\n",
                 std::string(codec.name()).c_str(),
                 checksum.status().ToString().c_str());
    std::exit(1);
  }
  timing.checksum = checksum.value();
  return timing;
}

void Run(const CodecBenchFlags& flags) {
  PrintHeader(
      "codec round-trip",
      "encode+decode+scan one " + std::to_string(flags.rows) +
          "-row Customer block per codec, " + std::to_string(flags.reps) +
          " reps",
      "binary beats the SOAP/XML round-trip by >= 10x; binary+lz trades "
      "encode time for fewer wire bytes");

  TpchGenOptions gen;
  gen.scale = 1.0;  // 150000 rows available; we slice what we need
  auto customer = GenerateCustomer(gen);
  if (!customer.ok()) std::exit(1);
  const Table& table = *customer.value();
  const size_t rows =
      std::min<size_t>(static_cast<size_t>(flags.rows), table.num_rows());
  const std::vector<Tuple> block(table.rows().begin(),
                                 table.rows().begin() + rows);
  const Schema& schema = table.schema();
  const TupleSerializer serializer(schema);

  const codec::CodecChoice choices[] = {
      {codec::CodecKind::kSoap, false},
      {codec::CodecKind::kBinary, false},
      {codec::CodecKind::kBinary, true},
  };

  TextTable table_out({"codec", "encode ms", "decode ms", "scan ms",
                       "total ms", "wire KiB", "vs soap"});
  CsvWriter csv({"codec", "encode_ms", "decode_ms", "scan_ms", "total_ms",
                 "wire_bytes", "speedup_vs_soap"});
  double soap_total = 0.0;
  double binary_speedup = 0.0;
  uint64_t reference_checksum = 0;
  for (const codec::CodecChoice& choice : choices) {
    std::unique_ptr<codec::BlockCodec> codec = codec::MakeBlockCodec(choice);
    // Warm-up rep (pages in the slice and lazy allocations), then the
    // untimed correctness gates: cross-codec agreement at SOAP's
    // 2-decimal precision, and bit-exact doubles for binary.
    RoundTrip(*codec, schema, block, serializer);
    const uint64_t checksum = ValidateCodec(*codec, schema, block, serializer);
    if (choice.kind == codec::CodecKind::kSoap) {
      reference_checksum = checksum;
    } else if (checksum != reference_checksum) {
      std::fprintf(stderr,
                   "FAIL: %s checksum mismatch vs soap — codecs disagree on "
                   "the block's values\n",
                   choice.ToString().c_str());
      std::exit(1);
    }
    if (choice.kind == codec::CodecKind::kBinary) {
      CheckBitExactDoubles(*codec, schema, block);
    }

    RunningStats encode, decode, scan;
    size_t wire_bytes = 0;
    const bool is_plain_binary =
        choice.kind == codec::CodecKind::kBinary && !choice.compress_blocks;
    for (int rep = 0; rep < flags.reps; ++rep) {
      const CodecTiming timing = RoundTrip(*codec, schema, block, serializer);
      encode.Add(timing.encode_ms);
      decode.Add(timing.decode_ms);
      scan.Add(timing.scan_ms);
      wire_bytes = timing.wire_bytes;
      if (is_plain_binary) {
        if (exec::RunTimings* timings = exec::GlobalRunTimings()) {
          timings->RecordRunMs(timing.encode_ms + timing.decode_ms +
                               timing.scan_ms);
        }
      }
    }

    const double total = encode.mean() + decode.mean() + scan.mean();
    if (choice.kind == codec::CodecKind::kSoap) soap_total = total;
    const double speedup = soap_total / total;
    if (is_plain_binary) binary_speedup = speedup;
    table_out.AddRow({choice.ToString(), FormatDouble(encode.mean(), 3),
                      FormatDouble(decode.mean(), 3),
                      FormatDouble(scan.mean(), 3), FormatDouble(total, 3),
                      FormatDouble(static_cast<double>(wire_bytes) / 1024.0, 1),
                      FormatDouble(speedup, 1) + "x"});
    csv.AddRow({choice.ToString(), FormatDouble(encode.mean(), 4),
                FormatDouble(decode.mean(), 4), FormatDouble(scan.mean(), 4),
                FormatDouble(total, 4), std::to_string(wire_bytes),
                FormatDouble(speedup, 2)});
  }
  std::printf("%s\n", table_out.ToString().c_str());
  MaybeDumpCsv(csv, "codec_roundtrip");

  // The line CI asserts on. Keep the format stable.
  std::printf("codec-speedup: binary vs soap = %.1fx (encode+decode+scan)\n",
              binary_speedup);
  if (!(binary_speedup >= 10.0)) {
    std::fprintf(stderr, "FAIL: binary codec speedup %.1fx is below 10x\n",
                 binary_speedup);
    std::exit(1);
  }
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::CodecBenchFlags flags;
  wsq::bench::ParseCodecFlags(argc, argv, &flags);
  wsq::bench::Run(flags);
  return 0;
}
