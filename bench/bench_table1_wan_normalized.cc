// Reproduces paper Table I: normalized response times (1.0 = the
// post-mortem optimum fixed block size) of the static 1000-tuple
// baseline and the four adaptive techniques on conf1.1-conf1.3.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Table I",
      "normalized response times, WAN configurations (10 runs each; 1.0 "
      "= response time of the post-mortem optimum block size)",
      "static 1000: 1.39-2.05; constant/adaptive near 1.0; hybrid "
      "consistently lowest; hybrid-s (switch-back flavor) worse than "
      "hybrid");

  TextTable table({"config", "1000 tuples", "constant", "adaptive",
                   "hybrid", "hybrid - s"});
  CsvWriter csv({"config", "fixed1000", "constant", "adaptive", "hybrid",
                 "hybrid_s"});

  for (const ConfiguredProfile& conf : {Conf1_1(), Conf1_2(), Conf1_3()}) {
    const GroundTruth gt = GroundTruthFor(conf, /*runs=*/10);

    struct Candidate {
      ControllerFactoryFn factory;
    };
    const ControllerFactoryFn factories[] = {
        FixedFactory(1000),
        SwitchingFactory(conf, GainMode::kConstant),
        SwitchingFactory(conf, GainMode::kAdaptive),
        HybridFactory(conf),
        HybridFactory(conf, HybridFlavor::kSwitchBack),
    };

    std::vector<std::string> row = {conf.profile->name()};
    std::vector<std::string> csv_row = {conf.profile->name()};
    for (const ControllerFactoryFn& factory : factories) {
      Result<RepeatedRunSummary> summary =
          RunRepeated(factory, *conf.profile, 10, OptionsFor(conf));
      if (!summary.ok()) std::exit(1);
      const double normalized =
          summary.value().NormalizedMean(gt.optimum_mean_ms);
      row.push_back(FormatDouble(normalized, 2));
      csv_row.push_back(FormatDouble(normalized, 4));
    }
    table.AddRow(row);
    csv.AddRow(csv_row);
  }
  std::printf("%s", table.ToString().c_str());
  MaybeDumpCsv(csv, "table1_wan_normalized");
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
