// Ablation: the RLS forgetting factor of the self-tuning extension on a
// long-lived query whose profile switches mid-run (the Fig. 8 scenario).
// lambda = 1 never forgets (stale model after the switch); small lambda
// chases noise.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Ablation: RLS forgetting factor",
      "self-tuning (quadratic + hybrid continuation + RLS) total time on "
      "a 300-step run switching conf1.1 -> conf2.2-shaped load and back, "
      "6 runs; lower is better",
      "lambda ~0.95-0.99 adapts; lambda=1 retains the stale pre-switch "
      "model; very small lambda is noise-bound");

  const ConfiguredProfile c11 = Conf1_1();
  const ConfiguredProfile c22 = Conf2_2();
  std::vector<const ResponseProfile*> schedule = {
      c11.profile.get(), c22.profile.get(), c11.profile.get()};

  TextTable table({"lambda", "mean total (s)", "sd (s)"});
  for (double lambda : {1.0, 0.99, 0.95, 0.9, 0.7}) {
    auto factory = [&, lambda]() {
      SelfTuningConfig config;
      config.identification = PaperModelBasedConfig();
      config.controller = PaperHybridConfig();
      config.continuation = Continuation::kHybrid;
      config.enable_rls = true;
      config.rls_forgetting = lambda;
      config.rls_recenter_period = 20;
      return std::unique_ptr<Controller>(new SelfTuningController(config));
    };
    Result<RepeatedRunSummary> summary = RunRepeatedSchedule(
        factory, schedule, /*steps_per_profile=*/100, /*total_steps=*/300,
        /*runs=*/6, OptionsFor(c11, 13));
    if (!summary.ok()) std::exit(1);
    table.AddRow({FormatDouble(lambda, 2),
                  FormatDouble(summary.value().total_time_ms.mean() / 1000.0, 1),
                  FormatDouble(summary.value().total_time_ms.stddev() / 1000.0, 1)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
