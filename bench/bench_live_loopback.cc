// Live-loopback benchmark: a wsqd-style server on an ephemeral TCP port
// with N concurrent clients pulling the customer table through the
// LiveBackend — the whole stack (framing, sockets, session isolation,
// controllers, resilience, observability) over a real network path.
//
// Flags (besides the standard BenchSession set):
//   --clients=N      concurrent client lanes (default 4)
//   --runs=R         queries per lane (default 2)
//   --port=P         talk to an already-running wsqd on P instead of the
//                    in-process server (its --fault-plan then governs)
//   --controller=C   controller per run (factory name, default "hybrid")
//   --scale=S        TPC-H scale of the served table (default 0.02)
//   --codec=NAME     block wire codec the clients advertise (soap |
//                    binary | binary+lz; default soap). The in-process
//                    server always offers binary+lz, so the flag alone
//                    decides what the wire carries.
//   --stats-out=PATH fetch the server's live stats JSON over the wire
//                    (kStats control frame) after the fleet drains and
//                    write it to PATH — works against the in-process
//                    server and an external --port wsqd alike.
//
// With --trace-out the clients negotiate trace-context propagation, so
// the exported Chrome trace carries the server-side stage spans (clock-
// aligned onto the client timeline) alongside the client block spans.
//
// With --fault-plan=<preset> (in-process server only) the server replays
// the preset per session, and the bench first demonstrates the paper's
// resilience contrast on live TCP: a Legacy() client must exhaust its
// retry budget, then the chaos-configured fleet must still drain every
// query. Exit status is non-zero if any lane fails, any trace violates
// CheckConsistent(), or the Legacy run unexpectedly survives the plan.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace wsq {
namespace {

struct LiveBenchFlags {
  int clients = 4;
  int runs = 2;
  int port = 0;  // 0 = in-process server
  std::string controller = "hybrid";
  double scale = 0.02;
  std::string stats_out;
};

struct LaneOutcome {
  int ok_runs = 0;
  int failed_runs = 0;
  int64_t tuples = 0;
  int64_t blocks = 0;
  int64_t retries = 0;
  std::string first_error;
};

void ParseLiveFlags(int argc, char** argv, LiveBenchFlags* flags) {
  auto value_of = [&](const char* name, int i) -> const char* {
    const size_t n = std::strlen(name);
    if (std::strncmp(argv[i], name, n) != 0) return nullptr;
    if (argv[i][n] == '=') return argv[i] + n + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of("--clients", i)) flags->clients = std::atoi(v);
    if (const char* v = value_of("--runs", i)) flags->runs = std::atoi(v);
    if (const char* v = value_of("--port", i)) flags->port = std::atoi(v);
    if (const char* v = value_of("--controller", i)) flags->controller = v;
    if (const char* v = value_of("--scale", i)) flags->scale = std::atof(v);
    if (const char* v = value_of("--stats-out", i)) flags->stats_out = v;
  }
  if (flags->clients < 1) flags->clients = 1;
  if (flags->runs < 1) flags->runs = 1;
}

/// One lane: its own backend clone, a fresh controller and connection
/// per run — the multi-client shape of the paper's testbed, over TCP.
LaneOutcome RunLane(const LiveSetup& setup, const LiveBenchFlags& flags,
                    const ResilienceConfig* resilience, uint64_t lane) {
  LaneOutcome out;
  LiveBackend backend(setup);
  for (int run = 0; run < flags.runs; ++run) {
    Result<std::unique_ptr<Controller>> controller =
        ControllerFactory::FromName(flags.controller);
    if (!controller.ok()) {
      out.failed_runs++;
      out.first_error = controller.status().ToString();
      return out;
    }
    RunSpec spec;
    spec.seed = lane * 1000 + run + 1;
    spec.resilience = resilience;
    const auto start = std::chrono::steady_clock::now();
    Result<RunTrace> trace = backend.RunQuery(controller.value().get(), spec);
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - start;
    if (trace.ok()) {
      Status consistent = trace.value().CheckConsistent();
      if (!consistent.ok()) {
        out.failed_runs++;
        if (out.first_error.empty()) out.first_error = consistent.ToString();
        continue;
      }
      out.ok_runs++;
      out.tuples += trace.value().total_tuples;
      out.blocks += trace.value().total_blocks;
      out.retries += trace.value().total_retries;
      if (exec::RunTimings* timings = exec::GlobalRunTimings()) {
        timings->RecordRunMs(wall.count());
      }
    } else {
      out.failed_runs++;
      if (out.first_error.empty()) out.first_error = trace.status().ToString();
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  bench::BenchSession session(argc, argv);
  LiveBenchFlags flags;
  ParseLiveFlags(argc, argv, &flags);

  bench::PrintHeader(
      "live_loopback",
      "N concurrent clients pulling TPC-H customer over real TCP "
      "(framing + sockets + wsqd server frontend + LiveBackend)",
      "every client drains its query; with --fault-plan, Legacy() "
      "exhausts while Chaos() completes (paper Sec. V over a live wire)");

  // Server: in-process unless --port points at an external wsqd.
  std::shared_ptr<Table> customer;
  Dbms dbms;
  std::unique_ptr<DataService> service;
  std::unique_ptr<ServiceContainer> container;
  std::unique_ptr<net::WsqServer> server;
  int port = flags.port;
  const bool fault_mode =
      !session.fault_plan().empty() && session.fault_plan() != "none";
  if (port == 0) {
    TpchGenOptions gen;
    gen.scale = flags.scale;
    gen.seed = 7;
    customer = GenerateCustomer(gen).value();
    if (Status s = dbms.RegisterTable(customer); !s.ok()) {
      std::fprintf(stderr, "table registration failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    service = std::make_unique<DataService>(&dbms);
    LoadModelConfig load;
    load.noise_sigma = 0.0;
    container = std::make_unique<ServiceContainer>(service.get(), load, 7);
    net::WsqServerOptions options;
    options.codec =
        codec::CodecChoice{codec::CodecKind::kBinary, /*compress_blocks=*/true};
    if (fault_mode) {
      Result<FaultPlan> plan = FaultPlan::FromName(session.fault_plan());
      if (!plan.ok()) {
        std::fprintf(stderr, "bad --fault-plan: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      options.fault_plan = std::move(plan).value();
    }
    server = std::make_unique<net::WsqServer>(container.get(),
                                              std::move(options));
    if (Status s = server->Start(); !s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    port = server->port();
    std::printf("in-process wsqd on 127.0.0.1:%d (scale=%g, fault-plan=%s)\n",
                port, flags.scale, fault_mode ? session.fault_plan().c_str()
                                              : "none");
  } else {
    std::printf("external wsqd at 127.0.0.1:%d\n", port);
  }

  LiveSetup setup;
  setup.host = "127.0.0.1";
  setup.port = port;
  setup.query.table_name = "customer";
  setup.client_options.codec = session.wire_codec();
  setup.client_options.enable_tracing = session.tracing_requested();
  std::printf("wire codec: %s%s\n", session.wire_codec().ToString().c_str(),
              session.tracing_requested() ? " (+trace)" : "");

  // Fault mode, act one: the resilience contrast. A Legacy() client
  // must die inside the burst...
  ResilienceConfig legacy = ResilienceConfig::Legacy();
  ResilienceConfig chaos = session.ChaosResilience();
  if (fault_mode) {
    FixedController fixed(100);
    RunSpec spec;
    spec.seed = 999;
    spec.resilience = &legacy;
    LiveBackend probe(setup);
    Result<RunTrace> trace = probe.RunQuery(&fixed, spec);
    if (trace.ok()) {
      std::fprintf(stderr,
                   "FAIL: Legacy() survived --fault-plan=%s — the plan "
                   "injected nothing\n",
                   session.fault_plan().c_str());
      return 1;
    }
    std::printf("legacy probe: exhausted as expected (%s)\n",
                trace.status().ToString().c_str());
  }

  // Act two: the concurrent fleet (chaos-configured when faults are on).
  const ResilienceConfig* fleet_resilience = fault_mode ? &chaos : nullptr;
  std::vector<LaneOutcome> lanes(flags.clients);
  std::vector<std::thread> threads;
  threads.reserve(flags.clients);
  for (int c = 0; c < flags.clients; ++c) {
    threads.emplace_back([&, c] {
      lanes[c] = RunLane(setup, flags, fleet_resilience,
                         static_cast<uint64_t>(c) + 1);
    });
  }
  for (std::thread& t : threads) t.join();

  int failures = 0;
  TextTable table({"client", "ok", "failed", "tuples", "blocks", "retries"});
  for (int c = 0; c < flags.clients; ++c) {
    const LaneOutcome& lane = lanes[c];
    failures += lane.failed_runs;
    table.AddRow({std::to_string(c), std::to_string(lane.ok_runs),
                  std::to_string(lane.failed_runs),
                  std::to_string(lane.tuples), std::to_string(lane.blocks),
                  std::to_string(lane.retries)});
    if (!lane.first_error.empty()) {
      std::fprintf(stderr, "client %d first error: %s\n", c,
                   lane.first_error.c_str());
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  // Live telemetry: pull the server's stats snapshot over the wire
  // (kStats) while the sessions it describes are still in its tables.
  if (!flags.stats_out.empty()) {
    Result<std::string> stats =
        net::FetchServerStats("127.0.0.1", port, /*timeout_ms=*/2000.0);
    if (!stats.ok()) {
      std::fprintf(stderr, "FAIL: stats fetch failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::FILE* out = std::fopen(flags.stats_out.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "FAIL: cannot open --stats-out=%s\n",
                   flags.stats_out.c_str());
      return 1;
    }
    std::fwrite(stats.value().data(), 1, stats.value().size(), out);
    std::fclose(out);
    std::fprintf(stderr, "(server stats written to %s)\n",
                 flags.stats_out.c_str());
  }

  if (server != nullptr) {
    server->Stop();
    std::printf(
        "server: %lld connections, %lld exchanges, %lld faults injected\n",
        static_cast<long long>(server->connections_accepted()),
        static_cast<long long>(server->exchanges_served()),
        static_cast<long long>(server->faults_injected()));
  }
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d run(s) failed\n", failures);
    return 1;
  }
  std::printf("all %d clients x %d runs drained their queries\n",
              flags.clients, flags.runs);
  return 0;
}

}  // namespace
}  // namespace wsq

int main(int argc, char** argv) { return wsq::Main(argc, argv); }
