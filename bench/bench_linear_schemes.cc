// Reproduces the paper's Section III-B discussion of linear control
// schemes: the constant-gain switching controller is close to AIAD
// (additive increase / additive decrease), and the MIMD alternative
// (multiplicative increase / multiplicative decrease, Eq. 7, with scale
// averaging) "behaves similarly to adaptive gain schemes in Fig. 4(a),
// which is unacceptable". The paper omits the detailed figures for
// space; this bench regenerates them.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

ControllerFactoryFn MimdFactory(const ConfiguredProfile& conf,
                                double factor) {
  return [conf, factor]() {
    MimdConfig config;
    config.factor = factor;
    config.limits = conf.limits;
    config.initial_block_size = 1000;
    return std::unique_ptr<Controller>(new MimdController(config));
  };
}

void Run() {
  PrintHeader(
      "Linear schemes (Section III-B)",
      "AIAD-style constant gain vs MIMD (Eq. 7) on the WAN and LAN "
      "configurations, 10 runs",
      "MIMD behaves like the adaptive-gain schemes of Fig. 4(a): it "
      "stagnates on its geometric grid or thrashes; unlike the hybrid, "
      "no single g value is robust across configurations");

  TextTable table({"config", "AIAD (const)", "MIMD g=1.25", "MIMD g=1.5",
                   "adaptive", "hybrid"});
  for (const ConfiguredProfile& conf :
       {Conf1_1(), Conf1_3(), Conf2_1(), Conf2_2()}) {
    const GroundTruth gt = GroundTruthFor(conf);
    const ControllerFactoryFn factories[] = {
        SwitchingFactory(conf, GainMode::kConstant),
        MimdFactory(conf, 1.25),
        MimdFactory(conf, 1.5),
        SwitchingFactory(conf, GainMode::kAdaptive),
        HybridFactory(conf),
    };
    std::vector<double> row;
    for (const ControllerFactoryFn& factory : factories) {
      Result<RepeatedRunSummary> summary =
          RunRepeated(factory, *conf.profile, 10, OptionsFor(conf));
      if (!summary.ok()) std::exit(1);
      row.push_back(summary.value().NormalizedMean(gt.optimum_mean_ms));
    }
    table.AddNumericRow(conf.profile->name(), row, 3);
  }
  std::printf("%s", table.ToString().c_str());

  // Decision traces on conf2.2 to show the failure mode.
  const ConfiguredProfile conf = Conf2_2();
  std::printf("\nconf2.2 decisions (every 5 steps):\n");
  for (const auto& [label, factory] :
       std::vector<std::pair<const char*, ControllerFactoryFn>>{
           {"mimd g=1.25", MimdFactory(conf, 1.25)},
           {"hybrid", HybridFactory(conf)}}) {
    Result<RepeatedRunSummary> summary =
        RunRepeated(factory, *conf.profile, 10, OptionsFor(conf));
    if (!summary.ok()) std::exit(1);
    std::printf("  %-12s: %s\n", label,
                DecisionSeries(summary.value().mean_decision_per_step, 5)
                    .c_str());
  }
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
