// Reproduces paper Fig. 8: a long-lived query (400+ adaptivity steps)
// whose environment switches conf1.1 -> conf1.2 -> conf1.3 -> conf1.1
// every 100 steps. Compares a constant-gain controller against the
// hybrid controller with periodic reset (period 50).

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Figure 8",
      "decisions during a 400-step query with profile switches every 100 "
      "steps (conf1.1 -> conf1.2 -> conf1.3 -> conf1.1), 6 runs",
      "both controllers track the changes; the periodically-reset hybrid "
      "is virtually free of oscillations");

  const ConfiguredProfile c11 = Conf1_1();
  const ConfiguredProfile c12 = Conf1_2();
  const ConfiguredProfile c13 = Conf1_3();
  std::vector<const ResponseProfile*> schedule = {
      c11.profile.get(), c12.profile.get(), c13.profile.get(),
      c11.profile.get()};

  struct Candidate {
    const char* label;
    ControllerFactoryFn factory;
  };
  const Candidate candidates[] = {
      {"constant gain", SwitchingFactory(c11, GainMode::kConstant)},
      {"hybrid, reset 50",
       HybridFactory(c11, HybridFlavor::kNoSwitchBack,
                     PhaseCriterion::kSignSwitches, /*reset_period=*/50)},
  };

  SimOptions options = OptionsFor(c11, 7);
  CsvWriter csv({"step", "constant", "hybrid_reset50"});
  std::vector<std::vector<double>> series;

  for (const Candidate& candidate : candidates) {
    Result<RepeatedRunSummary> summary = RunRepeatedSchedule(
        candidate.factory, schedule, /*steps_per_profile=*/100,
        /*total_steps=*/400, /*runs=*/6, options);
    if (!summary.ok()) std::exit(1);
    std::printf("%-16s (decisions every 10 steps):\n  %s\n",
                candidate.label,
                DecisionSeries(summary.value().mean_decision_per_step, 10)
                    .c_str());

    // Oscillation metric per regime: mean absolute step-to-step change
    // inside each 100-step window's second half.
    const auto& steps = summary.value().mean_decision_per_step;
    std::printf("  mean |delta| per regime second-half:");
    for (int regime = 0; regime < 4; ++regime) {
      double total = 0.0;
      int count = 0;
      for (size_t i = regime * 100 + 50; i + 1 < (regime + 1) * 100u; ++i) {
        total += std::abs(steps[i + 1] - steps[i]);
        ++count;
      }
      std::printf("  %.0f", total / count);
    }
    std::printf("\n\n");
    series.push_back(steps);
  }

  for (size_t i = 0; i < 400; ++i) {
    csv.AddNumericRow(
        {static_cast<double>(i), series[0][i], series[1][i]}, 0);
  }
  MaybeDumpCsv(csv, "fig8_profile_switching");
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
