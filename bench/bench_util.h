#ifndef WSQ_BENCH_BENCH_UTIL_H_
#define WSQ_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "wsq/api.h"

namespace wsq::bench {

/// Command-line session for bench binaries: execution parallelism,
/// observability, and the machine-readable perf summary. Recognizes
///
///   --jobs=N               run lanes for repeated-run experiments;
///                          default = hardware concurrency, 1 = the
///                          historical serial path. Figure/table output
///                          is byte-identical whatever N (seeds and
///                          fold order never depend on the lane count).
///   --bench-json=<path>    write a BENCH_*.json perf summary at exit:
///                          wall time, runs, runs/sec, per-run p50/p99
///   --metrics-out=<path>   write a metrics snapshot at exit
///                          (.json / .csv by extension, else text)
///   --trace-out=<path>     write the run trace at exit
///                          (.jsonl for JSONL, else Chrome trace JSON)
///   --fault-plan=<name>    chaos mode for benches that support it: a
///                          FaultPlan preset ("burst", "latency",
///                          "flaky", ...; "none" = off) scripted into
///                          every run
///   --max-retries=<N>      override the chaos ResilienceConfig's retry
///                          budget (only meaningful with --fault-plan)
///   --breaker-threshold=<K> override the chaos circuit-breaker
///                          threshold; 0 disables the breaker
///   --codec=<name>         block wire codec for benches that support
///                          it: soap (default, the historical XML
///                          path), binary, or binary+lz
///
/// (all also accept the two-token "--flag path" form; other arguments
/// are ignored). When an observability flag is present a RunObserver
/// over the global metrics registry and a private tracer is installed
/// as the process-global observer, so every backend run the bench
/// performs emits into it with zero bench-specific plumbing. Without
/// flags the global observer stays null and the bench output is
/// byte-identical to an unobserved binary.
class BenchSession {
 public:
  BenchSession(int argc, char** argv)
      : bench_name_(Basename(argc > 0 ? argv[0] : "bench")),
        start_(std::chrono::steady_clock::now()) {
    std::string jobs_text;
    std::string max_retries_text;
    std::string breaker_text;
    for (int i = 1; i < argc; ++i) {
      ParseFlag(argc, argv, &i, "--metrics-out", &metrics_path_);
      ParseFlag(argc, argv, &i, "--trace-out", &trace_path_);
      ParseFlag(argc, argv, &i, "--bench-json", &bench_json_path_);
      ParseFlag(argc, argv, &i, "--jobs", &jobs_text);
      ParseFlag(argc, argv, &i, "--fault-plan", &fault_plan_);
      ParseFlag(argc, argv, &i, "--max-retries", &max_retries_text);
      ParseFlag(argc, argv, &i, "--breaker-threshold", &breaker_text);
      ParseFlag(argc, argv, &i, "--codec", &codec_name_);
    }
    if (!codec_name_.empty()) {
      Result<codec::CodecChoice> parsed =
          codec::CodecChoice::FromName(codec_name_);
      if (!parsed.ok()) {
        std::fprintf(stderr, "invalid --codec=%s; using soap\n",
                     codec_name_.c_str());
        codec_name_.clear();
      } else {
        codec_ = parsed.value();
      }
    }
    if (!max_retries_text.empty()) {
      max_retries_ = std::atoi(max_retries_text.c_str());
    }
    if (!breaker_text.empty()) {
      breaker_threshold_ = std::atoi(breaker_text.c_str());
    }
    jobs_ = jobs_text.empty() ? exec::ThreadPool::HardwareConcurrency()
                              : std::atoi(jobs_text.c_str());
    if (jobs_ < 1) {
      std::fprintf(stderr, "invalid --jobs=%s; using 1\n", jobs_text.c_str());
      jobs_ = 1;
    }
    exec::SetDefaultJobs(jobs_);

    if (!bench_json_path_.empty()) {
      timings_ = std::make_unique<exec::RunTimings>();
      exec::SetGlobalRunTimings(timings_.get());
    }
    if (!metrics_path_.empty() || !trace_path_.empty()) {
      tracer_ = std::make_unique<Tracer>();
      observer_ = std::make_unique<RunObserver>(
          metrics_path_.empty() ? nullptr : &MetricsRegistry::Global(),
          trace_path_.empty() ? nullptr : tracer_.get());
      SetGlobalRunObserver(observer_.get());
    }
  }

  ~BenchSession() {
    if (observer_ != nullptr) {
      SetGlobalRunObserver(nullptr);
      if (!metrics_path_.empty()) {
        Report(MetricsRegistry::Global().WriteFile(metrics_path_), "metrics",
               metrics_path_);
      }
      if (!trace_path_.empty()) {
        const bool jsonl = EndsWith(trace_path_, ".jsonl");
        Report(jsonl ? tracer_->WriteJsonl(trace_path_)
                     : tracer_->WriteChromeJson(trace_path_),
               "trace", trace_path_);
      }
    }
    if (timings_ != nullptr) {
      ClosePhase();
      exec::SetGlobalRunTimings(nullptr);
      if (!phases_.empty()) {
        // Multi-phase bench: one composite {"reports":[...]} document,
        // one entry per phase, named "<bench>/<phase>".
        std::vector<std::pair<exec::BenchReport, const exec::RunTimings*>>
            entries;
        entries.reserve(phases_.size());
        for (const std::unique_ptr<Phase>& phase : phases_) {
          exec::BenchReport report;
          report.bench = bench_name_ + "/" + phase->name;
          report.jobs = jobs_;
          report.hardware_concurrency = exec::ThreadPool::HardwareConcurrency();
          report.wall_time_s = phase->wall_s;
          entries.emplace_back(std::move(report), phase->timings.get());
        }
        Report(exec::WriteCompositeBenchReport(bench_json_path_, entries),
               "bench summary", bench_json_path_);
      } else {
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start_;
        exec::BenchReport report;
        report.bench = bench_name_;
        report.jobs = jobs_;
        report.hardware_concurrency = exec::ThreadPool::HardwareConcurrency();
        report.wall_time_s = wall.count();
        Report(exec::WriteBenchReport(bench_json_path_, report, *timings_),
               "bench summary", bench_json_path_);
      }
    }
  }

  /// Begins a named bench phase. With --bench-json, each phase collects
  /// its own RunTimings and wall-clock window, and the exit summary
  /// becomes the composite {"schema_version":1,"reports":[...]} form
  /// with one entry "<bench>/<phase>" per phase (the flat single-report
  /// form when no phase was ever begun). The previous phase, if any,
  /// ends here; without --bench-json this is a no-op.
  void BeginPhase(const std::string& name) {
    if (timings_ == nullptr) return;
    ClosePhase();
    auto phase = std::make_unique<Phase>();
    phase->name = name;
    phase->start = std::chrono::steady_clock::now();
    phase->timings = std::make_unique<exec::RunTimings>();
    exec::SetGlobalRunTimings(phase->timings.get());
    phases_.push_back(std::move(phase));
  }

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

  int jobs() const { return jobs_; }

  /// Chaos flags. fault_plan() is empty (or "none") when chaos mode is
  /// off; max_retries()/breaker_threshold() are -1 when not overridden.
  const std::string& fault_plan() const { return fault_plan_; }
  int max_retries() const { return max_retries_; }
  int breaker_threshold() const { return breaker_threshold_; }

  /// The block wire codec --codec selected (SOAP when the flag is
  /// absent or unparsable — the historical default).
  const codec::CodecChoice& wire_codec() const { return codec_; }

  /// True when --trace-out was given: live benches then negotiate
  /// trace-context propagation so the exported trace carries the
  /// server-side spans alongside the client ones.
  bool tracing_requested() const { return !trace_path_.empty(); }

  /// The resilience configuration the chaos flags describe: Chaos()
  /// with any --max-retries / --breaker-threshold overrides applied.
  ResilienceConfig ChaosResilience() const {
    ResilienceConfig config = ResilienceConfig::Chaos();
    if (max_retries_ >= 0) config.max_retries_per_call = max_retries_;
    if (breaker_threshold_ >= 0) config.breaker_threshold = breaker_threshold_;
    return config;
  }

 private:
  struct Phase {
    std::string name;
    std::chrono::steady_clock::time_point start;
    double wall_s = 0.0;
    std::unique_ptr<exec::RunTimings> timings;
  };

  /// Stamps the open phase's wall window and restores the session-level
  /// timing sink (so out-of-phase runs still land somewhere).
  void ClosePhase() {
    if (phases_.empty() || phases_.back()->wall_s > 0.0) return;
    Phase& phase = *phases_.back();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - phase.start;
    phase.wall_s = wall.count();
    exec::SetGlobalRunTimings(timings_.get());
  }

  static std::string Basename(const std::string& path) {
    const size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
  }

  static bool EndsWith(const std::string& s, const char* suffix) {
    const size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
  }

  static void ParseFlag(int argc, char** argv, int* i, const char* name,
                        std::string* out) {
    const char* arg = argv[*i];
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0) return;
    if (arg[n] == '=') {
      *out = arg + n + 1;
    } else if (arg[n] == '\0' && *i + 1 < argc) {
      *out = argv[++*i];
    }
  }

  static void Report(const Status& status, const char* what,
                     const std::string& path) {
    if (status.ok()) {
      std::fprintf(stderr, "(%s written to %s)\n", what, path.c_str());
    } else {
      std::fprintf(stderr, "%s write failed: %s\n", what,
                   status.ToString().c_str());
    }
  }

  std::string bench_name_;
  std::chrono::steady_clock::time_point start_;
  int jobs_ = 1;
  std::string metrics_path_;
  std::string trace_path_;
  std::string bench_json_path_;
  std::string fault_plan_;
  std::string codec_name_;
  codec::CodecChoice codec_;
  int max_retries_ = -1;
  int breaker_threshold_ = -1;
  std::unique_ptr<exec::RunTimings> timings_;
  std::vector<std::unique_ptr<Phase>> phases_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<RunObserver> observer_;
};

// The controller-factory helpers (FixedFactory, SwitchingFactory,
// HybridFactory, ModelFactory, SelfTuningFactory, BaseFor) live in the
// library now — wsq/control/factories.h — shared with examples and
// tests; unqualified calls below resolve to the wsq:: versions.

inline SimOptions OptionsFor(const ConfiguredProfile& conf,
                             uint64_t seed = 11) {
  SimOptions options;
  options.noise_amplitude = conf.noise_amplitude;
  options.seed = seed;
  return options;
}

inline GroundTruth GroundTruthFor(const ConfiguredProfile& conf, int runs = 5,
                                  int64_t grid_step = 500) {
  Result<GroundTruth> gt = ComputeGroundTruth(
      *conf.profile, conf.limits, grid_step, runs, OptionsFor(conf, 3));
  if (!gt.ok()) {
    std::fprintf(stderr, "ground truth failed: %s\n",
                 gt.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(gt).value();
}

/// Prints a standard bench header.
inline void PrintHeader(const std::string& id, const std::string& what,
                        const std::string& paper_expectation) {
  std::printf("==== %s ====\n%s\n", id.c_str(), what.c_str());
  std::printf("paper expectation: %s\n\n", paper_expectation.c_str());
}

/// When WSQ_BENCH_CSV_DIR is set, writes `csv` to <dir>/<name>.csv so the
/// series behind a figure can be plotted externally.
inline void MaybeDumpCsv(const CsvWriter& csv, const std::string& name) {
  const char* dir = std::getenv("WSQ_BENCH_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  Status status = csv.WriteToFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "csv dump failed: %s\n",
                 status.ToString().c_str());
  } else {
    std::printf("(series dumped to %s)\n", path.c_str());
  }
}

/// Renders mean decisions per adaptivity step as a compact series,
/// sampling every `stride` steps.
inline std::string DecisionSeries(const std::vector<double>& decisions,
                                  size_t stride) {
  std::string out;
  for (size_t i = 0; i < decisions.size(); i += stride) {
    if (!out.empty()) out += ' ';
    out += FormatDouble(decisions[i], 0);
  }
  return out;
}

}  // namespace wsq::bench

#endif  // WSQ_BENCH_BENCH_UTIL_H_
