#ifndef WSQ_BENCH_BENCH_UTIL_H_
#define WSQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "wsq/api.h"

namespace wsq::bench {

/// Controllers configured for a library configuration, paper-style
/// (b1 from the config, limits from the config, everything else the
/// paper's standard parameters).
inline SwitchingConfig BaseFor(const ConfiguredProfile& conf,
                               GainMode mode, uint64_t seed = 42) {
  SwitchingConfig config = PaperSwitchingConfig();
  config.gain_mode = mode;
  config.b1 = conf.paper_b1;
  config.limits = conf.limits;
  config.seed = seed;
  return config;
}

inline ControllerFactoryFn FixedFactory(int64_t size) {
  return [size]() {
    return std::unique_ptr<Controller>(new FixedController(size));
  };
}

inline ControllerFactoryFn SwitchingFactory(const ConfiguredProfile& conf,
                                            GainMode mode,
                                            double b1_override = 0.0) {
  return [conf, mode, b1_override]() {
    SwitchingConfig config = BaseFor(conf, mode);
    if (b1_override > 0.0) config.b1 = b1_override;
    return std::unique_ptr<Controller>(
        new SwitchingExtremumController(config));
  };
}

inline ControllerFactoryFn HybridFactory(
    const ConfiguredProfile& conf,
    HybridFlavor flavor = HybridFlavor::kNoSwitchBack,
    PhaseCriterion criterion = PhaseCriterion::kSignSwitches,
    int64_t reset_period = 0) {
  return [conf, flavor, criterion, reset_period]() {
    HybridConfig config = PaperHybridConfig();
    config.base = BaseFor(conf, GainMode::kConstant);
    config.flavor = flavor;
    config.criterion = criterion;
    config.reset_period = reset_period;
    return std::unique_ptr<Controller>(new HybridController(config));
  };
}

inline ControllerFactoryFn ModelFactory(const ConfiguredProfile& conf,
                                        IdentificationModel model) {
  return [conf, model]() {
    ModelBasedConfig config = PaperModelBasedConfig();
    config.model = model;
    config.limits = conf.limits;
    return std::unique_ptr<Controller>(new ModelBasedController(config));
  };
}

inline ControllerFactoryFn SelfTuningFactory(const ConfiguredProfile& conf,
                                             IdentificationModel model,
                                             Continuation continuation) {
  return [conf, model, continuation]() {
    SelfTuningConfig config;
    config.identification = PaperModelBasedConfig();
    config.identification.model = model;
    config.identification.limits = conf.limits;
    config.continuation = continuation;
    config.controller = PaperHybridConfig();
    config.controller.base = BaseFor(conf, GainMode::kConstant);
    return std::unique_ptr<Controller>(new SelfTuningController(config));
  };
}

inline SimOptions OptionsFor(const ConfiguredProfile& conf,
                             uint64_t seed = 11) {
  SimOptions options;
  options.noise_amplitude = conf.noise_amplitude;
  options.seed = seed;
  return options;
}

inline GroundTruth GroundTruthFor(const ConfiguredProfile& conf, int runs = 5,
                                  int64_t grid_step = 500) {
  Result<GroundTruth> gt = ComputeGroundTruth(
      *conf.profile, conf.limits, grid_step, runs, OptionsFor(conf, 3));
  if (!gt.ok()) {
    std::fprintf(stderr, "ground truth failed: %s\n",
                 gt.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(gt).value();
}

/// Prints a standard bench header.
inline void PrintHeader(const std::string& id, const std::string& what,
                        const std::string& paper_expectation) {
  std::printf("==== %s ====\n%s\n", id.c_str(), what.c_str());
  std::printf("paper expectation: %s\n\n", paper_expectation.c_str());
}

/// When WSQ_BENCH_CSV_DIR is set, writes `csv` to <dir>/<name>.csv so the
/// series behind a figure can be plotted externally.
inline void MaybeDumpCsv(const CsvWriter& csv, const std::string& name) {
  const char* dir = std::getenv("WSQ_BENCH_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  Status status = csv.WriteToFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "csv dump failed: %s\n",
                 status.ToString().c_str());
  } else {
    std::printf("(series dumped to %s)\n", path.c_str());
  }
}

/// Renders mean decisions per adaptivity step as a compact series,
/// sampling every `stride` steps.
inline std::string DecisionSeries(const std::vector<double>& decisions,
                                  size_t stride) {
  std::string out;
  for (size_t i = 0; i < decisions.size(); i += stride) {
    if (!out.empty()) out += ' ';
    out += FormatDouble(decisions[i], 0);
  }
  return out;
}

}  // namespace wsq::bench

#endif  // WSQ_BENCH_BENCH_UTIL_H_
