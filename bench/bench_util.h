#ifndef WSQ_BENCH_BENCH_UTIL_H_
#define WSQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "wsq/api.h"

namespace wsq::bench {

// The controller-factory helpers (FixedFactory, SwitchingFactory,
// HybridFactory, ModelFactory, SelfTuningFactory, BaseFor) live in the
// library now — wsq/control/factories.h — shared with examples and
// tests; unqualified calls below resolve to the wsq:: versions.

inline SimOptions OptionsFor(const ConfiguredProfile& conf,
                             uint64_t seed = 11) {
  SimOptions options;
  options.noise_amplitude = conf.noise_amplitude;
  options.seed = seed;
  return options;
}

inline GroundTruth GroundTruthFor(const ConfiguredProfile& conf, int runs = 5,
                                  int64_t grid_step = 500) {
  Result<GroundTruth> gt = ComputeGroundTruth(
      *conf.profile, conf.limits, grid_step, runs, OptionsFor(conf, 3));
  if (!gt.ok()) {
    std::fprintf(stderr, "ground truth failed: %s\n",
                 gt.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(gt).value();
}

/// Prints a standard bench header.
inline void PrintHeader(const std::string& id, const std::string& what,
                        const std::string& paper_expectation) {
  std::printf("==== %s ====\n%s\n", id.c_str(), what.c_str());
  std::printf("paper expectation: %s\n\n", paper_expectation.c_str());
}

/// When WSQ_BENCH_CSV_DIR is set, writes `csv` to <dir>/<name>.csv so the
/// series behind a figure can be plotted externally.
inline void MaybeDumpCsv(const CsvWriter& csv, const std::string& name) {
  const char* dir = std::getenv("WSQ_BENCH_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  Status status = csv.WriteToFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "csv dump failed: %s\n",
                 status.ToString().c_str());
  } else {
    std::printf("(series dumped to %s)\n", path.c_str());
  }
}

/// Renders mean decisions per adaptivity step as a compact series,
/// sampling every `stride` steps.
inline std::string DecisionSeries(const std::vector<double>& decisions,
                                  size_t stride) {
  std::string out;
  for (size_t i = 0; i < decisions.size(); i += stride) {
    if (!out.empty()) out += ' ';
    out += FormatDouble(decisions[i], 0);
  }
  return out;
}

}  // namespace wsq::bench

#endif  // WSQ_BENCH_BENCH_UTIL_H_
