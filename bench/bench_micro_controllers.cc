// Microbenchmarks for controller decision latency. The paper's design
// requires "a lightweight controller ... encapsulated in the client";
// these numbers show one decision costs tens of nanoseconds — noise
// against a multi-millisecond WS round trip.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void BM_FixedController(benchmark::State& state) {
  FixedController controller(1000);
  double y = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.NextBlockSize(y));
    y += 0.001;
  }
}
BENCHMARK(BM_FixedController);

void BM_ConstantGain(benchmark::State& state) {
  SwitchingConfig config = PaperSwitchingConfig();
  SwitchingExtremumController controller(config);
  double y = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.NextBlockSize(y));
    y = y * 0.999 + 0.01;
  }
}
BENCHMARK(BM_ConstantGain);

void BM_AdaptiveGain(benchmark::State& state) {
  SwitchingConfig config = PaperSwitchingConfig();
  config.gain_mode = GainMode::kAdaptive;
  SwitchingExtremumController controller(config);
  double y = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.NextBlockSize(y));
    y = y * 0.999 + 0.01;
  }
}
BENCHMARK(BM_AdaptiveGain);

void BM_Hybrid(benchmark::State& state) {
  HybridController controller(PaperHybridConfig());
  double y = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.NextBlockSize(y));
    y = y * 0.999 + 0.01;
  }
}
BENCHMARK(BM_Hybrid);

void BM_Mimd(benchmark::State& state) {
  MimdConfig config;
  config.limits = {100, 20000};
  MimdController controller(config);
  double y = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.NextBlockSize(y));
    y = y * 0.999 + 0.01;
  }
}
BENCHMARK(BM_Mimd);

void BM_ModelBasedSamplingPhase(benchmark::State& state) {
  ModelBasedConfig config = PaperModelBasedConfig();
  ModelBasedController controller(config);
  double y = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.NextBlockSize(y));
    y = y * 0.999 + 0.01;
    if (controller.identification_complete()) {
      state.PauseTiming();
      controller.Reset();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_ModelBasedSamplingPhase);

void BM_SelfTuningWithRls(benchmark::State& state) {
  SelfTuningConfig config;
  config.identification = PaperModelBasedConfig();
  config.controller = PaperHybridConfig();
  config.enable_rls = true;
  SelfTuningController controller(config);
  double y = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.NextBlockSize(y));
    y = y * 0.999 + 0.01;
  }
}
BENCHMARK(BM_SelfTuningWithRls);

}  // namespace
}  // namespace wsq::bench
