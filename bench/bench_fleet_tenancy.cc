// Fleet-scale multi-tenant co-scheduling: N adaptive clients sharing
// one world.
//
// Sim phase: controller-mix fleets of several sizes run inside the
// shared FleetWorld (one clock, one LoadModel priced at the live
// in-flight count) and are ranked by fleet response time, reporting the
// fairness / convergence / oscillation analytics the paper's
// multi-client discussion motivates: when many adaptive clients share a
// server, does adaptation still converge, and who pays the tail?
//
// Live phase: a small fleet of real TcpWsClient sessions against a wsqd
// server whose admission control sheds under load — client-side
// adaptation (plus the chaos ResilienceConfig) must absorb the sheds
// and every tenant must still drain its query.
//
// Flags beyond the BenchSession set:
//   --runs=N        fleet repetitions per sim cell (default 3)
//   --live-tenants=N  tenants in the live fleet (default 6)
//   --live-port=P   use an external wsqd for the live phase (in-process
//                   server with a forced shed watermark when absent)
//   --skip-live     sim phase only

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace wsq {
namespace {

struct FleetFlags {
  int runs = 3;
  int live_tenants = 6;
  int live_port = 0;
  bool skip_live = false;
};

void ParseFleetFlags(int argc, char** argv, FleetFlags* flags) {
  auto value_of = [&](const char* name, int i) -> const char* {
    const size_t n = std::strlen(name);
    if (std::strncmp(argv[i], name, n) != 0) return nullptr;
    if (argv[i][n] == '=') return argv[i] + n + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of("--runs", i)) flags->runs = std::atoi(v);
    if (const char* v = value_of("--live-tenants", i)) {
      flags->live_tenants = std::atoi(v);
    }
    if (const char* v = value_of("--live-port", i)) {
      flags->live_port = std::atoi(v);
    }
    if (std::strcmp(argv[i], "--skip-live") == 0) flags->skip_live = true;
  }
  if (flags->runs < 1) flags->runs = 1;
  if (flags->live_tenants < 1) flags->live_tenants = 1;
}

struct SimCell {
  std::string label;
  fleet::FleetSpec spec;
};

struct SimRow {
  std::string label;
  int tenants = 0;
  double mean_makespan_ms = 0.0;
  fleet::FleetAnalytics analytics;  // of the first (seed-pinned) run
};

int RunSimPhase(const FleetFlags& flags, int jobs) {
  std::printf("--- sim: controller-mix fleets in one shared world ---\n");

  fleet::FleetWorldConfig world;
  world.one_way_latency_ms = 5.0;
  world.bandwidth_mbps = 50.0;
  // Service-dominated blocks so tenants genuinely contend for the
  // server instead of idling on the wire.
  world.load.per_tuple_cpu_ms = 0.03;

  std::vector<SimCell> cells;
  for (int tenants : {32, 256}) {
    const int third = tenants / 3;
    SimCell hybrid;
    hybrid.label = "all-hybrid";
    hybrid.spec.mix = {{"hybrid", tenants}};
    SimCell mimd;
    mimd.label = "all-mimd";
    mimd.spec.mix = {{"mimd", tenants}};
    SimCell mixed;
    mixed.label = "mixed-adaptive";
    mixed.spec.mix = {{"hybrid", tenants - 2 * third},
                      {"mimd", third},
                      {"self_tuning", third}};
    for (SimCell cell : {hybrid, mimd, mixed}) {
      cell.spec.tuples_per_tenant = 20000;
      cell.spec.arrival = fleet::ArrivalProcess::kJittered;
      cell.spec.stagger_interval_ms = 2.0;
      cell.spec.arrival_jitter_ms = 10.0;
      cells.push_back(std::move(cell));
    }
  }

  std::vector<SimRow> rows;
  for (const SimCell& cell : cells) {
    Result<std::vector<fleet::FleetTrace>> fleets =
        fleet::RunFleetRepeated(world, cell.spec, flags.runs, /*base_seed=*/42,
                                jobs);
    if (!fleets.ok()) {
      std::fprintf(stderr, "sim fleet %s failed: %s\n", cell.label.c_str(),
                   fleets.status().ToString().c_str());
      return 1;
    }
    SimRow row;
    row.label = cell.label;
    row.tenants = cell.spec.TenantCount();
    for (const fleet::FleetTrace& trace : fleets.value()) {
      if (Status s = trace.CheckConsistent(); !s.ok()) {
        std::fprintf(stderr, "inconsistent fleet trace (%s): %s\n",
                     cell.label.c_str(), s.ToString().c_str());
        return 1;
      }
      row.mean_makespan_ms += trace.makespan_ms;
    }
    row.mean_makespan_ms /= static_cast<double>(fleets.value().size());
    row.analytics = fleet::AnalyzeFleet(fleets.value().front());
    rows.push_back(std::move(row));
  }

  // Ranked by mean fleet makespan: who co-schedules best at each size.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const SimRow& a, const SimRow& b) {
                     if (a.tenants != b.tenants) return a.tenants < b.tenants;
                     return a.mean_makespan_ms < b.mean_makespan_ms;
                   });
  TextTable table({"mix", "tenants", "makespan_ms", "jain", "p99_spread_ms",
                   "conv_frac", "conv_ms", "oscillation", "xcorr"});
  CsvWriter csv({"mix", "tenants", "makespan_ms", "jain", "p99_spread_ms",
                 "conv_frac", "conv_ms", "oscillation", "xcorr"});
  for (const SimRow& row : rows) {
    const fleet::FleetAnalytics& a = row.analytics;
    table.AddRow({row.label, std::to_string(row.tenants),
                  FormatDouble(row.mean_makespan_ms, 1),
                  FormatDouble(a.jain_index, 3),
                  FormatDouble(a.p99_spread_ms, 1),
                  FormatDouble(a.converged_fraction, 2),
                  FormatDouble(a.mean_convergence_time_ms, 1),
                  FormatDouble(a.mean_oscillation, 3),
                  FormatDouble(a.cross_correlation, 3)});
    csv.AddRow({row.label, std::to_string(row.tenants),
                FormatDouble(row.mean_makespan_ms, 3),
                FormatDouble(a.jain_index, 4),
                FormatDouble(a.p99_spread_ms, 3),
                FormatDouble(a.converged_fraction, 3),
                FormatDouble(a.mean_convergence_time_ms, 3),
                FormatDouble(a.mean_oscillation, 4),
                FormatDouble(a.cross_correlation, 4)});
    fleet::PublishFleetMetrics(a, &MetricsRegistry::Global());
  }
  std::printf("%s\n", table.ToString().c_str());
  bench::MaybeDumpCsv(csv, "fleet_tenancy_sim");
  return 0;
}

int RunLivePhase(const FleetFlags& flags, bench::BenchSession& session) {
  std::printf(
      "--- live: %d adapting tenants vs wsqd admission control ---\n",
      flags.live_tenants);

  // Server: in-process with a deliberately hair-trigger shed watermark,
  // unless --live-port points at an external wsqd (the CI job starts
  // one with --shed-watermark itself).
  std::shared_ptr<Table> customer;
  Dbms dbms;
  std::unique_ptr<DataService> service;
  std::unique_ptr<ServiceContainer> container;
  std::unique_ptr<net::WsqServer> server;
  int port = flags.live_port;
  if (port == 0) {
    TpchGenOptions gen;
    gen.scale = 0.4;
    gen.seed = 7;
    customer = GenerateCustomer(gen).value();
    if (Status s = dbms.RegisterTable(customer); !s.ok()) {
      std::fprintf(stderr, "table registration failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    service = std::make_unique<DataService>(&dbms);
    LoadModelConfig load;
    load.noise_sigma = 0.0;
    container = std::make_unique<ServiceContainer>(service.get(), load, 7);
    net::WsqServerOptions options;
    options.codec = codec::CodecChoice{codec::CodecKind::kBinary,
                                       /*compress_blocks=*/true};
    // Shed once four dispatches are in flight: the fleet's thundering
    // herd must trip admission control, and resilience must absorb it.
    options.admission.shed_queue_watermark = 4;
    server =
        std::make_unique<net::WsqServer>(container.get(), std::move(options));
    if (Status s = server->Start(); !s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    port = server->port();
    std::printf("in-process wsqd on 127.0.0.1:%d (shed watermark 4)\n", port);
  } else {
    std::printf("external wsqd at 127.0.0.1:%d\n", port);
  }

  fleet::LiveFleetOptions live;
  live.port = port;
  live.spec.mix = {{"hybrid", (flags.live_tenants + 1) / 2},
                   {"mimd", flags.live_tenants / 2}};
  // A light stagger keeps the launch a burst (the watermark still
  // trips) without making the very first exchange a coin flip a tenant
  // can lose max_retries times in a row.
  live.spec.arrival = fleet::ArrivalProcess::kStaggered;
  live.spec.stagger_interval_ms = 25.0;
  // Sheds surface as retryable faults; the chaos policy (with any
  // --max-retries / --breaker-threshold overrides) must absorb them. A
  // roomier default retry budget than Chaos(): a fleet-sized burst can
  // shed the same tenant several times back to back.
  ResilienceConfig chaos = session.ChaosResilience();
  if (session.max_retries() < 0) chaos.max_retries_per_call = 10;
  live.spec.resilience = chaos;
  live.client_options.codec = session.wire_codec();
  live.seed = 1;

  Result<fleet::FleetTrace> trace = fleet::RunLiveFleet(live);
  if (!trace.ok()) {
    std::fprintf(stderr, "live fleet failed: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }

  int64_t tuples = 0;
  int64_t retries = 0;
  for (const fleet::TenantTrace& lane : trace.value().tenants) {
    if (lane.trace.total_tuples <= 0) {
      std::fprintf(stderr, "tenant %s drained no tuples\n",
                   lane.tenant.c_str());
      return 1;
    }
    tuples += lane.trace.total_tuples;
    retries += lane.trace.total_retries;
  }
  const fleet::FleetAnalytics analytics = fleet::AnalyzeFleet(trace.value());
  fleet::PublishFleetMetrics(analytics, &MetricsRegistry::Global());

  const int64_t sheds = server != nullptr ? server->sheds() : -1;
  std::printf(
      "tenants=%zu tuples=%lld retries=%lld sheds=%s makespan=%.1fms "
      "jain=%.3f p99_spread=%.1fms\n",
      trace.value().tenants.size(), static_cast<long long>(tuples),
      static_cast<long long>(retries),
      sheds >= 0 ? std::to_string(sheds).c_str() : "external",
      trace.value().makespan_ms, analytics.jain_index,
      analytics.p99_spread_ms);
  if (server != nullptr) {
    if (sheds <= 0) {
      std::fprintf(stderr,
                   "FAIL: admission control never shed — the watermark did "
                   "not bite\n");
      return 1;
    }
    if (retries <= 0) {
      std::fprintf(stderr,
                   "FAIL: fleet absorbed no sheds (no retries recorded)\n");
      return 1;
    }
    // The server's own fairness section is what a live operator reads.
    const std::string stats = server->StatsJson();
    const size_t at = stats.find("\"fairness\"");
    if (at == std::string::npos) {
      std::fprintf(stderr, "FAIL: server stats carry no fairness section\n");
      return 1;
    }
    std::printf("server fairness: %.120s...\n", stats.c_str() + at);
  }
  std::printf("PASS: every tenant drained through %s sheds\n",
              sheds >= 0 ? std::to_string(sheds).c_str() : "external");

  // One wall-clock sample for the live phase's BENCH row.
  if (exec::RunTimings* timings = exec::GlobalRunTimings()) {
    timings->RecordRunMs(trace.value().makespan_ms);
  }
  return 0;
}

int Main(int argc, char** argv) {
  bench::BenchSession session(argc, argv);
  FleetFlags flags;
  ParseFleetFlags(argc, argv, &flags);

  bench::PrintHeader(
      "fleet_tenancy",
      "N tenant sessions co-scheduled in one shared world (sim) and "
      "against wsqd admission control (live)",
      "adaptive fleets converge and share fairly (Jain ~1) while "
      "interference shows up as correlated block-size motion; live "
      "sheds are absorbed by resilient adaptation");

  session.BeginPhase("sim");
  if (int rc = RunSimPhase(flags, session.jobs()); rc != 0) return rc;

  if (!flags.skip_live) {
    session.BeginPhase("live");
    if (int rc = RunLivePhase(flags, session); rc != 0) return rc;
  }
  return 0;
}

}  // namespace
}  // namespace wsq

int main(int argc, char** argv) { return wsq::Main(argc, argv); }
