// C10K churn benchmark: thousands of concurrent loopback connections
// against the epoll event-loop server, driven by a single-threaded
// non-blocking client multiplexer (the client mirrors the server's own
// readiness design: one epoll set, per-connection FrameParser).
//
// Two phases, both required to pass:
//
//   churn  — open --connections sockets, hold them ALL live at once
//            (verified against the server's live_connections gauge),
//            push one OpenSession exchange through every connection,
//            then close the whole wave and repeat --waves times. Every
//            exchange must complete; a connection that dies without a
//            response is a dropped session and fails the bench.
//
//   shed   — a second server with one dispatch worker, a low shed
//            watermark and a per-block server stall. A fleet of
//            sessions fires RequestBlock simultaneously; the worker
//            queue blows past the watermark and the loop must shed the
//            excess with retryable backpressure faults while every
//            admitted request is still served. Shed responses keep the
//            connection alive; nothing may be dropped without a shed.
//
// Per-exchange wall times from the churn phase feed --bench-json
// (BENCH_pr8.json): runs/sec and p50/p99 of connect-to-response.
//
// Flags (besides the standard BenchSession set):
//   --connections=N       concurrent connections per churn wave (2000)
//   --waves=W             churn waves (2)
//   --shed-connections=N  sessions in the shedding phase (200)
//   --shed-watermark=K    worker-queue depth that trips shedding (4)
//   --stall-ms=MS         injected per-block server stall (30)
//   --scale=S             TPC-H scale of the served table (0.01)

#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "wsq/net/epoll.h"
#include "wsq/net/frame.h"
#include "wsq/net/server.h"
#include "wsq/net/socket.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq {
namespace {

struct ChurnFlags {
  int connections = 2000;
  int waves = 2;
  int shed_connections = 200;
  int shed_watermark = 4;
  int stall_ms = 30;
  double scale = 0.01;
};

void ParseChurnFlags(int argc, char** argv, ChurnFlags* flags) {
  auto value_of = [&](const char* name, int i) -> const char* {
    const size_t n = std::strlen(name);
    if (std::strncmp(argv[i], name, n) != 0) return nullptr;
    if (argv[i][n] == '=') return argv[i] + n + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of("--connections", i))
      flags->connections = std::atoi(v);
    if (const char* v = value_of("--waves", i)) flags->waves = std::atoi(v);
    if (const char* v = value_of("--shed-connections", i))
      flags->shed_connections = std::atoi(v);
    if (const char* v = value_of("--shed-watermark", i))
      flags->shed_watermark = std::atoi(v);
    if (const char* v = value_of("--stall-ms", i)) flags->stall_ms = std::atoi(v);
    if (const char* v = value_of("--scale", i)) flags->scale = std::atof(v);
  }
  if (flags->connections < 1) flags->connections = 1;
  if (flags->waves < 1) flags->waves = 1;
  if (flags->shed_connections < 8) flags->shed_connections = 8;
  // Watermark below 2 would shed the sequential session-open preamble.
  if (flags->shed_watermark < 2) flags->shed_watermark = 2;
  if (flags->stall_ms < 1) flags->stall_ms = 1;
}

/// Raises RLIMIT_NOFILE toward `needed` fds (client + server ends plus
/// slack). The bench fails loudly on an insufficient limit instead of
/// surfacing it as mysterious connect errors mid-wave.
bool EnsureFdBudget(int needed) {
  struct rlimit lim;
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return true;  // best effort
  if (lim.rlim_cur >= static_cast<rlim_t>(needed)) return true;
  rlim_t want = static_cast<rlim_t>(needed);
  if (lim.rlim_max != RLIM_INFINITY && want > lim.rlim_max) want = lim.rlim_max;
  struct rlimit raised = lim;
  raised.rlim_cur = want;
  if (setrlimit(RLIMIT_NOFILE, &raised) != 0 ||
      want < static_cast<rlim_t>(needed)) {
    std::fprintf(stderr,
                 "FAIL: need %d fds but RLIMIT_NOFILE caps at %llu "
                 "(hard %llu) — raise ulimit -n\n",
                 needed, static_cast<unsigned long long>(want),
                 static_cast<unsigned long long>(lim.rlim_max));
    return false;
  }
  return true;
}

/// One multiplexed client connection: queued request bytes going out,
/// an incremental parser coming back.
struct Lane {
  net::Socket socket;
  net::FrameParser parser;
  std::string out;
  size_t out_cursor = 0;
  std::chrono::steady_clock::time_point start;
  bool done = false;
  bool dropped = false;
  bool shed = false;
};

struct DriveResult {
  int completed = 0;  // normal responses
  int shed = 0;       // retryable backpressure faults
  int dropped = 0;    // EOF / error / garbage before a response
  bool timed_out = false;
};

bool IsRetryableFault(const net::Frame& frame) {
  return frame.type == net::FrameType::kResponse &&
         (frame.flags & net::kFrameFlagSoapFault) != 0 &&
         (frame.flags & net::kFrameFlagTransientFault) != 0;
}

/// Drives every lane to its first response (or failure) through one
/// epoll set. Lanes must already be registered with tag = index and
/// their sockets non-blocking. Finished lanes keep their socket open —
/// the churn phase holds the whole wave live to prove concurrency.
DriveResult DriveLanes(std::vector<Lane>* lanes, net::Epoll* epoll,
                       double deadline_s, bool record_timings) {
  DriveResult result;
  size_t finished = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(deadline_s);
  std::vector<struct epoll_event> events(512);
  char buf[16384];

  auto finish = [&](Lane& lane, bool drop, bool shed) {
    if (lane.done) return;
    lane.done = true;
    finished++;
    epoll->Remove(lane.socket.fd());
    if (drop) {
      lane.dropped = true;
      result.dropped++;
      lane.socket.Close();
      return;
    }
    if (shed) {
      lane.shed = true;
      result.shed++;
      return;
    }
    result.completed++;
    if (record_timings) {
      if (exec::RunTimings* timings = exec::GlobalRunTimings()) {
        const std::chrono::duration<double, std::milli> wall =
            std::chrono::steady_clock::now() - lane.start;
        timings->RecordRunMs(wall.count());
      }
    }
  };

  while (finished < lanes->size()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      result.timed_out = true;
      break;
    }
    Result<int> n = epoll->Wait(events.data(),
                                static_cast<int>(events.size()), 200);
    if (!n.ok()) {
      result.timed_out = true;
      break;
    }
    for (int e = 0; e < n.value(); ++e) {
      const size_t idx = static_cast<size_t>(events[e].data.u64);
      if (idx >= lanes->size()) continue;
      Lane& lane = (*lanes)[idx];
      if (lane.done) continue;  // stale readiness after Remove
      const uint32_t ev = events[e].events;

      if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
        finish(lane, /*drop=*/true, /*shed=*/false);
        continue;
      }
      if ((ev & EPOLLOUT) != 0 && lane.out_cursor < lane.out.size()) {
        while (lane.out_cursor < lane.out.size()) {
          const ssize_t sent =
              ::send(lane.socket.fd(), lane.out.data() + lane.out_cursor,
                     lane.out.size() - lane.out_cursor, MSG_NOSIGNAL);
          if (sent > 0) {
            lane.out_cursor += static_cast<size_t>(sent);
            continue;
          }
          if (sent < 0 && errno == EINTR) continue;
          break;  // EAGAIN waits for the next EPOLLOUT; errors surface on read
        }
        if (lane.out_cursor >= lane.out.size()) {
          epoll->Modify(lane.socket.fd(), EPOLLIN, idx);
        }
      }
      if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0) {
        for (;;) {
          const ssize_t got = ::recv(lane.socket.fd(), buf, sizeof(buf), 0);
          if (got > 0) {
            std::vector<net::Frame> frames;
            Status consumed = lane.parser.Consume(buf,
                                                  static_cast<size_t>(got),
                                                  &frames);
            if (!consumed.ok()) {
              finish(lane, /*drop=*/true, /*shed=*/false);
              break;
            }
            if (!frames.empty()) {
              finish(lane, /*drop=*/false,
                     /*shed=*/IsRetryableFault(frames.front()));
              break;
            }
            continue;
          }
          if (got == 0) {  // EOF before a response
            finish(lane, /*drop=*/true, /*shed=*/false);
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          finish(lane, /*drop=*/true, /*shed=*/false);
          break;
        }
      }
    }
  }
  return result;
}

std::string RequestBytes(const std::string& payload) {
  net::Frame frame;
  frame.type = net::FrameType::kRequest;
  frame.payload = payload;
  std::string raw;
  Status appended = net::AppendFrameBytes(frame, &raw);
  if (!appended.ok()) std::abort();
  return raw;
}

std::unique_ptr<net::WsqServer> StartServer(ServiceContainer* container,
                                            net::WsqServerOptions options) {
  auto server = std::make_unique<net::WsqServer>(container, std::move(options));
  if (Status s = server->Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return nullptr;
  }
  return server;
}

int Main(int argc, char** argv) {
  bench::BenchSession session(argc, argv);
  ChurnFlags flags;
  ParseChurnFlags(argc, argv, &flags);

  bench::PrintHeader(
      "c10k_churn",
      "thousands of concurrent loopback connections with churn against "
      "the epoll event-loop server, then a shedding phase past the "
      "worker-queue watermark",
      "every churn session completes with the whole wave live at once; "
      "the shed phase sheds with retryable faults and drops nothing");

  const int fd_budget = 2 * std::max(flags.connections,
                                     flags.shed_connections) + 256;
  if (!EnsureFdBudget(fd_budget)) return 1;

  TpchGenOptions gen;
  gen.scale = flags.scale;
  gen.seed = 7;
  std::shared_ptr<Table> customer = GenerateCustomer(gen).value();
  Dbms dbms;
  if (Status s = dbms.RegisterTable(customer); !s.ok()) {
    std::fprintf(stderr, "table registration failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  DataService service(&dbms);
  LoadModelConfig load;
  load.noise_sigma = 0.0;
  ServiceContainer container(&service, load, 7);

  int failures = 0;

  // -------------------------------------------------------------------
  // Phase 1: churn. Full waves of concurrent connections, one exchange
  // each, all held live simultaneously before the wave closes.
  // -------------------------------------------------------------------
  net::WsqServerOptions churn_options;
  churn_options.simulate_service_time = false;
  churn_options.codec =
      codec::CodecChoice{codec::CodecKind::kBinary, /*compress_blocks=*/true};
  std::unique_ptr<net::WsqServer> server = StartServer(&container,
                                                       churn_options);
  if (server == nullptr) return 1;
  const int port = server->port();
  std::printf("churn server on 127.0.0.1:%d (scale=%g)\n", port, flags.scale);

  OpenSessionRequest open;
  open.table = "customer";
  const std::string open_bytes = RequestBytes(EncodeOpenSession(open));

  int64_t peak_live = 0;
  int total_exchanges = 0;
  for (int wave = 0; wave < flags.waves; ++wave) {
    net::Epoll epoll;
    if (!epoll.valid()) {
      std::fprintf(stderr, "FAIL: epoll_create failed\n");
      return 1;
    }
    std::vector<Lane> lanes(flags.connections);
    int connect_failures = 0;
    for (int i = 0; i < flags.connections; ++i) {
      Lane& lane = lanes[i];
      lane.start = std::chrono::steady_clock::now();
      Result<net::Socket> conn = net::TcpConnect("127.0.0.1", port, 10000.0);
      if (!conn.ok()) {
        lane.done = true;
        lane.dropped = true;
        connect_failures++;
        continue;
      }
      lane.socket = std::move(conn).value();
      net::SetNonBlocking(lane.socket.fd(), true);
      lane.out = open_bytes;
      epoll.Add(lane.socket.fd(), EPOLLIN | EPOLLOUT | EPOLLRDHUP,
                static_cast<uint64_t>(i));
    }

    DriveResult outcome = DriveLanes(&lanes, &epoll, /*deadline_s=*/120.0,
                                     /*record_timings=*/true);
    outcome.dropped += connect_failures;

    // Everyone answered and every socket still open: the concurrency
    // proof. The server gauge counts its side of the same wave.
    const int64_t live = server->live_connections();
    peak_live = std::max(peak_live, live);
    total_exchanges += outcome.completed;

    std::printf(
        "wave %d: %d connections, %d completed, %d shed, %d dropped, "
        "server live=%lld\n",
        wave, flags.connections, outcome.completed, outcome.shed,
        outcome.dropped, static_cast<long long>(live));
    if (outcome.timed_out) {
      std::fprintf(stderr, "FAIL: wave %d timed out\n", wave);
      failures++;
    }
    if (outcome.dropped > 0 || outcome.shed > 0 ||
        outcome.completed != flags.connections) {
      std::fprintf(stderr,
                   "FAIL: wave %d lost sessions (%d dropped, %d shed)\n",
                   wave, outcome.dropped, outcome.shed);
      failures++;
    }
    if (live < flags.connections) {
      std::fprintf(stderr,
                   "FAIL: wave %d peak concurrency %lld < %d — the wave "
                   "was not fully live at once\n",
                   wave, static_cast<long long>(live), flags.connections);
      failures++;
    }
    // The wave closes here (Lane destructors), churning every fd.
  }
  server->Stop();
  std::printf("churn: %d exchanges total, peak live connections %lld\n",
              total_exchanges, static_cast<long long>(peak_live));

  // -------------------------------------------------------------------
  // Phase 2: shedding. One worker, a low watermark, a per-block stall:
  // the flood must be shed with retryable faults, never dropped.
  // -------------------------------------------------------------------
  net::WsqServerOptions shed_options;
  shed_options.simulate_service_time = false;
  shed_options.worker_threads = 1;
  shed_options.admission.shed_queue_watermark =
      static_cast<size_t>(flags.shed_watermark);
  FaultSpec stall;
  stall.kind = FaultKind::kServerStall;
  stall.first_block = 0;
  stall.last_block = -1;
  stall.stall_ms = flags.stall_ms;
  shed_options.fault_plan.specs.push_back(stall);
  std::unique_ptr<net::WsqServer> shed_server = StartServer(&container,
                                                            shed_options);
  if (shed_server == nullptr) return 1;
  const int shed_port = shed_server->port();
  std::printf("shed server on 127.0.0.1:%d (watermark=%d, stall=%dms)\n",
              shed_port, flags.shed_watermark, flags.stall_ms);

  // Sequential session-open preamble: blocking round-trips keep the
  // dispatch queue below the watermark, so nothing sheds yet.
  std::vector<Lane> shed_lanes(flags.shed_connections);
  int preamble_failures = 0;
  for (int i = 0; i < flags.shed_connections; ++i) {
    Lane& lane = shed_lanes[i];
    Result<net::Socket> conn = net::TcpConnect("127.0.0.1", shed_port, 10000.0);
    if (!conn.ok()) {
      lane.done = true;
      preamble_failures++;
      continue;
    }
    lane.socket = std::move(conn).value();
    lane.socket.set_io_timeout_ms(10000.0);
    net::Frame request;
    request.type = net::FrameType::kRequest;
    request.payload = EncodeOpenSession(open);
    Status written = net::WriteFrame(lane.socket, request);
    Result<net::Frame> reply =
        written.ok() ? net::ReadFrame(lane.socket)
                     : Result<net::Frame>(written);
    if (!reply.ok()) {
      lane.done = true;
      preamble_failures++;
      continue;
    }
    Result<XmlNode> envelope = ParseEnvelope(reply.value().payload);
    Result<OpenSessionResponse> opened =
        envelope.ok() ? DecodeOpenSessionResponse(envelope.value())
                      : Result<OpenSessionResponse>(envelope.status());
    if (!opened.ok()) {
      lane.done = true;
      preamble_failures++;
      continue;
    }
    RequestBlockRequest block;
    block.session_id = opened.value().session_id;
    block.block_size = 20;
    block.sequence = 0;
    lane.out = RequestBytes(EncodeRequestBlock(block));
  }
  if (preamble_failures > 0) {
    std::fprintf(stderr, "FAIL: %d shed-phase sessions failed to open\n",
                 preamble_failures);
    failures++;
  }

  // The flood: every session fires its stalled block request at once.
  net::Epoll shed_epoll;
  for (int i = 0; i < flags.shed_connections; ++i) {
    Lane& lane = shed_lanes[i];
    if (lane.done) continue;
    net::SetNonBlocking(lane.socket.fd(), true);
    lane.start = std::chrono::steady_clock::now();
    shed_epoll.Add(lane.socket.fd(), EPOLLIN | EPOLLOUT | EPOLLRDHUP,
                   static_cast<uint64_t>(i));
  }
  DriveResult shed_outcome = DriveLanes(&shed_lanes, &shed_epoll,
                                        /*deadline_s=*/120.0,
                                        /*record_timings=*/false);
  const int64_t server_sheds = shed_server->sheds();
  std::printf(
      "shed: %d requests, %d served, %d shed (server counter %lld), "
      "%d dropped\n",
      flags.shed_connections - preamble_failures, shed_outcome.completed,
      shed_outcome.shed, static_cast<long long>(server_sheds),
      shed_outcome.dropped);
  if (shed_outcome.timed_out) {
    std::fprintf(stderr, "FAIL: shed phase timed out\n");
    failures++;
  }
  if (shed_outcome.dropped > 0) {
    std::fprintf(stderr,
                 "FAIL: %d request(s) dropped without a shed response\n",
                 shed_outcome.dropped);
    failures++;
  }
  if (shed_outcome.shed == 0 || server_sheds == 0) {
    std::fprintf(stderr,
                 "FAIL: no shedding observed past the watermark\n");
    failures++;
  }
  if (shed_outcome.completed == 0) {
    std::fprintf(stderr, "FAIL: shedding starved every admitted request\n");
    failures++;
  }
  shed_server->Stop();

  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d check(s) failed\n", failures);
    return 1;
  }
  std::printf(
      "all %d waves x %d connections churned and the watermark shed "
      "cleanly\n",
      flags.waves, flags.connections);
  return 0;
}

}  // namespace
}  // namespace wsq

int main(int argc, char** argv) { return wsq::Main(argc, argv); }
