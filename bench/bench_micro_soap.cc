// Microbenchmarks for the web-service plumbing: SOAP envelope encode /
// parse and tuple-block serialization — the per-request overheads the
// block-size controller amortizes by choosing bigger blocks.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

std::vector<Tuple> SampleBlock(size_t tuples) {
  TpchGenOptions gen;
  gen.scale = 0.01;
  auto table = GenerateCustomer(gen).value();
  std::vector<Tuple> block;
  for (size_t i = 0; i < tuples; ++i) {
    block.push_back(table->row(i % table->num_rows()));
  }
  return block;
}

void BM_EncodeRequestBlock(benchmark::State& state) {
  RequestBlockRequest request;
  request.session_id = 42;
  request.block_size = 5000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeRequestBlock(request));
  }
}
BENCHMARK(BM_EncodeRequestBlock);

void BM_ParseEnvelopeSmall(benchmark::State& state) {
  RequestBlockRequest request;
  request.session_id = 42;
  request.block_size = 5000;
  const std::string doc = EncodeRequestBlock(request);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseEnvelope(doc));
  }
}
BENCHMARK(BM_ParseEnvelopeSmall);

void BM_SerializeBlock(benchmark::State& state) {
  const auto block = SampleBlock(static_cast<size_t>(state.range(0)));
  TupleSerializer serializer(CustomerSchema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(serializer.SerializeBlock(block));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeBlock)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BlockResponseRoundTrip(benchmark::State& state) {
  const auto block = SampleBlock(static_cast<size_t>(state.range(0)));
  TupleSerializer serializer(CustomerSchema());
  BlockResponse response;
  response.session_id = 1;
  response.num_tuples = static_cast<int64_t>(block.size());
  response.payload = serializer.SerializeBlock(block).value();
  for (auto _ : state) {
    const std::string doc = EncodeBlockResponse(response);
    Result<XmlNode> payload = ParseEnvelope(doc);
    benchmark::DoNotOptimize(DecodeBlockResponse(payload.value()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlockResponseRoundTrip)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DeserializeBlock(benchmark::State& state) {
  const auto block = SampleBlock(static_cast<size_t>(state.range(0)));
  TupleSerializer serializer(CustomerSchema());
  const std::string payload = serializer.SerializeBlock(block).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(serializer.DeserializeBlock(payload));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeserializeBlock)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace wsq::bench
