// Reproduces paper Fig. 7 (LAN, conf2.2 — the Orders relation, 3x more
// result tuples, loaded server, upper limit reset to 20000):
//   (a) average response times at fixed block sizes,
//   (b) decisions of constant gain, adaptive gain and hybrid — the
//       setting where the hybrid's robustness is clearest.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Figure 7",
      "LAN conf2.2 (Orders, 450K tuples, loaded server): fixed-size sweep "
      "(a) and controller decisions (b)",
      "optimum ~7.5K with many local minima; adaptive gain cannot track "
      "the region; constant gain oscillates and converges slowly; hybrid "
      "does neither");

  const ConfiguredProfile conf = Conf2_2();

  const GroundTruth gt = GroundTruthFor(conf, /*runs=*/10, /*grid_step=*/1000);
  TextTable sweep({"block size", "mean (s)", "sd (s)"});
  CsvWriter sweep_csv({"block_size", "mean_ms", "stddev_ms"});
  for (const SweepPoint& point : gt.sweep) {
    sweep.AddRow({std::to_string(point.block_size),
                  FormatDouble(point.mean_ms / 1000.0, 1),
                  FormatDouble(point.stddev_ms / 1000.0, 1)});
    sweep_csv.AddNumericRow({static_cast<double>(point.block_size),
                             point.mean_ms, point.stddev_ms},
                            1);
  }
  std::printf("--- Fig. 7(a): fixed sizes ---\n%s", sweep.ToString().c_str());
  std::printf("post-mortem optimum: %lld tuples\n\n",
              static_cast<long long>(gt.optimum_block_size));
  MaybeDumpCsv(sweep_csv, "fig7a_lan_conf22_sweep");

  struct Candidate {
    const char* label;
    ControllerFactoryFn factory;
  };
  const Candidate candidates[] = {
      {"constant gain", SwitchingFactory(conf, GainMode::kConstant)},
      {"adaptive gain", SwitchingFactory(conf, GainMode::kAdaptive)},
      {"hybrid", HybridFactory(conf)},
  };
  std::printf("--- Fig. 7(b): decisions (every 5 steps) ---\n");
  CsvWriter csv({"step", "constant", "adaptive", "hybrid"});
  std::vector<std::vector<double>> series;
  for (const Candidate& candidate : candidates) {
    Result<RepeatedRunSummary> summary = RunRepeated(
        candidate.factory, *conf.profile, 10, OptionsFor(conf));
    if (!summary.ok()) std::exit(1);
    std::printf("%-14s: %s  (normalized %.2f)\n", candidate.label,
                DecisionSeries(summary.value().mean_decision_per_step, 5)
                    .c_str(),
                summary.value().NormalizedMean(gt.optimum_mean_ms));
    series.push_back(summary.value().mean_decision_per_step);
  }
  size_t len = series[0].size();
  for (const auto& s : series) len = std::min(len, s.size());
  for (size_t i = 0; i < len; ++i) {
    csv.AddNumericRow({static_cast<double>(i), series[0][i], series[1][i],
                       series[2][i]},
                      0);
  }
  MaybeDumpCsv(csv, "fig7b_lan_conf22_decisions");
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
