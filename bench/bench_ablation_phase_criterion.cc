// Ablation: the phase-transition criterion parameters (n', s) of
// Eq. (5), plus the Eq. (6) alternative. The paper fixes n'=5, s=1 and
// reports Eq. (6) is 7.6-10% worse on conf1.2/conf1.3.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Ablation: phase-transition criterion",
      "hybrid normalized response time for (n', s) combinations and for "
      "the Eq. (6) window-means criterion, 10 runs",
      "small n' switches early (risking premature freezing); large n' "
      "wastes transient-free steps; Eq. (6) is slower to fire and "
      "somewhat worse, as in the paper");

  TextTable table({"config", "n'=3,s=1", "n'=5,s=1", "n'=7,s=1",
                   "n'=9,s=3", "Eq.(6) n'=5"});
  for (const ConfiguredProfile& conf : {Conf1_2(), Conf2_1(), Conf2_2()}) {
    const GroundTruth gt = GroundTruthFor(conf);
    std::vector<double> row;
    struct Variant {
      PhaseCriterion criterion;
      int horizon;
      int threshold;
    };
    const Variant variants[] = {
        {PhaseCriterion::kSignSwitches, 3, 1},
        {PhaseCriterion::kSignSwitches, 5, 1},
        {PhaseCriterion::kSignSwitches, 7, 1},
        {PhaseCriterion::kSignSwitches, 9, 3},
        {PhaseCriterion::kWindowMeans, 5, 1},
    };
    for (const Variant& variant : variants) {
      auto factory = [conf, variant]() {
        HybridConfig config = PaperHybridConfig();
        config.base = BaseFor(conf, GainMode::kConstant);
        config.criterion = variant.criterion;
        config.criterion_horizon = variant.horizon;
        config.criterion_threshold = variant.threshold;
        return std::unique_ptr<Controller>(new HybridController(config));
      };
      Result<RepeatedRunSummary> summary =
          RunRepeated(factory, *conf.profile, 10, OptionsFor(conf));
      if (!summary.ok()) std::exit(1);
      row.push_back(summary.value().NormalizedMean(gt.optimum_mean_ms));
    }
    table.AddNumericRow(conf.profile->name(), row, 3);
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
