// Reproduces paper Table III: the average performance degradation (in %
// over the post-mortem optimum) across all five experimental
// configurations, for three static block sizes (1K / 10K / 20K), the
// three switching controllers, and the best model-based technique per
// configuration.

#include <limits>

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

double DegradationPct(const ControllerFactoryFn& factory,
                      const ConfiguredProfile& conf, double optimum_ms) {
  Result<RepeatedRunSummary> summary =
      RunRepeated(factory, *conf.profile, 10, OptionsFor(conf));
  if (!summary.ok()) std::exit(1);
  return (summary.value().NormalizedMean(optimum_ms) - 1.0) * 100.0;
}

void Run() {
  PrintHeader(
      "Table III",
      "average performance degradation vs the post-mortem optimum, over "
      "the five configurations conf1.1-conf2.2 (10 runs each)",
      "paper: static 1K 53.3%, static 10K 81.5%, static 20K 226.8%, "
      "constant 21.3%, adaptive 37.5%, hybrid 13.5%, best model 0.7% — "
      "ordering: best model < hybrid < constant < adaptive << static");

  const ConfiguredProfile confs[] = {Conf1_1(), Conf1_2(), Conf1_3(),
                                     Conf2_1(), Conf2_2()};
  const char* columns[] = {"static 1K", "static 10K", "static 20K",
                           "const. gain", "adapt. gain", "hybrid",
                           "best model"};
  std::vector<double> totals(std::size(columns), 0.0);

  TextTable per_config(
      {"config", "static 1K", "static 10K", "static 20K", "const. gain",
       "adapt. gain", "hybrid", "best model"});

  for (const ConfiguredProfile& conf : confs) {
    const GroundTruth gt = GroundTruthFor(conf, /*runs=*/10);
    const double optimum = gt.optimum_mean_ms;

    std::vector<double> row;
    // Static sizes are NOT clamped to per-config limits: a fixed
    // deployment choice knows nothing about the environment — that is
    // exactly why the paper's static 20K column is catastrophic.
    for (int64_t size : {int64_t{1000}, int64_t{10000}, int64_t{20000}}) {
      row.push_back(DegradationPct(FixedFactory(size), conf, optimum));
    }
    row.push_back(DegradationPct(
        SwitchingFactory(conf, GainMode::kConstant), conf, optimum));
    row.push_back(DegradationPct(
        SwitchingFactory(conf, GainMode::kAdaptive), conf, optimum));
    row.push_back(DegradationPct(HybridFactory(conf), conf, optimum));

    const double quad = DegradationPct(
        ModelFactory(conf, IdentificationModel::kQuadratic), conf, optimum);
    const double para = DegradationPct(
        ModelFactory(conf, IdentificationModel::kParabolic), conf, optimum);
    row.push_back(std::min(quad, para));

    per_config.AddNumericRow(conf.profile->name(), row, 1);
    for (size_t i = 0; i < row.size(); ++i) totals[i] += row[i];
  }

  std::printf("--- per configuration (degradation %%) ---\n%s\n",
              per_config.ToString().c_str());

  TextTable averages({"", "static 1K", "static 10K", "static 20K",
                      "const. gain", "adapt. gain", "hybrid",
                      "best model"});
  std::vector<double> means;
  CsvWriter csv({"column", "avg_degradation_pct"});
  for (size_t i = 0; i < totals.size(); ++i) {
    means.push_back(totals[i] / static_cast<double>(std::size(confs)));
    csv.AddRow({columns[i], FormatDouble(means.back(), 2)});
  }
  averages.AddNumericRow("average", means, 1);
  std::printf("--- average over the five configurations ---\n%s",
              averages.ToString().c_str());
  MaybeDumpCsv(csv, "table3_degradation");
}

/// Chaos mode (--fault-plan=<name>): re-runs the controller suite with
/// the named FaultPlan scripted into every run and reports the
/// *normalized* total time — chaos mean over the controller's own
/// no-fault mean — per configuration. The resilience policy is
/// ResilienceConfig::Chaos() with any --max-retries /
/// --breaker-threshold overrides; a column shows "nan" when the budget
/// was too shallow to survive the plan (e.g. --max-retries=2 under
/// "burst" reproduces the pre-resilience failure mode).
void RunChaos(const BenchSession& session) {
  Result<FaultPlan> plan_or = FaultPlan::FromName(session.fault_plan());
  if (!plan_or.ok()) {
    std::fprintf(stderr, "bad --fault-plan: %s\n",
                 plan_or.status().ToString().c_str());
    std::exit(1);
  }
  const FaultPlan plan = std::move(plan_or).value();
  const ResilienceConfig resilience = session.ChaosResilience();
  if (Status status = resilience.Validate(); !status.ok()) {
    std::fprintf(stderr, "bad resilience overrides: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }

  PrintHeader(
      "Table III (chaos: " + plan.name + ")",
      "normalized total time (chaos / no-fault, 10 runs each) under fault "
      "plan '" + plan.name + "', resilience retries=" +
          std::to_string(resilience.max_retries_per_call) +
          " breaker_threshold=" +
          std::to_string(resilience.breaker_threshold),
      "bounded degradation: every adaptive column close to 1 and below "
      "3x; the watchdog column matches plain hybrid on well-behaved "
      "runs");

  const ConfiguredProfile confs[] = {Conf1_1(), Conf1_2(), Conf1_3(),
                                     Conf2_1(), Conf2_2()};
  const char* columns[] = {"static 1K", "const. gain", "adapt. gain",
                           "hybrid", "watchdog(hybrid)"};
  TextTable per_config({"config", "static 1K", "const. gain", "adapt. gain",
                        "hybrid", "watchdog(hybrid)"});
  CsvWriter csv({"config", "column", "normalized_time", "faults_injected",
                 "breaker_trips", "retries"});

  int64_t total_faults = 0;
  int64_t total_breaker_trips = 0;
  int64_t total_retries = 0;
  for (const ConfiguredProfile& conf : confs) {
    ProfileBackend backend = ProfileBackend::FromConfiguration(conf);
    const ControllerFactoryFn factories[] = {
        FixedFactory(1000),
        SwitchingFactory(conf, GainMode::kConstant),
        SwitchingFactory(conf, GainMode::kAdaptive),
        HybridFactory(conf),
        WithWatchdog(HybridFactory(conf)),
    };

    std::vector<double> row;
    for (size_t i = 0; i < std::size(factories); ++i) {
      Result<RepeatedRunSummary> baseline =
          RunRepeated(factories[i], backend, RunSpec{}, 10);
      if (!baseline.ok()) std::exit(1);

      RunSpec chaos_spec;
      chaos_spec.fault_plan = &plan;
      chaos_spec.resilience = &resilience;
      Result<RepeatedRunSummary> chaos =
          RunRepeated(factories[i], backend, chaos_spec, 10);

      double normalized = std::numeric_limits<double>::quiet_NaN();
      if (chaos.ok()) {
        normalized = chaos.value().total_time_ms.mean() /
                     baseline.value().total_time_ms.mean();
        total_faults += chaos.value().faults_injected;
        total_breaker_trips += chaos.value().breaker_trips;
        total_retries += chaos.value().total_retries;
        csv.AddRow({conf.profile->name(), columns[i],
                    FormatDouble(normalized, 3),
                    std::to_string(chaos.value().faults_injected),
                    std::to_string(chaos.value().breaker_trips),
                    std::to_string(chaos.value().total_retries)});
      } else {
        csv.AddRow({conf.profile->name(), columns[i], "nan", "0", "0", "0"});
      }
      row.push_back(normalized);
    }
    per_config.AddNumericRow(conf.profile->name(), row, 3);
  }

  std::printf("--- normalized time under '%s' ---\n%s\n", plan.name.c_str(),
              per_config.ToString().c_str());
  std::printf(
      "faults injected: %lld, retried exchanges: %lld, breaker trips: "
      "%lld\n",
      static_cast<long long>(total_faults),
      static_cast<long long>(total_retries),
      static_cast<long long>(total_breaker_trips));
  MaybeDumpCsv(csv, "table3_chaos_" + plan.name);
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  if (!session.fault_plan().empty() && session.fault_plan() != "none") {
    wsq::bench::RunChaos(session);
  }
  return 0;
}
