// Reproduces paper Table III: the average performance degradation (in %
// over the post-mortem optimum) across all five experimental
// configurations, for three static block sizes (1K / 10K / 20K), the
// three switching controllers, and the best model-based technique per
// configuration.

#include <limits>

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

double DegradationPct(const ControllerFactoryFn& factory,
                      const ConfiguredProfile& conf, double optimum_ms) {
  Result<RepeatedRunSummary> summary =
      RunRepeated(factory, *conf.profile, 10, OptionsFor(conf));
  if (!summary.ok()) std::exit(1);
  return (summary.value().NormalizedMean(optimum_ms) - 1.0) * 100.0;
}

void Run() {
  PrintHeader(
      "Table III",
      "average performance degradation vs the post-mortem optimum, over "
      "the five configurations conf1.1-conf2.2 (10 runs each)",
      "paper: static 1K 53.3%, static 10K 81.5%, static 20K 226.8%, "
      "constant 21.3%, adaptive 37.5%, hybrid 13.5%, best model 0.7% — "
      "ordering: best model < hybrid < constant < adaptive << static");

  const ConfiguredProfile confs[] = {Conf1_1(), Conf1_2(), Conf1_3(),
                                     Conf2_1(), Conf2_2()};
  const char* columns[] = {"static 1K", "static 10K", "static 20K",
                           "const. gain", "adapt. gain", "hybrid",
                           "best model"};
  std::vector<double> totals(std::size(columns), 0.0);

  TextTable per_config(
      {"config", "static 1K", "static 10K", "static 20K", "const. gain",
       "adapt. gain", "hybrid", "best model"});

  for (const ConfiguredProfile& conf : confs) {
    const GroundTruth gt = GroundTruthFor(conf, /*runs=*/10);
    const double optimum = gt.optimum_mean_ms;

    std::vector<double> row;
    // Static sizes are NOT clamped to per-config limits: a fixed
    // deployment choice knows nothing about the environment — that is
    // exactly why the paper's static 20K column is catastrophic.
    for (int64_t size : {int64_t{1000}, int64_t{10000}, int64_t{20000}}) {
      row.push_back(DegradationPct(FixedFactory(size), conf, optimum));
    }
    row.push_back(DegradationPct(
        SwitchingFactory(conf, GainMode::kConstant), conf, optimum));
    row.push_back(DegradationPct(
        SwitchingFactory(conf, GainMode::kAdaptive), conf, optimum));
    row.push_back(DegradationPct(HybridFactory(conf), conf, optimum));

    const double quad = DegradationPct(
        ModelFactory(conf, IdentificationModel::kQuadratic), conf, optimum);
    const double para = DegradationPct(
        ModelFactory(conf, IdentificationModel::kParabolic), conf, optimum);
    row.push_back(std::min(quad, para));

    per_config.AddNumericRow(conf.profile->name(), row, 1);
    for (size_t i = 0; i < row.size(); ++i) totals[i] += row[i];
  }

  std::printf("--- per configuration (degradation %%) ---\n%s\n",
              per_config.ToString().c_str());

  TextTable averages({"", "static 1K", "static 10K", "static 20K",
                      "const. gain", "adapt. gain", "hybrid",
                      "best model"});
  std::vector<double> means;
  CsvWriter csv({"column", "avg_degradation_pct"});
  for (size_t i = 0; i < totals.size(); ++i) {
    means.push_back(totals[i] / static_cast<double>(std::size(confs)));
    csv.AddRow({columns[i], FormatDouble(means.back(), 2)});
  }
  averages.AddNumericRow("average", means, 1);
  std::printf("--- average over the five configurations ---\n%s",
              averages.ToString().c_str());
  MaybeDumpCsv(csv, "table3_degradation");
}

/// Chaos mode (--fault-plan=<name>): re-runs the controller suite with
/// the named FaultPlan scripted into every run and reports the
/// *normalized* total time — chaos mean over the controller's own
/// no-fault mean — per configuration. The resilience policy is
/// ResilienceConfig::Chaos() with any --max-retries /
/// --breaker-threshold overrides; a column shows "nan" when the budget
/// was too shallow to survive the plan (e.g. --max-retries=2 under
/// "burst" reproduces the pre-resilience failure mode).
void RunChaos(const BenchSession& session) {
  Result<FaultPlan> plan_or = FaultPlan::FromName(session.fault_plan());
  if (!plan_or.ok()) {
    std::fprintf(stderr, "bad --fault-plan: %s\n",
                 plan_or.status().ToString().c_str());
    std::exit(1);
  }
  const FaultPlan plan = std::move(plan_or).value();
  const ResilienceConfig resilience = session.ChaosResilience();
  if (Status status = resilience.Validate(); !status.ok()) {
    std::fprintf(stderr, "bad resilience overrides: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }

  PrintHeader(
      "Table III (chaos: " + plan.name + ")",
      "normalized total time (chaos / no-fault, 10 runs each) under fault "
      "plan '" + plan.name + "', resilience retries=" +
          std::to_string(resilience.max_retries_per_call) +
          " breaker_threshold=" +
          std::to_string(resilience.breaker_threshold),
      "bounded degradation: every adaptive column close to 1 and below "
      "3x; the watchdog column matches plain hybrid on well-behaved "
      "runs");

  const ConfiguredProfile confs[] = {Conf1_1(), Conf1_2(), Conf1_3(),
                                     Conf2_1(), Conf2_2()};
  const char* columns[] = {"static 1K", "const. gain", "adapt. gain",
                           "hybrid", "watchdog(hybrid)"};
  TextTable per_config({"config", "static 1K", "const. gain", "adapt. gain",
                        "hybrid", "watchdog(hybrid)"});
  CsvWriter csv({"config", "column", "normalized_time", "faults_injected",
                 "breaker_trips", "retries"});

  int64_t total_faults = 0;
  int64_t total_breaker_trips = 0;
  int64_t total_retries = 0;
  for (const ConfiguredProfile& conf : confs) {
    ProfileBackend backend = ProfileBackend::FromConfiguration(conf);
    const ControllerFactoryFn factories[] = {
        FixedFactory(1000),
        SwitchingFactory(conf, GainMode::kConstant),
        SwitchingFactory(conf, GainMode::kAdaptive),
        HybridFactory(conf),
        WithWatchdog(HybridFactory(conf)),
    };

    std::vector<double> row;
    for (size_t i = 0; i < std::size(factories); ++i) {
      Result<RepeatedRunSummary> baseline =
          RunRepeated(factories[i], backend, RunSpec{}, 10);
      if (!baseline.ok()) std::exit(1);

      RunSpec chaos_spec;
      chaos_spec.fault_plan = &plan;
      chaos_spec.resilience = &resilience;
      Result<RepeatedRunSummary> chaos =
          RunRepeated(factories[i], backend, chaos_spec, 10);

      double normalized = std::numeric_limits<double>::quiet_NaN();
      if (chaos.ok()) {
        normalized = chaos.value().total_time_ms.mean() /
                     baseline.value().total_time_ms.mean();
        total_faults += chaos.value().faults_injected;
        total_breaker_trips += chaos.value().breaker_trips;
        total_retries += chaos.value().total_retries;
        csv.AddRow({conf.profile->name(), columns[i],
                    FormatDouble(normalized, 3),
                    std::to_string(chaos.value().faults_injected),
                    std::to_string(chaos.value().breaker_trips),
                    std::to_string(chaos.value().total_retries)});
      } else {
        csv.AddRow({conf.profile->name(), columns[i], "nan", "0", "0", "0"});
      }
      row.push_back(normalized);
    }
    per_config.AddNumericRow(conf.profile->name(), row, 3);
  }

  std::printf("--- normalized time under '%s' ---\n%s\n", plan.name.c_str(),
              per_config.ToString().c_str());
  std::printf(
      "faults injected: %lld, retried exchanges: %lld, breaker trips: "
      "%lld\n",
      static_cast<long long>(total_faults),
      static_cast<long long>(total_retries),
      static_cast<long long>(total_breaker_trips));
  MaybeDumpCsv(csv, "table3_chaos_" + plan.name);
}

/// Codec mode (--codec=binary / binary+lz): re-runs the degradation
/// matrix on the *empirical* path — the only backend whose wire time is
/// charged per payload byte — under SOAP and under the requested codec.
/// The profile-driven main table cannot see codecs (profiles model
/// response time directly), so this scenario answers the question the
/// paper's Table III shape raises for a binary wire: does shrinking the
/// per-tuple byte cost change the *relative* ranking of the
/// controllers, and how much absolute time does the codec save at each
/// config's optimum?
struct CodecConf {
  const char* name;
  LoadModelConfig load;
};

std::vector<CodecConf> CodecConfs() {
  CodecConf unloaded{"conf1.1 wan/unloaded", {}};
  CodecConf loaded{"conf1.2 wan/loaded", {}};
  loaded.load.concurrent_queries = 3;
  CodecConf memory{"conf1.3 wan/memory", {}};
  memory.load.concurrent_jobs = 4;
  memory.load.memory_pressure = 0.5;
  return {unloaded, loaded, memory};
}

double RunEmpiricalOnce(const std::shared_ptr<Table>& customer,
                        const LoadModelConfig& load,
                        const codec::CodecChoice& codec,
                        const std::string& controller_name, uint64_t seed) {
  EmpiricalSetup setup;
  setup.table = customer;
  setup.query.table_name = "customer";
  setup.link = WanUkToSwitzerland();
  setup.load = load;
  setup.seed = seed;
  setup.codec = codec;
  auto session = QuerySession::Create(setup);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    std::exit(1);
  }
  auto controller = ControllerFactory::FromName(controller_name);
  if (!controller.ok()) {
    std::fprintf(stderr, "%s\n", controller.status().ToString().c_str());
    std::exit(1);
  }
  auto outcome = session.value()->Execute(controller.value().get());
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    std::exit(1);
  }
  return outcome.value().total_time_ms;
}

double MeanEmpirical(const std::shared_ptr<Table>& customer,
                     const LoadModelConfig& load,
                     const codec::CodecChoice& codec,
                     const std::string& controller_name) {
  RunningStats stats;
  for (uint64_t run = 0; run < 2; ++run) {
    stats.Add(
        RunEmpiricalOnce(customer, load, codec, controller_name, 17 + run * 131));
  }
  return stats.mean();
}

void RunCodec(const BenchSession& session) {
  const codec::CodecChoice binary = session.wire_codec();
  const codec::CodecChoice soap;  // default: the historical wire

  PrintHeader(
      "Table III (codec: " + binary.ToString() + ")",
      "degradation vs the post-mortem optimum on the empirical path "
      "(simulated wire charged per payload byte), SOAP vs " +
          binary.ToString() + ", WAN link, Customer x0.1",
      "controller ranking survives the codec change (hybrid < switching "
      "<< static) and the binary wire beats SOAP at every config's "
      "optimum");

  TpchGenOptions gen;
  gen.scale = 0.1;  // 15000 tuples: enough blocks for adaptation
  auto customer = GenerateCustomer(gen);
  if (!customer.ok()) std::exit(1);

  // Columns mirror the paper's table; the post-mortem optimum is the
  // best static size on a coarse grid, found per (config, codec) — the
  // codec changes bytes/tuple and thus the bowl's floor.
  const int64_t kGrid[] = {500, 1000, 2000, 4000, 8000, 12000};
  const char* columns[] = {"static 1K",   "static 10K", "static 20K",
                           "const. gain", "adapt. gain", "hybrid"};
  const char* controller_names[] = {"fixed:1000", "fixed:10000",
                                    "fixed:20000", "constant", "adaptive",
                                    "hybrid"};

  CsvWriter csv({"config", "codec", "column", "degradation_pct",
                 "optimum_ms"});
  TextTable speedup({"config", "soap optimum ms",
                     binary.ToString() + " optimum ms", "transfer speedup"});
  for (const CodecConf& conf : CodecConfs()) {
    double optimum[2] = {0.0, 0.0};
    for (int c = 0; c < 2; ++c) {
      const codec::CodecChoice& choice = c == 0 ? soap : binary;
      double best = 1e300;
      for (int64_t size : kGrid) {
        best = std::min(
            best, MeanEmpirical(customer.value(), conf.load, choice,
                                "fixed:" + std::to_string(size)));
      }
      optimum[c] = best;

      TextTable table({"column", "mean ms", "degradation %"});
      for (size_t i = 0; i < std::size(columns); ++i) {
        const double mean = MeanEmpirical(customer.value(), conf.load, choice,
                                          controller_names[i]);
        const double degradation = (mean / best - 1.0) * 100.0;
        table.AddRow({columns[i], FormatDouble(mean, 0),
                      FormatDouble(degradation, 1)});
        csv.AddRow({conf.name, choice.ToString(), columns[i],
                    FormatDouble(degradation, 2), FormatDouble(best, 1)});
      }
      std::printf("--- %s, codec=%s (optimum %s ms) ---\n%s\n", conf.name,
                  choice.ToString().c_str(), FormatDouble(best, 0).c_str(),
                  table.ToString().c_str());
    }
    speedup.AddRow({conf.name, FormatDouble(optimum[0], 0),
                    FormatDouble(optimum[1], 0),
                    FormatDouble(optimum[0] / optimum[1], 2) + "x"});
  }
  std::printf("--- optimum response time, SOAP vs %s ---\n%s",
              binary.ToString().c_str(), speedup.ToString().c_str());
  MaybeDumpCsv(csv, "table3_codec_" + std::string(codec::CodecKindName(
                        binary.kind)));
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  if (!session.fault_plan().empty() && session.fault_plan() != "none") {
    wsq::bench::RunChaos(session);
  }
  if (session.wire_codec().kind != wsq::codec::CodecKind::kSoap) {
    wsq::bench::RunCodec(session);
  }
  return 0;
}
