// Reproduces paper Table III: the average performance degradation (in %
// over the post-mortem optimum) across all five experimental
// configurations, for three static block sizes (1K / 10K / 20K), the
// three switching controllers, and the best model-based technique per
// configuration.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

double DegradationPct(const ControllerFactoryFn& factory,
                      const ConfiguredProfile& conf, double optimum_ms) {
  Result<RepeatedRunSummary> summary =
      RunRepeated(factory, *conf.profile, 10, OptionsFor(conf));
  if (!summary.ok()) std::exit(1);
  return (summary.value().NormalizedMean(optimum_ms) - 1.0) * 100.0;
}

void Run() {
  PrintHeader(
      "Table III",
      "average performance degradation vs the post-mortem optimum, over "
      "the five configurations conf1.1-conf2.2 (10 runs each)",
      "paper: static 1K 53.3%, static 10K 81.5%, static 20K 226.8%, "
      "constant 21.3%, adaptive 37.5%, hybrid 13.5%, best model 0.7% — "
      "ordering: best model < hybrid < constant < adaptive << static");

  const ConfiguredProfile confs[] = {Conf1_1(), Conf1_2(), Conf1_3(),
                                     Conf2_1(), Conf2_2()};
  const char* columns[] = {"static 1K", "static 10K", "static 20K",
                           "const. gain", "adapt. gain", "hybrid",
                           "best model"};
  std::vector<double> totals(std::size(columns), 0.0);

  TextTable per_config(
      {"config", "static 1K", "static 10K", "static 20K", "const. gain",
       "adapt. gain", "hybrid", "best model"});

  for (const ConfiguredProfile& conf : confs) {
    const GroundTruth gt = GroundTruthFor(conf, /*runs=*/10);
    const double optimum = gt.optimum_mean_ms;

    std::vector<double> row;
    // Static sizes are NOT clamped to per-config limits: a fixed
    // deployment choice knows nothing about the environment — that is
    // exactly why the paper's static 20K column is catastrophic.
    for (int64_t size : {int64_t{1000}, int64_t{10000}, int64_t{20000}}) {
      row.push_back(DegradationPct(FixedFactory(size), conf, optimum));
    }
    row.push_back(DegradationPct(
        SwitchingFactory(conf, GainMode::kConstant), conf, optimum));
    row.push_back(DegradationPct(
        SwitchingFactory(conf, GainMode::kAdaptive), conf, optimum));
    row.push_back(DegradationPct(HybridFactory(conf), conf, optimum));

    const double quad = DegradationPct(
        ModelFactory(conf, IdentificationModel::kQuadratic), conf, optimum);
    const double para = DegradationPct(
        ModelFactory(conf, IdentificationModel::kParabolic), conf, optimum);
    row.push_back(std::min(quad, para));

    per_config.AddNumericRow(conf.profile->name(), row, 1);
    for (size_t i = 0; i < row.size(); ++i) totals[i] += row[i];
  }

  std::printf("--- per configuration (degradation %%) ---\n%s\n",
              per_config.ToString().c_str());

  TextTable averages({"", "static 1K", "static 10K", "static 20K",
                      "const. gain", "adapt. gain", "hybrid",
                      "best model"});
  std::vector<double> means;
  CsvWriter csv({"column", "avg_degradation_pct"});
  for (size_t i = 0; i < totals.size(); ++i) {
    means.push_back(totals[i] / static_cast<double>(std::size(confs)));
    csv.AddRow({columns[i], FormatDouble(means.back(), 2)});
  }
  averages.AddNumericRow("average", means, 1);
  std::printf("--- average over the five configurations ---\n%s",
              averages.ToString().c_str());
  MaybeDumpCsv(csv, "table3_degradation");
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
