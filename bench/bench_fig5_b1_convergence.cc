// Reproduces paper Fig. 5: the impact of b1 (800 / 1200 / 2000) on the
// speed of convergence of a constant-gain extremum controller on
// conf1.1, starting from a small block (1000 tuples) far below the
// optimum.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Figure 5",
      "average constant-gain decisions per adaptivity step on conf1.1 "
      "for b1 in {800, 1200, 2000}, x0 = 1000",
      "larger b1 converges visibly faster when the start is far from the "
      "optimum; smaller b1 is better once near it");

  const ConfiguredProfile conf = Conf1_1();
  const double b1_values[] = {800.0, 1200.0, 2000.0};

  CsvWriter csv({"step", "b1=800", "b1=1200", "b1=2000"});
  std::vector<std::vector<double>> series;
  std::printf("--- decisions (every 2 steps) ---\n");
  for (double b1 : b1_values) {
    Result<RepeatedRunSummary> summary =
        RunRepeated(SwitchingFactory(conf, GainMode::kConstant, b1),
                    *conf.profile, 10, OptionsFor(conf));
    if (!summary.ok()) std::exit(1);
    std::printf("b1=%-5.0f: %s\n", b1,
                DecisionSeries(summary.value().mean_decision_per_step, 2)
                    .c_str());
    series.push_back(summary.value().mean_decision_per_step);
  }

  // Steps needed to first reach 60% of the optimum region (12K tuples).
  std::printf("\nsteps to first reach 12000 tuples (mean trace):\n");
  for (size_t i = 0; i < std::size(b1_values); ++i) {
    size_t steps = series[i].size();
    for (size_t s = 0; s < series[i].size(); ++s) {
      if (series[i][s] >= 12000.0) {
        steps = s;
        break;
      }
    }
    std::printf("  b1=%-5.0f -> %zu steps\n", b1_values[i], steps);
  }

  size_t len = series[0].size();
  for (const auto& s : series) len = std::min(len, s.size());
  for (size_t i = 0; i < len; ++i) {
    csv.AddNumericRow(
        {static_cast<double>(i), series[0][i], series[1][i], series[2][i]},
        0);
  }
  MaybeDumpCsv(csv, "fig5_b1_convergence");
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
