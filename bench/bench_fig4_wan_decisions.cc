// Reproduces paper Fig. 4(a)-(c): the average intra-query block-size
// decisions of the constant-gain, adaptive-gain and hybrid controllers
// on conf1.1, conf1.2 and conf1.3 (10 runs, paper parameters: b1=2000
// — 1200 for conf1.2 —, b2=25, df=25, n=3, n'=5, s=1, x0=1000).

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Panel(const char* panel, const ConfiguredProfile& conf) {
  struct Candidate {
    const char* label;
    ControllerFactoryFn factory;
  };
  const Candidate candidates[] = {
      {"constant gain", SwitchingFactory(conf, GainMode::kConstant)},
      {"adaptive gain", SwitchingFactory(conf, GainMode::kAdaptive)},
      {"hybrid", HybridFactory(conf)},
  };

  std::printf("--- Fig. 4(%s): %s (b1=%.0f) ---\n", panel,
              conf.profile->name().c_str(), conf.paper_b1);
  CsvWriter csv({"step", "constant", "adaptive", "hybrid"});
  std::vector<std::vector<double>> series;
  // Through the unified execution interface: the same factories run
  // unchanged on EventSimBackend/EmpiricalBackend for cross-validation.
  ProfileBackend backend = ProfileBackend::FromConfiguration(conf);
  for (const Candidate& candidate : candidates) {
    Result<RepeatedRunSummary> summary =
        RunRepeated(candidate.factory, backend, 10, OptionsFor(conf).seed);
    if (!summary.ok()) std::exit(1);
    std::printf("%-14s (steps every 2): %s\n", candidate.label,
                DecisionSeries(summary.value().mean_decision_per_step, 2)
                    .c_str());
    series.push_back(summary.value().mean_decision_per_step);
  }
  size_t len = series[0].size();
  for (const auto& s : series) len = std::min(len, s.size());
  for (size_t i = 0; i < len; ++i) {
    csv.AddNumericRow({static_cast<double>(i), series[0][i], series[1][i],
                       series[2][i]},
                      0);
  }
  std::printf("\n");
  MaybeDumpCsv(csv, std::string("fig4") + panel + "_decisions_" +
                        conf.profile->name());
}

void Run() {
  PrintHeader(
      "Figure 4",
      "average block-size decisions per adaptivity step, 10 runs, WAN "
      "configurations",
      "hybrid combines both: fewer oscillations than constant gain, "
      "accuracy comparable to the best of the two; adaptive gain may "
      "converge fast but stagnates (a) or oscillates/overshoots (b,c)");

  Panel("a", Conf1_1());
  Panel("b", Conf1_2());
  Panel("c", Conf1_3());
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
