// Reproduces paper Table II: the decisions and normalized response times
// of the model-based techniques — quadratic model Eq. (8) vs parabolic
// model Eq. (9) — on WAN-conf1.1, WAN-conf1.3, LAN-conf2.1, LAN-conf2.2,
// fitting 6 single-measurement samples evenly spread over the limits.
// Runs where the model fails to produce a useful fit (picking a limit)
// are reported separately and excluded from the starred averages, like
// the paper's '*' annotations.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

struct ModelOutcome {
  RunningStats decision;
  RunningStats normalized;
  int failures = 0;
  int runs = 0;
};

ModelOutcome Evaluate(const ConfiguredProfile& conf,
                      IdentificationModel model, double optimum_ms) {
  ModelOutcome outcome;
  ModelBasedConfig config = PaperModelBasedConfig();
  config.model = model;
  config.limits = conf.limits;

  for (int run = 0; run < 10; ++run) {
    SimOptions options = OptionsFor(conf);
    options.seed = options.seed + static_cast<uint64_t>(run) * 104729;
    SimEngine engine(options);
    ModelBasedController controller(config);
    Result<SimRunResult> result =
        engine.RunQuery(&controller, *conf.profile);
    if (!result.ok()) std::exit(1);
    ++outcome.runs;

    Result<IdentifiedModel> identified = controller.identified_model();
    if (!identified.ok() || identified.value().failed) {
      ++outcome.failures;
      continue;  // excluded from the starred averages, as in the paper
    }
    outcome.decision.Add(static_cast<double>(identified.value().optimum));
    outcome.normalized.Add(result.value().total_time_ms / optimum_ms);
  }
  return outcome;
}

void Run() {
  PrintHeader(
      "Table II",
      "model-based decisions and normalized response times (10 runs; "
      "failed identifications excluded and counted; '*' rows had "
      "failures)",
      "quadratic wins on the WAN configs (decision ~13K, <=1.03x); "
      "parabolic wins on the LAN configs; parabolic fails in some "
      "conf1.x/conf2.2 runs; neither model wins everywhere");

  TextTable table({"config", "Eq.(8) block", "Eq.(8) time", "Eq.(8) fail",
                   "Eq.(9) block", "Eq.(9) time", "Eq.(9) fail"});
  CsvWriter csv({"config", "quad_block", "quad_norm", "quad_failures",
                 "para_block", "para_norm", "para_failures"});

  const ConfiguredProfile confs[] = {Conf1_1(), Conf1_3(), Conf2_1(),
                                     Conf2_2()};
  for (const ConfiguredProfile& conf : confs) {
    const GroundTruth gt = GroundTruthFor(conf, /*runs=*/10);
    const ModelOutcome quad =
        Evaluate(conf, IdentificationModel::kQuadratic, gt.optimum_mean_ms);
    const ModelOutcome para =
        Evaluate(conf, IdentificationModel::kParabolic, gt.optimum_mean_ms);

    auto cell = [](const RunningStats& stats, int precision,
                   bool starred) -> std::string {
      if (stats.count() == 0) return "n/a";
      return FormatDouble(stats.mean(), precision) + (starred ? "*" : "");
    };

    table.AddRow({conf.profile->name(),
                  cell(quad.decision, 0, quad.failures > 0),
                  cell(quad.normalized, 3, quad.failures > 0),
                  std::to_string(quad.failures) + "/10",
                  cell(para.decision, 0, para.failures > 0),
                  cell(para.normalized, 3, para.failures > 0),
                  std::to_string(para.failures) + "/10"});
    csv.AddRow({conf.profile->name(), FormatDouble(quad.decision.mean(), 0),
                FormatDouble(quad.normalized.mean(), 4),
                std::to_string(quad.failures),
                FormatDouble(para.decision.mean(), 0),
                FormatDouble(para.normalized.mean(), 4),
                std::to_string(para.failures)});
  }
  std::printf("%s", table.ToString().c_str());
  MaybeDumpCsv(csv, "table2_model_based");
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
