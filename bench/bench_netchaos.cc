// Network-chaos benchmark: the full live stack pulling TPC-H customer
// through the in-process ChaosProxy under a ladder of transport fault
// presets, with frame integrity (CRC32C) and liveness heartbeats
// negotiated. Every run must drain its query exactly once — the bench
// exits non-zero on any lost or duplicated tuple — so the numbers it
// emits are the cost of *surviving* the fault, not of ignoring it.
//
// Flags (besides the standard BenchSession set):
//   --runs=R         queries per preset (default 3)
//   --scale=S        TPC-H scale of the served table (default 0.01)
//   --controller=C   controller per run (factory name, default "hybrid")
//
// Presets exercised: none (proxy transparency tax), latency, trickle,
// corrupt (CRC-triggered retries). The full 8-preset matrix lives in
// the netchaos conformance tests; the bench keeps the subset whose
// wall time is dominated by transfer, not by scripted dead air.
//
// A preamble leg runs the "none" preset with the CRC trailer off and
// on and prints the integrity overhead; it is informational only.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "wsq/fault/net_fault_plan.h"
#include "wsq/net/chaosproxy.h"

namespace wsq {
namespace {

struct NetChaosFlags {
  int runs = 3;
  double scale = 0.01;
  std::string controller = "hybrid";
};

void ParseNetChaosFlags(int argc, char** argv, NetChaosFlags* flags) {
  auto value_of = [&](const char* name, int i) -> const char* {
    const size_t n = std::strlen(name);
    if (std::strncmp(argv[i], name, n) != 0) return nullptr;
    if (argv[i][n] == '=') return argv[i] + n + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of("--runs", i)) flags->runs = std::atoi(v);
    if (const char* v = value_of("--scale", i)) flags->scale = std::atof(v);
    if (const char* v = value_of("--controller", i)) flags->controller = v;
  }
  if (flags->runs < 1) flags->runs = 1;
}

struct PresetOutcome {
  int ok_runs = 0;
  int failed_runs = 0;
  int64_t retries = 0;
  double total_ms = 0.0;
  std::string first_error;
};

/// R queries through `setup` (already pointed at a proxy), each on a
/// fresh controller and connection, gated on exact tuple delivery.
PresetOutcome RunPreset(const LiveSetup& setup, const NetChaosFlags& flags,
                        const ResilienceConfig* resilience,
                        int64_t expected_tuples, uint64_t seed_base,
                        bool record_timings) {
  PresetOutcome out;
  LiveBackend backend(setup);
  for (int run = 0; run < flags.runs; ++run) {
    Result<std::unique_ptr<Controller>> controller =
        ControllerFactory::FromName(flags.controller);
    if (!controller.ok()) {
      out.failed_runs++;
      out.first_error = controller.status().ToString();
      return out;
    }
    RunSpec spec;
    spec.seed = seed_base + static_cast<uint64_t>(run) + 1;
    spec.resilience = resilience;
    const auto start = std::chrono::steady_clock::now();
    Result<RunTrace> trace = backend.RunQuery(controller.value().get(), spec);
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - start;
    if (!trace.ok()) {
      out.failed_runs++;
      if (out.first_error.empty()) out.first_error = trace.status().ToString();
      continue;
    }
    Status consistent = trace.value().CheckConsistent();
    if (!consistent.ok()) {
      out.failed_runs++;
      if (out.first_error.empty()) out.first_error = consistent.ToString();
      continue;
    }
    if (trace.value().total_tuples != expected_tuples) {
      out.failed_runs++;
      if (out.first_error.empty()) {
        out.first_error = "exactly-once violated: got " +
                          std::to_string(trace.value().total_tuples) +
                          " tuples, expected " +
                          std::to_string(expected_tuples);
      }
      continue;
    }
    out.ok_runs++;
    out.retries += trace.value().total_retries;
    out.total_ms += wall.count();
    if (record_timings) {
      if (exec::RunTimings* timings = exec::GlobalRunTimings()) {
        timings->RecordRunMs(wall.count());
      }
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  bench::BenchSession session(argc, argv);
  NetChaosFlags flags;
  ParseNetChaosFlags(argc, argv, &flags);

  bench::PrintHeader(
      "netchaos",
      "live queries through the in-process chaos proxy under transport "
      "fault presets, CRC32C + heartbeats negotiated, exactly-once gated",
      "every run drains exactly once under every preset; corruption is "
      "caught by the frame trailer and ridden out as retries");

  // The wsqd under test: binary+lz offer, no server-side faults — all
  // chaos in this bench is injected at the transport by the proxy.
  TpchGenOptions gen;
  gen.scale = flags.scale;
  gen.seed = 7;
  std::shared_ptr<Table> customer = GenerateCustomer(gen).value();
  Dbms dbms;
  if (Status s = dbms.RegisterTable(customer); !s.ok()) {
    std::fprintf(stderr, "table registration failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  DataService service(&dbms);
  LoadModelConfig load;
  load.noise_sigma = 0.0;
  ServiceContainer container(&service, load, 7);
  net::WsqServerOptions server_options;
  server_options.codec =
      codec::CodecChoice{codec::CodecKind::kBinary, /*compress_blocks=*/true};
  net::WsqServer server(&container, std::move(server_options));
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const int64_t expected_tuples =
      static_cast<int64_t>(customer->num_rows());
  std::printf("in-process wsqd on 127.0.0.1:%d (scale=%g, %lld rows)\n",
              server.port(), flags.scale,
              static_cast<long long>(expected_tuples));

  LiveSetup base;
  base.host = "127.0.0.1";
  base.query.table_name = "customer";
  base.client_options.codec = session.wire_codec();
  base.client_options.enable_crc = true;
  base.client_options.enable_liveness = true;
  ResilienceConfig chaos = session.ChaosResilience();
  std::printf("wire codec: %s (crc + live)\n\n",
              session.wire_codec().ToString().c_str());

  // Preamble: the integrity tax. Same transparent proxy path, trailer
  // off vs on — informational, not gated, not in the perf summary.
  {
    net::ChaosProxyOptions proxy_options;
    proxy_options.upstream_port = server.port();
    net::ChaosProxy proxy(std::move(proxy_options));
    if (Status s = proxy.Start(); !s.ok()) {
      std::fprintf(stderr, "proxy start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    LiveSetup setup = base;
    setup.port = proxy.port();
    setup.client_options.enable_crc = false;
    PresetOutcome off = RunPreset(setup, flags, &chaos, expected_tuples,
                                  /*seed_base=*/9000,
                                  /*record_timings=*/false);
    setup.client_options.enable_crc = true;
    PresetOutcome on = RunPreset(setup, flags, &chaos, expected_tuples,
                                 /*seed_base=*/9100,
                                 /*record_timings=*/false);
    if (off.ok_runs > 0 && on.ok_runs > 0) {
      const double off_ms = off.total_ms / off.ok_runs;
      const double on_ms = on.total_ms / on.ok_runs;
      std::printf("crc trailer overhead on a clean wire: %.2f ms -> %.2f ms "
                  "per query (%.1f%%)\n\n",
                  off_ms, on_ms, (on_ms / off_ms - 1.0) * 100.0);
    }
    proxy.Stop();
  }

  // The ladder: each preset gets its own proxy; every timed run feeds
  // the --bench-json summary.
  const std::vector<std::string> presets = {"none", "latency", "trickle",
                                            "corrupt"};
  int failures = 0;
  TextTable table({"preset", "ok", "failed", "retries", "mean_ms"});
  for (size_t p = 0; p < presets.size(); ++p) {
    Result<NetFaultPlan> plan = NetFaultPlan::FromName(presets[p]);
    if (!plan.ok()) {
      std::fprintf(stderr, "bad preset %s: %s\n", presets[p].c_str(),
                   plan.status().ToString().c_str());
      return 1;
    }
    net::ChaosProxyOptions proxy_options;
    proxy_options.upstream_port = server.port();
    proxy_options.plan = std::move(plan).value();
    net::ChaosProxy proxy(std::move(proxy_options));
    if (Status s = proxy.Start(); !s.ok()) {
      std::fprintf(stderr, "proxy start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    LiveSetup setup = base;
    setup.port = proxy.port();
    PresetOutcome out = RunPreset(setup, flags, &chaos, expected_tuples,
                                  /*seed_base=*/(p + 1) * 1000,
                                  /*record_timings=*/true);
    proxy.Stop();
    failures += out.failed_runs;
    table.AddRow({presets[p], std::to_string(out.ok_runs),
                  std::to_string(out.failed_runs),
                  std::to_string(out.retries),
                  out.ok_runs > 0
                      ? FormatDouble(out.total_ms / out.ok_runs, 2)
                      : "-"});
    if (!out.first_error.empty()) {
      std::fprintf(stderr, "preset %s first error: %s\n", presets[p].c_str(),
                   out.first_error.c_str());
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  server.Stop();
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d run(s) failed\n", failures);
    return 1;
  }
  std::printf("all %zu presets x %d runs drained exactly once\n",
              presets.size(), flags.runs);
  return 0;
}

}  // namespace
}  // namespace wsq

int main(int argc, char** argv) { return wsq::Main(argc, argv); }
