// Reproduces paper Fig. 9: the behavior of the *enhanced* model-based
// techniques on conf2.2 — the quadratic LS estimate (which misses the
// global optimum there) used as the starting block size of a constant-,
// adaptive-, or hybrid-gain controller.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Figure 9",
      "decisions of model-based (quadratic) + {fixed, constant, adaptive, "
      "hybrid} continuations on conf2.2 (optimum ~7.5K), 8 runs",
      "plain model-based parks off-optimum; +adaptive gets stuck; "
      "+constant reaches the global optimum but oscillates; +hybrid "
      "reaches it and suppresses the oscillation");

  const ConfiguredProfile conf = Conf2_2();
  const GroundTruth gt = GroundTruthFor(conf, /*runs=*/8);

  struct Candidate {
    const char* label;
    Continuation continuation;
  };
  const Candidate candidates[] = {
      {"model based", Continuation::kFixed},
      {"model based + constant gain", Continuation::kConstantGain},
      {"model based + adaptive gain", Continuation::kAdaptiveGain},
      {"model based + hybrid gain", Continuation::kHybrid},
  };

  CsvWriter csv({"step", "fixed", "constant", "adaptive", "hybrid"});
  std::vector<std::vector<double>> series;
  for (const Candidate& candidate : candidates) {
    Result<RepeatedRunSummary> summary = RunRepeated(
        SelfTuningFactory(conf, IdentificationModel::kQuadratic,
                          candidate.continuation),
        *conf.profile, 8, OptionsFor(conf));
    if (!summary.ok()) std::exit(1);
    std::printf("%-28s: %s\n  final size %.0f, normalized %.2f\n",
                candidate.label,
                DecisionSeries(summary.value().mean_decision_per_step, 5)
                    .c_str(),
                summary.value().final_block_size.mean(),
                summary.value().NormalizedMean(gt.optimum_mean_ms));
    series.push_back(summary.value().mean_decision_per_step);
  }

  size_t len = series[0].size();
  for (const auto& s : series) len = std::min(len, s.size());
  for (size_t i = 0; i < len; ++i) {
    csv.AddNumericRow({static_cast<double>(i), series[0][i], series[1][i],
                       series[2][i], series[3][i]},
                      0);
  }
  MaybeDumpCsv(csv, "fig9_enhanced_model_based");
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
