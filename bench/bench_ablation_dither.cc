// Ablation: the dither factor df. The dither keeps probing the block
// size space so a moving optimum stays detectable; too much dither is
// steady-state noise. Evaluated both on a static profile and on a
// drifting one.

#include "bench/bench_util.h"

namespace wsq::bench {
namespace {

void Run() {
  PrintHeader(
      "Ablation: dither factor df",
      "hybrid normalized response time vs df, static and drifting "
      "optimum (drift sigma 0.01/block), 10 runs",
      "df=0 is fine statically but under drift the controller goes "
      "blind; moderate df (the paper's 25) tracks; huge df only adds "
      "noise");

  const ConfiguredProfile conf = Conf2_2();
  const GroundTruth gt = GroundTruthFor(conf);

  TextTable table({"scenario", "df=0", "df=25", "df=100", "df=400"});
  for (double drift : {0.0, 0.01}) {
    std::vector<double> row;
    for (double df : {0.0, 25.0, 100.0, 400.0}) {
      auto factory = [conf, df]() {
        HybridConfig config = PaperHybridConfig();
        config.base = BaseFor(conf, GainMode::kConstant);
        config.base.dither_factor = df;
        return std::unique_ptr<Controller>(new HybridController(config));
      };
      SimOptions options = OptionsFor(conf);
      options.drift_sigma = drift;
      Result<RepeatedRunSummary> summary =
          RunRepeated(factory, *conf.profile, 10, options);
      if (!summary.ok()) std::exit(1);
      row.push_back(summary.value().NormalizedMean(gt.optimum_mean_ms));
    }
    table.AddNumericRow(drift == 0.0 ? "static optimum" : "drifting optimum",
                        row, 3);
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace wsq::bench

int main(int argc, char** argv) {
  wsq::bench::BenchSession session(argc, argv);
  wsq::bench::Run();
  return 0;
}
