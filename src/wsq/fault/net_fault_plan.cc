#include "wsq/fault/net_fault_plan.h"

namespace wsq {

bool NetFaultPlan::empty() const {
  return latency_ms == 0.0 && jitter_ms == 0.0 &&
         bandwidth_bytes_per_sec == 0.0 && trickle_bytes == 0 &&
         reset_after_bytes < 0 && blackhole_connections == 0 &&
         (drop_direction == NetDropDirection::kNone ||
          drop_connections == 0) &&
         corrupt_probability == 0.0;
}

Status NetFaultPlan::Validate() const {
  if (latency_ms < 0.0 || jitter_ms < 0.0) {
    return Status::InvalidArgument("net fault plan '" + name +
                                   "': latency/jitter must be >= 0");
  }
  if (bandwidth_bytes_per_sec < 0.0) {
    return Status::InvalidArgument("net fault plan '" + name +
                                   "': bandwidth cap must be >= 0");
  }
  if (trickle_bytes > 0 && trickle_interval_ms < 0.0) {
    return Status::InvalidArgument("net fault plan '" + name +
                                   "': trickle interval must be >= 0");
  }
  if (max_resets < 0 || blackhole_connections < 0 || drop_connections < 0 ||
      corrupt_max < 0) {
    return Status::InvalidArgument("net fault plan '" + name +
                                   "': budgets must be >= 0");
  }
  if (corrupt_probability < 0.0 || corrupt_probability > 1.0) {
    return Status::InvalidArgument(
        "net fault plan '" + name +
        "': corrupt probability must be in [0, 1]");
  }
  if (drop_connections > 0 && drop_direction == NetDropDirection::kNone) {
    return Status::InvalidArgument(
        "net fault plan '" + name +
        "': drop_connections set but drop_direction is none");
  }
  return Status::Ok();
}

Result<NetFaultPlan> NetFaultPlan::FromName(std::string_view name) {
  NetFaultPlan plan;
  plan.name = std::string(name);
  if (name == "none") {
    return plan;
  }
  if (name == "latency") {
    plan.latency_ms = 15.0;
    plan.jitter_ms = 10.0;
    return plan;
  }
  if (name == "bandwidth") {
    plan.bandwidth_bytes_per_sec = 64.0 * 1024.0;
    return plan;
  }
  if (name == "trickle") {
    plan.trickle_bytes = 512;
    plan.trickle_interval_ms = 2.0;
    return plan;
  }
  if (name == "reset") {
    // Lands mid-frame for any multi-KiB block response; the budget
    // guarantees the retry path eventually relays clean.
    plan.reset_after_bytes = 6000;
    plan.max_resets = 4;
    return plan;
  }
  if (name == "blackhole") {
    plan.blackhole_connections = 2;
    return plan;
  }
  if (name == "halfopen") {
    plan.drop_direction = NetDropDirection::kToClient;
    plan.drop_connections = 2;
    return plan;
  }
  if (name == "corrupt") {
    plan.corrupt_probability = 0.2;
    plan.corrupt_max = 6;
    plan.corrupt_skip_bytes = 512;
    return plan;
  }
  return Status::InvalidArgument("unknown net fault plan '" +
                                 std::string(name) + "'");
}

std::vector<std::string> NetFaultPlan::KnownNames() {
  return {"none",      "latency",  "bandwidth", "trickle",
          "reset",     "blackhole", "halfopen",  "corrupt"};
}

}  // namespace wsq
