#ifndef WSQ_FAULT_EXCHANGE_PLAYER_H_
#define WSQ_FAULT_EXCHANGE_PLAYER_H_

#include <cstdint>

#include "wsq/fault/fault_injector.h"
#include "wsq/fault/resilience_policy.h"
#include "wsq/obs/run_observer.h"

namespace wsq {

/// Outcome of replaying the injected-fault attempt sequence of one block
/// exchange in virtual time (the simulated backends' path; the empirical
/// stack interleaves real WsClient calls and has its own loop in
/// BlockFetcher, but charges identical costs — that is the cross-backend
/// accounting invariant documented in run_trace.h).
struct ExchangePlay {
  /// False when the retry budget was exhausted before an attempt got
  /// through; the run must fail with kUnavailable.
  bool completed = true;
  /// Failed attempts that were retried (== injected failures when
  /// completed).
  int64_t retries = 0;
  /// Dead time of the failed attempts: per-kind (deadline-capped) fault
  /// costs plus backoff. Charged to the run total, never to the block.
  double dead_time_ms = 0.0;
  /// Perturbation to apply to the completed exchange (identity when the
  /// plan leaves this block alone or the exchange never completed).
  SuccessPerturbation perturbation;
};

/// Replays injected failures for one block request of `block_size`
/// tuples starting at run-clock `now_ms`: failed attempts accrue their
/// capped cost plus backoff into `dead_time_ms` until the injector lets
/// an attempt through or `policy`'s retry budget is exhausted. On a
/// completed exchange the injector's success perturbation is fetched.
/// Fault, retry, and breaker events are emitted into `observer` (may be
/// null) with timestamps `ts_micros_base` + accrued dead time.
///
/// `injector` may be null (no plan): returns an immediate clean
/// completion. `policy` must be non-null whenever `injector` is set.
ExchangePlay PlayExchange(FaultInjector* injector, ResiliencePolicy* policy,
                          int64_t block_index, double now_ms,
                          int64_t block_size, RunObserver* observer,
                          int64_t ts_micros_base);

/// Drains `policy`'s pending breaker transitions into `observer`.
/// Callers invoke it after GovernNextSize (PlayExchange drains the ones
/// its own failure/success notifications caused). Null-safe on both.
void EmitBreakerTransitions(ResiliencePolicy* policy, RunObserver* observer,
                            int64_t ts_micros);

}  // namespace wsq

#endif  // WSQ_FAULT_EXCHANGE_PLAYER_H_
