#ifndef WSQ_FAULT_FAULT_PLAN_H_
#define WSQ_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wsq/common/status.h"

namespace wsq {

/// The fault taxonomy the chaos layer can script. The first three are
/// *failure* kinds — the exchange does not complete and the client pays a
/// kind-specific dead time before it may retry. The last two are
/// *perturbation* kinds — the exchange completes, but slower.
enum class FaultKind {
  /// The request (or its response) is silently lost; the client notices
  /// only when its timeout fires. Costs FaultPlan::timeout_ms.
  kUnavailability = 0,
  /// The transport connection is torn down mid-exchange; the client
  /// notices quickly. Costs FaultPlan::reset_cost_ms.
  kConnectionReset,
  /// The service answers promptly, but with a transient SOAP fault.
  /// Costs FaultPlan::fault_response_ms. Unlike an *organic* SOAP fault
  /// (kRemoteFault, never retried), an injected burst models a transient
  /// server-side condition and is retried like any failed exchange.
  kSoapFaultBurst,
  /// The exchange completes but its wire time is scaled/extended by
  /// FaultSpec::latency_multiplier / latency_add_ms.
  kLatencySpike,
  /// The server pauses FaultSpec::stall_ms before answering; the
  /// exchange completes.
  kServerStall,
};

/// Canonical lowercase name of `kind` (e.g. "unavailability").
std::string_view FaultKindName(FaultKind kind);

/// True for the kinds whose injection makes the exchange fail
/// (unavailability, reset, soap-fault burst).
bool IsFailureKind(FaultKind kind);

/// One scripted fault source. A spec is *active* for a given exchange
/// when both its block window and its time window match; an unset
/// dimension (the defaults) always matches, so plans can address faults
/// by block index, by sim time, or both.
struct FaultSpec {
  FaultKind kind = FaultKind::kUnavailability;

  /// Block-index window [first_block, last_block], inclusive;
  /// last_block < 0 means "through the end of the query".
  int64_t first_block = 0;
  int64_t last_block = -1;

  /// Sim-time window [start_ms, end_ms); start_ms < 0 disables the time
  /// constraint, end_ms < 0 leaves the window open-ended. The reference
  /// clock is each backend's own run clock (sim time for the simulators,
  /// the SimClock for the empirical stack), measured from run start.
  double start_ms = -1.0;
  double end_ms = -1.0;

  /// Probability that an active spec fires on a given attempt (failure
  /// kinds) or block (perturbation kinds). 1.0 = deterministic.
  double probability = 1.0;

  /// Failure kinds only: at most this many attempts are failed per
  /// block by this spec, so a bounded retry budget can always drain the
  /// burst. Perturbation kinds ignore it (they fire at most once per
  /// block).
  int faults_per_block = 1;

  /// kLatencySpike knobs: completed-exchange time becomes
  /// `time * latency_multiplier + latency_add_ms`.
  double latency_multiplier = 1.0;
  double latency_add_ms = 0.0;

  /// kServerStall knob: the server sits on the request this long before
  /// answering.
  double stall_ms = 0.0;
};

/// A deterministic, seedable schedule of fault events, honored
/// identically by all three backends (RunSpec::fault_plan). The costs of
/// failed exchanges are part of the plan — not of any backend — which is
/// what makes the cross-backend accounting invariant testable: a failed
/// exchange costs the same dead time no matter which stack replays it.
struct FaultPlan {
  /// Display name ("burst", "flaky", ... or "custom").
  std::string name = "custom";

  std::vector<FaultSpec> specs;

  /// Dead time charged for one injected kUnavailability attempt — the
  /// client-side timeout.
  double timeout_ms = 500.0;
  /// Dead time charged for one injected kConnectionReset attempt.
  double reset_cost_ms = 20.0;
  /// Dead time charged for one injected kSoapFaultBurst attempt (the
  /// fault response still makes a round trip).
  double fault_response_ms = 50.0;

  /// Plan-level seed, combined with the per-run seed (see
  /// FaultStreamSeed) so probabilistic specs draw from per-run
  /// deterministic streams.
  uint64_t seed = 0;

  bool empty() const { return specs.empty(); }

  /// Dead time one injected failed attempt of `kind` costs the client
  /// (timeout_ms / reset_cost_ms / fault_response_ms); 0 for
  /// perturbation kinds, which never fail an attempt.
  double FailureCostMs(FaultKind kind) const;

  /// Validates ranges (probabilities in [0,1], positive costs, sane
  /// windows). Backends call this before building an injector.
  Status Validate() const;

  /// Looks up a named preset: "none" (empty plan), "burst"
  /// (deterministic unavailability bursts deep enough to exhaust the
  /// legacy 2-retry budget), "latency", "stall", "flaky" (probabilistic
  /// mixed faults), "outage" (a long unavailability window), "resets".
  static Result<FaultPlan> FromName(std::string_view name);

  /// The preset names FromName accepts, for --help text.
  static std::vector<std::string> KnownNames();
};

/// One entry of the injector's fault event log — the artifact the chaos
/// conformance suite compares across backends: for a shared plan, all
/// three backends must produce the identical sequence.
struct InjectedFault {
  int64_t block_index = 0;
  FaultKind kind = FaultKind::kUnavailability;

  friend bool operator==(const InjectedFault& a, const InjectedFault& b) {
    return a.block_index == b.block_index && a.kind == b.kind;
  }
  friend bool operator!=(const InjectedFault& a, const InjectedFault& b) {
    return !(a == b);
  }
};

/// The per-run RNG stream seed for a plan: mixes the plan seed with the
/// run seed (itself `base + run * 104729` under the repeated-run
/// harness) so every parallel lane replays the same stream as the serial
/// path — fault plans compose with the exec engine for free.
uint64_t FaultStreamSeed(const FaultPlan& plan, uint64_t run_seed);

}  // namespace wsq

#endif  // WSQ_FAULT_FAULT_PLAN_H_
