#ifndef WSQ_FAULT_NET_FAULT_PLAN_H_
#define WSQ_FAULT_NET_FAULT_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wsq/common/status.h"

namespace wsq {

/// Which direction of a proxied connection a half-open fault silences.
enum class NetDropDirection : uint8_t {
  kNone = 0,
  /// Client→server bytes vanish: the server never sees the request; the
  /// client's deadline fires.
  kToUpstream,
  /// Server→client bytes vanish: the server answers into the void; the
  /// client's deadline fires while the server believes all is well — the
  /// classic half-open connection.
  kToClient,
};

/// A deterministic, seedable schedule of *transport* faults, injected by
/// net::ChaosProxy below the framing layer — the byte-stream sibling of
/// fault::FaultPlan (which scripts application-level exchange faults).
/// Where FaultPlan decides "this exchange fails", a NetFaultPlan decides
/// "these bytes arrive late / garbled / never", and the protocol has to
/// discover that for itself: that is exactly the class of failure the
/// CRC, heartbeat, and deadline machinery exists to convert into
/// retryable faults.
///
/// All knobs default off; an empty plan makes the proxy a transparent
/// byte-identical relay. Failure knobs carry *budgets* (max counts,
/// first-N-connections scopes) so a conformance query behind the proxy
/// deterministically completes once the budget is spent — mirroring
/// FaultSpec::faults_per_block's "a bounded retry budget can always
/// drain the burst" contract.
struct NetFaultPlan {
  /// Display name ("latency", "trickle", ... or "custom").
  std::string name = "custom";

  /// Plan-level seed for the proxy's RNG stream (jitter draws,
  /// corruption positions). Same plan + same traffic ⇒ same faults.
  uint64_t seed = 0;

  /// --- Perturbations (both directions, all connections) -------------

  /// Base added latency per forwarded chunk, plus a uniform jitter in
  /// [0, jitter_ms). Models WAN propagation + queueing delay.
  double latency_ms = 0.0;
  double jitter_ms = 0.0;

  /// Bandwidth cap in bytes/second (0 = unlimited): each pipe meters
  /// its release times so sustained throughput never exceeds the cap.
  double bandwidth_bytes_per_sec = 0.0;

  /// Slow-loris trickle: forwarded data is re-chunked into pieces of at
  /// most `trickle_bytes`, released `trickle_interval_ms` apart
  /// (trickle_bytes = 0 disables). Exercises every partial-read path in
  /// the framing layer.
  size_t trickle_bytes = 0;
  double trickle_interval_ms = 0.0;

  /// --- Failures (budgeted) ------------------------------------------

  /// After a connection has relayed this many bytes (both directions
  /// combined), both sides are reset hard (RST, not FIN) — landing
  /// mid-frame for any realistic frame size. -1 disables.
  int64_t reset_after_bytes = -1;
  /// Total RSTs the proxy may inject across its lifetime (0 = no limit
  /// while reset_after_bytes is set). Once spent, connections relay
  /// cleanly — the retry path is guaranteed to eventually win.
  int max_resets = 0;

  /// The first N accepted connections are black holes: accepted, never
  /// connected upstream, all client bytes silently discarded, nothing
  /// ever written back. The client's only defense is its deadline.
  int blackhole_connections = 0;

  /// The first N accepted connections after the blackhole budget have
  /// `drop_direction` silenced (half-open); later connections relay
  /// both ways.
  NetDropDirection drop_direction = NetDropDirection::kNone;
  int drop_connections = 0;

  /// Per-forwarded-chunk probability of flipping one byte (position and
  /// value drawn from the seeded stream).
  double corrupt_probability = 0.0;
  /// Total corruptions budget across the proxy lifetime (0 = no limit
  /// while corrupt_probability > 0).
  int corrupt_max = 0;
  /// Leave the first N bytes of each direction of each connection
  /// intact — a handshake window, so corruption exercises the CRC-
  /// protected data phase rather than the (un-checksummed) Hello
  /// exchange whose garbling would be indistinguishable from a
  /// non-wsq peer.
  size_t corrupt_skip_bytes = 0;

  bool empty() const;

  /// Validates ranges (probabilities in [0,1], non-negative budgets and
  /// delays). The proxy calls this at Start().
  Status Validate() const;

  /// Looks up a named preset: "none" (transparent relay), "latency"
  /// (WAN delay + jitter), "bandwidth" (64 KiB/s cap), "trickle"
  /// (slow-loris), "reset" (mid-frame RSTs, budget 4), "blackhole"
  /// (first 2 connections accepted-then-silent), "halfopen" (first 2
  /// connections lose the server→client direction), "corrupt"
  /// (probabilistic byte flips, budget 6, handshake window skipped).
  static Result<NetFaultPlan> FromName(std::string_view name);

  /// The preset names FromName accepts, for --help text.
  static std::vector<std::string> KnownNames();
};

}  // namespace wsq

#endif  // WSQ_FAULT_NET_FAULT_PLAN_H_
