#include "wsq/fault/fault_plan.h"

#include <utility>

namespace wsq {
namespace {

/// splitmix64 finalizer — a cheap, well-mixed 64-bit hash used to derive
/// independent fault streams from (plan seed, run seed) pairs.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

FaultSpec Unavailability(int64_t first, int64_t last, int per_block) {
  FaultSpec spec;
  spec.kind = FaultKind::kUnavailability;
  spec.first_block = first;
  spec.last_block = last;
  spec.faults_per_block = per_block;
  return spec;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kUnavailability:
      return "unavailability";
    case FaultKind::kConnectionReset:
      return "connection_reset";
    case FaultKind::kSoapFaultBurst:
      return "soap_fault";
    case FaultKind::kLatencySpike:
      return "latency_spike";
    case FaultKind::kServerStall:
      return "server_stall";
  }
  return "unknown";
}

bool IsFailureKind(FaultKind kind) {
  switch (kind) {
    case FaultKind::kUnavailability:
    case FaultKind::kConnectionReset:
    case FaultKind::kSoapFaultBurst:
      return true;
    case FaultKind::kLatencySpike:
    case FaultKind::kServerStall:
      return false;
  }
  return false;
}

double FaultPlan::FailureCostMs(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kUnavailability:
      return timeout_ms;
    case FaultKind::kConnectionReset:
      return reset_cost_ms;
    case FaultKind::kSoapFaultBurst:
      return fault_response_ms;
    case FaultKind::kLatencySpike:
    case FaultKind::kServerStall:
      return 0.0;
  }
  return 0.0;
}

Status FaultPlan::Validate() const {
  if (timeout_ms <= 0.0) {
    return Status::InvalidArgument("FaultPlan.timeout_ms must be > 0");
  }
  if (reset_cost_ms <= 0.0) {
    return Status::InvalidArgument("FaultPlan.reset_cost_ms must be > 0");
  }
  if (fault_response_ms <= 0.0) {
    return Status::InvalidArgument("FaultPlan.fault_response_ms must be > 0");
  }
  for (const FaultSpec& spec : specs) {
    if (spec.first_block < 0) {
      return Status::InvalidArgument("FaultSpec.first_block must be >= 0");
    }
    if (spec.last_block >= 0 && spec.last_block < spec.first_block) {
      return Status::InvalidArgument(
          "FaultSpec.last_block must be >= first_block (or < 0 for open)");
    }
    if (spec.start_ms >= 0.0 && spec.end_ms >= 0.0 &&
        spec.end_ms < spec.start_ms) {
      return Status::InvalidArgument(
          "FaultSpec.end_ms must be >= start_ms (or < 0 for open)");
    }
    if (spec.probability < 0.0 || spec.probability > 1.0) {
      return Status::InvalidArgument(
          "FaultSpec.probability must be in [0, 1]");
    }
    if (spec.faults_per_block < 0) {
      return Status::InvalidArgument(
          "FaultSpec.faults_per_block must be >= 0");
    }
    if (spec.latency_multiplier <= 0.0) {
      return Status::InvalidArgument(
          "FaultSpec.latency_multiplier must be > 0");
    }
    if (spec.latency_add_ms < 0.0) {
      return Status::InvalidArgument("FaultSpec.latency_add_ms must be >= 0");
    }
    if (spec.stall_ms < 0.0) {
      return Status::InvalidArgument("FaultSpec.stall_ms must be >= 0");
    }
  }
  return Status::Ok();
}

Result<FaultPlan> FaultPlan::FromName(std::string_view name) {
  FaultPlan plan;
  plan.name = std::string(name);
  if (name == "none") {
    return plan;
  }
  if (name == "burst") {
    // Deterministic unavailability bursts: three lost exchanges in a row
    // on each block of two windows. The legacy policy (2 retries = 3
    // attempts) dies on the first burst block; a budget of >= 3 retries
    // drains it.
    plan.specs.push_back(Unavailability(2, 5, /*per_block=*/3));
    plan.specs.push_back(Unavailability(12, 15, /*per_block=*/3));
    return plan;
  }
  if (name == "latency") {
    FaultSpec spike;
    spike.kind = FaultKind::kLatencySpike;
    spike.first_block = 2;
    spike.last_block = 9;
    spike.latency_multiplier = 3.0;
    spike.latency_add_ms = 25.0;
    plan.specs.push_back(spike);
    return plan;
  }
  if (name == "stall") {
    FaultSpec stall;
    stall.kind = FaultKind::kServerStall;
    stall.first_block = 4;
    stall.last_block = 7;
    stall.stall_ms = 200.0;
    plan.specs.push_back(stall);
    return plan;
  }
  if (name == "flaky") {
    // Probabilistic background flakiness across the whole run.
    FaultSpec drop = Unavailability(0, -1, /*per_block=*/2);
    drop.probability = 0.2;
    plan.specs.push_back(drop);
    FaultSpec reset;
    reset.kind = FaultKind::kConnectionReset;
    reset.last_block = -1;
    reset.probability = 0.1;
    plan.specs.push_back(reset);
    FaultSpec spike;
    spike.kind = FaultKind::kLatencySpike;
    spike.last_block = -1;
    spike.probability = 0.15;
    spike.latency_multiplier = 2.0;
    plan.specs.push_back(spike);
    return plan;
  }
  if (name == "outage") {
    // A sim-time-addressed outage: every exchange attempted inside the
    // window is lost. The client escapes by paying timeouts until its
    // clock passes end_ms — or dies trying, if its retry budget is
    // shallower than the window.
    FaultSpec outage = Unavailability(0, -1, /*per_block=*/8);
    outage.start_ms = 200.0;
    outage.end_ms = 1500.0;
    plan.specs.push_back(outage);
    return plan;
  }
  if (name == "resets") {
    FaultSpec reset;
    reset.kind = FaultKind::kConnectionReset;
    reset.first_block = 1;
    reset.last_block = 6;
    reset.faults_per_block = 2;
    plan.specs.push_back(reset);
    return plan;
  }
  return Status::NotFound("unknown fault plan: " + std::string(name));
}

std::vector<std::string> FaultPlan::KnownNames() {
  return {"none", "burst", "latency", "stall", "flaky", "outage", "resets"};
}

uint64_t FaultStreamSeed(const FaultPlan& plan, uint64_t run_seed) {
  return Mix64(plan.seed ^ Mix64(run_seed));
}

}  // namespace wsq
