#ifndef WSQ_FAULT_RESILIENCE_POLICY_H_
#define WSQ_FAULT_RESILIENCE_POLICY_H_

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "wsq/common/random.h"
#include "wsq/common/status.h"

namespace wsq {

/// Client-side resilience knobs, replacing the fixed
/// `max_retries_per_call`. The defaults reproduce the historical
/// behavior exactly: 2 retries, no backoff, no deadline, breaker off —
/// so a default-constructed config is byte-compatible with pre-existing
/// runs.
struct ResilienceConfig {
  /// Failed exchanges retried per call before the fetch gives up with
  /// kUnavailable. (Attempts = 1 + max_retries_per_call.)
  int max_retries_per_call = 2;

  /// Exponential backoff between retries, charged to the run clock so
  /// traces stay reproducible: retry k (1-based) sleeps
  /// `min(backoff_max_ms, backoff_initial_ms * backoff_multiplier^(k-1))`
  /// scaled by a deterministic jitter factor drawn uniformly from
  /// [1 - backoff_jitter, 1 + backoff_jitter). 0 = no backoff.
  double backoff_initial_ms = 0.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 5000.0;
  double backoff_jitter = 0.0;

  /// Per-call deadline scaled to the requested block size:
  /// `deadline_base_ms + deadline_per_tuple_ms * block_size`. A failed
  /// exchange's dead time is capped at the deadline (the client gives up
  /// waiting sooner than the full timeout). Both 0 = no deadline.
  double deadline_base_ms = 0.0;
  double deadline_per_tuple_ms = 0.0;

  /// Circuit breaker: after `breaker_threshold` *consecutive* failed
  /// exchanges the breaker opens and the pull loop degrades to
  /// `breaker_fallback_size` (a conservative fixed block size) instead
  /// of trusting the adaptive controller. After
  /// `breaker_cooldown_blocks` degraded blocks it half-opens: one probe
  /// block at the controller's commanded size — success closes the
  /// breaker, another failure reopens it. 0 = breaker off.
  int breaker_threshold = 0;
  int64_t breaker_fallback_size = 500;
  int breaker_cooldown_blocks = 4;

  /// Mixed with the run seed for the jitter stream (see
  /// ResiliencePolicy), so parallel lanes replay the serial schedule.
  uint64_t seed = 0;

  Status Validate() const;

  /// The pre-PR behavior, spelled out (equals the defaults).
  static ResilienceConfig Legacy() { return ResilienceConfig{}; }

  /// An opinionated chaos-survival config used by the conformance suite
  /// and the `--fault-plan=` bench mode: deep retry budget, gentle
  /// backoff, breaker on.
  static ResilienceConfig Chaos();
};

/// Circuit-breaker states, classic semantics.
enum class BreakerState {
  kClosed = 0,   // normal operation, controller in command
  kOpen,         // degraded: conservative fixed block size
  kHalfOpen,     // probing: one block at the controller's size
};

std::string_view BreakerStateName(BreakerState state);

/// Per-run resilience state machine: retry budget, backoff schedule,
/// deadline capping, and the circuit breaker. Deterministic for a given
/// (config, run_seed); not thread-safe — one policy per run, like the
/// FaultInjector.
///
/// Call protocol per exchange attempt: on failure call
/// `OnExchangeFailure()` then, if retrying, charge `BackoffMs(k)` to the
/// clock; on a completed exchange call `OnExchangeSuccess()`. Once per
/// block, after the controller commands the next size, pass it through
/// `GovernNextSize()`. Breaker transitions latch and are drained with
/// `ConsumeTransition` so callers can emit them to the obs layer.
class ResiliencePolicy {
 public:
  /// `config` is copied; it must already be Validate()d.
  ResiliencePolicy(const ResilienceConfig& config, uint64_t run_seed);

  const ResilienceConfig& config() const { return config_; }
  int max_retries() const { return config_.max_retries_per_call; }

  /// Backoff charged before retry `retry_index` (1-based). Draws the
  /// jitter factor from the policy's private stream — call exactly once
  /// per retry, in retry order, to keep runs reproducible.
  double BackoffMs(int retry_index);

  /// Caps a failed exchange's dead time at the per-call deadline for a
  /// request of `block_size` tuples. Identity when no deadline is set.
  double CapCostMs(double cost_ms, int64_t block_size) const;

  /// Whether a deadline is configured (callers may skip plumbing caps
  /// into their transport when it is not).
  bool HasDeadline() const {
    return config_.deadline_base_ms > 0.0 ||
           config_.deadline_per_tuple_ms > 0.0;
  }
  double DeadlineMs(int64_t block_size) const;

  void OnExchangeFailure();
  void OnExchangeSuccess();

  /// Governs the controller's commanded next size through the breaker:
  /// open -> the conservative fallback size; half-open probe and closed
  /// -> the controller's size. Call once per block decision.
  int64_t GovernNextSize(int64_t controller_size);

  BreakerState breaker_state() const { return state_; }
  /// Times the breaker transitioned into kOpen.
  int64_t breaker_trips() const { return trips_; }
  int consecutive_failures() const { return consecutive_failures_; }

  /// Pops the oldest unconsumed breaker transition; false when none.
  bool ConsumeTransition(BreakerState* from, BreakerState* to);

 private:
  void TransitionTo(BreakerState next);

  ResilienceConfig config_;
  Random rng_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int open_blocks_ = 0;
  int64_t trips_ = 0;
  std::vector<std::pair<BreakerState, BreakerState>> pending_transitions_;
};

}  // namespace wsq

#endif  // WSQ_FAULT_RESILIENCE_POLICY_H_
