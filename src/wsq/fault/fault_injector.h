#ifndef WSQ_FAULT_FAULT_INJECTOR_H_
#define WSQ_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "wsq/common/random.h"
#include "wsq/fault/fault_plan.h"

namespace wsq {

/// The injector's verdict for one exchange attempt.
struct AttemptFault {
  /// True when the attempt must fail before reaching the server.
  bool faulted = false;
  FaultKind kind = FaultKind::kUnavailability;
  /// Dead time the client pays for the failed attempt (from the plan's
  /// per-kind costs). Resilience deadlines may cap it further.
  double cost_ms = 0.0;
};

/// The injector's perturbation of one *completed* exchange: the
/// exchange's elapsed time becomes
/// `elapsed * latency_multiplier + latency_add_ms + stall_ms`.
/// Backends with a real server model may account stall_ms server-side
/// instead of lumping it into the wire time; the total is the same.
struct SuccessPerturbation {
  double latency_multiplier = 1.0;
  double latency_add_ms = 0.0;
  double stall_ms = 0.0;

  bool active() const {
    return latency_multiplier != 1.0 || latency_add_ms != 0.0 ||
           stall_ms != 0.0;
  }
  double Apply(double elapsed_ms) const {
    return elapsed_ms * latency_multiplier + latency_add_ms + stall_ms;
  }
};

/// Replays a FaultPlan for one run. Backends consult it at two points of
/// every exchange: `NextAttempt` *before* the exchange (may fail it) and
/// `OnSuccess` after a completed one (may slow it). All randomness comes
/// from a private stream derived via FaultStreamSeed(plan, run_seed), so
/// a given (plan, seed) pair replays the identical fault sequence on any
/// backend and any parallel lane — the injector's `log()` is the
/// artifact the chaos conformance suite compares byte-for-byte.
///
/// Not thread-safe; one injector per run.
class FaultInjector {
 public:
  /// Block index backends pass for exchanges that are not part of any
  /// data block (session open/close). Those are never script-faulted —
  /// plans address data transfer, not session management.
  static constexpr int64_t kSessionCall = -1;

  /// `plan` is copied; it must already be Validate()d.
  FaultInjector(const FaultPlan& plan, uint64_t run_seed);

  /// Decides the fate of the next exchange attempt for `block_index` at
  /// run-clock time `now_ms`. A returned fault is appended to log().
  /// Per-spec per-block budgets (FaultSpec::faults_per_block) bound how
  /// many attempts of one block a spec may fail.
  AttemptFault NextAttempt(int64_t block_index, double now_ms);

  /// Perturbation for the completed exchange of `block_index`. Each
  /// matching perturbation spec fires at most once per block and is
  /// appended to log().
  SuccessPerturbation OnSuccess(int64_t block_index, double now_ms);

  const FaultPlan& plan() const { return plan_; }

  /// Every fault injected so far, in injection order.
  const std::vector<InjectedFault>& log() const { return log_; }

  int64_t faults_injected() const {
    return static_cast<int64_t>(log_.size());
  }

 private:
  bool SpecMatches(const FaultSpec& spec, int64_t block_index,
                   double now_ms) const;
  void EnterBlock(int64_t block_index);

  FaultPlan plan_;
  Random rng_;
  int64_t current_block_ = -2;
  /// Per-spec counters of faults injected into the current block.
  std::vector<int> fired_this_block_;
  std::vector<InjectedFault> log_;
};

}  // namespace wsq

#endif  // WSQ_FAULT_FAULT_INJECTOR_H_
