#include "wsq/fault/resilience_policy.h"

#include <algorithm>

namespace wsq {
namespace {

/// splitmix64 finalizer (same construction as FaultStreamSeed): derives
/// the jitter stream from (config seed, run seed) without coupling this
/// translation unit to fault_plan.h.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

Status ResilienceConfig::Validate() const {
  if (max_retries_per_call < 0) {
    return Status::InvalidArgument("max_retries_per_call must be >= 0");
  }
  if (backoff_initial_ms < 0.0) {
    return Status::InvalidArgument("backoff_initial_ms must be >= 0");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument("backoff_multiplier must be >= 1");
  }
  if (backoff_max_ms <= 0.0) {
    return Status::InvalidArgument("backoff_max_ms must be > 0");
  }
  if (backoff_jitter < 0.0 || backoff_jitter >= 1.0) {
    return Status::InvalidArgument("backoff_jitter must be in [0, 1)");
  }
  if (deadline_base_ms < 0.0 || deadline_per_tuple_ms < 0.0) {
    return Status::InvalidArgument("deadline terms must be >= 0");
  }
  if (breaker_threshold < 0) {
    return Status::InvalidArgument("breaker_threshold must be >= 0");
  }
  if (breaker_fallback_size < 1) {
    return Status::InvalidArgument("breaker_fallback_size must be >= 1");
  }
  if (breaker_cooldown_blocks < 0) {
    return Status::InvalidArgument("breaker_cooldown_blocks must be >= 0");
  }
  return Status::Ok();
}

ResilienceConfig ResilienceConfig::Chaos() {
  ResilienceConfig config;
  config.max_retries_per_call = 6;
  config.backoff_initial_ms = 10.0;
  config.backoff_multiplier = 2.0;
  config.backoff_max_ms = 1000.0;
  config.backoff_jitter = 0.25;
  config.deadline_base_ms = 2000.0;
  config.deadline_per_tuple_ms = 0.5;
  config.breaker_threshold = 3;
  config.breaker_fallback_size = 500;
  config.breaker_cooldown_blocks = 3;
  return config;
}

ResiliencePolicy::ResiliencePolicy(const ResilienceConfig& config,
                                   uint64_t run_seed)
    : config_(config), rng_(Mix64(config.seed ^ Mix64(run_seed))) {}

double ResiliencePolicy::BackoffMs(int retry_index) {
  if (config_.backoff_initial_ms <= 0.0 || retry_index < 1) return 0.0;
  double backoff = config_.backoff_initial_ms;
  for (int k = 1; k < retry_index && backoff < config_.backoff_max_ms; ++k) {
    backoff *= config_.backoff_multiplier;
  }
  backoff = std::min(backoff, config_.backoff_max_ms);
  if (config_.backoff_jitter > 0.0) {
    backoff *= rng_.Uniform(1.0 - config_.backoff_jitter,
                            1.0 + config_.backoff_jitter);
  }
  return backoff;
}

double ResiliencePolicy::DeadlineMs(int64_t block_size) const {
  return config_.deadline_base_ms +
         config_.deadline_per_tuple_ms * static_cast<double>(block_size);
}

double ResiliencePolicy::CapCostMs(double cost_ms, int64_t block_size) const {
  if (!HasDeadline()) return cost_ms;
  return std::min(cost_ms, DeadlineMs(block_size));
}

void ResiliencePolicy::TransitionTo(BreakerState next) {
  if (next == state_) return;
  pending_transitions_.emplace_back(state_, next);
  if (next == BreakerState::kOpen) {
    ++trips_;
    open_blocks_ = 0;
  }
  state_ = next;
}

void ResiliencePolicy::OnExchangeFailure() {
  ++consecutive_failures_;
  if (config_.breaker_threshold <= 0) return;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: back to degraded operation.
    TransitionTo(BreakerState::kOpen);
  } else if (state_ == BreakerState::kClosed &&
             consecutive_failures_ >= config_.breaker_threshold) {
    TransitionTo(BreakerState::kOpen);
  }
}

void ResiliencePolicy::OnExchangeSuccess() {
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    TransitionTo(BreakerState::kClosed);
  }
}

int64_t ResiliencePolicy::GovernNextSize(int64_t controller_size) {
  if (config_.breaker_threshold <= 0) return controller_size;
  switch (state_) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return controller_size;
    case BreakerState::kOpen:
      if (open_blocks_ >= config_.breaker_cooldown_blocks) {
        // Cooldown served: probe one block at the controller's size.
        TransitionTo(BreakerState::kHalfOpen);
        return controller_size;
      }
      ++open_blocks_;
      return config_.breaker_fallback_size;
  }
  return controller_size;
}

bool ResiliencePolicy::ConsumeTransition(BreakerState* from,
                                         BreakerState* to) {
  if (pending_transitions_.empty()) return false;
  *from = pending_transitions_.front().first;
  *to = pending_transitions_.front().second;
  pending_transitions_.erase(pending_transitions_.begin());
  return true;
}

}  // namespace wsq
