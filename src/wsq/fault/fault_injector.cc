#include "wsq/fault/fault_injector.h"

namespace wsq {

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t run_seed)
    : plan_(plan),
      rng_(FaultStreamSeed(plan, run_seed)),
      fired_this_block_(plan.specs.size(), 0) {}

bool FaultInjector::SpecMatches(const FaultSpec& spec, int64_t block_index,
                                double now_ms) const {
  if (block_index < spec.first_block) return false;
  if (spec.last_block >= 0 && block_index > spec.last_block) return false;
  if (spec.start_ms >= 0.0) {
    if (now_ms < spec.start_ms) return false;
    if (spec.end_ms >= 0.0 && now_ms >= spec.end_ms) return false;
  }
  return true;
}

void FaultInjector::EnterBlock(int64_t block_index) {
  if (block_index == current_block_) return;
  current_block_ = block_index;
  fired_this_block_.assign(plan_.specs.size(), 0);
}

AttemptFault FaultInjector::NextAttempt(int64_t block_index, double now_ms) {
  AttemptFault result;
  if (block_index < 0 || plan_.empty()) return result;
  EnterBlock(block_index);
  for (size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (!IsFailureKind(spec.kind)) continue;
    if (fired_this_block_[i] >= spec.faults_per_block) continue;
    if (!SpecMatches(spec, block_index, now_ms)) continue;
    if (spec.probability < 1.0 && !rng_.Bernoulli(spec.probability)) continue;
    ++fired_this_block_[i];
    result.faulted = true;
    result.kind = spec.kind;
    result.cost_ms = plan_.FailureCostMs(spec.kind);
    log_.push_back({block_index, spec.kind});
    return result;
  }
  return result;
}

SuccessPerturbation FaultInjector::OnSuccess(int64_t block_index,
                                             double now_ms) {
  SuccessPerturbation perturbation;
  if (block_index < 0 || plan_.empty()) return perturbation;
  EnterBlock(block_index);
  for (size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (IsFailureKind(spec.kind)) continue;
    // Perturbations fire at most once per block.
    if (fired_this_block_[i] >= 1) continue;
    if (!SpecMatches(spec, block_index, now_ms)) continue;
    if (spec.probability < 1.0 && !rng_.Bernoulli(spec.probability)) continue;
    ++fired_this_block_[i];
    perturbation.latency_multiplier *= spec.latency_multiplier;
    perturbation.latency_add_ms += spec.latency_add_ms;
    perturbation.stall_ms += spec.stall_ms;
    log_.push_back({block_index, spec.kind});
  }
  return perturbation;
}

}  // namespace wsq
