#include "wsq/fault/exchange_player.h"

#include <cmath>

namespace wsq {
namespace {

int64_t Micros(int64_t base, double offset_ms) {
  return base + static_cast<int64_t>(std::llround(offset_ms * 1000.0));
}

}  // namespace

void EmitBreakerTransitions(ResiliencePolicy* policy, RunObserver* observer,
                            int64_t ts_micros) {
  if (policy == nullptr) return;
  BreakerState from, to;
  while (policy->ConsumeTransition(&from, &to)) {
    if (observer != nullptr) {
      observer->OnBreakerTransition(ts_micros, BreakerStateName(from),
                                    BreakerStateName(to));
    }
  }
}

ExchangePlay PlayExchange(FaultInjector* injector, ResiliencePolicy* policy,
                          int64_t block_index, double now_ms,
                          int64_t block_size, RunObserver* observer,
                          int64_t ts_micros_base) {
  ExchangePlay play;
  if (injector == nullptr) return play;
  const int max_retries = policy != nullptr ? policy->max_retries() : 0;
  while (true) {
    const double attempt_now = now_ms + play.dead_time_ms;
    const AttemptFault fault =
        injector->NextAttempt(block_index, attempt_now);
    if (!fault.faulted) break;
    double cost = fault.cost_ms;
    if (policy != nullptr) cost = policy->CapCostMs(cost, block_size);
    if (observer != nullptr) {
      observer->OnFaultInjected(Micros(ts_micros_base, play.dead_time_ms),
                                FaultKindName(fault.kind), block_index, cost);
    }
    play.dead_time_ms += cost;
    if (policy != nullptr) {
      policy->OnExchangeFailure();
      EmitBreakerTransitions(policy, observer,
                             Micros(ts_micros_base, play.dead_time_ms));
    }
    if (play.retries >= max_retries) {
      // Budget exhausted: the failed attempt still cost its dead time,
      // but there is no retry to charge backoff for.
      play.completed = false;
      return play;
    }
    ++play.retries;
    if (policy != nullptr) {
      play.dead_time_ms +=
          policy->BackoffMs(static_cast<int>(play.retries));
    }
    if (observer != nullptr) {
      observer->OnRetry(Micros(ts_micros_base, play.dead_time_ms), cost);
    }
  }
  play.perturbation =
      injector->OnSuccess(block_index, now_ms + play.dead_time_ms);
  if (play.perturbation.active() && observer != nullptr) {
    // Perturbation faults were appended to the injector's log; surface
    // them on the fault lane too (cost rides inside the block span).
    observer->OnFaultInjected(Micros(ts_micros_base, play.dead_time_ms),
                              play.perturbation.stall_ms > 0.0
                                  ? FaultKindName(FaultKind::kServerStall)
                                  : FaultKindName(FaultKind::kLatencySpike),
                              block_index, 0.0);
  }
  if (policy != nullptr) {
    policy->OnExchangeSuccess();
    EmitBreakerTransitions(policy, observer,
                           Micros(ts_micros_base, play.dead_time_ms));
  }
  return play;
}

}  // namespace wsq
