#include "wsq/obs/json_lite.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace wsq {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  // %.17g round-trips doubles; trim to a plain integer token when exact
  // so counters read naturally.
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

namespace {

/// Minimal recursive-descent JSON syntax checker (RFC 8259).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  Status Check() {
    WSQ_RETURN_IF_ERROR(Value());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after the top-level value");
    }
    return Status::Ok();
  }

 private:
  Status Fail(std::string_view what) const {
    return Status::InvalidArgument("json at offset " + std::to_string(pos_) +
                                   ": " + std::string(what));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return Status::Ok();
  }

  Status String() {
    if (!Eat('"')) return Fail("expected string");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Fail("bad escape character");
        }
      }
    }
    return Fail("unterminated string");
  }

  Status NumberToken() {
    const size_t start = pos_;
    Eat('-');
    if (!Eat('0')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Eat('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected fraction digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected exponent digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) return Fail("expected number");
    return Status::Ok();
  }

  Status Value() {
    if (++depth_ > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    Status status;
    switch (text_[pos_]) {
      case '{':
        status = Object();
        break;
      case '[':
        status = Array();
        break;
      case '"':
        status = String();
        break;
      case 't':
        status = Literal("true");
        break;
      case 'f':
        status = Literal("false");
        break;
      case 'n':
        status = Literal("null");
        break;
      default:
        status = NumberToken();
    }
    --depth_;
    return status;
  }

  Status Object() {
    Eat('{');
    SkipWhitespace();
    if (Eat('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      WSQ_RETURN_IF_ERROR(String());
      SkipWhitespace();
      if (!Eat(':')) return Fail("expected ':' in object");
      WSQ_RETURN_IF_ERROR(Value());
      SkipWhitespace();
      if (Eat('}')) return Status::Ok();
      if (!Eat(',')) return Fail("expected ',' or '}' in object");
    }
  }

  Status Array() {
    Eat('[');
    SkipWhitespace();
    if (Eat(']')) return Status::Ok();
    while (true) {
      WSQ_RETURN_IF_ERROR(Value());
      SkipWhitespace();
      if (Eat(']')) return Status::Ok();
      if (!Eat(',')) return Fail("expected ',' or ']' in array");
    }
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

/// Scans one JSON string literal starting at `pos` (which must point at
/// the opening quote of pre-validated JSON) and returns its raw content.
std::string_view ScanString(std::string_view text, size_t* pos) {
  const size_t start = ++*pos;  // skip opening quote
  while (text[*pos] != '"') {
    if (text[*pos] == '\\') ++*pos;
    ++*pos;
  }
  std::string_view body = text.substr(start, *pos - start);
  ++*pos;  // closing quote
  return body;
}

void SkipWs(std::string_view text, size_t* pos) {
  while (*pos < text.size() &&
         (text[*pos] == ' ' || text[*pos] == '\t' || text[*pos] == '\n' ||
          text[*pos] == '\r')) {
    ++*pos;
  }
}

/// Skips one pre-validated JSON value starting at `pos`.
void SkipValue(std::string_view text, size_t* pos) {
  SkipWs(text, pos);
  const char c = text[*pos];
  if (c == '"') {
    ScanString(text, pos);
    return;
  }
  if (c == '{' || c == '[') {
    const char close = c == '{' ? '}' : ']';
    int depth = 0;
    while (*pos < text.size()) {
      const char cur = text[*pos];
      if (cur == '"') {
        ScanString(text, pos);
        continue;
      }
      if (cur == c) ++depth;
      if (cur == close && --depth == 0) {
        ++*pos;
        return;
      }
      ++*pos;
    }
    return;
  }
  while (*pos < text.size() && text[*pos] != ',' && text[*pos] != '}' &&
         text[*pos] != ']') {
    ++*pos;
  }
}

/// One event object: checks the required Chrome trace-event members.
Status CheckEventObject(std::string_view event, size_t index) {
  const auto fail = [index](std::string_view what) {
    return Status::InvalidArgument("traceEvents[" + std::to_string(index) +
                                   "]: " + std::string(what));
  };
  bool has_name = false, has_ph = false, has_ts = false, has_pid = false,
       has_tid = false, has_dur = false;
  std::string phase;

  size_t pos = 0;
  SkipWs(event, &pos);
  if (pos >= event.size() || event[pos] != '{') {
    return fail("event is not an object");
  }
  ++pos;
  SkipWs(event, &pos);
  if (pos < event.size() && event[pos] == '}') {
    return fail("event object is empty");
  }
  while (pos < event.size()) {
    SkipWs(event, &pos);
    const std::string_view key = ScanString(event, &pos);
    SkipWs(event, &pos);
    ++pos;  // ':'
    SkipWs(event, &pos);
    if (key == "name") {
      has_name = true;
    } else if (key == "ph") {
      has_ph = true;
      if (event[pos] == '"') {
        size_t p = pos;
        phase = std::string(ScanString(event, &p));
      }
    } else if (key == "ts") {
      has_ts = true;
    } else if (key == "pid") {
      has_pid = true;
    } else if (key == "tid") {
      has_tid = true;
    } else if (key == "dur") {
      has_dur = true;
    }
    SkipValue(event, &pos);
    SkipWs(event, &pos);
    if (pos < event.size() && event[pos] == ',') {
      ++pos;
      continue;
    }
    break;
  }
  if (!has_name) return fail("missing \"name\"");
  if (!has_ph) return fail("missing \"ph\"");
  if (!has_ts) return fail("missing \"ts\"");
  if (!has_pid) return fail("missing \"pid\"");
  if (!has_tid) return fail("missing \"tid\"");
  if (phase == "X" && !has_dur) {
    return fail("complete event (ph=X) missing \"dur\"");
  }
  return Status::Ok();
}

}  // namespace

Status CheckJson(std::string_view text) {
  return JsonChecker(text).Check();
}

Status CheckChromeTrace(std::string_view text) {
  WSQ_RETURN_IF_ERROR(CheckJson(text));

  // The document is now known to be well-formed; walk the top level.
  size_t pos = 0;
  SkipWs(text, &pos);
  if (pos >= text.size() || text[pos] != '{') {
    return Status::InvalidArgument("chrome trace: top level is not an object");
  }
  ++pos;
  SkipWs(text, &pos);
  while (pos < text.size() && text[pos] != '}') {
    const std::string_view key = ScanString(text, &pos);
    SkipWs(text, &pos);
    ++pos;  // ':'
    SkipWs(text, &pos);
    if (key != "traceEvents") {
      SkipValue(text, &pos);
      SkipWs(text, &pos);
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        SkipWs(text, &pos);
      }
      continue;
    }
    if (text[pos] != '[') {
      return Status::InvalidArgument("chrome trace: traceEvents not an array");
    }
    ++pos;
    SkipWs(text, &pos);
    size_t index = 0;
    while (pos < text.size() && text[pos] != ']') {
      const size_t start = pos;
      SkipValue(text, &pos);
      WSQ_RETURN_IF_ERROR(
          CheckEventObject(text.substr(start, pos - start), index));
      ++index;
      SkipWs(text, &pos);
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        SkipWs(text, &pos);
      }
    }
    return Status::Ok();
  }
  return Status::InvalidArgument("chrome trace: missing \"traceEvents\"");
}

}  // namespace wsq
