#include "wsq/obs/state_snapshot.h"

#include <cstdio>
#include <cstdlib>

#include "wsq/obs/json_lite.h"

namespace wsq {

void StateSnapshot::Add(std::string_view key, std::string_view value) {
  entries_.emplace_back(std::string(key), std::string(value));
}

void StateSnapshot::Add(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  entries_.emplace_back(std::string(key), buf);
}

void StateSnapshot::Add(std::string_view key, int64_t value) {
  entries_.emplace_back(std::string(key), std::to_string(value));
}

void StateSnapshot::Append(const StateSnapshot& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

const std::string* StateSnapshot::Find(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<double> StateSnapshot::Number(std::string_view key) const {
  const std::string* value = Find(key);
  if (value == nullptr) {
    return Status::NotFound("no snapshot entry named '" + std::string(key) +
                            "'");
  }
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    return Status::InvalidArgument("snapshot entry '" + std::string(key) +
                                   "' is not numeric: " + *value);
  }
  return parsed;
}

std::string StateSnapshot::ToJsonObject() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : entries_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(key);
    out += "\":\"";
    out += JsonEscape(value);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace wsq
