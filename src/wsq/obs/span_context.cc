#include "wsq/obs/span_context.h"

#include <algorithm>

namespace wsq {
namespace {

void PutU64(char* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((v >> (56 - 8 * i)) & 0xff);
  }
}

uint64_t GetU64(const char* in) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(in);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint64_t>(p[i]);
  }
  return v;
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>(v & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  PutU64(buf, v);
  out->append(buf, sizeof(buf));
}

}  // namespace

void EncodeTraceContext(const TraceContext& context,
                        char out[kTraceContextBytes]) {
  PutU64(out, context.trace_id);
  PutU64(out + 8, context.span_id);
  PutU64(out + 16, context.clock_micros);
}

TraceContext DecodeTraceContext(const char in[kTraceContextBytes]) {
  TraceContext context;
  context.trace_id = GetU64(in);
  context.span_id = GetU64(in + 8);
  context.clock_micros = GetU64(in + 16);
  return context;
}

std::string EncodeRemoteSpans(const std::vector<RemoteSpan>& spans) {
  const size_t count = std::min(spans.size(), kMaxRemoteSpansPerFrame);
  std::string out;
  out.reserve(2 + count * 40);
  PutU16(&out, static_cast<uint16_t>(count));
  for (size_t i = 0; i < count; ++i) {
    const RemoteSpan& span = spans[i];
    AppendU64(&out, span.span_id);
    AppendU64(&out, span.parent_span_id);
    AppendU64(&out, static_cast<uint64_t>(span.ts_micros));
    AppendU64(&out, static_cast<uint64_t>(span.dur_micros));
    const size_t name_len =
        std::min(span.name.size(), kMaxRemoteSpanNameBytes);
    out.push_back(static_cast<char>(name_len));
    out.append(span.name.data(), name_len);
  }
  return out;
}

Result<std::vector<RemoteSpan>> DecodeRemoteSpans(std::string_view data) {
  if (data.size() > kMaxRemoteSpanBytes) {
    return Status::InvalidArgument(
        "span block of " + std::to_string(data.size()) +
        " bytes exceeds the " + std::to_string(kMaxRemoteSpanBytes) +
        "-byte limit");
  }
  if (data.size() < 2) {
    return Status::InvalidArgument("span block shorter than its count field");
  }
  const size_t count =
      (static_cast<size_t>(static_cast<unsigned char>(data[0])) << 8) |
      static_cast<size_t>(static_cast<unsigned char>(data[1]));
  if (count > kMaxRemoteSpansPerFrame) {
    return Status::InvalidArgument(
        "span count " + std::to_string(count) + " exceeds the per-frame cap");
  }
  size_t at = 2;
  std::vector<RemoteSpan> spans;
  spans.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Fixed part: span_id, parent, ts, dur (4 x u64) + name length (u8).
    if (data.size() - at < 33) {
      return Status::InvalidArgument("span block truncated mid-span");
    }
    RemoteSpan span;
    span.span_id = GetU64(data.data() + at);
    span.parent_span_id = GetU64(data.data() + at + 8);
    span.ts_micros = static_cast<int64_t>(GetU64(data.data() + at + 16));
    span.dur_micros = static_cast<int64_t>(GetU64(data.data() + at + 24));
    const size_t name_len =
        static_cast<size_t>(static_cast<unsigned char>(data[at + 32]));
    at += 33;
    if (data.size() - at < name_len) {
      return Status::InvalidArgument("span block truncated mid-name");
    }
    span.name.assign(data.data() + at, name_len);
    at += name_len;
    spans.push_back(std::move(span));
  }
  if (at != data.size()) {
    return Status::InvalidArgument("trailing bytes after the last span");
  }
  return spans;
}

void ClockOffsetEstimator::AddSample(int64_t t1_micros, int64_t t2_micros,
                                     int64_t server_t2_micros,
                                     int64_t service_micros) {
  const int64_t rtt = t2_micros - t1_micros;
  if (rtt <= 0 || service_micros < 0 || service_micros > rtt) return;
  const int64_t uncertainty = rtt - service_micros;  // total wire time
  ++samples_;
  if (has_offset_ && uncertainty >= uncertainty_micros_) return;
  const int64_t server_t1 = server_t2_micros - service_micros;
  offset_micros_ =
      ((server_t1 - t1_micros) + (server_t2_micros - t2_micros)) / 2;
  uncertainty_micros_ = uncertainty;
  has_offset_ = true;
}

}  // namespace wsq
