#include "wsq/obs/thread_shard.h"

#include <atomic>

namespace wsq {
namespace {

std::atomic<int> g_next_ordinal{0};

}  // namespace

int ThreadShardOrdinal() {
  thread_local const int ordinal =
      g_next_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

int ThreadShardIndex() {
  thread_local const int shard = ThreadShardOrdinal() % kMetricShards;
  return shard;
}

}  // namespace wsq
