#ifndef WSQ_OBS_SPAN_CONTEXT_H_
#define WSQ_OBS_SPAN_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wsq/common/status.h"

namespace wsq {

/// The trace context one framed exchange carries across the wire: which
/// distributed trace the request belongs to (`trace_id`), which client
/// span issued it (`span_id` — the parent of every server-side span the
/// exchange produces), and the sender's clock reading at frame-encode
/// time (`clock_micros` — the raw material of the clock-offset
/// estimator; each peer stamps its *own* clock domain).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t clock_micros = 0;

  bool operator==(const TraceContext& other) const {
    return trace_id == other.trace_id && span_id == other.span_id &&
           clock_micros == other.clock_micros;
  }
};

/// Fixed wire size of an encoded TraceContext (three big-endian u64s).
inline constexpr size_t kTraceContextBytes = 24;

void EncodeTraceContext(const TraceContext& context,
                        char out[kTraceContextBytes]);
TraceContext DecodeTraceContext(const char in[kTraceContextBytes]);

/// One server-side span shipped back piggybacked on a response frame.
/// Timestamps are in the *server's* clock domain; the client aligns them
/// onto its own timeline with a ClockOffsetEstimator before emitting
/// them into a Tracer. `dur_micros == 0` marks an instant (replay-cache
/// hit, injected fault) rather than a region.
struct RemoteSpan {
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  int64_t ts_micros = 0;
  int64_t dur_micros = 0;
  std::string name;

  bool operator==(const RemoteSpan& other) const {
    return span_id == other.span_id &&
           parent_span_id == other.parent_span_id &&
           ts_micros == other.ts_micros && dur_micros == other.dur_micros &&
           name == other.name;
  }
};

/// Hostile-input caps, enforced symmetrically: EncodeRemoteSpans refuses
/// to build what DecodeRemoteSpans would reject, so a well-behaved peer
/// can never emit a span block the other side must drop.
inline constexpr size_t kMaxRemoteSpansPerFrame = 1024;
inline constexpr size_t kMaxRemoteSpanBytes = 256 * 1024;
inline constexpr size_t kMaxRemoteSpanNameBytes = 255;

/// Serializes spans for the response frame's span extension: a u16
/// count, then per span two u64 ids, two i64 timestamps and a
/// length-prefixed name (u8 + bytes), all big-endian. Spans past the
/// per-frame cap are dropped (telemetry is best-effort; the response
/// payload must never be), as are names past the name cap (truncated).
std::string EncodeRemoteSpans(const std::vector<RemoteSpan>& spans);

/// Bounds-checked decode; kInvalidArgument on truncation, a count
/// beyond the cap, or trailing garbage. Never reads past `data`.
Result<std::vector<RemoteSpan>> DecodeRemoteSpans(std::string_view data);

/// NTP-style clock-offset estimator for one client/server pair.
///
/// Each completed exchange gives four readings: the client clock at
/// send (t1) and receive (t2), the server clock at response-encode time
/// (T2), and the measured server residence (service_micros). The server
/// receive time is then T1 = T2 - service_micros, and the RTT-midpoint
/// offset estimate is
///
///     theta = ((T1 - t1) + (T2 - t2)) / 2
///
/// with uncertainty bounded by the wire time (t2 - t1) - service_micros:
/// the estimate can be off by at most half of however asymmetric the
/// two wire legs were. The estimator keeps the minimum-uncertainty
/// sample seen so far (the classic NTP filter), so one fast exchange
/// pins the offset however noisy the rest of the run is.
class ClockOffsetEstimator {
 public:
  /// Folds in one exchange. Samples with non-positive RTT or a residence
  /// reading exceeding the RTT (clock skew artifacts) are ignored.
  void AddSample(int64_t t1_micros, int64_t t2_micros,
                 int64_t server_t2_micros, int64_t service_micros);

  bool has_offset() const { return has_offset_; }

  /// Best estimate of (server clock - client clock), micros.
  int64_t offset_micros() const { return offset_micros_; }

  /// Wire time of the best sample — the bound on the estimate's error.
  int64_t uncertainty_micros() const { return uncertainty_micros_; }

  int64_t samples() const { return samples_; }

  /// Maps a server-clock timestamp onto the client timeline (identity
  /// until the first sample lands).
  int64_t ToClientMicros(int64_t server_micros) const {
    return server_micros - offset_micros_;
  }

 private:
  bool has_offset_ = false;
  int64_t offset_micros_ = 0;
  int64_t uncertainty_micros_ = 0;
  int64_t samples_ = 0;
};

}  // namespace wsq

#endif  // WSQ_OBS_SPAN_CONTEXT_H_
