#include "wsq/obs/run_observer.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "wsq/obs/json_lite.h"

namespace wsq {
namespace {

std::atomic<RunObserver*> g_global_observer{nullptr};
thread_local RunObserver* t_thread_observer = nullptr;

/// Block sizes live in [100, 20000] in the paper's experiments; decade
/// 1-2-5 bounds up to 100K cover them with useful resolution.
std::vector<double> BlockSizeBuckets() {
  std::vector<double> bounds;
  for (double decade = 100.0; decade <= 1e5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  return bounds;
}

/// Sub-millisecond resolution for per-tuple costs (typically 0.01-10 ms).
std::vector<double> PerTupleBuckets() {
  std::vector<double> bounds;
  for (double decade = 0.001; decade <= 100.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  return bounds;
}

/// Trace/span ids as fixed-width hex strings — the form trace viewers
/// and the correlation checks key on (JSON numbers would lose precision
/// past 2^53).
std::string HexId(uint64_t id) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

RunObserver::RunObserver(MetricsRegistry* metrics, Tracer* tracer)
    : metrics_(metrics), tracer_(tracer) {
  if (metrics_ != nullptr) {
    sessions_total_ = metrics_->GetCounter("wsq.pull.sessions_total");
    blocks_total_ = metrics_->GetCounter("wsq.pull.blocks_total");
    tuples_total_ = metrics_->GetCounter("wsq.pull.tuples_total");
    retries_total_ = metrics_->GetCounter("wsq.pull.retries_total");
    decisions_total_ = metrics_->GetCounter("wsq.controller.decisions_total");
    parses_total_ = metrics_->GetCounter("wsq.pull.parses_total");
    block_time_ms_ = metrics_->GetHistogram("wsq.pull.block_time_ms");
    block_size_ =
        metrics_->GetHistogram("wsq.pull.block_size", BlockSizeBuckets());
    per_tuple_ms_ =
        metrics_->GetHistogram("wsq.pull.per_tuple_ms", PerTupleBuckets());
    faults_total_ = metrics_->GetCounter("wsq.fault.injected_total");
    remote_spans_total_ = metrics_->GetCounter("wsq.server.remote_spans_total");
    breaker_transitions_total_ =
        metrics_->GetCounter("wsq.resilience.breaker_transitions_total");
    fault_cost_ms_ = metrics_->GetHistogram("wsq.fault.cost_ms");
    breaker_state_ = metrics_->GetGauge("wsq.resilience.breaker_state");
    net_transfer_ms_ = metrics_->GetHistogram("wsq.net.transfer_ms");
    server_residence_ms_ =
        metrics_->GetHistogram("wsq.server.residence_ms");
    queue_len_ = metrics_->GetGauge("wsq.server.queue_len");
    load_level_ = metrics_->GetGauge("wsq.server.load_level");
  }
  if (tracer_ != nullptr && tracer_->size() == 0) {
    tracer_->SetLaneName(TraceLane::kPullLoop, "pull loop");
    tracer_->SetLaneName(TraceLane::kNetwork, "network / server");
    tracer_->SetLaneName(TraceLane::kController, "controller");
    tracer_->SetLaneName(TraceLane::kServer, "server load");
    tracer_->SetLaneName(TraceLane::kFault, "faults");
    tracer_->SetLaneName(TraceLane::kRemoteServer, "wsqd server");
  }
}

void RunObserver::OnSessionOpen(int64_t ts_micros, int64_t dur_micros) {
  if (sessions_total_ != nullptr) sessions_total_->Increment();
  if (tracer_ != nullptr) {
    tracer_->AddComplete("session_open", "session", ts_micros, dur_micros,
                         TraceLane::kPullLoop);
  }
}

void RunObserver::OnSessionClose(int64_t ts_micros, int64_t dur_micros) {
  if (tracer_ != nullptr) {
    tracer_->AddComplete("session_close", "session", ts_micros, dur_micros,
                         TraceLane::kPullLoop);
  }
}

void RunObserver::OnBlock(int64_t ts_micros, int64_t dur_micros,
                          int64_t requested_size, int64_t received_tuples,
                          double per_tuple_ms, int64_t retries,
                          uint64_t trace_id, uint64_t span_id) {
  if (blocks_total_ != nullptr) {
    blocks_total_->Increment();
    tuples_total_->Increment(received_tuples);
    block_time_ms_->Record(static_cast<double>(dur_micros) / 1000.0);
    block_size_->Record(static_cast<double>(requested_size));
    per_tuple_ms_->Record(per_tuple_ms);
  }
  if (tracer_ != nullptr) {
    std::string args = "{\"requested\":" + std::to_string(requested_size) +
                       ",\"received\":" + std::to_string(received_tuples) +
                       ",\"per_tuple_ms\":" + JsonNumber(per_tuple_ms) +
                       ",\"retries\":" + std::to_string(retries);
    if (trace_id != 0) {
      args += ",\"trace_id\":\"" + HexId(trace_id) + "\",\"span_id\":\"" +
              HexId(span_id) + "\"";
    }
    args += '}';
    tracer_->AddComplete("block_request", "pull", ts_micros, dur_micros,
                         TraceLane::kPullLoop, std::move(args));
  }
}

void RunObserver::OnRemoteSpans(const std::vector<RemoteSpan>& spans,
                                uint64_t trace_id) {
  if (remote_spans_total_ != nullptr) {
    remote_spans_total_->Increment(static_cast<int64_t>(spans.size()));
  }
  if (tracer_ == nullptr) return;
  for (const RemoteSpan& span : spans) {
    std::string args = "{\"trace_id\":\"" + HexId(trace_id) +
                       "\",\"span_id\":\"" + HexId(span.span_id) +
                       "\",\"parent_span_id\":\"" + HexId(span.parent_span_id) +
                       "\"}";
    if (span.dur_micros > 0) {
      tracer_->AddComplete(span.name, "server", span.ts_micros,
                           span.dur_micros, TraceLane::kRemoteServer,
                           std::move(args));
    } else {
      tracer_->AddInstant(span.name, "server", span.ts_micros,
                          TraceLane::kRemoteServer, std::move(args));
    }
  }
}

void RunObserver::OnNetworkTransfer(int64_t ts_micros, int64_t dur_micros) {
  if (net_transfer_ms_ != nullptr) {
    net_transfer_ms_->Record(static_cast<double>(dur_micros) / 1000.0);
  }
  if (tracer_ != nullptr) {
    tracer_->AddComplete("network_transfer", "net", ts_micros, dur_micros,
                         TraceLane::kNetwork);
  }
}

void RunObserver::OnServerResidence(int64_t ts_micros, int64_t dur_micros) {
  if (server_residence_ms_ != nullptr) {
    server_residence_ms_->Record(static_cast<double>(dur_micros) / 1000.0);
  }
  if (tracer_ != nullptr) {
    tracer_->AddComplete("server_residence", "net", ts_micros, dur_micros,
                         TraceLane::kNetwork);
  }
}

void RunObserver::OnParse(int64_t ts_micros, int64_t payload_bytes) {
  if (parses_total_ != nullptr) parses_total_->Increment();
  if (tracer_ != nullptr) {
    tracer_->AddInstant("parse", "pull", ts_micros, TraceLane::kPullLoop,
                        "{\"payload_bytes\":" + std::to_string(payload_bytes) +
                            "}");
  }
}

void RunObserver::OnRetry(int64_t ts_micros, double timeout_ms) {
  if (retries_total_ != nullptr) retries_total_->Increment();
  if (tracer_ != nullptr) {
    tracer_->AddInstant("retry", "pull", ts_micros, TraceLane::kPullLoop,
                        "{\"timeout_ms\":" + JsonNumber(timeout_ms) + "}");
  }
}

void RunObserver::OnControllerDecision(int64_t ts_micros,
                                       std::string_view controller,
                                       const StateSnapshot& state,
                                       int64_t adaptivity_step,
                                       int64_t next_size) {
  if (decisions_total_ != nullptr) decisions_total_->Increment();
  if (metrics_ != nullptr) {
    // Numeric snapshot entries become last-value gauges, so `gain`,
    // `sign_switches` etc. appear in metrics dumps without the tracer.
    for (const auto& [key, value] : state.entries()) {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end != value.c_str() && *end == '\0') {
        metrics_->GetGauge("wsq.controller." + key)->Set(parsed);
      }
    }
    metrics_->GetGauge("wsq.controller.next_size")
        ->Set(static_cast<double>(next_size));
  }
  if (tracer_ != nullptr) {
    StateSnapshot args;
    args.Add("controller", controller);
    args.Add("adaptivity_step", adaptivity_step);
    args.Add("next_size", next_size);
    args.Append(state);
    tracer_->AddInstant("controller_decision", "control", ts_micros,
                        TraceLane::kController, args.ToJsonObject());
    tracer_->AddCounterSample("block_size_command", ts_micros,
                              TraceLane::kController,
                              static_cast<double>(next_size));
  }
}

void RunObserver::OnServerQueueLength(int64_t ts_micros, int queue_length) {
  if (queue_len_ != nullptr) {
    queue_len_->Set(static_cast<double>(queue_length));
  }
  if (tracer_ != nullptr) {
    tracer_->AddCounterSample("server_queue_len", ts_micros,
                              TraceLane::kServer,
                              static_cast<double>(queue_length));
  }
}

void RunObserver::OnServerLoadLevel(int64_t ts_micros, int active_sessions) {
  if (load_level_ != nullptr) {
    load_level_->Set(static_cast<double>(active_sessions));
  }
  if (tracer_ != nullptr) {
    tracer_->AddCounterSample("server_load_level", ts_micros,
                              TraceLane::kServer,
                              static_cast<double>(active_sessions));
  }
}

void RunObserver::OnFaultInjected(int64_t ts_micros, std::string_view kind,
                                  int64_t block_index, double cost_ms) {
  if (faults_total_ != nullptr) {
    faults_total_->Increment();
    fault_cost_ms_->Record(cost_ms);
  }
  if (tracer_ != nullptr) {
    std::string args = "{\"kind\":\"" + std::string(kind) +
                       "\",\"block\":" + std::to_string(block_index) +
                       ",\"cost_ms\":" + JsonNumber(cost_ms) + "}";
    tracer_->AddInstant("fault_injected", "fault", ts_micros,
                        TraceLane::kFault, std::move(args));
  }
}

void RunObserver::OnBreakerTransition(int64_t ts_micros,
                                      std::string_view from,
                                      std::string_view to) {
  if (breaker_transitions_total_ != nullptr) {
    breaker_transitions_total_->Increment();
    // closed=0, open=1, half_open=2 — a plottable state track.
    const double level = to == "open" ? 1.0 : to == "half_open" ? 2.0 : 0.0;
    breaker_state_->Set(level);
  }
  if (tracer_ != nullptr) {
    std::string args = "{\"from\":\"" + std::string(from) + "\",\"to\":\"" +
                       std::string(to) + "\"}";
    tracer_->AddInstant("breaker_transition", "fault", ts_micros,
                        TraceLane::kFault, std::move(args));
  }
}

RunObserver* GlobalRunObserver() {
  RunObserver* thread_override = t_thread_observer;
  if (thread_override != nullptr) return thread_override;
  return g_global_observer.load(std::memory_order_acquire);
}

void SetGlobalRunObserver(RunObserver* observer) {
  g_global_observer.store(observer, std::memory_order_release);
}

RunObserver* ThreadRunObserver() { return t_thread_observer; }

void SetThreadRunObserver(RunObserver* observer) {
  t_thread_observer = observer;
}

}  // namespace wsq
