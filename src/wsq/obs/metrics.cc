#include "wsq/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "wsq/obs/json_lite.h"

namespace wsq {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = LatencyBucketsMs();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (Shard& shard : shards_) {
    shard.counts.assign(bounds_.size() + 1, 0);
  }
}

std::vector<double> Histogram::LatencyBucketsMs() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  return bounds;
}

void Histogram::Record(double value) {
  Shard& shard = shards_[ThreadShardIndex()];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  shard.counts[static_cast<size_t>(it - bounds_.begin())] += 1;
  shard.stats.Add(value);
}

Histogram::Merged Histogram::MergeShards() const {
  Merged merged;
  merged.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t i = 0; i < merged.counts.size(); ++i) {
      merged.counts[i] += shard.counts[i];
    }
    merged.stats.Merge(shard.stats);
  }
  return merged;
}

int64_t Histogram::count() const {
  return static_cast<int64_t>(MergeShards().stats.count());
}

double Histogram::mean() const { return MergeShards().stats.mean(); }

double Histogram::min() const { return MergeShards().stats.min(); }

double Histogram::max() const { return MergeShards().stats.max(); }

double Histogram::Percentile(double q) const {
  const Merged merged = MergeShards();
  const int64_t total = static_cast<int64_t>(merged.stats.count());
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);

  int64_t cumulative = 0;
  for (size_t i = 0; i < merged.counts.size(); ++i) {
    if (merged.counts[i] == 0) continue;
    const int64_t next = cumulative + merged.counts[i];
    if (rank <= static_cast<double>(next)) {
      // Interpolate inside bucket i. Clip the nominal edges to the
      // observed extremes so quantiles never leave the sampled range.
      if (i == merged.counts.size() - 1) return merged.stats.max();
      double lo = i == 0 ? merged.stats.min() : bounds_[i - 1];
      double hi = bounds_[i];
      lo = std::max(lo, merged.stats.min());
      hi = std::min(hi, merged.stats.max());
      if (hi <= lo) return hi;
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(merged.counts[i]);
      return lo + (hi - lo) * within;
    }
    cumulative = next;
  }
  return merged.stats.max();
}

std::vector<int64_t> Histogram::bucket_counts() const {
  return MergeShards().counts;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::fill(shard.counts.begin(), shard.counts.end(), 0);
    shard.stats.Reset();
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_[std::string(name)];
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &gauges_[std::string(name)];
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

namespace {

/// Percent-escapes the label convention's structural characters (and
/// '%' itself, keeping the encoding injective) inside a key or value.
void AppendEscapedLabelPart(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '%': out->append("%25"); break;
      case '{': out->append("%7B"); break;
      case '}': out->append("%7D"); break;
      case '=': out->append("%3D"); break;
      case ',': out->append("%2C"); break;
      default: out->push_back(c);
    }
  }
}

}  // namespace

std::string LabeledName(std::string_view base, std::string_view label_key,
                        std::string_view label_value) {
  return LabeledName(base, {{label_key, label_value}});
}

std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out;
  out.reserve(base.size() + 16 * labels.size() + 2);
  out.append(base);
  if (labels.size() == 0) return out;
  out.push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    AppendEscapedLabelPart(key, &out);
    out.push_back('=');
    AppendEscapedLabelPart(value, &out);
  }
  out.push_back('}');
  return out;
}

int64_t MetricsRegistry::SumCounters(std::string_view base) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  auto exact = counters_.find(std::string(base));
  if (exact != counters_.end()) total += exact->second.value();
  // Family members extend the base: "base{...}" for a bare base, or
  // "base{k=v,...}" for a labeled base "base{k=v}". A labeled base must
  // continue at a label boundary (','), never by extending the last
  // value's text — a plain prefix walk over "base{tenant=1" would also
  // absorb "base{tenant=10,...}". Members sort contiguously after the
  // prefix in the map, so the walk stays a range scan either way.
  std::string prefix(base);
  if (!prefix.empty() && prefix.back() == '}') {
    prefix.back() = ',';
  } else if (prefix.find('{') == std::string::npos) {
    prefix += '{';
  } else {
    return total;  // malformed labeled base: exact match only
  }
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    total += it->second.value();
  }
  return total;
}

namespace {

std::string FormatValue(double v) {
  if (std::isnan(v)) return "nan";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += name + " counter " + std::to_string(counter.value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += name + " gauge " + FormatValue(gauge.value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out += name + " histogram count=" + std::to_string(histogram->count()) +
           " mean=" + FormatValue(histogram->mean()) +
           " min=" + FormatValue(histogram->min()) +
           " max=" + FormatValue(histogram->max()) +
           " p50=" + FormatValue(histogram->p50()) +
           " p90=" + FormatValue(histogram->p90()) +
           " p99=" + FormatValue(histogram->p99()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "name,kind,field,value\n";
  for (const auto& [name, counter] : counters_) {
    out += name + ",counter,value," + std::to_string(counter.value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += name + ",gauge,value," + FormatValue(gauge.value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const auto row = [&out, &name = name](std::string_view field, double v) {
      out += name + ",histogram," + std::string(field) + "," + FormatValue(v) +
             "\n";
    };
    row("count", static_cast<double>(histogram->count()));
    row("mean", histogram->mean());
    row("min", histogram->min());
    row("max", histogram->max());
    row("p50", histogram->p50());
    row("p90", histogram->p90());
    row("p99", histogram->p99());
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(counter.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + JsonNumber(gauge.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":{";
    out += "\"count\":" + std::to_string(histogram->count());
    out += ",\"mean\":" + JsonNumber(histogram->mean());
    out += ",\"min\":" + JsonNumber(histogram->min());
    out += ",\"max\":" + JsonNumber(histogram->max());
    out += ",\"p50\":" + JsonNumber(histogram->p50());
    out += ",\"p90\":" + JsonNumber(histogram->p90());
    out += ",\"p99\":" + JsonNumber(histogram->p99());
    out += '}';
  }
  out += "}}";
  return out;
}

Status MetricsRegistry::WriteFile(const std::string& path) const {
  std::string body;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    body = ToJson();
  } else if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    body = ToCsv();
  } else {
    body = ToText();
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open metrics file: " + path);
  }
  out << body;
  out.close();
  if (!out) return Status::Unavailable("metrics write failed: " + path);
  return Status::Ok();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter.Reset();
  for (auto& [name, gauge] : gauges_) gauge.Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace wsq
