#ifndef WSQ_OBS_RUN_OBSERVER_H_
#define WSQ_OBS_RUN_OBSERVER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "wsq/obs/metrics.h"
#include "wsq/obs/span_context.h"
#include "wsq/obs/state_snapshot.h"
#include "wsq/obs/trace.h"

namespace wsq {

/// The observability hook every execution stack emits into. One observer
/// bundles a metrics registry and a tracer and exposes typed callbacks
/// for the pull-loop events of the paper's Algorithm 1 — session
/// open/close, block request, network transfer, serialize/parse, retry,
/// controller decision — plus server-side samples (queue length, load
/// level). Backends receive the observer through `RunSpec::observer` (or
/// the process-global default) and call these hooks with timestamps from
/// their own Clock, so the three backends produce directly comparable
/// timelines in simulated or wall time.
///
/// Either component may be null: a metrics-only observer skips tracing
/// and vice versa. A null observer *pointer* at the call sites is the
/// zero-cost off switch — every emission in the backends is guarded by a
/// single pointer test and no observability work happens when it fails.
class RunObserver {
 public:
  /// Both pointers must outlive the observer; either may be null.
  RunObserver(MetricsRegistry* metrics, Tracer* tracer);

  MetricsRegistry* metrics() const { return metrics_; }
  Tracer* tracer() const { return tracer_; }

  /// Session management spans (the empirical stack's open/close calls;
  /// dead time charged to the query but to no block).
  void OnSessionOpen(int64_t ts_micros, int64_t dur_micros);
  void OnSessionClose(int64_t ts_micros, int64_t dur_micros);

  /// One completed block request: the span t1 -> t2 of Algorithm 1.
  /// `trace_id`/`span_id`, when non-zero, are the distributed-trace
  /// identity of the client span (rendered into the event args as hex
  /// strings, so server spans of the same trace can be correlated in
  /// the merged timeline).
  void OnBlock(int64_t ts_micros, int64_t dur_micros, int64_t requested_size,
               int64_t received_tuples, double per_tuple_ms, int64_t retries,
               uint64_t trace_id = 0, uint64_t span_id = 0);

  /// Server-side spans shipped back over the wire, timestamps already
  /// clock-aligned onto the client timeline by the transport. Emitted
  /// on the dedicated TraceLane::kRemoteServer lane; `dur == 0` spans
  /// become instants.
  void OnRemoteSpans(const std::vector<RemoteSpan>& spans, uint64_t trace_id);

  /// Wire-time decomposition of a block span, where the stack knows it.
  void OnNetworkTransfer(int64_t ts_micros, int64_t dur_micros);

  /// Server residence (service) decomposition of a block span.
  void OnServerResidence(int64_t ts_micros, int64_t dur_micros);

  /// Client-side response deserialization (payload bytes parsed).
  void OnParse(int64_t ts_micros, int64_t payload_bytes);

  /// One retried call after a (simulated) timeout; `timeout_ms` is the
  /// dead time the retry charged.
  void OnRetry(int64_t ts_micros, double timeout_ms);

  /// One controller adaptivity step: the decision plus the controller's
  /// DebugState() snapshot. Numeric snapshot entries are mirrored to
  /// gauges (wsq.controller.<key>) so the latest internal state is
  /// visible in a metrics dump, and the full snapshot rides on the trace
  /// event's args.
  void OnControllerDecision(int64_t ts_micros, std::string_view controller,
                            const StateSnapshot& state,
                            int64_t adaptivity_step, int64_t next_size);

  /// Server-side samples (event-driven sim / container shims).
  void OnServerQueueLength(int64_t ts_micros, int queue_length);
  void OnServerLoadLevel(int64_t ts_micros, int active_sessions);

  /// One scripted fault injected by the chaos layer (fault/). `kind` is
  /// FaultKindName(...); `cost_ms` is the dead time the fault charged
  /// (0 for perturbations, whose cost rides inside the block span).
  /// Lands on the dedicated fault lane.
  void OnFaultInjected(int64_t ts_micros, std::string_view kind,
                       int64_t block_index, double cost_ms);

  /// A circuit-breaker state change in the resilience policy; `from` /
  /// `to` are BreakerStateName(...) values. The breaker state is also
  /// mirrored to the wsq.resilience.breaker_state gauge
  /// (closed=0, open=1, half_open=2).
  void OnBreakerTransition(int64_t ts_micros, std::string_view from,
                           std::string_view to);

 private:
  MetricsRegistry* metrics_;
  Tracer* tracer_;

  // Cached handles: hook bodies never take the registry lock.
  Counter* sessions_total_ = nullptr;
  Counter* blocks_total_ = nullptr;
  Counter* tuples_total_ = nullptr;
  Counter* retries_total_ = nullptr;
  Counter* decisions_total_ = nullptr;
  Counter* parses_total_ = nullptr;
  Counter* faults_total_ = nullptr;
  Counter* remote_spans_total_ = nullptr;
  Counter* breaker_transitions_total_ = nullptr;
  Histogram* fault_cost_ms_ = nullptr;
  Gauge* breaker_state_ = nullptr;
  Histogram* block_time_ms_ = nullptr;
  Histogram* block_size_ = nullptr;
  Histogram* per_tuple_ms_ = nullptr;
  Histogram* net_transfer_ms_ = nullptr;
  Histogram* server_residence_ms_ = nullptr;
  Gauge* queue_len_ = nullptr;
  Gauge* load_level_ = nullptr;
};

/// Process-global default observer consulted by backends when
/// `RunSpec::observer` is null. Null (the default) disables
/// observability; bench binaries install one when --metrics-out /
/// --trace-out is passed. Not owned; the caller keeps it alive for the
/// duration of its installation.
///
/// The fallback is layered: GlobalRunObserver() first consults a
/// thread-local override (SetThreadRunObserver), then the process-wide
/// pointer. Parallel run lanes use the override to redirect their runs
/// to a private observer without touching what every other lane — or
/// the main thread — sees.
RunObserver* GlobalRunObserver();
void SetGlobalRunObserver(RunObserver* observer);

/// Thread-local override of the global fallback; null (the default for
/// every new thread) defers to the process-wide observer. Not owned.
RunObserver* ThreadRunObserver();
void SetThreadRunObserver(RunObserver* observer);

/// RAII installer for the calling thread's observer override; restores
/// the previous override on destruction.
class ScopedThreadRunObserver {
 public:
  explicit ScopedThreadRunObserver(RunObserver* observer)
      : previous_(ThreadRunObserver()) {
    SetThreadRunObserver(observer);
  }
  ~ScopedThreadRunObserver() { SetThreadRunObserver(previous_); }
  ScopedThreadRunObserver(const ScopedThreadRunObserver&) = delete;
  ScopedThreadRunObserver& operator=(const ScopedThreadRunObserver&) = delete;

 private:
  RunObserver* previous_;
};

}  // namespace wsq

#endif  // WSQ_OBS_RUN_OBSERVER_H_
