#ifndef WSQ_OBS_THREAD_SHARD_H_
#define WSQ_OBS_THREAD_SHARD_H_

namespace wsq {

/// Number of independent shards the hot observability structures
/// (Counter, Histogram, Tracer) keep. Threads map onto shards by
/// registration order, so a single-threaded process only ever touches
/// shard 0 and pays exactly the pre-sharding cost; parallel run lanes
/// spread across shards and stop contending on one cache line / mutex.
inline constexpr int kMetricShards = 8;

/// Dense registration ordinal of the calling thread: the first thread
/// that asks (in practice the main thread) gets 0, the next 1, and so
/// on. Stable for the lifetime of the thread.
int ThreadShardOrdinal();

/// The calling thread's shard: ThreadShardOrdinal() folded into
/// [0, kMetricShards). Stable for the lifetime of the thread.
int ThreadShardIndex();

}  // namespace wsq

#endif  // WSQ_OBS_THREAD_SHARD_H_
