#include "wsq/obs/trace.h"

#include <fstream>

#include "wsq/obs/json_lite.h"

namespace wsq {

void Tracer::Append(TraceEvent event) {
  const int shard_index = ThreadShardIndex();
  event.tid += TraceLane::kLaneStride * shard_index;
  Shard& shard = shards_[static_cast<size_t>(shard_index)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.events.push_back(std::move(event));
}

void Tracer::AddComplete(std::string_view name, std::string_view category,
                         int64_t ts_micros, int64_t dur_micros, int tid,
                         std::string args_json) {
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'X';
  event.ts_micros = ts_micros;
  event.dur_micros = dur_micros;
  event.tid = tid;
  event.args_json = std::move(args_json);
  Append(std::move(event));
}

void Tracer::AddInstant(std::string_view name, std::string_view category,
                        int64_t ts_micros, int tid, std::string args_json) {
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'i';
  event.ts_micros = ts_micros;
  event.tid = tid;
  event.args_json = std::move(args_json);
  Append(std::move(event));
}

void Tracer::AddCounterSample(std::string_view name, int64_t ts_micros,
                              int tid, double value) {
  TraceEvent event;
  event.name = std::string(name);
  event.category = "counter";
  event.phase = 'C';
  event.ts_micros = ts_micros;
  event.tid = tid;
  event.args_json = "{\"value\":" + JsonNumber(value) + "}";
  Append(std::move(event));
}

void Tracer::SetLaneName(int tid, std::string_view name) {
  TraceEvent event;
  event.name = "thread_name";
  event.category = "__metadata";
  event.phase = 'M';
  event.tid = tid;
  event.args_json = "{\"name\":\"" + JsonEscape(name) + "\"}";
  Append(std::move(event));
}

void Tracer::End(int64_t begin_micros, const Clock& clock,
                 std::string_view name, std::string_view category, int tid,
                 std::string args_json) {
  const int64_t now = clock.NowMicros();
  AddComplete(name, category, begin_micros, now - begin_micros, tid,
              std::move(args_json));
}

size_t Tracer::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.events.size();
  }
  return total;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> merged;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    merged.insert(merged.end(), shard.events.begin(), shard.events.end());
  }
  return merged;
}

void Tracer::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.events.clear();
  }
}

std::string Tracer::EventJson(const TraceEvent& event) {
  std::string out = "{\"name\":\"" + JsonEscape(event.name) + "\"";
  if (!event.category.empty()) {
    out += ",\"cat\":\"" + JsonEscape(event.category) + "\"";
  }
  out += ",\"ph\":\"";
  out += event.phase;
  out += "\",\"ts\":" + std::to_string(event.ts_micros);
  if (event.phase == 'X') {
    out += ",\"dur\":" + std::to_string(event.dur_micros);
  }
  out += ",\"pid\":1,\"tid\":" + std::to_string(event.tid);
  if (!event.args_json.empty()) {
    out += ",\"args\":" + event.args_json;
  }
  out += "}";
  return out;
}

std::string Tracer::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events()) {
    if (!first) out += ',';
    first = false;
    out += EventJson(event);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Tracer::ToJsonl() const {
  std::string out;
  for (const TraceEvent& event : events()) {
    out += EventJson(event);
    out += '\n';
  }
  return out;
}

namespace {

Status WriteWholeFile(const std::string& path, const std::string& body,
                      std::string_view what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open " + std::string(what) +
                               " file: " + path);
  }
  out << body;
  out.close();
  if (!out) {
    return Status::Unavailable(std::string(what) + " write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace

Status Tracer::WriteChromeJson(const std::string& path) const {
  return WriteWholeFile(path, ToChromeJson(), "trace");
}

Status Tracer::WriteJsonl(const std::string& path) const {
  return WriteWholeFile(path, ToJsonl(), "trace");
}

}  // namespace wsq
