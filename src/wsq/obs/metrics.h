#ifndef WSQ_OBS_METRICS_H_
#define WSQ_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/obs/thread_shard.h"
#include "wsq/stats/running_stats.h"

namespace wsq {

/// Monotonically increasing event count (blocks pulled, retries, ...).
///
/// Internally sharded per thread (kMetricShards cache-line-padded
/// atomics, threads pick a shard by registration order) so concurrent
/// run lanes never contend on one cache line; value() sums the shards.
/// A single-threaded process touches only shard 0 — one relaxed
/// fetch_add, exactly the pre-sharding hot path.
class Counter {
 public:
  Counter() = default;

  void Increment(int64_t delta = 1) {
    shards_[ThreadShardIndex()].value.fetch_add(delta,
                                                std::memory_order_relaxed);
  }

  /// Sum over all shards. Exact once concurrent writers have quiesced
  /// (merge is addition, so shard order cannot matter).
  int64_t value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins instantaneous value (current gain, queue length, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket distribution with quantile queries, built on the
/// RunningStats accumulator for the moment statistics. Bucket `i` counts
/// samples in (bounds[i-1], bounds[i]]; one implicit overflow bucket
/// catches everything past the last bound. Quantiles are linearly
/// interpolated inside the owning bucket, so their error is bounded by
/// the bucket width — the standard fixed-bucket tradeoff (exact counts,
/// approximate quantiles, O(1) memory however many samples arrive).
///
/// Record() is sharded per thread: each thread locks only its own
/// shard's mutex (uncontended — and therefore as cheap as the old
/// single mutex — when one thread is recording), and readers merge the
/// shards: bucket counts add exactly, moment statistics combine with
/// the parallel Welford merge.
class Histogram {
 public:
  /// `bounds` are the inclusive upper bounds, strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  /// Default bounds for millisecond-scale latencies: 1-2-5 decades from
  /// 1 ms to 100 s.
  static std::vector<double> LatencyBucketsMs();

  void Record(double value);

  int64_t count() const;
  double mean() const;
  double min() const;
  double max() const;

  /// Interpolated quantile, q in [0, 1]; NaN with no samples. The
  /// overflow bucket reports the observed maximum.
  double Percentile(double q) const;
  double p50() const { return Percentile(0.50); }
  double p90() const { return Percentile(0.90); }
  double p99() const { return Percentile(0.99); }

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> bucket_counts() const;

  void Reset();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<int64_t> counts;  // bounds_.size() + 1 (overflow)
    RunningStats stats;
  };

  /// Point-in-time merge of every shard (counts add, stats merge).
  struct Merged {
    std::vector<int64_t> counts;
    RunningStats stats;
  };
  Merged MergeShards() const;

  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Renders a labeled metric name: `LabeledName("wsq.server.bytes_out",
/// "session", "7")` -> "wsq.server.bytes_out{session=7}". The registry
/// treats a labeled name as just another name — labels are a naming
/// convention, not a type — but the convention gives rollups something
/// to aggregate over (see MetricsRegistry::SumCounters) and keeps
/// per-session series distinguishable in every exporter.
///
/// The structural characters of the convention — '{', '}', '=', ',' —
/// and '%' are percent-escaped inside keys and values, so a hostile
/// label value (a tenant named "1}" or "a=b,c") can never forge another
/// family's name or collide two distinct label sets: the encoding is
/// injective. Plain alphanumeric labels render unchanged.
std::string LabeledName(std::string_view base, std::string_view label_key,
                        std::string_view label_value);

/// Multi-label form, keys in the order given:
/// `LabeledName("m", {{"tenant", "3"}, {"phase", "live"}})` ->
/// "m{tenant=3,phase=live}". Same escaping as the single-label form.
std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Name -> metric registry with text/CSV/JSON snapshot exporters. One
/// process-wide instance (`Global()`) serves production wiring; tests
/// and harnesses can own private instances. Lookups create on first use
/// and return stable pointers; the hot path is then lock-free counter
/// and gauge updates on the returned handles. Fully thread-safe: the
/// maps are mutex-guarded, the metrics themselves are sharded or atomic,
/// so concurrent run lanes can hammer one registry.
///
/// Naming convention: dotted paths, subsystem first —
/// "wsq.pull.blocks_total", "wsq.controller.gain", "wsq.server.queue_len".
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// First use fixes the bounds; later calls with different bounds get
  /// the existing histogram (names identify metrics, not shapes).
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = {});

  /// Rollup over a labeled-counter family: the sum of the counter named
  /// exactly `base` (if any) and every counter named "base{...}" — the
  /// LabeledName convention. The primitive behind "total = sum over
  /// sessions" style aggregations.
  ///
  /// A labeled base rolls up its sub-family: `SumCounters("b{tenant=1}")`
  /// sums "b{tenant=1}" and every "b{tenant=1,...}" extension — and
  /// nothing else. Membership is label-boundary-aware, so "b{tenant=1}"
  /// never absorbs "b{tenant=10,...}"-style neighbors.
  int64_t SumCounters(std::string_view base) const;

  /// Human-readable snapshot, one metric per line, sorted by name.
  std::string ToText() const;

  /// CSV snapshot: name,kind,field,value rows (histograms expand to
  /// count/mean/min/max/p50/p90/p99), sorted by name.
  std::string ToCsv() const;

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  /// Writes a snapshot to `path`; the format follows the extension
  /// (".json", ".csv", anything else gets the text form).
  Status WriteFile(const std::string& path) const;

  /// Zeroes every registered metric (the metrics stay registered, so
  /// handles held by callers remain valid).
  void ResetAll();

  size_t size() const;

 private:
  mutable std::mutex mu_;
  // node-based maps: pointers to mapped values stay valid on insert.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace wsq

#endif  // WSQ_OBS_METRICS_H_
