#ifndef WSQ_OBS_STATE_SNAPSHOT_H_
#define WSQ_OBS_STATE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "wsq/common/status.h"

namespace wsq {

/// Ordered key/value introspection snapshot — the currency of runtime
/// observability. Controllers expose their internal state through
/// `Controller::DebugState()` as one of these (current gain, phase,
/// sign-switch count, RLS estimates, ...), and the tracer serializes the
/// entries verbatim into trace-event `args`, so the keys a controller
/// chooses are exactly the keys an analyst sees in Perfetto.
///
/// Entries keep insertion order (controllers list the most important
/// state first) and values are stored as strings; numeric values are
/// formatted with round-trip precision so tests can parse them back
/// exactly with Number().
class StateSnapshot {
 public:
  void Add(std::string_view key, std::string_view value);
  /// Without this overload a `const char*` value would prefer the bool
  /// overload (pointer-to-bool is a standard conversion, string_view is
  /// user-defined) and silently store "true".
  void Add(std::string_view key, const char* value) {
    Add(key, std::string_view(value));
  }
  void Add(std::string_view key, double value);
  void Add(std::string_view key, int64_t value);
  void Add(std::string_view key, int value) {
    Add(key, static_cast<int64_t>(value));
  }
  void Add(std::string_view key, bool value) {
    Add(key, std::string_view(value ? "true" : "false"));
  }

  /// Appends every entry of `other` (used by composite controllers to
  /// splice in the state of the controller they delegate to).
  void Append(const StateSnapshot& other);

  /// Value for `key`, or nullptr when absent. First match wins.
  const std::string* Find(std::string_view key) const;

  /// Parses the value for `key` as a double; kNotFound when the key is
  /// absent, kInvalidArgument when the value is not numeric.
  Result<double> Number(std::string_view key) const;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// Renders the snapshot as a JSON object ({"key":"value",...}), the
  /// form the tracer embeds as event args.
  std::string ToJsonObject() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace wsq

#endif  // WSQ_OBS_STATE_SNAPSHOT_H_
