#ifndef WSQ_OBS_JSON_LITE_H_
#define WSQ_OBS_JSON_LITE_H_

#include <string>
#include <string_view>

#include "wsq/common/status.h"

namespace wsq {

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Does not add the surrounding quotes.
std::string JsonEscape(std::string_view text);

/// Formats a double as a JSON number token. JSON has no NaN/Infinity, so
/// non-finite values are emitted as null — exporters must stay parseable
/// whatever the metrics contain.
std::string JsonNumber(double value);

/// Validates that `text` is one well-formed JSON value (RFC 8259 syntax;
/// no extensions). This is a syntax checker, not a DOM: it exists so
/// tests and tools can assert that exported metrics/trace documents
/// parse, without a JSON library dependency.
Status CheckJson(std::string_view text);

/// Validates that `text` is a Chrome trace-event JSON object as loaded
/// by Perfetto / chrome://tracing: a top-level object whose
/// "traceEvents" member is an array of event objects, each carrying the
/// required "name"/"ph"/"ts"/"pid"/"tid" members, with "dur" required
/// for complete ("X") events. Returns kInvalidArgument naming the first
/// violation.
Status CheckChromeTrace(std::string_view text);

}  // namespace wsq

#endif  // WSQ_OBS_JSON_LITE_H_
