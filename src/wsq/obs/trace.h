#ifndef WSQ_OBS_TRACE_H_
#define WSQ_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "wsq/common/clock.h"
#include "wsq/common/status.h"
#include "wsq/obs/state_snapshot.h"
#include "wsq/obs/thread_shard.h"

namespace wsq {

/// One trace event in the Chrome trace-event model (the subset wsq
/// emits: complete spans "X", instants "i", counters "C", metadata "M").
/// Timestamps and durations are microseconds, matching both the Clock
/// abstraction and the trace-event spec's `ts`/`dur` units, so simulated
/// runs produce timelines in simulated time and wall-clocked runs in
/// real time — same format, same viewers.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  int64_t ts_micros = 0;
  int64_t dur_micros = 0;  // complete events only
  int tid = 0;
  /// Pre-rendered JSON object for the event's `args`; empty = no args.
  std::string args_json;
};

/// Well-known tracer lanes (trace-event `tid`s), so every backend's
/// pull loop lands on the same rows in Perfetto.
struct TraceLane {
  static constexpr int kPullLoop = 1;    // session + block spans
  static constexpr int kNetwork = 2;     // wire transfer / server residence
  static constexpr int kController = 3;  // decisions + DebugState samples
  static constexpr int kServer = 4;      // queue length / load counters
  static constexpr int kFault = 5;       // injected faults / breaker state
  /// Server-side spans shipped back over the wire (clock-aligned onto
  /// the client timeline by RunObserver::OnRemoteSpans).
  static constexpr int kRemoteServer = 6;

  /// Events emitted from a parallel run lane land on
  /// `tid + kLaneStride * shard`, where `shard` is the emitting
  /// thread's ThreadShardIndex(). The main thread (shard 0) keeps the
  /// base tids, so single-threaded traces are unchanged; each run lane
  /// gets its own block of rows in the viewers instead of overdrawing
  /// lane 1-4.
  static constexpr int kLaneStride = 16;
};

/// Span/event collector for the pull loop. Call sites pass explicit
/// timestamps taken from whatever Clock drives their stack (SimClock for
/// the simulated backends, WallClock where real time is wanted); the
/// tracer itself never reads a clock, which is what makes simulated time
/// first-class. Exports Chrome trace-event JSON (loadable in Perfetto /
/// chrome://tracing) and JSONL (one event object per line, streamable).
///
/// Thread-safe and sharded: each thread appends to its own event buffer
/// (keyed by its run-lane shard, see thread_shard.h), so concurrent run
/// lanes never contend on one mutex; exports merge the buffers in shard
/// order. A single-threaded process uses exactly one buffer and one
/// uncontended mutex — the pre-sharding cost — and its exported byte
/// stream is identical to the unsharded tracer's.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// A complete span [ts, ts + dur).
  void AddComplete(std::string_view name, std::string_view category,
                   int64_t ts_micros, int64_t dur_micros, int tid,
                   std::string args_json = {});

  /// A point-in-time event.
  void AddInstant(std::string_view name, std::string_view category,
                  int64_t ts_micros, int tid, std::string args_json = {});

  /// A counter track sample ("C" phase): `value` plotted over time.
  void AddCounterSample(std::string_view name, int64_t ts_micros, int tid,
                        double value);

  /// Names a lane (trace-event thread metadata), purely cosmetic in the
  /// viewers.
  void SetLaneName(int tid, std::string_view name);

  /// Convenience for timing a region against a Clock:
  ///   auto t0 = tracer->Begin(clock);
  ///   ... work ...
  ///   tracer->End(t0, clock, "parse", "pull", TraceLane::kPullLoop);
  int64_t Begin(const Clock& clock) const { return clock.NowMicros(); }
  void End(int64_t begin_micros, const Clock& clock, std::string_view name,
           std::string_view category, int tid, std::string args_json = {});

  size_t size() const;
  /// All buffered events, merged in shard order (within a shard:
  /// insertion order). Single-threaded processes therefore see exact
  /// insertion order.
  std::vector<TraceEvent> events() const;
  void Clear();

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — the object form every
  /// Chrome trace-event consumer accepts. Events may be unsorted in ts
  /// when several lanes emitted; the viewers sort on load.
  std::string ToChromeJson() const;

  /// One event object per line; no enclosing array, stream-friendly.
  std::string ToJsonl() const;

  Status WriteChromeJson(const std::string& path) const;
  Status WriteJsonl(const std::string& path) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };

  static std::string EventJson(const TraceEvent& event);

  /// Appends to the calling thread's shard, offsetting the tid by the
  /// shard's lane block (no-op for shard 0).
  void Append(TraceEvent event);

  std::array<Shard, kMetricShards> shards_;
};

}  // namespace wsq

#endif  // WSQ_OBS_TRACE_H_
