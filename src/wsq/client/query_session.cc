#include "wsq/client/query_session.h"

namespace wsq {

QuerySession::QuerySession(EmpiricalSetup setup) : setup_(std::move(setup)) {}

Result<std::unique_ptr<QuerySession>> QuerySession::Create(
    EmpiricalSetup setup) {
  if (setup.table == nullptr) {
    return Status::InvalidArgument("QuerySession: null table");
  }
  WSQ_RETURN_IF_ERROR(setup.link.Validate());
  WSQ_RETURN_IF_ERROR(setup.load.Validate());
  std::unique_ptr<QuerySession> session(new QuerySession(std::move(setup)));
  WSQ_RETURN_IF_ERROR(session->Init());
  return session;
}

Status QuerySession::Init() {
  WSQ_RETURN_IF_ERROR(dbms_.RegisterTable(setup_.table));

  // Resolve the projected output schema once so Execute can hand
  // deserialization to the fetcher.
  Result<std::unique_ptr<QueryCursor>> probe = dbms_.OpenCursor(setup_.query);
  if (!probe.ok()) return probe.status();
  output_schema_ = std::make_unique<Schema>(probe.value()->output_schema());
  serializer_ = std::make_unique<TupleSerializer>(*output_schema_);

  service_ = std::make_unique<DataService>(&dbms_);
  container_ = std::make_unique<ServiceContainer>(service_.get(), setup_.load,
                                                  setup_.seed);
  client_ = std::make_unique<WsClient>(container_.get(), setup_.link, &clock_,
                                       setup_.seed + 1);
  if (setup_.codec.kind != codec::CodecKind::kSoap) {
    client_->NegotiateCodec(setup_.codec);
  }
  return Status::Ok();
}

Result<FetchOutcome> QuerySession::Execute(Controller* controller,
                                           std::vector<Tuple>* keep_tuples,
                                           RunObserver* observer,
                                           ResiliencePolicy* policy,
                                           FaultInjector* injector) {
  if (controller == nullptr) {
    return Status::InvalidArgument("Execute: null controller");
  }
  if (policy == nullptr && injector == nullptr) {
    BlockFetcher fetcher(client_.get(), controller,
                         /*max_retries_per_call=*/2, observer);
    return fetcher.Run(setup_.query,
                       keep_tuples != nullptr ? serializer_.get() : nullptr,
                       keep_tuples);
  }
  BlockFetcher fetcher(client_.get(), controller, policy, injector, observer);
  return fetcher.Run(setup_.query,
                     keep_tuples != nullptr ? serializer_.get() : nullptr,
                     keep_tuples);
}

}  // namespace wsq
