#include "wsq/client/ws_client.h"

#include "wsq/soap/envelope.h"

namespace wsq {

WsClient::WsClient(ServiceContainer* container, const LinkConfig& link,
                   SimClock* clock, uint64_t seed)
    : container_(container), link_(link), clock_(clock), rng_(seed) {}

void WsClient::NegotiateCodec(const codec::CodecChoice& choice) {
  codec_choice_ = choice;
  response_codec_ = choice.kind == codec::CodecKind::kSoap
                        ? nullptr
                        : codec::MakeBlockCodec(choice);
}

Result<CallResult> WsClient::Call(const std::string& request_document) {
  ++calls_made_;

  // Failure injection: the request is lost on the wire before reaching
  // the container (request-loss, not response-loss, so a retry never
  // skips server-side cursor state). The client pays the timeout.
  if (link_.ExchangeDropped(rng_)) {
    ++calls_dropped_;
    clock_->AdvanceMillis(link_.config().timeout_ms);
    return Status::Unavailable("request timed out on the simulated link");
  }

  DispatchResult dispatched =
      container_->Dispatch(request_document, response_codec_.get());

  const double wire_ms = link_.ExchangeTimeMs(
      request_document.size(), dispatched.response.size(), rng_);
  const double elapsed_ms = wire_ms + dispatched.service_time_ms;
  clock_->AdvanceMillis(elapsed_ms);

  if (dispatched.is_fault) {
    // Surface the fault text; time was already charged.
    Result<XmlNode> payload = ParseEnvelope(dispatched.response);
    return payload.ok()
               ? Status::RemoteFault("service returned an unparsed fault")
               : payload.status();
  }

  CallResult result;
  result.response = std::move(dispatched.response);
  result.elapsed_ms = elapsed_ms;
  result.wire_ms = wire_ms;
  result.service_ms = dispatched.service_time_ms;
  return result;
}

}  // namespace wsq
