#ifndef WSQ_CLIENT_WS_CLIENT_H_
#define WSQ_CLIENT_WS_CLIENT_H_

#include <memory>
#include <string>

#include "wsq/client/call_transport.h"
#include "wsq/common/clock.h"
#include "wsq/common/random.h"
#include "wsq/common/status.h"
#include "wsq/netsim/link_model.h"
#include "wsq/server/container.h"

namespace wsq {

/// The *simulated* web service stub — one of the two WsCallTransport
/// implementations (the other, `TcpWsClient`, speaks the same call shape
/// over a real TCP socket to a `wsqd` server). This one ships a request
/// document over the simulated link to an in-process container, charges
/// the simulated clock for wire time + server residence time, and hands
/// back the response.
///
/// This is the component the paper's Algorithm 1 calls
/// `WebService.requestNewBlock` on; it deliberately knows nothing about
/// block sizes or controllers.
class WsClient final : public WsCallTransport {
 public:
  /// All pointers must outlive the client. `clock` is advanced on every
  /// call; `seed` feeds the client's jitter stream.
  WsClient(ServiceContainer* container, const LinkConfig& link,
           SimClock* clock, uint64_t seed);

  /// Performs one request/response exchange. Returns kRemoteFault when
  /// the service answered with a SOAP fault, and kUnavailable when the
  /// link dropped the request (failure injection) — in both cases the
  /// elapsed time is still charged to the clock; faults and timeouts
  /// cost real time too.
  Result<CallResult> Call(const std::string& request_document) override;

  /// Charges dead time (injected fault costs, retry backoff) to the
  /// simulated clock without performing an exchange — the fault layer's
  /// escape hatch so chaos time shows up on the same timeline as calls.
  void AdvanceClockMs(double ms) override { clock_->AdvanceMillis(ms); }

  const Clock* clock() const override { return clock_; }

  /// A failed (dropped) exchange always costs the link's configured
  /// timeout on the simulated path.
  double LastFailureCostMs() const override {
    return link_.config().timeout_ms;
  }

  LinkModel& link() { return link_; }
  int64_t calls_made() const { return calls_made_; }
  int64_t calls_dropped() const { return calls_dropped_; }

  /// Simulated codec negotiation: in-process there is no handshake to
  /// run, so the backend states the outcome directly. Block responses
  /// are then dispatched with this codec, and wire_codec() tells the
  /// pull loop to encode block requests to match — the same contract
  /// the live transport establishes over Hello/HelloAck.
  void NegotiateCodec(const codec::CodecChoice& choice);

  codec::CodecKind wire_codec() const override { return codec_choice_.kind; }

 private:
  ServiceContainer* container_;
  LinkModel link_;
  SimClock* clock_;
  Random rng_;
  int64_t calls_made_ = 0;
  int64_t calls_dropped_ = 0;
  codec::CodecChoice codec_choice_;
  std::unique_ptr<codec::BlockCodec> response_codec_;
};

}  // namespace wsq

#endif  // WSQ_CLIENT_WS_CLIENT_H_
