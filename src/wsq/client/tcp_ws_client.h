#ifndef WSQ_CLIENT_TCP_WS_CLIENT_H_
#define WSQ_CLIENT_TCP_WS_CLIENT_H_

#include <cstdint>
#include <string>

#include "wsq/client/call_transport.h"
#include "wsq/common/clock.h"
#include "wsq/common/status.h"
#include "wsq/net/socket.h"

namespace wsq {

struct TcpWsClientOptions {
  /// Deadline for establishing (or re-establishing) the TCP connection.
  double connect_timeout_ms = 5000.0;
  /// Default per-call deadline when no resilience policy installed a
  /// tighter one via SetCallDeadlineMs. Matches the simulated link's
  /// default timeout so the two transports agree on what "hung" means.
  double default_call_deadline_ms = 30000.0;
  /// The codec to advertise in the connection handshake. SOAP (the
  /// default) skips the handshake entirely — the connection is
  /// wire-identical to a pre-codec client. Binary sends a Hello on every
  /// (re)connect and honors whatever the server picks.
  codec::CodecChoice codec;
  /// Advertise trace-context propagation in the handshake. Off (the
  /// default) keeps the wire byte-identical to a non-tracing client;
  /// on, the Hello carries the "trace" feature token (which forces a
  /// handshake even on SOAP) and, if the server acks it, every request
  /// frame carries a TraceContext and responses ship server spans back.
  bool enable_tracing = false;
  /// Advertise the "crc" frame-integrity feature in the handshake. Off
  /// (the default) keeps the wire byte-identical to a pre-checksum
  /// client; on, and if the server acks it, every frame both ways
  /// carries a CRC-32C trailer and a corrupted frame surfaces as a
  /// retryable kUnavailable instead of parsed garbage.
  bool enable_crc = false;
  /// Advertise the "live" heartbeat feature in the handshake. When
  /// negotiated, the client answers server kPing probes, recognizes
  /// kGoaway drain notices as retryable closes, and may probe the
  /// server itself via Ping().
  bool enable_liveness = false;
};

/// The live WsCallTransport: one framed SOAP exchange per Call over a
/// real TCP connection to a wsqd server, timed on the wall clock.
///
/// Failure semantics mirror the simulated transport exactly, which is
/// what lets BlockFetcher's retry loop run unchanged:
///
///  * connection refused / reset / closed / deadline expired ->
///    kUnavailable, the connection is dropped, and the next Call
///    transparently reconnects. The failed attempt's *measured* wall
///    time is what LastFailureCostMs reports (the sim charges the
///    configured link timeout instead — there no real time passes).
///  * a transient-fault-flagged response (server-side chaos) ->
///    kUnavailable without dropping the connection; the server's cursor
///    did not advance.
///  * a SOAP fault response -> kRemoteFault (terminal, never retried).
///
/// SetCallDeadlineMs is enforced for real: every socket read/write of
/// the exchange runs under a poll deadline of the remaining budget, so
/// a ResiliencePolicy deadline bounds the wall time a dead server can
/// cost — the exact behavior the paper's robustness argument needs.
///
/// Not thread-safe: one TcpWsClient per pull loop (clients wanting
/// parallel queries open one connection each, like the multi-client
/// benchmark does).
class TcpWsClient final : public WsCallTransport {
 public:
  TcpWsClient(std::string host, int port, TcpWsClientOptions options = {});

  /// Eagerly connects; optional (Call connects on demand). Surfaces
  /// kUnavailable when the server is not reachable.
  Status Connect();

  /// Drops the connection; the next Call reconnects.
  void Disconnect();

  bool connected() const { return socket_.valid(); }

  Result<CallResult> Call(const std::string& request_document) override;

  /// Real sleep: retry backoff costs genuine wall time on this transport.
  void AdvanceClockMs(double ms) override;

  const Clock* clock() const override { return &clock_; }

  double LastFailureCostMs() const override { return last_failure_cost_ms_; }

  void SetCallDeadlineMs(double deadline_ms) override {
    call_deadline_ms_ =
        deadline_ms > 0.0 ? deadline_ms : options_.default_call_deadline_ms;
  }

  int64_t calls_made() const { return calls_made_; }
  int64_t calls_failed() const { return calls_failed_; }
  /// Successful re-establishments after a dropped connection (the first
  /// connect does not count).
  int64_t reconnects() const { return reconnects_; }

  /// What the last completed handshake negotiated (kSoap when no
  /// handshake ran — advertising SOAP, or not yet connected).
  codec::CodecKind wire_codec() const override { return negotiated_codec_; }

  bool TracingNegotiated() const override { return trace_negotiated_; }

  /// A completed Hello/HelloAck proves the server is modern enough to
  /// run the replay cache on sequenced requests, whatever codec was
  /// picked; a legacy downgrade (or no handshake) leaves this false and
  /// the SOAP bytes exactly legacy.
  bool SequencedRetriesSafe() const override { return handshake_acked_; }

  /// Whether the current connection's handshake negotiated CRC-32C
  /// frame integrity / liveness heartbeats.
  bool CrcNegotiated() const { return crc_negotiated_; }
  bool LivenessNegotiated() const { return live_negotiated_; }

  /// Active liveness probe: one kPing/kPong round trip under
  /// `timeout_ms` (<= 0 uses the connect timeout). kFailedPrecondition
  /// unless the connection negotiated "live"; kUnavailable when the
  /// peer is gone, half-open, or draining — the connection is dropped
  /// and the next Call reconnects.
  Status Ping(double timeout_ms = 0.0);
  void SetNextCallTrace(uint64_t trace_id, uint64_t span_id) override {
    next_trace_id_ = trace_id;
    next_span_id_ = span_id;
  }
  std::vector<RemoteSpan> TakeRemoteSpans() override {
    std::vector<RemoteSpan> out;
    out.swap(pending_remote_spans_);
    return out;
  }

  /// The clock-offset estimator tracking (server clock - client clock)
  /// for this connection's peer, fed by every traced exchange.
  const ClockOffsetEstimator& clock_offset() const { return clock_offset_; }

 private:
  Result<CallResult> CallOnce(const std::string& request_document);
  /// Runs the Hello/HelloAck exchange on a fresh connection. A peer
  /// that gives a definitive legacy signal (clean close on the unknown
  /// frame, protocol nonsense, a non-ack answer) gets one silent
  /// reconnect speaking SOAP, with Hello probes suppressed for the next
  /// few reconnects. Ambient failures (ack timeout, reset mid-frame)
  /// fail the connect without concluding anything about the peer — the
  /// next reconnect offers the Hello again, so a slow-but-capable
  /// server is never latched onto SOAP.
  Status NegotiateCodec();
  /// True when the next fresh connection should run the handshake.
  bool HandshakeDue() const;

  std::string host_;
  int port_;
  TcpWsClientOptions options_;
  WallClock clock_;
  net::Socket socket_;
  double call_deadline_ms_;
  double last_failure_cost_ms_ = 0.0;
  /// Set by CallOnce when a failure leaves the connection reusable (an
  /// injected transient-fault response — the exchange completed cleanly
  /// at the framing level).
  bool last_failure_keeps_connection_ = false;
  int64_t calls_made_ = 0;
  int64_t calls_failed_ = 0;
  int64_t reconnects_ = 0;
  bool ever_connected_ = false;
  codec::CodecKind negotiated_codec_ = codec::CodecKind::kSoap;
  /// Whether the current connection's handshake negotiated tracing.
  /// Reset on every (re)connect; a downgrade to the legacy path
  /// disables tracing along with the codec.
  bool trace_negotiated_ = false;
  /// Per-connection negotiated features (reset like trace_negotiated_).
  bool crc_negotiated_ = false;
  bool live_negotiated_ = false;
  /// Whether the current connection completed a Hello/HelloAck.
  bool handshake_acked_ = false;
  /// Trace identity stamped on the next Call's request frame.
  uint64_t next_trace_id_ = 0;
  uint64_t next_span_id_ = 0;
  /// Server spans decoded from responses, already clock-aligned onto
  /// this client's timeline; drained by TakeRemoteSpans.
  std::vector<RemoteSpan> pending_remote_spans_;
  ClockOffsetEstimator clock_offset_;
  /// Hello probes are suppressed while reconnects_ is below this,
  /// bumped when a peer gives a definitive legacy signal. A backoff
  /// rather than a permanent latch: a server restarting mid-handshake
  /// also closes cleanly, and a later re-probe restores binary then.
  int64_t suppress_handshake_until_reconnects_ = 0;
};

}  // namespace wsq

#endif  // WSQ_CLIENT_TCP_WS_CLIENT_H_
