#ifndef WSQ_CLIENT_CALL_TRANSPORT_H_
#define WSQ_CLIENT_CALL_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wsq/codec/codec.h"
#include "wsq/common/clock.h"
#include "wsq/common/status.h"
#include "wsq/obs/span_context.h"

namespace wsq {

/// One completed SOAP call as observed from the client side.
struct CallResult {
  std::string response;
  /// Time the call took as measured by the transport's clock: simulated
  /// wire + server time on the in-process transport, real wall time on a
  /// socket transport.
  double elapsed_ms = 0.0;
  /// Wire-time component of elapsed_ms (both legs); lets callers
  /// decompose a call span into network transfer vs server residence.
  double wire_ms = 0.0;
  /// Server residence (service) component of elapsed_ms. The live
  /// transport learns it from the response frame header; the simulated
  /// one from the container's dispatch accounting.
  double service_ms = 0.0;
};

/// The call shape of the paper's `WebService.requestNewBlock`: ship one
/// request document, get one response document, observe how long the
/// exchange took. Two transports implement it:
///
///  * `WsClient`    — the in-process simulated path (container +
///    LinkModel + SimClock);
///  * `TcpWsClient` — a real socket to a `wsqd` server, timed on the
///    wall clock.
///
/// `BlockFetcher` / `BlockShipper` drive either one through this
/// interface, so the pull loop, retry accounting, and observability are
/// byte-for-byte the same code on the simulated and the live path.
class WsCallTransport {
 public:
  virtual ~WsCallTransport() = default;

  /// Performs one request/response exchange. Returns kRemoteFault when
  /// the service answered with a SOAP fault, and kUnavailable when the
  /// exchange failed in transit (simulated drop, socket error, deadline
  /// expiry) — in both cases the elapsed time has already been charged
  /// to the transport's timeline; faults and timeouts cost real time
  /// too.
  virtual Result<CallResult> Call(const std::string& request_document) = 0;

  /// Charges dead time (injected fault costs, retry backoff) to the
  /// transport's timeline without performing an exchange. The simulated
  /// transport advances its SimClock; a wall-clock transport actually
  /// sleeps, so backoff behaves identically on both timelines.
  virtual void AdvanceClockMs(double ms) = 0;

  /// The clock Call charges; timestamps from it are what the pull loop
  /// stamps on trace events (simulated micros or real micros).
  virtual const Clock* clock() const = 0;

  /// Dead time (ms) the most recent failed Call charged to the timeline
  /// — the configured timeout on the simulated link, the measured
  /// elapsed time of the failed attempt on a socket. Only meaningful
  /// right after Call returned kUnavailable.
  virtual double LastFailureCostMs() const = 0;

  /// Hint from the resilience policy: the next Call should give up after
  /// `deadline_ms` (<= 0 restores the transport's default). Transports
  /// that can enforce it (socket poll timeouts) do; the simulated one
  /// ignores it — there the policy caps charged costs directly.
  virtual void SetCallDeadlineMs(double deadline_ms) { (void)deadline_ms; }

  /// The block codec negotiated with the peer — what the pull loop must
  /// encode RequestBlock messages in. SOAP until (unless) a handshake
  /// upgrades it; session-management messages are SOAP on every codec.
  virtual codec::CodecKind wire_codec() const {
    return codec::CodecKind::kSoap;
  }

  /// True when retried RequestBlock calls may carry a sequence number —
  /// i.e. the peer is known to run the idempotent replay cache, so a
  /// retry replays the cached block instead of skipping one. A socket
  /// transport learns this from a completed Hello/HelloAck handshake
  /// (any modern server understands the optional blockSeq element, on
  /// every codec); the default models a legacy peer, whose bytes must
  /// stay untouched.
  virtual bool SequencedRetriesSafe() const { return false; }

  /// True when the connection negotiated trace-context propagation —
  /// requests carry a TraceContext extension and responses ship the
  /// server's spans back. Defaults model a transport without the
  /// feature: nothing is stamped, nothing comes back, and the pull
  /// loop's tracing calls are no-ops.
  virtual bool TracingNegotiated() const { return false; }

  /// Stamps the trace identity of the *next* Call's request frame. The
  /// pull loop calls this per attempt, so every retry is a distinct
  /// client span within the same trace.
  virtual void SetNextCallTrace(uint64_t trace_id, uint64_t span_id) {
    (void)trace_id;
    (void)span_id;
  }

  /// Drains the server-side spans accumulated by completed Calls since
  /// the last take, timestamps already mapped onto this transport's
  /// clock domain by the transport's clock-offset estimator.
  virtual std::vector<RemoteSpan> TakeRemoteSpans() { return {}; }
};

}  // namespace wsq

#endif  // WSQ_CLIENT_CALL_TRANSPORT_H_
