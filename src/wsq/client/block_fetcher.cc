#include "wsq/client/block_fetcher.h"

#include <algorithm>
#include <utility>

#include "wsq/codec/binary_codec.h"
#include "wsq/codec/soap_codec.h"
#include "wsq/fault/exchange_player.h"
#include "wsq/relation/tuple_serializer.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq {
namespace {

const codec::BinaryCodec kBinaryCodec;
const codec::SoapCodec kSoapCodec;

/// Block responses are decoded by what they *are*, not by what was
/// negotiated: a reconnect may have downgraded the connection mid-run,
/// and a sniffed dispatch can never mis-pair codec and payload.
Result<codec::DecodedBlock> DecodeBlockPayload(std::string payload) {
  if (codec::SniffPayloadCodec(payload) == codec::CodecKind::kBinary) {
    return kBinaryCodec.DecodeBlockResponse(std::move(payload));
  }
  return kSoapCodec.DecodeBlockResponse(std::move(payload));
}

/// splitmix64 finalizer — a well-mixed 64-bit trace id out of whatever
/// entropy the caller has (clock micros, object address). Never 0 (0
/// means "no trace" throughout the span plumbing).
uint64_t MixTraceId(uint64_t seed) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

}  // namespace

bool BlockFetcher::NoteFailure(double attempt_cost_ms, bool session_call,
                               int* attempts, FetchOutcome* outcome) {
  if (policy_ != nullptr) {
    policy_->OnExchangeFailure();
    EmitBreakerTransitions(policy_, observer_,
                           client_->clock()->NowMicros());
  }
  if (*attempts >= max_retries_per_call_) return false;
  ++*attempts;
  ++outcome->retries;
  if (session_call) ++outcome->session_retries;
  // A failed exchange costs its (capped) attempt time plus backoff; the
  // accounting lands on the total and the retry pool, never on a block
  // (retries are dead time, not a property of the block size the
  // controller is probing).
  double dead_ms = attempt_cost_ms;
  if (policy_ != nullptr) {
    const double backoff_ms = policy_->BackoffMs(*attempts);
    if (backoff_ms > 0.0) client_->AdvanceClockMs(backoff_ms);
    dead_ms += backoff_ms;
  }
  outcome->total_time_ms += dead_ms;
  outcome->retry_time_ms += dead_ms;
  if (observer_ != nullptr) {
    observer_->OnRetry(client_->clock()->NowMicros(), attempt_cost_ms);
  }
  return true;
}

Result<CallResult> BlockFetcher::CallWithRetry(const std::string& document,
                                               int64_t block_index,
                                               int64_t block_size,
                                               FetchOutcome* outcome) {
  const bool session_call = block_index < 0;
  // Resilience deadlines reach the wire: a transport that can give up on
  // a slow exchange (socket poll timeouts) is told how long to wait; the
  // simulated transport ignores the hint and the policy caps charged
  // costs instead.
  client_->SetCallDeadlineMs(policy_ != nullptr && policy_->HasDeadline()
                                 ? policy_->DeadlineMs(block_size)
                                 : 0.0);
  int attempts = 0;
  while (true) {
    // Scripted faults fire ahead of the wire (block calls only — the
    // plan addresses faults by block index); their capped cost is
    // charged to the simulated clock exactly like a link timeout.
    if (injector_ != nullptr && !session_call) {
      const AttemptFault fault = injector_->NextAttempt(
          block_index,
          static_cast<double>(client_->clock()->NowMicros()) / 1000.0);
      if (fault.faulted) {
        double cost_ms = fault.cost_ms;
        if (policy_ != nullptr) {
          cost_ms = policy_->CapCostMs(cost_ms, block_size);
        }
        if (observer_ != nullptr) {
          observer_->OnFaultInjected(client_->clock()->NowMicros(),
                                     FaultKindName(fault.kind), block_index,
                                     cost_ms);
        }
        client_->AdvanceClockMs(cost_ms);
        if (!NoteFailure(cost_ms, session_call, &attempts, outcome)) {
          return Status::Unavailable(
              "injected faults exhausted the retry budget at block " +
              std::to_string(block_index));
        }
        continue;
      }
    }
    // Each attempt gets its own span id within the run's trace, so a
    // retried block's server spans stay distinguishable per attempt.
    last_call_span_id_ = ++next_span_seq_;
    client_->SetNextCallTrace(trace_id_, last_call_span_id_);
    Result<CallResult> call = client_->Call(document);
    if (call.ok() || call.status().code() != StatusCode::kUnavailable) {
      if (call.ok() && policy_ != nullptr) {
        policy_->OnExchangeSuccess();
        EmitBreakerTransitions(policy_, observer_,
                               client_->clock()->NowMicros());
      }
      return call;
    }
    // Failed exchange: the transport already charged its cost to the
    // timeline (the simulated link's timeout, or the real time a socket
    // attempt burned before erroring out).
    if (!NoteFailure(client_->LastFailureCostMs(), session_call, &attempts,
                     outcome)) {
      return call;
    }
  }
}

Result<FetchOutcome> BlockFetcher::Run(const ScanProjectQuery& query,
                                       const TupleSerializer* serializer,
                                       std::vector<Tuple>* keep_tuples) {
  FetchOutcome outcome;
  const Clock* clock = client_->clock();

  // One trace per query run. Clock micros plus this outcome's address
  // seed the mix, so parallel lanes starting the same microsecond still
  // draw distinct ids.
  trace_id_ = MixTraceId(static_cast<uint64_t>(clock->NowMicros()) ^
                         reinterpret_cast<uintptr_t>(&outcome));
  next_span_seq_ = 0;

  // Open the session.
  OpenSessionRequest open;
  open.table = query.table_name;
  open.columns = query.projected_columns;
  open.filter = query.filter;
  const int64_t open_started = clock->NowMicros();
  Result<CallResult> open_call = CallWithRetry(
      EncodeOpenSession(open), FaultInjector::kSessionCall, 0, &outcome);
  if (!open_call.ok()) return open_call.status();
  if (observer_ != nullptr) {
    observer_->OnSessionOpen(open_started,
                             clock->NowMicros() - open_started);
    const std::vector<RemoteSpan> remote = client_->TakeRemoteSpans();
    if (!remote.empty()) observer_->OnRemoteSpans(remote, trace_id_);
  }
  Result<XmlNode> open_payload = ParseEnvelope(open_call.value().response);
  if (!open_payload.ok()) return open_payload.status();
  Result<OpenSessionResponse> opened =
      DecodeOpenSessionResponse(open_payload.value());
  if (!opened.ok()) return opened.status();
  const int64_t session_id = opened.value().session_id;

  int64_t block_size = controller_->initial_block_size();

  while (true) {
    const int64_t block_index = outcome.total_blocks;

    RequestBlockRequest request;
    request.session_id = session_id;
    request.block_size = block_size;

    // Encode in the negotiated wire form. Requests carry the block
    // index as their sequence number whenever the peer is known to run
    // the idempotent replay cache — always under binary, and under SOAP
    // once a handshake acked (the optional blockSeq element is
    // understood by every handshake-capable server). A retried fetch
    // then re-sends the same sequence and replays rather than skipping
    // a block. Against a legacy peer the SOAP form stays unsequenced
    // (-1): its bytes are exactly the legacy bytes.
    std::string document;
    if (client_->wire_codec() == codec::CodecKind::kBinary) {
      request.sequence = block_index;
      Result<std::string> encoded = kBinaryCodec.EncodeRequestBlock(request);
      if (!encoded.ok()) return encoded.status();
      document = std::move(encoded).value();
    } else {
      if (client_->SequencedRetriesSafe()) request.sequence = block_index;
      document = EncodeRequestBlock(request);
    }

    // t1 .. t2 around the call (Algorithm 1); the simulated clock makes
    // elapsed_ms exactly the charged time.
    const int64_t retries_before = outcome.retries;
    const int64_t t1 = clock->NowMicros();
    Result<CallResult> call =
        CallWithRetry(document, block_index, block_size, &outcome);
    if (!call.ok()) return call.status();

    double elapsed_ms = call.value().elapsed_ms;
    if (injector_ != nullptr) {
      // Success perturbations (latency spikes, server stalls) inflate
      // the completed exchange in place: their extra time is charged to
      // the clock and rides inside the block span, so the controller
      // observes the perturbed cost like any other measurement.
      const SuccessPerturbation perturbation = injector_->OnSuccess(
          block_index, static_cast<double>(clock->NowMicros()) / 1000.0);
      if (perturbation.active()) {
        const double extra_ms =
            perturbation.Apply(elapsed_ms) - elapsed_ms;
        if (extra_ms > 0.0) client_->AdvanceClockMs(extra_ms);
        elapsed_ms += extra_ms;
        if (observer_ != nullptr) {
          observer_->OnFaultInjected(
              clock->NowMicros(),
              perturbation.stall_ms > 0.0
                  ? FaultKindName(FaultKind::kServerStall)
                  : FaultKindName(FaultKind::kLatencySpike),
              block_index, 0.0);
        }
      }
    }
    const int64_t t2 = clock->NowMicros();
    const int64_t response_bytes =
        static_cast<int64_t>(call.value().response.size());
    // The payload buffer moves into the decoder: under binary the
    // decoded block's row views point straight into these bytes — the
    // received frame payload is the last copy that ever exists.
    Result<codec::DecodedBlock> decoded =
        DecodeBlockPayload(std::move(call.value().response));
    if (!decoded.ok()) return decoded.status();
    const codec::DecodedBlock& block = decoded.value();

    if (observer_ != nullptr) {
      // Decompose the successful exchange into wire and server residence
      // time. The legs of the exchange are folded into one wire span
      // preceding the service span; only the split, not the interleaving,
      // is known client-side.
      const int64_t service_us =
          static_cast<int64_t>(call.value().service_ms * 1000.0);
      const int64_t wire_us =
          static_cast<int64_t>(call.value().wire_ms * 1000.0);
      observer_->OnNetworkTransfer(t2 - service_us - wire_us, wire_us);
      observer_->OnServerResidence(t2 - service_us, service_us);
      observer_->OnParse(t2, response_bytes);
    }

    BlockTrace trace;
    trace.block_index = block_index;
    trace.requested_size = block_size;
    trace.received_tuples = block.num_tuples;
    trace.response_time_ms = elapsed_ms;
    trace.retries = outcome.retries - retries_before;

    outcome.total_tuples += block.num_tuples;
    outcome.total_blocks += 1;
    outcome.total_time_ms += elapsed_ms;

    // Keep-tuples: text-mode blocks (SOAP) still need the serializer;
    // binary blocks materialize straight from their column views.
    if (keep_tuples != nullptr && block.num_tuples > 0 &&
        (!block.rows.text_mode() || serializer != nullptr)) {
      Result<std::vector<Tuple>> tuples = block.rows.Materialize(serializer);
      if (!tuples.ok()) return tuples.status();
      for (Tuple& tuple : tuples.value()) {
        keep_tuples->push_back(std::move(tuple));
      }
    }

    // Controllers consume the per-tuple cost so measurements at
    // different block sizes are comparable (see Controller::NextBlockSize).
    const double tuples =
        static_cast<double>(std::max<int64_t>(block.num_tuples, 1));
    const double per_tuple_ms = elapsed_ms / tuples;
    block_size = controller_->NextBlockSize(per_tuple_ms);
    trace.adaptivity_steps = controller_->adaptivity_steps();
    outcome.trace.push_back(trace);
    if (policy_ != nullptr) {
      // An open breaker overrides the controller with the conservative
      // fallback size until the cooldown admits a half-open probe.
      block_size = policy_->GovernNextSize(block_size);
    }

    if (observer_ != nullptr) {
      const bool traced = client_->TracingNegotiated();
      observer_->OnBlock(t1, t2 - t1, trace.requested_size,
                         trace.received_tuples, per_tuple_ms, trace.retries,
                         traced ? trace_id_ : 0,
                         traced ? last_call_span_id_ : 0);
      observer_->OnControllerDecision(t2, controller_->name(),
                                      controller_->DebugState(),
                                      controller_->adaptivity_steps(),
                                      block_size);
      const std::vector<RemoteSpan> remote = client_->TakeRemoteSpans();
      if (!remote.empty()) observer_->OnRemoteSpans(remote, trace_id_);
    }

    if (block.end_of_results) break;
  }

  // Close the session.
  CloseSessionRequest close;
  close.session_id = session_id;
  const int64_t close_started = clock->NowMicros();
  Result<CallResult> close_call = CallWithRetry(
      EncodeCloseSession(close), FaultInjector::kSessionCall, 0, &outcome);
  if (!close_call.ok()) return close_call.status();
  if (observer_ != nullptr) {
    observer_->OnSessionClose(close_started,
                              clock->NowMicros() - close_started);
    const std::vector<RemoteSpan> remote = client_->TakeRemoteSpans();
    if (!remote.empty()) observer_->OnRemoteSpans(remote, trace_id_);
  }

  return outcome;
}

}  // namespace wsq
