#include "wsq/client/block_fetcher.h"

#include <algorithm>

#include "wsq/relation/tuple_serializer.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq {

Result<CallResult> BlockFetcher::CallWithRetry(const std::string& document,
                                               FetchOutcome* outcome) {
  Result<CallResult> call = client_->Call(document);
  int attempts = 0;
  while (!call.ok() && call.status().code() == StatusCode::kUnavailable &&
         attempts < max_retries_per_call_) {
    // A timed-out exchange costs its timeout; the accounting lands on
    // the total (retries are dead time, not a property of the block
    // size the controller is probing).
    const double timeout_ms = client_->link().config().timeout_ms;
    outcome->total_time_ms += timeout_ms;
    ++outcome->retries;
    ++attempts;
    if (observer_ != nullptr) {
      observer_->OnRetry(client_->clock()->NowMicros(), timeout_ms);
    }
    call = client_->Call(document);
  }
  return call;
}

Result<FetchOutcome> BlockFetcher::Run(const ScanProjectQuery& query,
                                       const TupleSerializer* serializer,
                                       std::vector<Tuple>* keep_tuples) {
  FetchOutcome outcome;
  const Clock* clock = client_->clock();

  // Open the session.
  OpenSessionRequest open;
  open.table = query.table_name;
  open.columns = query.projected_columns;
  open.filter = query.filter;
  const int64_t open_started = clock->NowMicros();
  Result<CallResult> open_call =
      CallWithRetry(EncodeOpenSession(open), &outcome);
  if (!open_call.ok()) return open_call.status();
  if (observer_ != nullptr) {
    observer_->OnSessionOpen(open_started,
                             clock->NowMicros() - open_started);
  }
  Result<XmlNode> open_payload = ParseEnvelope(open_call.value().response);
  if (!open_payload.ok()) return open_payload.status();
  Result<OpenSessionResponse> opened =
      DecodeOpenSessionResponse(open_payload.value());
  if (!opened.ok()) return opened.status();
  const int64_t session_id = opened.value().session_id;

  int64_t block_size = controller_->initial_block_size();

  while (true) {
    RequestBlockRequest request;
    request.session_id = session_id;
    request.block_size = block_size;

    // t1 .. t2 around the call (Algorithm 1); the simulated clock makes
    // elapsed_ms exactly the charged time.
    const int64_t retries_before = outcome.retries;
    const int64_t t1 = clock->NowMicros();
    Result<CallResult> call =
        CallWithRetry(EncodeRequestBlock(request), &outcome);
    if (!call.ok()) return call.status();
    const int64_t t2 = clock->NowMicros();
    Result<XmlNode> payload = ParseEnvelope(call.value().response);
    if (!payload.ok()) return payload.status();
    Result<BlockResponse> block = DecodeBlockResponse(payload.value());
    if (!block.ok()) return block.status();

    if (observer_ != nullptr) {
      // Decompose the successful exchange into wire and server residence
      // time. The legs of the exchange are folded into one wire span
      // preceding the service span; only the split, not the interleaving,
      // is known client-side.
      const int64_t service_us =
          static_cast<int64_t>(call.value().service_ms * 1000.0);
      const int64_t wire_us =
          static_cast<int64_t>(call.value().wire_ms * 1000.0);
      observer_->OnNetworkTransfer(t2 - service_us - wire_us, wire_us);
      observer_->OnServerResidence(t2 - service_us, service_us);
      observer_->OnParse(t2,
                         static_cast<int64_t>(call.value().response.size()));
    }

    BlockTrace trace;
    trace.block_index = outcome.total_blocks;
    trace.requested_size = block_size;
    trace.received_tuples = block.value().num_tuples;
    trace.response_time_ms = call.value().elapsed_ms;
    trace.retries = outcome.retries - retries_before;

    outcome.total_tuples += block.value().num_tuples;
    outcome.total_blocks += 1;
    outcome.total_time_ms += call.value().elapsed_ms;

    if (serializer != nullptr && keep_tuples != nullptr &&
        !block.value().payload.empty()) {
      Result<std::vector<Tuple>> tuples =
          serializer->DeserializeBlock(block.value().payload);
      if (!tuples.ok()) return tuples.status();
      for (Tuple& tuple : tuples.value()) {
        keep_tuples->push_back(std::move(tuple));
      }
    }

    // Controllers consume the per-tuple cost so measurements at
    // different block sizes are comparable (see Controller::NextBlockSize).
    const double tuples = static_cast<double>(
        std::max<int64_t>(block.value().num_tuples, 1));
    const double per_tuple_ms = call.value().elapsed_ms / tuples;
    block_size = controller_->NextBlockSize(per_tuple_ms);
    trace.adaptivity_steps = controller_->adaptivity_steps();
    outcome.trace.push_back(trace);

    if (observer_ != nullptr) {
      observer_->OnBlock(t1, t2 - t1, trace.requested_size,
                         trace.received_tuples, per_tuple_ms, trace.retries);
      observer_->OnControllerDecision(t2, controller_->name(),
                                      controller_->DebugState(),
                                      controller_->adaptivity_steps(),
                                      block_size);
    }

    if (block.value().end_of_results) break;
  }

  // Close the session.
  CloseSessionRequest close;
  close.session_id = session_id;
  const int64_t close_started = clock->NowMicros();
  Result<CallResult> close_call =
      CallWithRetry(EncodeCloseSession(close), &outcome);
  if (!close_call.ok()) return close_call.status();
  if (observer_ != nullptr) {
    observer_->OnSessionClose(close_started,
                              clock->NowMicros() - close_started);
  }

  return outcome;
}

}  // namespace wsq
