#ifndef WSQ_CLIENT_BLOCK_SHIPPER_H_
#define WSQ_CLIENT_BLOCK_SHIPPER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wsq/client/block_fetcher.h"
#include "wsq/client/call_transport.h"
#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/relation/table.h"
#include "wsq/relation/tuple_serializer.h"

namespace wsq {

/// The push-direction dual of BlockFetcher: ships a local relation to a
/// remote processing function in blocks whose size the controller
/// chooses from each call's measured cost (paper Algorithm 1 applied to
/// "submitting calls to a WS to perform data processing").
///
/// Shares the FetchOutcome/BlockTrace shapes with the pull direction so
/// the same analysis and experiment code applies to both.
class BlockShipper {
 public:
  /// `client` and `controller` must outlive the shipper. Retries follow
  /// the same policy as BlockFetcher; ProcessBlock calls are safe to
  /// retry because drops are request-losses and the service is
  /// stateless per call.
  BlockShipper(WsCallTransport* client, Controller* controller,
               int max_retries_per_call = 2)
      : client_(client),
        controller_(controller),
        max_retries_per_call_(max_retries_per_call) {}

  /// Ships every row of `input` through remote function `function_name`
  /// (whose input schema must match the table's). `input_schema` /
  /// `output_schema` describe the function contract as published by the
  /// service. When `keep_results` is non-null, the processed tuples are
  /// collected in order.
  Result<FetchOutcome> Run(const Table& input,
                           const std::string& function_name,
                           const Schema& input_schema,
                           const Schema& output_schema,
                           std::vector<Tuple>* keep_results = nullptr);

 private:
  Result<CallResult> CallWithRetry(const std::string& document,
                                   FetchOutcome* outcome);

  WsCallTransport* client_;
  Controller* controller_;
  int max_retries_per_call_;
};

}  // namespace wsq

#endif  // WSQ_CLIENT_BLOCK_SHIPPER_H_
