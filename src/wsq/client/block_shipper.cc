#include "wsq/client/block_shipper.h"

#include <algorithm>

#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq {

Result<CallResult> BlockShipper::CallWithRetry(const std::string& document,
                                               FetchOutcome* outcome) {
  Result<CallResult> call = client_->Call(document);
  int attempts = 0;
  while (!call.ok() && call.status().code() == StatusCode::kUnavailable &&
         attempts < max_retries_per_call_) {
    outcome->total_time_ms += client_->LastFailureCostMs();
    ++outcome->retries;
    ++attempts;
    call = client_->Call(document);
  }
  return call;
}

Result<FetchOutcome> BlockShipper::Run(const Table& input,
                                       const std::string& function_name,
                                       const Schema& input_schema,
                                       const Schema& output_schema,
                                       std::vector<Tuple>* keep_results) {
  if (!input.schema().Equals(input_schema)) {
    return Status::InvalidArgument(
        "input table schema does not match the function's input schema");
  }
  TupleSerializer input_serializer(input_schema);
  TupleSerializer output_serializer(output_schema);

  FetchOutcome outcome;
  int64_t block_size = controller_->initial_block_size();
  size_t position = 0;
  int64_t sequence = 0;

  while (position < input.num_rows()) {
    const size_t take = std::min<size_t>(
        static_cast<size_t>(std::max<int64_t>(block_size, 1)),
        input.num_rows() - position);
    std::vector<Tuple> block(input.rows().begin() + position,
                             input.rows().begin() + position + take);

    Result<std::string> payload = input_serializer.SerializeBlock(block);
    if (!payload.ok()) return payload.status();

    ProcessBlockRequest request;
    request.function = function_name;
    request.sequence = sequence++;
    request.num_tuples = static_cast<int64_t>(take);
    request.payload = std::move(payload).value();

    Result<CallResult> call =
        CallWithRetry(EncodeProcessBlock(request), &outcome);
    if (!call.ok()) return call.status();

    Result<XmlNode> response_payload = ParseEnvelope(call.value().response);
    if (!response_payload.ok()) return response_payload.status();
    Result<ProcessBlockResponse> response =
        DecodeProcessBlockResponse(response_payload.value());
    if (!response.ok()) return response.status();
    if (response.value().sequence != sequence - 1) {
      return Status::Internal("processing response out of sequence");
    }
    if (response.value().num_tuples != static_cast<int64_t>(take)) {
      return Status::Internal(
          "processing function returned a different tuple count");
    }

    if (keep_results != nullptr) {
      Result<std::vector<Tuple>> results =
          output_serializer.DeserializeBlock(response.value().payload);
      if (!results.ok()) return results.status();
      for (Tuple& tuple : results.value()) {
        keep_results->push_back(std::move(tuple));
      }
    }

    BlockTrace trace;
    trace.block_index = outcome.total_blocks;
    trace.requested_size = block_size;
    trace.received_tuples = response.value().num_tuples;
    trace.response_time_ms = call.value().elapsed_ms;

    outcome.total_tuples += response.value().num_tuples;
    outcome.total_blocks += 1;
    outcome.total_time_ms += call.value().elapsed_ms;
    position += take;

    // Same metric contract as the pull loop: per-tuple cost.
    const double tuples =
        static_cast<double>(std::max<int64_t>(response.value().num_tuples, 1));
    block_size = controller_->NextBlockSize(call.value().elapsed_ms / tuples);
    trace.adaptivity_steps = controller_->adaptivity_steps();
    outcome.trace.push_back(trace);
  }
  return outcome;
}

}  // namespace wsq
