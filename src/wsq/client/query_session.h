#ifndef WSQ_CLIENT_QUERY_SESSION_H_
#define WSQ_CLIENT_QUERY_SESSION_H_

#include <memory>
#include <vector>

#include "wsq/client/block_fetcher.h"
#include "wsq/client/ws_client.h"
#include "wsq/common/clock.h"
#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/netsim/link_model.h"
#include "wsq/relation/table.h"
#include "wsq/server/container.h"
#include "wsq/server/data_service.h"
#include "wsq/server/dbms.h"
#include "wsq/server/load_model.h"

namespace wsq {

/// Everything needed to stand up the full simulated stack for one
/// "empirical" experiment: data + query + network path + server load.
struct EmpiricalSetup {
  std::shared_ptr<Table> table;
  ScanProjectQuery query;
  LinkConfig link;
  LoadModelConfig load;
  uint64_t seed = 1;
  /// Block wire codec for the simulated connection (negotiation is
  /// in-process, so the setup just states the outcome). The SOAP
  /// default is byte-identical to the pre-codec stack; binary changes
  /// payload byte counts and therefore simulated wire times — pick per
  /// scenario, not per comparison arm.
  codec::CodecChoice codec;
};

/// Owns the whole client/server stack — DBMS, data service, container,
/// simulated link and clock — and executes queries end to end through
/// the real SOAP path. This is the C++ analogue of the paper's physical
/// testbed (OGSA-DAI on Tomcat + MySQL, client on PlanetLab): the
/// controller under test only ever sees per-block response times.
class QuerySession {
 public:
  /// Fails when the setup is inconsistent (null table, invalid link or
  /// load parameters).
  static Result<std::unique_ptr<QuerySession>> Create(EmpiricalSetup setup);

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// Drains the configured query once under `controller`. When
  /// `keep_tuples` is non-null the result rows are returned too. When
  /// `observer` is non-null the pull loop emits spans/metrics into it,
  /// stamped with this session's simulated clock. `policy` and
  /// `injector` (both optional, not owned) attach the chaos layer to
  /// the fetch loop — see BlockFetcher's chaos constructor.
  Result<FetchOutcome> Execute(Controller* controller,
                               std::vector<Tuple>* keep_tuples = nullptr,
                               RunObserver* observer = nullptr,
                               ResiliencePolicy* policy = nullptr,
                               FaultInjector* injector = nullptr);

  /// Live access for mid-run load changes (e.g. a concurrent query
  /// arriving between two Execute calls).
  ServiceContainer& container() { return *container_; }
  const SimClock& clock() const { return clock_; }
  const Schema& output_schema() const { return *output_schema_; }

 private:
  explicit QuerySession(EmpiricalSetup setup);

  Status Init();

  EmpiricalSetup setup_;
  SimClock clock_;
  Dbms dbms_;
  std::unique_ptr<DataService> service_;
  std::unique_ptr<ServiceContainer> container_;
  std::unique_ptr<WsClient> client_;
  std::unique_ptr<Schema> output_schema_;
  std::unique_ptr<TupleSerializer> serializer_;
};

}  // namespace wsq

#endif  // WSQ_CLIENT_QUERY_SESSION_H_
