#include "wsq/client/tcp_ws_client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "wsq/net/frame.h"
#include "wsq/obs/metrics.h"
#include "wsq/soap/envelope.h"

namespace wsq {
namespace {

/// Reconnects to sit out after a peer answered a Hello with a definitive
/// legacy signal, before probing again. Against a genuinely pre-codec
/// server each re-probe costs one silent reconnect, so this only taxes
/// the rare reconnect path; against a binary-capable server that was
/// mid-restart it bounds how long the client stays downgraded.
constexpr int64_t kHandshakeReprobeBackoff = 3;

/// Negotiation observability: every Hello sent, and every definitive
/// legacy downgrade taken. The downgrade counter staying at zero is how
/// a deployment confirms its whole fleet speaks the negotiated protocol.
Counter& CodecProbesCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("wsq.net.codec_probes");
  return *counter;
}

Counter& CodecDowngradesCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("wsq.net.codec_downgrades");
  return *counter;
}

Counter& SpanDecodeFailuresCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("wsq.client.span_decode_failures");
  return *counter;
}

}  // namespace

TcpWsClient::TcpWsClient(std::string host, int port,
                         TcpWsClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      call_deadline_ms_(options.default_call_deadline_ms) {}

Status TcpWsClient::Connect() {
  if (socket_.valid()) return Status::Ok();
  Result<net::Socket> conn =
      net::TcpConnect(host_, port_, options_.connect_timeout_ms);
  if (!conn.ok()) return conn.status();
  socket_ = std::move(conn).value();
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  // Negotiation runs per connection, so a reconnect after a drop keeps
  // the upgraded codec. Advertising plain SOAP skips the exchange: the
  // byte stream is then indistinguishable from a pre-codec client.
  if (HandshakeDue()) {
    WSQ_RETURN_IF_ERROR(NegotiateCodec());
  } else {
    negotiated_codec_ = codec::CodecKind::kSoap;
    trace_negotiated_ = false;
    crc_negotiated_ = false;
    live_negotiated_ = false;
    handshake_acked_ = false;
  }
  return Status::Ok();
}

bool TcpWsClient::HandshakeDue() const {
  // Tracing/crc/liveness ride the same Hello, so wanting any of them
  // forces a handshake even when the advertised codec is plain SOAP.
  return (options_.codec.kind != codec::CodecKind::kSoap ||
          options_.enable_tracing || options_.enable_crc ||
          options_.enable_liveness) &&
         reconnects_ >= suppress_handshake_until_reconnects_;
}

Status TcpWsClient::NegotiateCodec() {
  negotiated_codec_ = codec::CodecKind::kSoap;
  trace_negotiated_ = false;
  crc_negotiated_ = false;
  live_negotiated_ = false;
  handshake_acked_ = false;
  // The resilience deadline bounds the handshake too: a black-holed
  // connect (SYN accepted, then silence) must cost at most the tighter
  // of the connect timeout and the installed call deadline — not hang.
  double handshake_deadline_ms = options_.connect_timeout_ms;
  if (call_deadline_ms_ > 0.0 && call_deadline_ms_ < handshake_deadline_ms) {
    handshake_deadline_ms = call_deadline_ms_;
  }
  socket_.set_io_timeout_ms(handshake_deadline_ms);

  net::Frame hello;
  hello.type = net::FrameType::kHello;
  hello.payload = codec::AdvertisedCodecs(options_.codec.kind);
  // Feature tokens are appended last: a pre-feature server's
  // NegotiateCodec stops at the codec names it knows, so the extra
  // tokens are invisible to it.
  if (options_.enable_tracing) {
    hello.payload += ',';
    hello.payload += codec::kTraceFeatureToken;
  }
  if (options_.enable_crc) {
    hello.payload += ',';
    hello.payload += codec::kCrcFeatureToken;
  }
  if (options_.enable_liveness) {
    hello.payload += ',';
    hello.payload += codec::kLiveFeatureToken;
  }
  CodecProbesCounter().Increment();
  const Status sent = WriteFrame(socket_, hello);
  Result<net::Frame> ack =
      sent.ok() ? net::ReadFrame(socket_) : Result<net::Frame>(sent);
  if (ack.ok() && ack.value().type == net::FrameType::kHelloAck) {
    const codec::HelloAckParts parts =
        codec::ParseHelloAck(ack.value().payload);
    if (parts.codec_name == "binary") {
      negotiated_codec_ = codec::CodecKind::kBinary;
    }
    trace_negotiated_ = parts.trace && options_.enable_tracing;
    crc_negotiated_ = parts.crc && options_.enable_crc;
    live_negotiated_ = parts.live && options_.enable_liveness;
    handshake_acked_ = true;
    return Status::Ok();
  }

  // Only a definitive legacy signal downgrades: the peer closed cleanly
  // on the unknown Hello frame, rejected it as protocol garbage, or
  // answered with a non-ack frame. A timeout or a reset mid-frame says
  // nothing about the peer, so it surfaces as an ordinary transient
  // connect failure and the next reconnect offers the Hello again.
  const bool legacy_signal =
      ack.ok() || net::IsCleanClose(ack.status()) ||
      ack.status().code() == StatusCode::kInvalidArgument;
  if (!legacy_signal) {
    socket_.Close();
    return ack.status();
  }

  // Almost certainly a pre-codec peer: reconnect once, speak SOAP (and
  // no tracing — the frames must stay byte-identical to what a legacy
  // peer expects), and hold off on Hellos for a few reconnects (see
  // HandshakeDue).
  CodecDowngradesCounter().Increment();
  suppress_handshake_until_reconnects_ = reconnects_ + kHandshakeReprobeBackoff;
  socket_.Close();
  Result<net::Socket> conn =
      net::TcpConnect(host_, port_, options_.connect_timeout_ms);
  if (!conn.ok()) return conn.status();
  socket_ = std::move(conn).value();
  return Status::Ok();
}

void TcpWsClient::Disconnect() { socket_.Close(); }

void TcpWsClient::AdvanceClockMs(double ms) {
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

Result<CallResult> TcpWsClient::CallOnce(const std::string& request_document) {
  last_failure_keeps_connection_ = false;
  if (socket_.valid() && socket_.PeerClosed()) {
    // The server evicted or drained this connection between calls (idle
    // timeout, kGoaway we never read, restart). Reconnect up front
    // instead of burning an attempt writing into a dead socket.
    Disconnect();
  }
  WSQ_RETURN_IF_ERROR(Connect());

  const int64_t start_micros = clock_.NowMicros();
  // Deadline enforcement: every read/write of the exchange polls with
  // the *remaining* call budget, re-derived between the write and the
  // read. (A byte-trickling peer could stretch the total across several
  // partial reads; bounding each step bounds the practical cases — a
  // dead, stalled, or unreachable server.)
  socket_.set_io_timeout_ms(call_deadline_ms_);

  net::Frame request;
  request.type = net::FrameType::kRequest;
  request.payload = request_document;
  request.has_crc = crc_negotiated_;
  if (trace_negotiated_) {
    request.has_trace = true;
    request.trace.trace_id = next_trace_id_;
    request.trace.span_id = next_span_id_;
    request.trace.clock_micros = static_cast<uint64_t>(start_micros);
  }
  WSQ_RETURN_IF_ERROR(WriteFrame(socket_, request));

  // Control frames (server liveness probes, drain notices) may arrive
  // ahead of the response; answer/translate them and keep reading, each
  // time under the remaining budget.
  Result<net::Frame> response = net::Frame{};
  for (;;) {
    const double spent_ms =
        static_cast<double>(clock_.NowMicros() - start_micros) / 1000.0;
    const double remaining_ms = call_deadline_ms_ - spent_ms;
    if (remaining_ms <= 0.0) {
      return Status::Unavailable("call deadline expired before the response");
    }
    socket_.set_io_timeout_ms(remaining_ms);
    response = net::ReadFrame(socket_);
    if (!response.ok()) return response.status();
    if (response.value().type == net::FrameType::kPing) {
      net::Frame pong;
      pong.type = net::FrameType::kPong;
      pong.has_crc = crc_negotiated_;
      WSQ_RETURN_IF_ERROR(WriteFrame(socket_, pong));
      continue;
    }
    if (response.value().type == net::FrameType::kPong) {
      continue;  // answer to an earlier probe; not ours to wait on
    }
    if (response.value().type == net::FrameType::kGoaway) {
      // Graceful drain: retryable exactly like a clean close — the
      // caller drops the connection and the retry reconnects (to the
      // restarted server).
      return Status::Unavailable("server draining (goaway)");
    }
    break;
  }
  if (response.value().type != net::FrameType::kResponse) {
    return Status::InvalidArgument("peer sent a request frame in response");
  }

  const int64_t end_micros = clock_.NowMicros();
  if (response.value().has_trace) {
    // One clock-offset sample per traced exchange: client send/receive
    // times bracket the server's response-encode reading.
    clock_offset_.AddSample(
        start_micros, end_micros,
        static_cast<int64_t>(response.value().trace.clock_micros),
        static_cast<int64_t>(response.value().service_micros));
    if (!response.value().span_block.empty()) {
      Result<std::vector<RemoteSpan>> spans =
          DecodeRemoteSpans(response.value().span_block);
      if (spans.ok()) {
        for (RemoteSpan& span : spans.value()) {
          span.ts_micros = clock_offset_.ToClientMicros(span.ts_micros);
          pending_remote_spans_.push_back(std::move(span));
        }
      } else {
        // Telemetry is best-effort: a hostile or corrupt span block is
        // counted and dropped, never fatal to the data path.
        SpanDecodeFailuresCounter().Increment();
      }
    }
  }

  CallResult result;
  result.elapsed_ms = static_cast<double>(end_micros - start_micros) / 1000.0;
  result.service_ms =
      static_cast<double>(response.value().service_micros) / 1000.0;
  if (result.service_ms > result.elapsed_ms) {
    // Clock skew guard: the decomposition must never go negative.
    result.service_ms = result.elapsed_ms;
  }
  result.wire_ms = result.elapsed_ms - result.service_ms;

  const uint8_t flags = response.value().flags;
  if ((flags & net::kFrameFlagTransientFault) != 0) {
    // Server-side chaos failed this exchange without advancing its
    // cursor; retryable, and the connection itself is still good.
    last_failure_keeps_connection_ = true;
    return Status::Unavailable(
        "service answered with an injected transient fault");
  }
  if ((flags & net::kFrameFlagSoapFault) != 0) {
    // Organic SOAP fault: terminal, like the simulated path. ParseEnvelope
    // surfaces the fault text as a kRemoteFault status.
    Result<XmlNode> payload = ParseEnvelope(response.value().payload);
    return payload.ok()
               ? Status::RemoteFault("service returned an unparsed fault")
               : payload.status();
  }

  result.response = std::move(response.value().payload);
  return result;
}

Result<CallResult> TcpWsClient::Call(const std::string& request_document) {
  ++calls_made_;
  const int64_t start_micros = clock_.NowMicros();
  Result<CallResult> call = CallOnce(request_document);
  if (call.ok()) return call;

  ++calls_failed_;
  last_failure_cost_ms_ =
      static_cast<double>(clock_.NowMicros() - start_micros) / 1000.0;
  if (call.status().code() == StatusCode::kRemoteFault ||
      last_failure_keeps_connection_) {
    // The connection is fine — the *service* said no (terminal fault or
    // retryable injected one).
    return call.status();
  }
  // Anything else (reset, closed, deadline, refused connect, protocol
  // garbage after a partial exchange) leaves the connection in an
  // unusable state: a late response to this exchange could otherwise be
  // mistaken for the next one's. Drop it; the next Call reconnects.
  Disconnect();
  if (call.status().code() == StatusCode::kInvalidArgument &&
      !crc_negotiated_) {
    return call.status();  // not-our-protocol peer: don't mask as transient
  }
  // With crc negotiated the peer has proven it speaks this protocol, so
  // framing garbage (bad magic, nonsense lengths) can only be wire
  // corruption that happened to hit the header instead of the
  // checksummed body — transient, exactly like a CRC mismatch.
  return Status::Unavailable(call.status().message());
}

Status TcpWsClient::Ping(double timeout_ms) {
  if (!socket_.valid()) return Status::FailedPrecondition("not connected");
  if (!live_negotiated_) {
    return Status::FailedPrecondition(
        "liveness was not negotiated on this connection");
  }
  const double deadline_ms =
      timeout_ms > 0.0 ? timeout_ms : options_.connect_timeout_ms;
  const int64_t start_micros = clock_.NowMicros();
  socket_.set_io_timeout_ms(deadline_ms);

  net::Frame ping;
  ping.type = net::FrameType::kPing;
  ping.has_crc = crc_negotiated_;
  Status status = WriteFrame(socket_, ping);
  while (status.ok()) {
    const double spent_ms =
        static_cast<double>(clock_.NowMicros() - start_micros) / 1000.0;
    if (spent_ms >= deadline_ms) {
      status = Status::Unavailable("ping deadline expired");
      break;
    }
    socket_.set_io_timeout_ms(deadline_ms - spent_ms);
    Result<net::Frame> frame = net::ReadFrame(socket_);
    if (!frame.ok()) {
      status = frame.status();
      break;
    }
    if (frame.value().type == net::FrameType::kPong) return Status::Ok();
    if (frame.value().type == net::FrameType::kPing) {
      net::Frame pong;
      pong.type = net::FrameType::kPong;
      pong.has_crc = crc_negotiated_;
      status = WriteFrame(socket_, pong);
      continue;
    }
    if (frame.value().type == net::FrameType::kGoaway) {
      status = Status::Unavailable("server draining (goaway)");
      break;
    }
    // A data frame out of nowhere mid-ping is protocol confusion; drop
    // the connection rather than guess.
    status = Status::Unavailable("unexpected frame while awaiting pong");
    break;
  }
  Disconnect();
  return status.ok() ? Status::Unavailable("ping failed") : status;
}

}  // namespace wsq
