#ifndef WSQ_CLIENT_BLOCK_FETCHER_H_
#define WSQ_CLIENT_BLOCK_FETCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wsq/client/call_transport.h"
#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/fault/fault_injector.h"
#include "wsq/fault/resilience_policy.h"
#include "wsq/obs/run_observer.h"
#include "wsq/relation/query.h"
#include "wsq/relation/tuple.h"

namespace wsq {

/// Per-block record of the fetch loop, the raw material every figure is
/// drawn from.
struct BlockTrace {
  int64_t block_index = 0;
  int64_t requested_size = 0;
  int64_t received_tuples = 0;
  double response_time_ms = 0.0;
  /// Calls retried after a simulated link timeout while fetching this
  /// block (session open/close retries are not attributed to any block).
  int64_t retries = 0;
  /// Controller adaptivity steps completed *after* this block was folded
  /// in (lets analysis group blocks by adaptivity step).
  int64_t adaptivity_steps = 0;
};

/// Result of draining one query through the fetch loop.
struct FetchOutcome {
  int64_t total_tuples = 0;
  int64_t total_blocks = 0;
  /// End-to-end response time: sum of all per-block times (the client is
  /// otherwise idle — pure pull mode). Includes retry timeouts.
  double total_time_ms = 0.0;
  /// Calls retried after a simulated link timeout or an injected fault
  /// (block calls AND session open/close calls).
  int64_t retries = 0;
  /// Subset of `retries` spent on session open/close exchanges — there
  /// is no block to attribute them to, so per-block BlockTrace.retries
  /// covers exactly `retries - session_retries`.
  int64_t session_retries = 0;
  /// Dead time of every retried exchange (link timeouts, capped injected
  /// fault costs, backoff), included in total_time_ms but in no block's
  /// response_time_ms — the cross-backend retry accounting invariant
  /// (see run_trace.h).
  double retry_time_ms = 0.0;
  std::vector<BlockTrace> trace;
};

/// The paper's Algorithm 1 verbatim: open a session, repeatedly pull
/// blocks whose size the controller picks from the previous block's
/// response time, close the session.
///
///   blockSize = initialBlockSize
///   while !end-of-results:
///     t1 = timestamp(); ws.RequestNewBlock(blockSize); t2 = timestamp()
///     blockSize = Controller.computeNewSize(t2 - t1)
class BlockFetcher {
 public:
  /// `client` (either transport — the simulated WsClient or the live
  /// TcpWsClient) and `controller` must outlive the fetcher.
  /// `max_retries_per_call` bounds how often a failed exchange
  /// (StatusCode::kUnavailable) is re-issued before the whole fetch
  /// fails; SOAP faults are never retried (they are deterministic).
  /// `observer`, when non-null, receives the pull loop's spans and
  /// controller decisions stamped with the transport clock's time
  /// (simulated micros or real micros).
  BlockFetcher(WsCallTransport* client, Controller* controller,
               int max_retries_per_call = 2,
               RunObserver* observer = nullptr)
      : client_(client),
        controller_(controller),
        max_retries_per_call_(max_retries_per_call),
        observer_(observer) {}

  /// Chaos-enabled fetcher: `policy` replaces the fixed retry budget
  /// (backoff between attempts, per-call deadlines capping injected
  /// fault costs, circuit breaker governing commanded block sizes) and
  /// `injector` scripts faults ahead of the wire, addressed by block
  /// index on the session's simulated clock. Either may be null; both
  /// must outlive the fetcher and are not owned.
  BlockFetcher(WsCallTransport* client, Controller* controller,
               ResiliencePolicy* policy, FaultInjector* injector,
               RunObserver* observer = nullptr)
      : client_(client),
        controller_(controller),
        max_retries_per_call_(policy != nullptr ? policy->max_retries() : 2),
        observer_(observer),
        policy_(policy),
        injector_(injector) {}

  /// Runs the full fetch loop for `query`. When both `serializer` (built
  /// over the projected output schema) and `keep_tuples` are non-null,
  /// every result tuple is deserialized and appended to `keep_tuples`
  /// (examples want the data; benches only want the trace).
  Result<FetchOutcome> Run(const ScanProjectQuery& query,
                           const class TupleSerializer* serializer = nullptr,
                           std::vector<Tuple>* keep_tuples = nullptr);

 private:
  /// Issues `document`, retrying on kUnavailable (link drops and
  /// injected faults alike, sharing one budget) with any configured
  /// backoff between attempts; accumulates retry counts and dead time
  /// into `outcome`. `block_index` is FaultInjector::kSessionCall for
  /// session open/close exchanges (injected faults are block-addressed
  /// and never fire there; retries are attributed to session_retries).
  Result<CallResult> CallWithRetry(const std::string& document,
                                   int64_t block_index, int64_t block_size,
                                   FetchOutcome* outcome);

  /// Bookkeeping after a failed attempt: feeds the breaker, and when
  /// budget remains charges the attempt's cost plus backoff as retry
  /// dead time. Returns false when the budget is exhausted (the caller
  /// surfaces the failure; the outcome is discarded with the run).
  bool NoteFailure(double attempt_cost_ms, bool session_call, int* attempts,
                   FetchOutcome* outcome);

  WsCallTransport* client_;
  Controller* controller_;
  int max_retries_per_call_;
  RunObserver* observer_;
  ResiliencePolicy* policy_ = nullptr;
  FaultInjector* injector_ = nullptr;

  /// Distributed-trace identity of the current Run: one trace id per
  /// query, one span id per call *attempt* (so retries are distinct
  /// spans of the same trace). Stamped onto the transport before every
  /// attempt; a transport without tracing ignores the stamp.
  uint64_t trace_id_ = 0;
  uint64_t next_span_seq_ = 0;
  uint64_t last_call_span_id_ = 0;
};

}  // namespace wsq

#endif  // WSQ_CLIENT_BLOCK_FETCHER_H_
