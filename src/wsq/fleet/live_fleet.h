#ifndef WSQ_FLEET_LIVE_FLEET_H_
#define WSQ_FLEET_LIVE_FLEET_H_

#include <cstdint>
#include <string>

#include "wsq/client/tcp_ws_client.h"
#include "wsq/common/status.h"
#include "wsq/fleet/fleet_spec.h"
#include "wsq/fleet/fleet_world.h"

namespace wsq::fleet {

/// A fleet pointed at a real wsqd server instead of the simulated
/// world: same FleetSpec (controller mix, arrival offsets, resilience),
/// but every tenant is a live TcpWsClient session on its own thread and
/// all times are wall-clock milliseconds. This is where client-side
/// adaptation meets wsqd's admission control: a server started with a
/// low --shed-watermark sheds bursts from the fleet, shed calls surface
/// as retryable failures, and a chaos ResilienceConfig on the spec
/// absorbs them — the interaction bench_fleet_tenancy measures.
struct LiveFleetOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Table each tenant's scan drains (tuples_per_tenant in the spec is
  /// ignored on the live path — the query runs to the end of the table).
  std::string table_name = "customer";
  FleetSpec spec;
  /// Transport options shared by every tenant (codec handshake, ...).
  TcpWsClientOptions client_options;
  /// Seeds arrival jitter and per-tenant resilience streams.
  uint64_t seed = 1;
};

/// Runs the whole fleet against the server and stitches the lanes into
/// a FleetTrace (start/completion in wall ms relative to fleet launch).
/// Not reproducible across runs — wall time is not seeded. Returns the
/// first tenant failure after all tenants have finished.
Result<FleetTrace> RunLiveFleet(const LiveFleetOptions& options);

}  // namespace wsq::fleet

#endif  // WSQ_FLEET_LIVE_FLEET_H_
