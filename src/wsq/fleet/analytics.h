#ifndef WSQ_FLEET_ANALYTICS_H_
#define WSQ_FLEET_ANALYTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wsq/fleet/fleet_world.h"
#include "wsq/obs/metrics.h"

namespace wsq::fleet {

/// Headline per-tenant numbers distilled from one fleet lane.
struct TenantAnalytics {
  std::string tenant;
  std::string controller;
  int64_t blocks = 0;
  int64_t tuples = 0;
  double response_time_ms = 0.0;
  /// Tuples per second of tenant-perceived response time.
  double throughput_tps = 0.0;
  /// First step index after which every remaining commanded size stays
  /// within the convergence band of the settled mean; -1 = never
  /// converged (see ConvergenceStep).
  int64_t convergence_step = -1;
  /// Tenant-relative time (ms) at which the convergence step's block
  /// completed; -1 when never converged.
  double convergence_time_ms = -1.0;
  /// Mean commanded size over the settled window (0 when never
  /// converged).
  double settled_size = 0.0;
  /// Oscillation score: coefficient of variation of commanded sizes
  /// over the post-convergence window — or over the last half of the
  /// series when the tenant never settles, so thrash still scores.
  double oscillation = 0.0;
  /// Nearest-rank p99 over the lane's per-block wall times (ms).
  double p99_block_ms = 0.0;
  double mean_per_tuple_ms = 0.0;
};

/// Fleet-level fairness / convergence / interference summary.
struct FleetAnalytics {
  std::vector<TenantAnalytics> tenants;
  double makespan_ms = 0.0;
  /// Jain's fairness index over tenant throughputs: (Σx)² / (n·Σx²) —
  /// 1.0 = perfectly fair, 1/n = one tenant got everything.
  double jain_index = 0.0;
  /// Spread of per-tenant p99 block latencies (max - min, ms): the
  /// fairness number a tail-latency SLO reads.
  double p99_spread_ms = 0.0;
  double p99_max_ms = 0.0;
  double p99_min_ms = 0.0;
  /// Fraction of tenants whose block-size series converged.
  double converged_fraction = 0.0;
  /// Mean convergence time over converged tenants; -1 when none did.
  double mean_convergence_time_ms = -1.0;
  double mean_oscillation = 0.0;
  /// Interference: mean pairwise Pearson correlation of commanded
  /// block-size series (truncated to the common length). Positive =
  /// tenants move together (shared congestion), near 0 = independent.
  /// Pair sampling caps at the first `kCorrelationTenantCap` tenants.
  double cross_correlation = 0.0;
  /// Pairs that actually entered the correlation mean.
  int64_t correlation_pairs = 0;
};

/// Tenants considered for cross-correlation (pair count grows
/// quadratically; 64 tenants is already 2016 pairs).
inline constexpr size_t kCorrelationTenantCap = 64;

/// Relative band around the settled mean a series must stay inside to
/// count as converged.
inline constexpr double kConvergenceBand = 0.20;

/// Jain's fairness index; 0 when `xs` is empty, 1 when all values are
/// equal (including all-zero).
double JainIndex(const std::vector<double>& xs);

/// First index k such that every element of sizes[k..] lies within
/// `band` (relative) of the settled mean — the mean of the last
/// max(3, n/4) elements — with at least 3 elements in the settled
/// window. -1 when the series never settles.
int64_t ConvergenceStep(const std::vector<int64_t>& sizes,
                        double band = kConvergenceBand);

/// Pearson correlation of two series truncated to their common length;
/// 0 when either side is constant or shorter than 4 samples.
double PearsonCorrelation(const std::vector<int64_t>& a,
                          const std::vector<int64_t>& b);

/// Distills one fleet trace into the headline analytics.
FleetAnalytics AnalyzeFleet(const FleetTrace& fleet);

/// Exports the analytics through the obs layer: per-tenant series as
/// "wsq.fleet.tenant.<field>{tenant=<name>}" (label values escaped by
/// LabeledName) plus fleet-level "wsq.fleet.<field>" gauges and the
/// "wsq.fleet.tenants_total" counter.
void PublishFleetMetrics(const FleetAnalytics& analytics,
                         MetricsRegistry* registry);

}  // namespace wsq::fleet

#endif  // WSQ_FLEET_ANALYTICS_H_
