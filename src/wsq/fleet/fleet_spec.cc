#include "wsq/fleet/fleet_spec.h"

#include <map>

#include "wsq/common/random.h"

namespace wsq::fleet {

uint64_t FleetMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

int FleetSpec::TenantCount() const {
  int total = 0;
  for (const ControllerMix& entry : mix) total += entry.count;
  return total;
}

Status FleetSpec::Validate() const {
  if (mix.empty()) {
    return Status::InvalidArgument("fleet spec: empty controller mix");
  }
  for (const ControllerMix& entry : mix) {
    if (entry.controller.empty()) {
      return Status::InvalidArgument("fleet spec: empty controller name");
    }
    if (entry.count < 1) {
      return Status::InvalidArgument("fleet spec: mix count must be >= 1");
    }
  }
  if (tuples_per_tenant < 1) {
    return Status::InvalidArgument("fleet spec: tuples_per_tenant must be >= 1");
  }
  if (stagger_interval_ms < 0.0 || arrival_jitter_ms < 0.0) {
    return Status::InvalidArgument("fleet spec: arrival offsets must be >= 0");
  }
  if (resilience.has_value()) {
    WSQ_RETURN_IF_ERROR(resilience->Validate());
  }
  return Status::Ok();
}

Result<std::vector<TenantSpec>> FleetSpec::BuildTenants(uint64_t seed) const {
  WSQ_RETURN_IF_ERROR(Validate());
  std::vector<TenantSpec> tenants;
  tenants.reserve(static_cast<size_t>(TenantCount()));
  std::map<std::string, int> per_controller;
  size_t index = 0;
  for (const ControllerMix& entry : mix) {
    ControllerFactoryFn factory = NamedFactory(entry.controller);
    if (factory() == nullptr) {
      return Status::InvalidArgument("fleet spec: unknown controller: " +
                                     entry.controller);
    }
    for (int i = 0; i < entry.count; ++i, ++index) {
      TenantSpec tenant;
      tenant.name =
          entry.controller + "-" + std::to_string(per_controller[entry.controller]++);
      tenant.factory = factory;
      tenant.dataset_tuples = tuples_per_tenant;
      tenant.resilience = resilience;
      switch (arrival) {
        case ArrivalProcess::kSimultaneous:
          tenant.start_time_ms = 0.0;
          break;
        case ArrivalProcess::kStaggered:
          tenant.start_time_ms =
              static_cast<double>(index) * stagger_interval_ms;
          break;
        case ArrivalProcess::kJittered: {
          // Index-derived stream: tenant i's jitter is a function of
          // (seed, i) alone, so growing the fleet never reshuffles the
          // arrivals of the tenants already in it.
          Random rng(FleetMix64(seed ^ FleetMix64(index)));
          tenant.start_time_ms =
              static_cast<double>(index) * stagger_interval_ms +
              rng.Uniform(0.0, 1.0) * arrival_jitter_ms;
          break;
        }
      }
      tenants.push_back(std::move(tenant));
    }
  }
  return tenants;
}

}  // namespace wsq::fleet
