#include "wsq/fleet/fleet_world.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <queue>
#include <utility>

#include "wsq/common/random.h"
#include "wsq/exec/bench_report.h"
#include "wsq/exec/exec_context.h"
#include "wsq/exec/thread_pool.h"

namespace wsq::fleet {
namespace {

/// Approximate request envelope size on the wire (matches eventsim).
constexpr double kRequestBytes = 600.0;

enum class EventKind {
  kRequestArrives,  // request lands at the server; service begins
  kServiceDone,     // server finished producing the block
  kResponseArrives, // response lands back at the tenant
};

struct Event {
  double time_ms;
  int64_t seq;  // FIFO tiebreak for equal times
  EventKind kind;
  size_t tenant;

  bool operator>(const Event& other) const {
    if (time_ms != other.time_ms) return time_ms > other.time_ms;
    return seq > other.seq;
  }
};

struct TenantState {
  const TenantSpec* spec = nullptr;
  std::unique_ptr<Controller> controller;
  std::unique_ptr<ResiliencePolicy> policy;
  /// Private stream: network jitter legs and service noise, in event
  /// order within this tenant — independent of every other tenant.
  std::unique_ptr<Random> rng;
  int64_t remaining = 0;
  int64_t current_block = 0;
  double request_sent_at = 0.0;
  bool finished = false;
  TenantTrace lane;
};

class World {
 public:
  World(const FleetWorldConfig& config, const std::vector<TenantSpec>& specs)
      : config_(config) {
    tenants_.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      const TenantSpec& spec = specs[i];
      TenantState state;
      state.spec = &spec;
      state.controller = spec.factory();
      // Stream and policy seeds are functions of (world seed, index)
      // alone — growing the fleet never perturbs existing streams.
      const uint64_t stream_seed = FleetMix64(config.seed ^ FleetMix64(i));
      state.rng = std::make_unique<Random>(stream_seed);
      if (spec.resilience.has_value()) {
        state.policy = std::make_unique<ResiliencePolicy>(*spec.resilience,
                                                          stream_seed);
      }
      state.remaining = spec.dataset_tuples;
      state.lane.tenant = spec.name;
      state.lane.start_time_ms = spec.start_time_ms;
      state.lane.trace.backend_name = "fleet";
      tenants_.push_back(std::move(state));
    }
  }

  Result<FleetTrace> Run() {
    for (size_t i = 0; i < tenants_.size(); ++i) {
      TenantState& tenant = tenants_[i];
      tenant.lane.trace.controller_name = tenant.controller->name();
      tenant.current_block = std::min<int64_t>(
          std::max<int64_t>(tenant.controller->initial_block_size(), 1),
          tenant.remaining);
      tenant.request_sent_at = tenant.spec->start_time_ms;
      Push(tenant.request_sent_at + RequestLegMs(tenant), i,
           EventKind::kRequestArrives);
    }

    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      switch (event.kind) {
        case EventKind::kRequestArrives:
          OnRequestArrives(event);
          break;
        case EventKind::kServiceDone:
          OnServiceDone(event);
          break;
        case EventKind::kResponseArrives:
          OnResponseArrives(event);
          break;
      }
    }

    FleetTrace fleet;
    fleet.seed = config_.seed;
    fleet.tenants.reserve(tenants_.size());
    for (TenantState& tenant : tenants_) {
      if (!tenant.finished) {
        return Status::Internal("fleet world ended with an unfinished tenant");
      }
      fleet.makespan_ms =
          std::max(fleet.makespan_ms, tenant.lane.completion_time_ms);
      fleet.tenants.push_back(std::move(tenant.lane));
    }
    return fleet;
  }

 private:
  void Push(double time_ms, size_t tenant, EventKind kind) {
    events_.push(Event{time_ms, next_seq_++, kind, tenant});
  }

  double Jitter(TenantState& tenant) {
    return config_.jitter_sigma > 0.0
               ? tenant.rng->LognormalMultiplier(config_.jitter_sigma)
               : 1.0;
  }

  double LegMs(TenantState& tenant, double bytes) {
    const double transfer_ms =
        bytes * 8.0 / (config_.bandwidth_mbps * 1e6) * 1e3;
    return (config_.one_way_latency_ms + transfer_ms) * Jitter(tenant);
  }

  double RequestLegMs(TenantState& tenant) {
    return LegMs(tenant, kRequestBytes);
  }

  double ResponseLegMs(TenantState& tenant, int64_t tuples) {
    return LegMs(tenant,
                 static_cast<double>(tuples) * config_.bytes_per_tuple);
  }

  void OnRequestArrives(const Event& event) {
    TenantState& tenant = tenants_[event.tenant];
    // The block is priced at the load observed the instant service
    // starts: this request plus every other block currently in service.
    // Later arrivals do not retroactively slow blocks already priced —
    // the O(1)-per-block approximation of processor sharing that lets
    // the world scale to thousands of tenants.
    in_flight_ += 1;
    LoadModelConfig load = config_.load;
    load.concurrent_queries = std::max(in_flight_, 1);
    const LoadModel model(load);
    const double service_ms =
        model.ServiceTimeMs(tenant.current_block, *tenant.rng);
    Push(event.time_ms + service_ms, event.tenant, EventKind::kServiceDone);
  }

  void OnServiceDone(const Event& event) {
    TenantState& tenant = tenants_[event.tenant];
    in_flight_ -= 1;
    Push(event.time_ms + ResponseLegMs(tenant, tenant.current_block),
         event.tenant, EventKind::kResponseArrives);
  }

  void OnResponseArrives(const Event& event) {
    TenantState& tenant = tenants_[event.tenant];
    const double elapsed_ms = event.time_ms - tenant.request_sent_at;
    const int64_t received = tenant.current_block;
    RunTrace& trace = tenant.lane.trace;

    // Algorithm 1: the controller consumes the per-tuple cost of the
    // block that just arrived and names the next size.
    const double per_tuple_ms =
        elapsed_ms / static_cast<double>(std::max<int64_t>(received, 1));
    int64_t next_size = tenant.controller->NextBlockSize(per_tuple_ms);
    if (tenant.policy != nullptr) {
      next_size = tenant.policy->GovernNextSize(next_size);
    }

    RunStep step;
    step.step = trace.total_blocks;
    step.requested_size = received;
    step.received_tuples = received;
    step.per_tuple_ms = per_tuple_ms;
    step.block_time_ms = elapsed_ms;
    step.adaptivity_step = tenant.controller->adaptivity_steps();
    trace.steps.push_back(step);
    trace.total_blocks += 1;
    trace.total_tuples += received;
    tenant.remaining -= received;

    if (tenant.remaining <= 0) {
      tenant.finished = true;
      tenant.lane.completion_time_ms = event.time_ms;
      trace.total_time_ms = event.time_ms - tenant.spec->start_time_ms;
      if (tenant.policy != nullptr) {
        trace.breaker_trips = tenant.policy->breaker_trips();
      }
      return;
    }

    tenant.current_block =
        std::min<int64_t>(std::max<int64_t>(next_size, 1), tenant.remaining);
    tenant.request_sent_at = event.time_ms;
    Push(tenant.request_sent_at + RequestLegMs(tenant), event.tenant,
         EventKind::kRequestArrives);
  }

  FleetWorldConfig config_;
  std::vector<TenantState> tenants_;
  int in_flight_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  int64_t next_seq_ = 0;
};

/// One fleet run: build tenants, run the world, optionally time it.
Status ExecuteFleetRun(const FleetWorldConfig& config, const FleetSpec& spec,
                       uint64_t run_seed, exec::RunTimings* timings,
                       FleetTrace* out) {
  Result<std::vector<TenantSpec>> tenants = spec.BuildTenants(run_seed);
  if (!tenants.ok()) return tenants.status();
  FleetWorldConfig run_config = config;
  run_config.seed = run_seed;

  std::chrono::steady_clock::time_point start;
  if (timings != nullptr) start = std::chrono::steady_clock::now();

  Result<FleetTrace> fleet = RunFleetWorld(run_config, tenants.value());

  if (timings != nullptr) {
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    timings->RecordRunMs(elapsed.count());
  }
  if (!fleet.ok()) return fleet.status();
  *out = std::move(fleet).value();
  return Status::Ok();
}

}  // namespace

Status FleetWorldConfig::Validate() const {
  if (one_way_latency_ms < 0.0) {
    return Status::InvalidArgument("fleet world: latency must be >= 0");
  }
  if (bandwidth_mbps <= 0.0 || bytes_per_tuple <= 0.0) {
    return Status::InvalidArgument(
        "fleet world: bandwidth/tuple size must be > 0");
  }
  if (jitter_sigma < 0.0) {
    return Status::InvalidArgument("fleet world: jitter sigma must be >= 0");
  }
  return load.Validate();
}

Status FleetTrace::CheckConsistent() const {
  double latest = 0.0;
  for (const TenantTrace& lane : tenants) {
    WSQ_RETURN_IF_ERROR(lane.trace.CheckConsistent());
    const double window = lane.completion_time_ms - lane.start_time_ms;
    if (window < 0.0) {
      return Status::Internal("fleet trace: negative tenant window: " +
                              lane.tenant);
    }
    if (std::abs(window - lane.trace.total_time_ms) > 1e-6 * (1.0 + window)) {
      return Status::Internal(
          "fleet trace: lane window does not match total_time_ms: " +
          lane.tenant);
    }
    latest = std::max(latest, lane.completion_time_ms);
  }
  if (!tenants.empty() &&
      std::abs(latest - makespan_ms) > 1e-6 * (1.0 + latest)) {
    return Status::Internal("fleet trace: makespan does not match lanes");
  }
  return Status::Ok();
}

Result<FleetTrace> RunFleetWorld(const FleetWorldConfig& config,
                                 const std::vector<TenantSpec>& tenants) {
  WSQ_RETURN_IF_ERROR(config.Validate());
  if (tenants.empty()) {
    return Status::InvalidArgument("fleet world: no tenants");
  }
  for (const TenantSpec& spec : tenants) {
    if (spec.factory == nullptr || spec.factory() == nullptr) {
      return Status::InvalidArgument("fleet world: tenant without controller: " +
                                     spec.name);
    }
    if (spec.dataset_tuples < 1) {
      return Status::InvalidArgument(
          "fleet world: tenant dataset must be >= 1 tuple: " + spec.name);
    }
    if (spec.start_time_ms < 0.0) {
      return Status::InvalidArgument(
          "fleet world: tenant start must be >= 0: " + spec.name);
    }
    if (spec.resilience.has_value()) {
      WSQ_RETURN_IF_ERROR(spec.resilience->Validate());
    }
  }
  World world(config, tenants);
  return world.Run();
}

Result<std::vector<FleetTrace>> RunFleetRepeated(const FleetWorldConfig& config,
                                                 const FleetSpec& spec,
                                                 int runs, uint64_t base_seed,
                                                 int jobs) {
  if (runs < 1) {
    return Status::InvalidArgument("RunFleetRepeated: runs must be >= 1");
  }
  WSQ_RETURN_IF_ERROR(spec.Validate());
  constexpr uint64_t kSeedStride = 104729;  // the repeated-run stride
  exec::RunTimings* timings = exec::GlobalRunTimings();
  std::vector<FleetTrace> fleets(static_cast<size_t>(runs));

  const int lanes = exec::EffectiveJobs(jobs, runs);
  if (lanes <= 1) {
    for (int run = 0; run < runs; ++run) {
      Status status = ExecuteFleetRun(
          config, spec, base_seed + static_cast<uint64_t>(run) * kSeedStride,
          timings, &fleets[static_cast<size_t>(run)]);
      if (!status.ok()) return status;
    }
    return fleets;
  }

  // Lanes claim whole fleet runs from the shared cursor and write into
  // the run's slot — collection order is run order whatever the
  // interleaving (the same discipline as exec::RunTraces).
  std::atomic<int> next_run{0};
  std::atomic<bool> failed{false};
  std::vector<Status> run_status(static_cast<size_t>(runs), Status::Ok());
  {
    exec::ThreadPool pool(lanes);
    for (int lane = 0; lane < lanes; ++lane) {
      pool.Submit([&] {
        while (!failed.load(std::memory_order_relaxed)) {
          const int run = next_run.fetch_add(1, std::memory_order_relaxed);
          if (run >= runs) break;
          Status status = ExecuteFleetRun(
              config, spec,
              base_seed + static_cast<uint64_t>(run) * kSeedStride, timings,
              &fleets[static_cast<size_t>(run)]);
          if (!status.ok()) {
            run_status[static_cast<size_t>(run)] = std::move(status);
            failed.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
    pool.Wait();
  }
  if (failed.load(std::memory_order_relaxed)) {
    for (const Status& status : run_status) {
      if (!status.ok()) return status;
    }
  }
  return fleets;
}

}  // namespace wsq::fleet
