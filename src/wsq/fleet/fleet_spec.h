#ifndef WSQ_FLEET_FLEET_SPEC_H_
#define WSQ_FLEET_FLEET_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/control/factories.h"
#include "wsq/fault/resilience_policy.h"

namespace wsq::fleet {

/// One tenant session of a co-scheduled fleet: who it is, what it pulls,
/// when it arrives, and how it behaves.
struct TenantSpec {
  /// Unique within the fleet; becomes the trace lane name and the
  /// `tenant=` label on every exported metric (hostile characters are
  /// escaped by the obs layer's LabeledName).
  std::string name;
  /// Builds a fresh controller per run (the paper's "fresh controller
  /// per repetition" discipline, per tenant).
  ControllerFactoryFn factory;
  /// Tuples this tenant's query returns.
  int64_t dataset_tuples = 0;
  /// When the tenant issues its first request (ms on the shared world
  /// timeline); late starts model queries arriving mid-run (churn).
  double start_time_ms = 0.0;
  /// Optional client-side resilience (the breaker's GovernNextSize runs
  /// in the simulated world; the full retry machinery runs on the live
  /// path). Empty = legacy behavior.
  std::optional<ResilienceConfig> resilience;
};

/// How tenant start offsets are laid out on the world timeline.
enum class ArrivalProcess {
  kSimultaneous,  // everyone at t = 0 (thundering herd)
  kStaggered,     // tenant i starts at i * stagger_interval_ms
  kJittered,      // staggered plus a seeded uniform offset per tenant
};

/// "<count> tenants driving controller <controller>" — controller names
/// are ControllerFactory::FromName spellings ("hybrid", "mimd",
/// "adaptive", "fixed:500", ...).
struct ControllerMix {
  std::string controller;
  int count = 0;
};

/// Declarative description of a tenant fleet: the controller mix, how
/// big each tenant's query is, and the arrival process. BuildTenants
/// expands it into concrete TenantSpecs; everything seeded derives from
/// the tenant's *index*, so appending tenants to a spec never perturbs
/// the streams of the tenants already in it (the churn-stability
/// property the determinism suite pins).
struct FleetSpec {
  std::vector<ControllerMix> mix;
  int64_t tuples_per_tenant = 6000;
  ArrivalProcess arrival = ArrivalProcess::kSimultaneous;
  /// kStaggered / kJittered: gap between consecutive tenant starts.
  double stagger_interval_ms = 0.0;
  /// kJittered: each tenant adds a uniform draw from [0, jitter) ms.
  double arrival_jitter_ms = 0.0;
  /// Applied to every tenant the spec builds (per-tenant overrides go
  /// through the TenantSpec vector directly).
  std::optional<ResilienceConfig> resilience;

  int TenantCount() const;
  Status Validate() const;

  /// Expands the mix, in order, into TenantSpecs named
  /// "<controller>-<k>" (k counts per controller spelling). Arrival
  /// jitter is drawn from a stream derived from (seed, tenant index).
  /// kInvalidArgument on an invalid spec or unknown controller name.
  Result<std::vector<TenantSpec>> BuildTenants(uint64_t seed) const;
};

/// SplitMix64 finalizer — the seed-derivation mix the fleet uses to give
/// every (seed, tenant index) pair an independent stream. Shared with
/// the world scheduler so spec-derived and world-derived streams agree.
uint64_t FleetMix64(uint64_t x);

}  // namespace wsq::fleet

#endif  // WSQ_FLEET_FLEET_SPEC_H_
