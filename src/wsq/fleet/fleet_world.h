#ifndef WSQ_FLEET_FLEET_WORLD_H_
#define WSQ_FLEET_FLEET_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wsq/backend/run_trace.h"
#include "wsq/common/status.h"
#include "wsq/fleet/fleet_spec.h"
#include "wsq/server/load_model.h"

namespace wsq::fleet {

/// Environment of the co-scheduled fleet world: one clock, one server
/// capacity model shared by every tenant. Unlike `exec`'s run lanes
/// (independent queries that never see each other) and unlike the
/// event-driven PS simulation (genuine processor sharing, O(active)
/// bookkeeping per completion), the fleet world prices each block with
/// the analytic `LoadModel` evaluated at the *live* in-flight count —
/// `concurrent_queries` is the number of blocks in service the instant
/// this one starts. O(1) per block, so fleets of thousands of tenants
/// stay cheap, while tenants still genuinely interfere: every block a
/// neighbor has in flight inflates your CPU multiplier and shrinks your
/// buffer share. DESIGN.md §3k discusses the approximation.
struct FleetWorldConfig {
  /// One-way network latency per leg (ms) and dedicated per-tenant path
  /// bandwidth — same semantics as EventSimConfig.
  double one_way_latency_ms = 20.0;
  double bandwidth_mbps = 9.0;
  double bytes_per_tuple = 120.0;
  /// Lognormal jitter sigma per network leg; 0 disables. Drawn from the
  /// tenant's private stream.
  double jitter_sigma = 0.0;

  /// Shared server capacity. `load.concurrent_queries` is overwritten
  /// per block with the live in-flight count; `load.concurrent_jobs` /
  /// `memory_pressure` still describe static background load.
  LoadModelConfig load;

  /// World seed; every tenant's private stream derives from
  /// (seed, tenant index), so streams are independent of fleet size.
  uint64_t seed = 1;

  Status Validate() const;
};

/// One tenant's lane of a fleet run: the canonical RunTrace plus its
/// placement on the shared world timeline.
struct TenantTrace {
  std::string tenant;
  double start_time_ms = 0.0;
  /// Absolute completion time on the world clock;
  /// trace.total_time_ms == completion_time_ms - start_time_ms.
  double completion_time_ms = 0.0;
  RunTrace trace;
};

/// All tenant lanes of one fleet run, in TenantSpec input order.
struct FleetTrace {
  uint64_t seed = 0;
  /// Latest tenant completion on the world clock (fleet makespan).
  double makespan_ms = 0.0;
  std::vector<TenantTrace> tenants;

  /// Every lane passes RunTrace::CheckConsistent, lane times tile the
  /// [start, completion] window, and the makespan matches the lanes.
  Status CheckConsistent() const;
};

/// Runs every tenant to completion inside one shared world and returns
/// the stitched fleet trace. Deterministic for (config, tenants):
/// single-threaded event scheduling with FIFO tiebreaks and per-tenant
/// seed-derived streams. kInvalidArgument on bad specs.
Result<FleetTrace> RunFleetWorld(const FleetWorldConfig& config,
                                 const std::vector<TenantSpec>& tenants);

/// Repeated fleet runs fanned out over `jobs` lanes (whole worlds are
/// the unit of parallelism — each run is internally single-threaded).
/// Run r uses world seed `base_seed + r * 104729` and fresh controllers,
/// and results fold in run order, so output is byte-identical whatever
/// `jobs` is (the PR 3 contract). `jobs` <= 0 consults
/// exec::DefaultJobs(). Per-run wall times land in the global RunTimings
/// sink when one is installed.
Result<std::vector<FleetTrace>> RunFleetRepeated(const FleetWorldConfig& config,
                                                 const FleetSpec& spec,
                                                 int runs, uint64_t base_seed,
                                                 int jobs = 0);

}  // namespace wsq::fleet

#endif  // WSQ_FLEET_FLEET_WORLD_H_
