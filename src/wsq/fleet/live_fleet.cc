#include "wsq/fleet/live_fleet.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "wsq/backend/live_backend.h"

namespace wsq::fleet {
namespace {

struct TenantResult {
  Status status = Status::Ok();
  TenantTrace lane;
};

}  // namespace

Result<FleetTrace> RunLiveFleet(const LiveFleetOptions& options) {
  if (options.port <= 0) {
    return Status::InvalidArgument("live fleet: port must be set");
  }
  Result<std::vector<TenantSpec>> built = options.spec.BuildTenants(options.seed);
  if (!built.ok()) return built.status();
  const std::vector<TenantSpec> tenants = std::move(built).value();

  std::vector<TenantResult> results(tenants.size());
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    threads.emplace_back([&, i] {
      const TenantSpec& tenant = tenants[i];
      TenantResult& result = results[i];
      result.lane.tenant = tenant.name;
      if (tenant.start_time_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(tenant.start_time_ms));
      }
      std::unique_ptr<Controller> controller = tenant.factory();
      if (controller == nullptr) {
        result.status =
            Status::InvalidArgument("live fleet: null controller: " + tenant.name);
        return;
      }
      LiveSetup setup;
      setup.host = options.host;
      setup.port = options.port;
      setup.query.table_name = options.table_name;
      setup.client_options = options.client_options;
      setup.seed = FleetMix64(options.seed ^ FleetMix64(i)) | 1;
      LiveBackend backend(std::move(setup));

      RunSpec spec;
      spec.seed = FleetMix64(options.seed ^ FleetMix64(i)) | 1;
      if (tenant.resilience.has_value()) {
        spec.resilience = &*tenant.resilience;
      }
      const std::chrono::duration<double, std::milli> start_offset =
          std::chrono::steady_clock::now() - t0;
      Result<RunTrace> trace = backend.RunQuery(controller.get(), spec);
      if (!trace.ok()) {
        result.status = trace.status();
        return;
      }
      result.lane.trace = std::move(trace).value();
      result.lane.start_time_ms = start_offset.count();
      result.lane.completion_time_ms =
          start_offset.count() + result.lane.trace.total_time_ms;
    });
  }
  for (std::thread& thread : threads) thread.join();

  FleetTrace fleet;
  fleet.seed = options.seed;
  fleet.tenants.reserve(results.size());
  for (TenantResult& result : results) {
    if (!result.status.ok()) return result.status;
    fleet.makespan_ms =
        std::max(fleet.makespan_ms, result.lane.completion_time_ms);
    fleet.tenants.push_back(std::move(result.lane));
  }
  return fleet;
}

}  // namespace wsq::fleet
