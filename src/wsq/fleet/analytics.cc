#include "wsq/fleet/analytics.h"

#include <algorithm>
#include <cmath>

namespace wsq::fleet {
namespace {

double NearestRank(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(q * static_cast<double>(values.size()));
  const size_t index =
      static_cast<size_t>(std::max(rank, 1.0)) - 1;
  return values[std::min(index, values.size() - 1)];
}

double MeanOf(const std::vector<int64_t>& values, size_t from) {
  if (from >= values.size()) return 0.0;
  double sum = 0.0;
  for (size_t i = from; i < values.size(); ++i) {
    sum += static_cast<double>(values[i]);
  }
  return sum / static_cast<double>(values.size() - from);
}

/// Coefficient of variation of values[from..]; 0 with < 2 samples or a
/// non-positive mean.
double CvOf(const std::vector<int64_t>& values, size_t from) {
  if (values.size() < from + 2) return 0.0;
  const double mean = MeanOf(values, from);
  if (mean <= 0.0) return 0.0;
  double ss = 0.0;
  for (size_t i = from; i < values.size(); ++i) {
    const double d = static_cast<double>(values[i]) - mean;
    ss += d * d;
  }
  const double variance = ss / static_cast<double>(values.size() - from);
  return std::sqrt(variance) / mean;
}

}  // namespace

double JainIndex(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;  // all zero: nobody is favored
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

int64_t ConvergenceStep(const std::vector<int64_t>& sizes, double band) {
  const size_t n = sizes.size();
  if (n < 3) return -1;
  const size_t tail = std::max<size_t>(3, n / 4);
  const double settled = MeanOf(sizes, n - tail);
  if (settled <= 0.0) return -1;
  const double lo = settled * (1.0 - band);
  const double hi = settled * (1.0 + band);
  // Walk backwards to the earliest suffix that stays inside the band.
  int64_t first_outside = -1;
  for (size_t i = n; i-- > 0;) {
    const double v = static_cast<double>(sizes[i]);
    if (v < lo || v > hi) {
      first_outside = static_cast<int64_t>(i);
      break;
    }
  }
  const int64_t step = first_outside + 1;
  // The settled window must be a real suffix, not just the last sample.
  if (static_cast<size_t>(step) + 3 > n) return -1;
  return step;
}

double PearsonCorrelation(const std::vector<int64_t>& a,
                          const std::vector<int64_t>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 4) return 0.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += static_cast<double>(a[i]);
    mean_b += static_cast<double>(b[i]);
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = static_cast<double>(a[i]) - mean_a;
    const double db = static_cast<double>(b[i]) - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

FleetAnalytics AnalyzeFleet(const FleetTrace& fleet) {
  FleetAnalytics out;
  out.makespan_ms = fleet.makespan_ms;
  out.tenants.reserve(fleet.tenants.size());

  std::vector<double> throughputs;
  std::vector<double> p99s;
  std::vector<std::vector<int64_t>> size_series;
  double convergence_sum = 0.0;
  int64_t converged = 0;
  double oscillation_sum = 0.0;

  for (const TenantTrace& lane : fleet.tenants) {
    TenantAnalytics t;
    t.tenant = lane.tenant;
    t.controller = lane.trace.controller_name;
    t.blocks = lane.trace.total_blocks;
    t.tuples = lane.trace.total_tuples;
    t.response_time_ms = lane.trace.total_time_ms;
    t.throughput_tps = t.response_time_ms > 0.0
                           ? static_cast<double>(t.tuples) /
                                 (t.response_time_ms / 1000.0)
                           : 0.0;

    const std::vector<int64_t> sizes = lane.trace.RequestedSizes();
    std::vector<double> block_times;
    block_times.reserve(lane.trace.steps.size());
    double per_tuple_sum = 0.0;
    for (const RunStep& step : lane.trace.steps) {
      block_times.push_back(step.block_time_ms);
      per_tuple_sum += step.per_tuple_ms;
    }
    t.p99_block_ms = NearestRank(block_times, 0.99);
    t.mean_per_tuple_ms =
        block_times.empty()
            ? 0.0
            : per_tuple_sum / static_cast<double>(block_times.size());

    t.convergence_step = ConvergenceStep(sizes);
    if (t.convergence_step >= 0) {
      const size_t k = static_cast<size_t>(t.convergence_step);
      double elapsed = 0.0;
      for (size_t i = 0; i <= k && i < block_times.size(); ++i) {
        elapsed += block_times[i];
      }
      t.convergence_time_ms = elapsed;
      t.settled_size = MeanOf(sizes, k);
      t.oscillation = CvOf(sizes, k);
      convergence_sum += t.convergence_time_ms;
      converged += 1;
    } else {
      // Never settled: score the thrash over the tail of the series.
      t.oscillation = CvOf(sizes, sizes.size() / 2);
    }
    oscillation_sum += t.oscillation;

    throughputs.push_back(t.throughput_tps);
    p99s.push_back(t.p99_block_ms);
    size_series.push_back(sizes);
    out.tenants.push_back(std::move(t));
  }

  const size_t n = out.tenants.size();
  if (n == 0) return out;
  out.jain_index = JainIndex(throughputs);
  out.p99_max_ms = *std::max_element(p99s.begin(), p99s.end());
  out.p99_min_ms = *std::min_element(p99s.begin(), p99s.end());
  out.p99_spread_ms = out.p99_max_ms - out.p99_min_ms;
  out.converged_fraction =
      static_cast<double>(converged) / static_cast<double>(n);
  out.mean_convergence_time_ms =
      converged > 0 ? convergence_sum / static_cast<double>(converged) : -1.0;
  out.mean_oscillation = oscillation_sum / static_cast<double>(n);

  const size_t sampled = std::min(n, kCorrelationTenantCap);
  double corr_sum = 0.0;
  int64_t pairs = 0;
  for (size_t i = 0; i < sampled; ++i) {
    for (size_t j = i + 1; j < sampled; ++j) {
      if (std::min(size_series[i].size(), size_series[j].size()) < 4) continue;
      corr_sum += PearsonCorrelation(size_series[i], size_series[j]);
      pairs += 1;
    }
  }
  out.correlation_pairs = pairs;
  out.cross_correlation = pairs > 0 ? corr_sum / static_cast<double>(pairs)
                                    : 0.0;
  return out;
}

void PublishFleetMetrics(const FleetAnalytics& analytics,
                         MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (const TenantAnalytics& t : analytics.tenants) {
    const auto gauge = [&](const char* field, double value) {
      registry
          ->GetGauge(LabeledName(std::string("wsq.fleet.tenant.") + field,
                                 "tenant", t.tenant))
          ->Set(value);
    };
    gauge("throughput_tps", t.throughput_tps);
    gauge("response_time_ms", t.response_time_ms);
    gauge("convergence_ms", t.convergence_time_ms);
    gauge("oscillation", t.oscillation);
    gauge("p99_block_ms", t.p99_block_ms);
    registry
        ->GetCounter(LabeledName("wsq.fleet.tenant.blocks", "tenant", t.tenant))
        ->Increment(t.blocks);
  }
  registry->GetGauge("wsq.fleet.jain_index")->Set(analytics.jain_index);
  registry->GetGauge("wsq.fleet.p99_spread_ms")->Set(analytics.p99_spread_ms);
  registry->GetGauge("wsq.fleet.converged_fraction")
      ->Set(analytics.converged_fraction);
  registry->GetGauge("wsq.fleet.mean_convergence_ms")
      ->Set(analytics.mean_convergence_time_ms);
  registry->GetGauge("wsq.fleet.mean_oscillation")
      ->Set(analytics.mean_oscillation);
  registry->GetGauge("wsq.fleet.cross_correlation")
      ->Set(analytics.cross_correlation);
  registry->GetGauge("wsq.fleet.makespan_ms")->Set(analytics.makespan_ms);
  registry->GetCounter("wsq.fleet.tenants_total")
      ->Increment(static_cast<int64_t>(analytics.tenants.size()));
}

}  // namespace wsq::fleet
