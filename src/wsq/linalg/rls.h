#ifndef WSQ_LINALG_RLS_H_
#define WSQ_LINALG_RLS_H_

#include <vector>

#include "wsq/common/status.h"
#include "wsq/linalg/matrix.h"

namespace wsq {

/// Recursive least squares with exponential forgetting — the self-tuning
/// extension Section IV of the paper flags for "significantly larger
/// queries". Maintains parameter estimates theta and covariance P with
/// the classic update:
///
///   k   = P phi / (lambda + phi^T P phi)
///   theta += k (y - phi^T theta)
///   P   = (P - k phi^T P) / lambda
///
/// where phi is the regressor vector for one observation and lambda in
/// (0, 1] the forgetting factor (1 = ordinary recursive LS; smaller values
/// track drifting optima faster at the cost of noise sensitivity).
class RecursiveLeastSquares {
 public:
  /// `num_params` regressors; `initial_covariance` scales the identity
  /// prior on P (large values mean "know nothing"). `forgetting` must be
  /// in (0, 1].
  RecursiveLeastSquares(size_t num_params, double forgetting,
                        double initial_covariance = 1e6);

  /// Folds one observation (phi, y) into the estimate. Returns
  /// kInvalidArgument when phi has the wrong arity.
  Status Update(const std::vector<double>& phi, double y);

  /// Current estimate; zeros before any update.
  const std::vector<double>& params() const { return theta_; }

  /// Predicted output for a regressor vector under the current estimate.
  Result<double> Predict(const std::vector<double>& phi) const;

  size_t num_params() const { return theta_.size(); }
  size_t num_updates() const { return num_updates_; }
  double forgetting() const { return forgetting_; }

  /// trace(P) — the scalar health check on the covariance: large means
  /// "estimate still uncertain", collapse toward 0 means the forgetting
  /// factor has frozen the filter. Sampled into controller DebugState().
  double CovarianceTrace() const;

  /// Resets to the know-nothing prior, keeping dimensions and lambda.
  void Reset();

 private:
  double forgetting_;
  double initial_covariance_;
  std::vector<double> theta_;
  Matrix p_;
  size_t num_updates_ = 0;
};

}  // namespace wsq

#endif  // WSQ_LINALG_RLS_H_
