#ifndef WSQ_LINALG_MATRIX_H_
#define WSQ_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "wsq/common/status.h"

namespace wsq {

/// Small dense row-major matrix of doubles. Sized for the paper's system
/// identification needs (design matrices of ~6x3 and 3x3 normal
/// equations), so it favors clarity over cache blocking.
class Matrix {
 public:
  /// Creates a rows x cols matrix of zeros. Either dimension may be zero.
  Matrix(size_t rows, size_t cols);

  /// Creates from nested initializer lists; all inner lists must have the
  /// same length (checked, aborts on misuse — construction is a
  /// programming-time act, not a runtime input).
  Matrix(std::initializer_list<std::initializer_list<double>> values);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  static Matrix Identity(size_t n);

  /// Column vector from values.
  static Matrix ColumnVector(const std::vector<double>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double operator()(size_t r, size_t c) const { return At(r, c); }
  double& operator()(size_t r, size_t c) { return At(r, c); }

  Matrix Transposed() const;

  /// Returns this * other; dimensions must agree (checked via Status).
  Result<Matrix> Multiply(const Matrix& other) const;

  /// Elementwise sum/difference; dimensions must agree.
  Result<Matrix> Add(const Matrix& other) const;
  Result<Matrix> Subtract(const Matrix& other) const;

  /// Returns this scaled by `factor`.
  Matrix Scaled(double factor) const;

  /// Max absolute entry; 0 for empty matrices.
  double MaxAbs() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// True when dimensions and all entries match `other` within `tol`.
  bool ApproxEquals(const Matrix& other, double tol) const;

  /// Extracts column `c` as a flat vector.
  std::vector<double> Column(size_t c) const;

  std::string ToString(int precision = 4) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace wsq

#endif  // WSQ_LINALG_MATRIX_H_
