#include "wsq/linalg/rls.h"

#include <algorithm>
#include <cmath>

namespace wsq {

RecursiveLeastSquares::RecursiveLeastSquares(size_t num_params,
                                             double forgetting,
                                             double initial_covariance)
    : forgetting_(std::clamp(forgetting, 1e-3, 1.0)),
      initial_covariance_(initial_covariance),
      theta_(num_params, 0.0),
      p_(Matrix::Identity(num_params).Scaled(initial_covariance)) {}

Status RecursiveLeastSquares::Update(const std::vector<double>& phi,
                                     double y) {
  const size_t p = theta_.size();
  if (phi.size() != p) {
    return Status::InvalidArgument("RLS: regressor arity mismatch");
  }

  // P phi
  std::vector<double> p_phi(p, 0.0);
  for (size_t r = 0; r < p; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < p; ++c) sum += p_.At(r, c) * phi[c];
    p_phi[r] = sum;
  }

  // denom = lambda + phi^T P phi
  double denom = forgetting_;
  for (size_t i = 0; i < p; ++i) denom += phi[i] * p_phi[i];
  if (denom <= 0.0 || !std::isfinite(denom)) {
    return Status::Internal("RLS: covariance degenerated");
  }

  // Gain k = P phi / denom; innovation e = y - phi^T theta.
  double predicted = 0.0;
  for (size_t i = 0; i < p; ++i) predicted += phi[i] * theta_[i];
  const double innovation = y - predicted;

  for (size_t i = 0; i < p; ++i) {
    theta_[i] += (p_phi[i] / denom) * innovation;
  }

  // P = (P - k phi^T P) / lambda, with k phi^T P = (P phi)(P phi)^T / denom
  // because P is symmetric.
  for (size_t r = 0; r < p; ++r) {
    for (size_t c = 0; c < p; ++c) {
      p_.At(r, c) = (p_.At(r, c) - p_phi[r] * p_phi[c] / denom) / forgetting_;
    }
  }
  ++num_updates_;
  return Status::Ok();
}

Result<double> RecursiveLeastSquares::Predict(
    const std::vector<double>& phi) const {
  if (phi.size() != theta_.size()) {
    return Status::InvalidArgument("RLS: regressor arity mismatch");
  }
  double out = 0.0;
  for (size_t i = 0; i < phi.size(); ++i) out += phi[i] * theta_[i];
  return out;
}

double RecursiveLeastSquares::CovarianceTrace() const {
  double trace = 0.0;
  for (size_t i = 0; i < theta_.size(); ++i) trace += p_.At(i, i);
  return trace;
}

void RecursiveLeastSquares::Reset() {
  std::fill(theta_.begin(), theta_.end(), 0.0);
  p_ = Matrix::Identity(theta_.size()).Scaled(initial_covariance_);
  num_updates_ = 0;
}

}  // namespace wsq
