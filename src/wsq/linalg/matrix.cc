#include "wsq/linalg/matrix.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "wsq/common/text_table.h"

namespace wsq {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> values)
    : rows_(values.size()),
      cols_(values.size() == 0 ? 0 : values.begin()->size()) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : values) {
    if (row.size() != cols_) {
      std::fprintf(stderr, "wsq: ragged Matrix initializer\n");
      std::abort();
    }
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) m.At(i, 0) = values[i];
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Result<Matrix> Matrix::Multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("matrix multiply dimension mismatch");
  }
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return out;
}

Result<Matrix> Matrix::Add(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("matrix add dimension mismatch");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Result<Matrix> Matrix::Subtract(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("matrix subtract dimension mismatch");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scaled(double factor) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= factor;
  return out;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::vector<double> Matrix::Column(size_t c) const {
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = At(r, c);
  return out;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream out;
  for (size_t r = 0; r < rows_; ++r) {
    out << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) out << ", ";
      out << FormatDouble(At(r, c), precision);
    }
    out << "]\n";
  }
  return out.str();
}

}  // namespace wsq
