#include "wsq/linalg/least_squares.h"

#include <algorithm>
#include <cmath>

namespace wsq {
namespace {

/// Relative pivot threshold below which the system is declared singular.
constexpr double kSingularTol = 1e-12;

Result<FitResult> FitResultFromParams(const Matrix& basis,
                                      const std::vector<double>& y,
                                      const Matrix& params) {
  FitResult fit;
  fit.params = params.Column(0);

  // Residual metrics on the sample set.
  Result<Matrix> predicted = basis.Multiply(params);
  if (!predicted.ok()) return predicted.status();
  double ss_res = 0.0;
  double mean_y = 0.0;
  for (double v : y) mean_y += v;
  mean_y /= static_cast<double>(y.size());
  double ss_tot = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - predicted.value().At(i, 0);
    ss_res += r * r;
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.rmse = std::sqrt(ss_res / static_cast<double>(y.size()));
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace

Result<Matrix> SolveLinearSystem(const Matrix& a, const Matrix& b) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("SolveLinearSystem: A must be square");
  }
  if (b.rows() != n || b.cols() != 1) {
    return Status::InvalidArgument("SolveLinearSystem: b must be n x 1");
  }

  // Working copies for in-place elimination.
  Matrix m = a;
  Matrix rhs = b;

  // Scale reference for the singularity test.
  const double scale = std::max(m.MaxAbs(), 1.0);

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry to the diagonal.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(m.At(r, col)) > std::fabs(m.At(pivot, col))) pivot = r;
    }
    if (std::fabs(m.At(pivot, col)) < kSingularTol * scale) {
      return Status::FailedPrecondition(
          "SolveLinearSystem: matrix is singular or near-singular");
    }
    if (pivot != col) {
      for (size_t c = col; c < n; ++c) std::swap(m.At(pivot, c), m.At(col, c));
      std::swap(rhs.At(pivot, 0), rhs.At(col, 0));
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = m.At(r, col) / m.At(col, col);
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) m.At(r, c) -= factor * m.At(col, c);
      rhs.At(r, 0) -= factor * rhs.At(col, 0);
    }
  }

  // Back substitution.
  Matrix x(n, 1);
  for (size_t i = n; i-- > 0;) {
    double sum = rhs.At(i, 0);
    for (size_t c = i + 1; c < n; ++c) sum -= m.At(i, c) * x.At(c, 0);
    x.At(i, 0) = sum / m.At(i, i);
  }
  return x;
}

Result<Matrix> LeastSquares(const Matrix& x, const Matrix& y) {
  if (y.cols() != 1 || y.rows() != x.rows()) {
    return Status::InvalidArgument("LeastSquares: y must be n x 1 matching X");
  }
  if (x.rows() < x.cols()) {
    return Status::InvalidArgument(
        "LeastSquares: need at least as many samples as parameters");
  }

  // Equilibrate: scale each basis column to unit max magnitude so the
  // normal equations stay well-conditioned even for raw polynomial bases
  // (x^2 reaches ~4e8 for 20000-tuple blocks while the constant column
  // is 1). Parameters are unscaled on the way out.
  std::vector<double> column_scale(x.cols(), 1.0);
  Matrix scaled = x;
  for (size_t c = 0; c < x.cols(); ++c) {
    double max_abs = 0.0;
    for (size_t r = 0; r < x.rows(); ++r) {
      max_abs = std::max(max_abs, std::fabs(x.At(r, c)));
    }
    if (max_abs > 0.0) {
      column_scale[c] = max_abs;
      for (size_t r = 0; r < x.rows(); ++r) {
        scaled.At(r, c) /= max_abs;
      }
    }
  }

  const Matrix xt = scaled.Transposed();
  Result<Matrix> xtx = xt.Multiply(scaled);
  if (!xtx.ok()) return xtx.status();
  Result<Matrix> xty = xt.Multiply(y);
  if (!xty.ok()) return xty.status();
  Result<Matrix> params = SolveLinearSystem(xtx.value(), xty.value());
  if (!params.ok()) return params.status();
  for (size_t c = 0; c < x.cols(); ++c) {
    params.value().At(c, 0) /= column_scale[c];
  }
  return params;
}

Result<FitResult> FitWithBasis(const Matrix& basis,
                               const std::vector<double>& y) {
  if (y.size() != basis.rows() || y.empty()) {
    return Status::InvalidArgument("FitWithBasis: sample count mismatch");
  }
  Result<Matrix> params = LeastSquares(basis, Matrix::ColumnVector(y));
  if (!params.ok()) return params.status();
  return FitResultFromParams(basis, y, params.value());
}

Result<FitResult> FitQuadratic(const std::vector<double>& x,
                               const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitQuadratic: x/y size mismatch");
  }
  if (x.size() < 3) {
    return Status::InvalidArgument("FitQuadratic: need >= 3 samples");
  }
  Matrix basis(x.size(), 3);
  for (size_t i = 0; i < x.size(); ++i) {
    basis.At(i, 0) = x[i] * x[i];
    basis.At(i, 1) = x[i];
    basis.At(i, 2) = 1.0;
  }
  return FitWithBasis(basis, y);
}

Result<FitResult> FitParabolic(const std::vector<double>& x,
                               const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitParabolic: x/y size mismatch");
  }
  if (x.size() < 3) {
    return Status::InvalidArgument("FitParabolic: need >= 3 samples");
  }
  Matrix basis(x.size(), 3);
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] == 0.0) {
      return Status::InvalidArgument("FitParabolic: x values must be nonzero");
    }
    basis.At(i, 0) = 1.0 / x[i];
    basis.At(i, 1) = x[i];
    basis.At(i, 2) = 1.0;
  }
  return FitWithBasis(basis, y);
}

}  // namespace wsq
