#ifndef WSQ_LINALG_LEAST_SQUARES_H_
#define WSQ_LINALG_LEAST_SQUARES_H_

#include <vector>

#include "wsq/common/status.h"
#include "wsq/linalg/matrix.h"

namespace wsq {

/// Solves the square linear system A x = b by Gaussian elimination with
/// partial pivoting. Returns kInvalidArgument on dimension mismatch and
/// kFailedPrecondition when A is (numerically) singular.
Result<Matrix> SolveLinearSystem(const Matrix& a, const Matrix& b);

/// Ordinary least squares: minimizes ||X d - y||_2 via the normal
/// equations d = (X^T X)^{-1} X^T y — exactly Eq. (10) of the paper.
/// `x` is the n x p design matrix, `y` the n x 1 observation vector;
/// requires n >= p. Returns the p x 1 parameter vector.
Result<Matrix> LeastSquares(const Matrix& x, const Matrix& y);

/// Convenience results of a polynomial-style fit plus quality metrics.
struct FitResult {
  /// Fitted parameters, in the order of the supplied basis columns.
  std::vector<double> params;
  /// Root-mean-square residual of the fit on the sample set.
  double rmse = 0.0;
  /// Coefficient of determination on the sample set (1 = perfect);
  /// can be negative for degenerate fits.
  double r_squared = 0.0;
};

/// Fits y = params[0]*basis_0(x) + ... over paired samples, where the
/// caller provides each basis column evaluated at the sample x values
/// (columns of `basis`, one row per sample).
Result<FitResult> FitWithBasis(const Matrix& basis,
                               const std::vector<double>& y);

/// Fits the paper's quadratic model  y = a1 x^2 + b1 x + c1 (Eq. 8).
/// params = {a1, b1, c1}.
Result<FitResult> FitQuadratic(const std::vector<double>& x,
                               const std::vector<double>& y);

/// Fits the paper's parabolic model  y = a2/x + b2 x + c2 (Eq. 9).
/// params = {a2, b2, c2}. All sample x values must be nonzero.
Result<FitResult> FitParabolic(const std::vector<double>& x,
                               const std::vector<double>& y);

}  // namespace wsq

#endif  // WSQ_LINALG_LEAST_SQUARES_H_
