#include "wsq/exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace wsq::exec {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(threads, 1);
  threads_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int ThreadPool::HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping so ~ThreadPool keeps the
      // "everything submitted runs" contract.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace wsq::exec
