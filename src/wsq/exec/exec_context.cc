#include "wsq/exec/exec_context.h"

#include <algorithm>
#include <atomic>

namespace wsq::exec {
namespace {

std::atomic<int> g_default_jobs{1};

}  // namespace

int DefaultJobs() { return g_default_jobs.load(std::memory_order_relaxed); }

void SetDefaultJobs(int jobs) {
  g_default_jobs.store(std::max(jobs, 1), std::memory_order_relaxed);
}

int EffectiveJobs(int jobs, int runs) {
  if (jobs <= 0) jobs = DefaultJobs();
  return std::max(1, std::min(jobs, runs));
}

}  // namespace wsq::exec
