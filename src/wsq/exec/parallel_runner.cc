#include "wsq/exec/parallel_runner.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "wsq/exec/bench_report.h"
#include "wsq/exec/exec_context.h"
#include "wsq/exec/thread_pool.h"

namespace wsq::exec {
namespace {

/// One run: fresh controller, derived seed, optional wall timing.
Status ExecuteRun(const ControllerFactoryFn& make_controller,
                  QueryBackend& backend, const RunSpec& spec, int run,
                  uint64_t base_seed, uint64_t seed_stride,
                  RunTimings* timings, RunTrace* out) {
  std::unique_ptr<Controller> controller = make_controller();
  if (controller == nullptr) {
    return Status::InvalidArgument("RunRepeated: factory returned null");
  }
  RunSpec run_spec = spec;
  run_spec.seed = base_seed + static_cast<uint64_t>(run) * seed_stride;

  std::chrono::steady_clock::time_point start;
  if (timings != nullptr) start = std::chrono::steady_clock::now();

  Result<RunTrace> trace = backend.RunQuery(controller.get(), run_spec);

  if (timings != nullptr) {
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    timings->RecordRunMs(elapsed.count());
  }
  if (!trace.ok()) return trace.status();
  *out = std::move(trace).value();
  return Status::Ok();
}

}  // namespace

Result<std::vector<RunTrace>> RunTraces(
    const ControllerFactoryFn& make_controller, QueryBackend& backend,
    const RunSpec& spec, int runs, uint64_t base_seed, uint64_t seed_stride,
    int jobs) {
  if (runs < 1) {
    return Status::InvalidArgument("RunRepeated: runs must be >= 1");
  }
  RunTimings* timings = GlobalRunTimings();
  std::vector<RunTrace> traces(static_cast<size_t>(runs));

  int lanes = EffectiveJobs(jobs, runs);

  // Parallel lanes need private backend clones; an uncloneable backend
  // (custom adapters, stateful empirical rigs) degrades to serial.
  std::vector<std::unique_ptr<QueryBackend>> clones;
  if (lanes > 1) {
    clones.reserve(static_cast<size_t>(lanes));
    for (int lane = 0; lane < lanes; ++lane) {
      std::unique_ptr<QueryBackend> clone = backend.Clone();
      if (clone == nullptr) {
        clones.clear();
        lanes = 1;
        break;
      }
      clones.push_back(std::move(clone));
    }
  }

  if (lanes <= 1) {
    for (int run = 0; run < runs; ++run) {
      Status status = ExecuteRun(make_controller, backend, spec, run,
                                 base_seed, seed_stride, timings,
                                 &traces[static_cast<size_t>(run)]);
      if (!status.ok()) return status;
    }
    return traces;
  }

  // Each lane claims runs from the shared cursor and writes its trace
  // into the run's slot — collection order is run order whatever the
  // interleaving. A failure flips `failed` so other lanes stop claiming.
  std::atomic<int> next_run{0};
  std::atomic<bool> failed{false};
  std::vector<Status> run_status(static_cast<size_t>(runs), Status::Ok());

  {
    ThreadPool pool(lanes);
    for (int lane = 0; lane < lanes; ++lane) {
      QueryBackend* lane_backend = clones[static_cast<size_t>(lane)].get();
      pool.Submit([&, lane_backend] {
        while (!failed.load(std::memory_order_relaxed)) {
          const int run = next_run.fetch_add(1, std::memory_order_relaxed);
          if (run >= runs) break;
          Status status = ExecuteRun(make_controller, *lane_backend, spec,
                                     run, base_seed, seed_stride, timings,
                                     &traces[static_cast<size_t>(run)]);
          if (!status.ok()) {
            run_status[static_cast<size_t>(run)] = std::move(status);
            failed.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
    pool.Wait();
  }

  if (failed.load(std::memory_order_relaxed)) {
    for (const Status& status : run_status) {
      if (!status.ok()) return status;
    }
  }
  return traces;
}

}  // namespace wsq::exec
