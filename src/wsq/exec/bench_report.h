#ifndef WSQ_EXEC_BENCH_REPORT_H_
#define WSQ_EXEC_BENCH_REPORT_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "wsq/common/status.h"

namespace wsq::exec {

/// Thread-safe collector of per-run wall-clock durations. The parallel
/// runner records one sample per completed run into the process-global
/// instance when one is installed (bench binaries install it for
/// `--bench-json`); exact percentiles come from the raw samples, not a
/// bucketed sketch, because a bench performs at most a few thousand
/// runs.
class RunTimings {
 public:
  RunTimings() = default;
  RunTimings(const RunTimings&) = delete;
  RunTimings& operator=(const RunTimings&) = delete;

  void RecordRunMs(double wall_ms);

  size_t runs() const;
  std::vector<double> SnapshotMs() const;

  /// Exact nearest-rank percentile (q in [0, 1]) over the recorded
  /// samples; NaN when empty.
  double PercentileMs(double q) const;
  double MeanMs() const;
  double MinMs() const;
  double MaxMs() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> run_ms_;
};

/// Process-global timing sink consulted by the run harness; null (the
/// default) disables per-run timing entirely — not even a clock read
/// happens. Not owned.
RunTimings* GlobalRunTimings();
void SetGlobalRunTimings(RunTimings* timings);

/// Header of one machine-readable bench summary — the repo's
/// `BENCH_*.json` perf-trajectory row. Serialized shape
/// (schema_version 1):
///
///   {"schema_version":1,"bench":"<binary>","jobs":N,
///    "hardware_concurrency":H,"wall_time_s":S,"runs":R,
///    "runs_per_sec":V,
///    "run_ms":{"mean":..,"min":..,"max":..,"p50":..,"p99":..}}
struct BenchReport {
  std::string bench;
  int jobs = 1;
  int hardware_concurrency = 0;
  double wall_time_s = 0.0;
};

std::string BenchReportJson(const BenchReport& report,
                            const RunTimings& timings);

Status WriteBenchReport(const std::string& path, const BenchReport& report,
                        const RunTimings& timings);

/// Composite form for multi-phase benches: one top-level
/// `{"schema_version":1,"reports":[...]}` document whose entries are
/// flat BenchReportJson rows (phases conventionally named
/// "<bench>/<phase>"). The regression gate matches entries to baseline
/// rows by their "bench" name, so each phase gets its own trajectory.
/// Null timings entries are skipped.
std::string CompositeBenchReportJson(
    const std::vector<std::pair<BenchReport, const RunTimings*>>& phases);

Status WriteCompositeBenchReport(
    const std::string& path,
    const std::vector<std::pair<BenchReport, const RunTimings*>>& phases);

}  // namespace wsq::exec

#endif  // WSQ_EXEC_BENCH_REPORT_H_
