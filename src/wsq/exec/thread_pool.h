#ifndef WSQ_EXEC_THREAD_POOL_H_
#define WSQ_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsq::exec {

/// Fixed-size worker pool — deliberately work-stealing-free: the
/// experiment harness fans out *run lanes* that claim independent runs
/// from a shared atomic cursor themselves, so the pool only needs FIFO
/// dispatch and a barrier. Tasks must not throw (the library is
/// exception-free); a task that does terminates the process.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task; runs on some worker, FIFO order.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void Wait();

  int thread_count() const { return static_cast<int>(threads_.size()); }

  /// Tasks submitted but not yet claimed by a worker — the live stats
  /// plane's queue-depth gauge. A snapshot, stale by the time it
  /// returns; fine for telemetry, useless for synchronization.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// max(1, std::thread::hardware_concurrency()) — the default lane
  /// count for `--jobs`.
  static int HardwareConcurrency();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stop
  std::condition_variable idle_cv_;   // Wait(): queue empty and all idle
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool stop_ = false;
};

}  // namespace wsq::exec

#endif  // WSQ_EXEC_THREAD_POOL_H_
