#ifndef WSQ_EXEC_PARALLEL_RUNNER_H_
#define WSQ_EXEC_PARALLEL_RUNNER_H_

#include <cstdint>
#include <vector>

#include "wsq/backend/query_backend.h"
#include "wsq/common/status.h"
#include "wsq/control/factories.h"

namespace wsq::exec {

/// Executes `runs` independent query runs of `make_controller` on
/// `backend` and returns their RunTraces *in run order*. Run `r` is
/// seeded `base_seed + r * seed_stride` — the exact derivation the
/// serial harness has always used — and gets a controller of its own,
/// so the traces are a pure function of (backend config, factory,
/// seeds) and never of the lane count.
///
/// `jobs` <= 0 resolves to DefaultJobs(); the effective lane count is
/// also capped at `runs`. One lane — or a backend whose Clone() returns
/// null — executes serially on the calling thread against `backend`
/// itself, byte-identical to the historical loop. More lanes fan the
/// runs out over a fixed ThreadPool, each lane owning a private
/// backend clone (concurrent runs never share mutable sim state:
/// RNG, clocks, and observability time cursors are all per-clone or
/// per-run).
///
/// When a process-global RunTimings is installed (see bench_report.h),
/// every completed run contributes its wall-clock duration; otherwise
/// no timing work happens at all.
///
/// On the first failing run the harness stops claiming new runs and
/// returns that run's status (the lowest-index failure when several
/// lanes fail together).
Result<std::vector<RunTrace>> RunTraces(
    const ControllerFactoryFn& make_controller, QueryBackend& backend,
    const RunSpec& spec, int runs, uint64_t base_seed, uint64_t seed_stride,
    int jobs = 0);

}  // namespace wsq::exec

#endif  // WSQ_EXEC_PARALLEL_RUNNER_H_
