#ifndef WSQ_EXEC_EXEC_CONTEXT_H_
#define WSQ_EXEC_EXEC_CONTEXT_H_

namespace wsq::exec {

/// Process-wide default lane count consulted by the repeated-run
/// harnesses (RunRepeated / RunRepeatedSchedule) when no explicit job
/// count is given. Starts at 1 — the library is serial unless a caller
/// opts in — and bench binaries set it from `--jobs` (default: the
/// machine's hardware concurrency).
int DefaultJobs();

/// Sets the default lane count (clamped to >= 1). Thread-safe, but
/// intended for process setup (bench flag parsing, test fixtures).
void SetDefaultJobs(int jobs);

/// Resolves an explicit job request against the default and the run
/// count: `jobs` <= 0 means "use DefaultJobs()", and no more lanes than
/// runs are ever used.
int EffectiveJobs(int jobs, int runs);

/// RAII override of the process default for a scope (tests, nested
/// harnesses); restores the previous value on destruction.
class ScopedDefaultJobs {
 public:
  explicit ScopedDefaultJobs(int jobs) : previous_(DefaultJobs()) {
    SetDefaultJobs(jobs);
  }
  ~ScopedDefaultJobs() { SetDefaultJobs(previous_); }
  ScopedDefaultJobs(const ScopedDefaultJobs&) = delete;
  ScopedDefaultJobs& operator=(const ScopedDefaultJobs&) = delete;

 private:
  int previous_;
};

}  // namespace wsq::exec

#endif  // WSQ_EXEC_EXEC_CONTEXT_H_
