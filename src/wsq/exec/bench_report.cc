#include "wsq/exec/bench_report.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <limits>

#include "wsq/obs/json_lite.h"

namespace wsq::exec {
namespace {

std::atomic<RunTimings*> g_run_timings{nullptr};

double NearestRank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const size_t index =
      static_cast<size_t>(std::max(rank, 1.0)) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

void RunTimings::RecordRunMs(double wall_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  run_ms_.push_back(wall_ms);
}

size_t RunTimings::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return run_ms_.size();
}

std::vector<double> RunTimings::SnapshotMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return run_ms_;
}

double RunTimings::PercentileMs(double q) const {
  std::vector<double> sorted = SnapshotMs();
  std::sort(sorted.begin(), sorted.end());
  return NearestRank(sorted, q);
}

double RunTimings::MeanMs() const {
  std::vector<double> samples = SnapshotMs();
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (double v : samples) sum += v;
  return sum / static_cast<double>(samples.size());
}

double RunTimings::MinMs() const {
  std::vector<double> samples = SnapshotMs();
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(samples.begin(), samples.end());
}

double RunTimings::MaxMs() const {
  std::vector<double> samples = SnapshotMs();
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(samples.begin(), samples.end());
}

void RunTimings::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  run_ms_.clear();
}

RunTimings* GlobalRunTimings() {
  return g_run_timings.load(std::memory_order_acquire);
}

void SetGlobalRunTimings(RunTimings* timings) {
  g_run_timings.store(timings, std::memory_order_release);
}

std::string BenchReportJson(const BenchReport& report,
                            const RunTimings& timings) {
  const size_t runs = timings.runs();
  const double runs_per_sec =
      report.wall_time_s > 0.0
          ? static_cast<double>(runs) / report.wall_time_s
          : 0.0;
  std::string out = "{\"schema_version\":1";
  out += ",\"bench\":\"" + JsonEscape(report.bench) + "\"";
  out += ",\"jobs\":" + std::to_string(report.jobs);
  out += ",\"hardware_concurrency\":" +
         std::to_string(report.hardware_concurrency);
  out += ",\"wall_time_s\":" + JsonNumber(report.wall_time_s);
  out += ",\"runs\":" + std::to_string(runs);
  out += ",\"runs_per_sec\":" + JsonNumber(runs_per_sec);
  out += ",\"run_ms\":{";
  out += "\"mean\":" + JsonNumber(timings.MeanMs());
  out += ",\"min\":" + JsonNumber(timings.MinMs());
  out += ",\"max\":" + JsonNumber(timings.MaxMs());
  out += ",\"p50\":" + JsonNumber(timings.PercentileMs(0.50));
  out += ",\"p99\":" + JsonNumber(timings.PercentileMs(0.99));
  out += "}}";
  return out;
}

Status WriteBenchReport(const std::string& path, const BenchReport& report,
                        const RunTimings& timings) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open bench report file: " + path);
  }
  out << BenchReportJson(report, timings) << "\n";
  out.close();
  if (!out) {
    return Status::Unavailable("bench report write failed: " + path);
  }
  return Status::Ok();
}

std::string CompositeBenchReportJson(
    const std::vector<std::pair<BenchReport, const RunTimings*>>& phases) {
  std::string out = "{\"schema_version\":1,\"reports\":[";
  bool first = true;
  for (const auto& [report, timings] : phases) {
    if (timings == nullptr) continue;
    if (!first) out += ',';
    first = false;
    out += BenchReportJson(report, *timings);
  }
  out += "]}";
  return out;
}

Status WriteCompositeBenchReport(
    const std::string& path,
    const std::vector<std::pair<BenchReport, const RunTimings*>>& phases) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open bench report file: " + path);
  }
  out << CompositeBenchReportJson(phases) << "\n";
  out.close();
  if (!out) {
    return Status::Unavailable("bench report write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace wsq::exec
