#ifndef WSQ_CODEC_VARINT_H_
#define WSQ_CODEC_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "wsq/common/status.h"

namespace wsq::codec {

/// LEB128 unsigned varints and zigzag signed varints — the integer
/// building blocks of the binary block format. Encoders append to a
/// std::string; decoding goes through ByteCursor, which bounds-checks
/// every read (torture inputs are hostile by assumption).

inline void PutUVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void PutVarint(std::string* out, int64_t v) {
  PutUVarint(out, ZigZagEncode(v));
}

/// Bounds-checked forward reader over a byte span. Every accessor
/// returns a non-ok Result instead of reading past the end, so a
/// truncated or hostile payload can never walk off the buffer.
class ByteCursor {
 public:
  ByteCursor(const char* data, size_t len) : p_(data), end_(data + len) {}
  explicit ByteCursor(std::string_view bytes)
      : ByteCursor(bytes.data(), bytes.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool exhausted() const { return p_ == end_; }

  Result<uint8_t> ReadByte() {
    if (p_ == end_) return Truncated("byte");
    return static_cast<uint8_t>(*p_++);
  }

  /// Returns a pointer to the next `n` bytes and advances past them.
  Result<const char*> ReadBytes(size_t n) {
    if (remaining() < n) return Truncated("bytes");
    const char* at = p_;
    p_ += n;
    return at;
  }

  Result<uint64_t> ReadUVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (p_ != end_) {
      const uint8_t byte = static_cast<uint8_t>(*p_++);
      if (shift == 63 && (byte & 0x7e) != 0) {
        return Status::InvalidArgument("varint overflows 64 bits");
      }
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) {
        return Status::InvalidArgument("varint longer than 10 bytes");
      }
    }
    return Truncated("varint");
  }

  Result<int64_t> ReadVarint() {
    Result<uint64_t> raw = ReadUVarint();
    if (!raw.ok()) return raw.status();
    return ZigZagDecode(raw.value());
  }

 private:
  static Status Truncated(const char* what) {
    return Status::InvalidArgument(std::string("truncated payload reading ") +
                                   what);
  }

  const char* p_;
  const char* end_;
};

}  // namespace wsq::codec

#endif  // WSQ_CODEC_VARINT_H_
