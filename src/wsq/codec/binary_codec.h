#ifndef WSQ_CODEC_BINARY_CODEC_H_
#define WSQ_CODEC_BINARY_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wsq/codec/codec.h"
#include "wsq/codec/varint.h"

namespace wsq::codec {

/// First bytes of every binary block message; what SniffPayloadCodec
/// keys on (a SOAP envelope starts with '<').
inline constexpr std::string_view kBinaryMagic = "WSQB";

inline constexpr uint8_t kBinaryVersion = 1;

/// Message kind byte, prelude offset 5.
inline constexpr uint8_t kBinaryMsgRequestBlock = 1;
inline constexpr uint8_t kBinaryMsgBlockResponse = 2;

/// Flags byte, prelude offset 6.
inline constexpr uint8_t kBinaryFlagCompressedBody = 0x01;

struct BinaryCodecOptions {
  /// Encode response bodies through the LZ block compressor (decoders
  /// always understand compressed bodies regardless of this setting).
  bool compress_blocks = false;
  /// Bodies smaller than this are never worth a compression attempt.
  size_t min_compress_bytes = 64;
};

/// The negotiated columnar wire format. Layout of every message:
///
///   prelude (8 bytes):
///     [0..3]  "WSQB"
///     [4]     version (1)
///     [5]     kind: 1 = RequestBlock, 2 = BlockResponse
///     [6]     flags: bit0 = body is LZ-compressed (responses only)
///     [7]     reserved, must be 0
///
///   RequestBlock:   varint sessionId, varint blockSize, varint sequence
///   BlockResponse:  varint sessionId, byte endOfResults, varint numRows,
///                   then the columnar body (when bit0 is set: varint
///                   rawBodySize followed by the LZ-compressed body).
///
///   body:  varint numCols, then per column:
///     byte columnType (0 = int64, 1 = double, 2 = string)
///     null bitmap, ceil(numRows/8) bytes LSB-first (all zero today —
///       the Value model has no null; decoders reject set bits)
///     data: int64  → numRows zigzag varints
///           double → numRows raw little-endian IEEE-754 8-byte values
///           string → numRows varint lengths, then the bytes, back to
///                    back (decoded as views, never copied)
///
/// Integers use zigzag LEB128 throughout. Doubles round-trip bit-exact
/// — this codec is what retires the 2-decimal text truncation.
class BinaryCodec : public BlockCodec {
 public:
  explicit BinaryCodec(BinaryCodecOptions options = {})
      : options_(options) {}

  CodecKind kind() const override { return CodecKind::kBinary; }
  std::string_view name() const override {
    return options_.compress_blocks ? "binary+lz" : "binary";
  }

  Result<std::string> EncodeRequestBlock(
      const RequestBlockRequest& request) const override;
  Result<RequestBlockRequest> DecodeRequestBlock(
      const std::string& payload) const override;

  Result<std::string> EncodeBlockResponse(
      int64_t session_id, bool end_of_results, const Schema& schema,
      const std::vector<Tuple>& rows) const override;
  Result<DecodedBlock> DecodeBlockResponse(std::string payload) const override;

 private:
  /// Parses the columnar body out of `cursor` into `rows`. `buffer_base`
  /// is the start of the buffer the cursor walks, so view offsets can be
  /// recorded as indices into the string WireRows will adopt. Static
  /// member (not a free helper) because it builds WireRows internals.
  static Status DecodeBody(ByteCursor* cursor, const char* buffer_base,
                           size_t num_rows, WireRows* rows);

  BinaryCodecOptions options_;
};

}  // namespace wsq::codec

#endif  // WSQ_CODEC_BINARY_CODEC_H_
