#include "wsq/codec/codec.h"

#include "wsq/codec/binary_codec.h"
#include "wsq/codec/soap_codec.h"

namespace wsq::codec {

std::string_view CodecKindName(CodecKind kind) {
  switch (kind) {
    case CodecKind::kSoap:
      return "soap";
    case CodecKind::kBinary:
      return "binary";
  }
  return "soap";
}

Result<CodecChoice> CodecChoice::FromName(std::string_view name) {
  CodecChoice choice;
  if (name == "soap") return choice;
  if (name == "binary") {
    choice.kind = CodecKind::kBinary;
    return choice;
  }
  if (name == "binary+lz") {
    choice.kind = CodecKind::kBinary;
    choice.compress_blocks = true;
    return choice;
  }
  return Status::InvalidArgument("unknown codec: " + std::string(name) +
                                 " (expected soap, binary or binary+lz)");
}

std::string CodecChoice::ToString() const {
  if (kind == CodecKind::kBinary && compress_blocks) return "binary+lz";
  return std::string(CodecKindName(kind));
}

std::unique_ptr<BlockCodec> MakeBlockCodec(const CodecChoice& choice) {
  if (choice.kind == CodecKind::kBinary) {
    BinaryCodecOptions options;
    options.compress_blocks = choice.compress_blocks;
    return std::make_unique<BinaryCodec>(options);
  }
  return std::make_unique<SoapCodec>();
}

CodecKind SniffPayloadCodec(std::string_view payload) {
  return payload.size() >= kBinaryMagic.size() &&
                 payload.substr(0, kBinaryMagic.size()) == kBinaryMagic
             ? CodecKind::kBinary
             : CodecKind::kSoap;
}

std::string AdvertisedCodecs(CodecKind preferred) {
  if (preferred == CodecKind::kBinary) return "binary,soap";
  return "soap";
}

CodecKind NegotiateCodec(std::string_view advertised, CodecKind server_max) {
  size_t start = 0;
  while (start <= advertised.size()) {
    const size_t comma = advertised.find(',', start);
    const std::string_view name =
        advertised.substr(start, comma == std::string_view::npos
                                     ? std::string_view::npos
                                     : comma - start);
    if (name == "binary" && server_max == CodecKind::kBinary) {
      return CodecKind::kBinary;
    }
    if (name == "soap") return CodecKind::kSoap;
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return CodecKind::kSoap;
}

bool AdvertisesFeature(std::string_view advertised, std::string_view feature) {
  size_t start = 0;
  while (start <= advertised.size()) {
    const size_t comma = advertised.find(',', start);
    const std::string_view name =
        advertised.substr(start, comma == std::string_view::npos
                                     ? std::string_view::npos
                                     : comma - start);
    if (name == feature) return true;
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return false;
}

HelloAckParts ParseHelloAck(std::string_view payload) {
  HelloAckParts parts;
  const size_t plus = payload.find('+');
  parts.codec_name = payload.substr(0, plus);
  size_t start = plus;
  while (start != std::string_view::npos && start < payload.size()) {
    const size_t next = payload.find('+', start + 1);
    const std::string_view token =
        payload.substr(start + 1, next == std::string_view::npos
                                      ? std::string_view::npos
                                      : next - start - 1);
    if (token == kTraceFeatureToken) parts.trace = true;
    if (token == kCrcFeatureToken) parts.crc = true;
    if (token == kLiveFeatureToken) parts.live = true;
    start = next;
  }
  return parts;
}

}  // namespace wsq::codec
