#include "wsq/codec/soap_codec.h"

#include <utility>

#include "wsq/relation/tuple_serializer.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq::codec {

Result<std::string> SoapCodec::EncodeRequestBlock(
    const RequestBlockRequest& request) const {
  return wsq::EncodeRequestBlock(request);
}

Result<RequestBlockRequest> SoapCodec::DecodeRequestBlock(
    const std::string& payload) const {
  Result<XmlNode> body = ParseEnvelope(payload);
  if (!body.ok()) return body.status();
  return wsq::DecodeRequestBlock(body.value());
}

Result<std::string> SoapCodec::EncodeBlockResponse(
    int64_t session_id, bool end_of_results, const Schema& schema,
    const std::vector<Tuple>& rows) const {
  TupleSerializer serializer(schema);
  Result<std::string> text = serializer.SerializeBlock(rows);
  if (!text.ok()) return text.status();
  BlockResponse response;
  response.session_id = session_id;
  response.end_of_results = end_of_results;
  response.num_tuples = static_cast<int64_t>(rows.size());
  response.payload = std::move(text).value();
  return wsq::EncodeBlockResponse(response);
}

Result<DecodedBlock> SoapCodec::DecodeBlockResponse(
    std::string payload) const {
  Result<XmlNode> body = ParseEnvelope(payload);
  if (!body.ok()) return body.status();
  Result<BlockResponse> response = wsq::DecodeBlockResponse(body.value());
  if (!response.ok()) return response.status();
  DecodedBlock block;
  block.session_id = response.value().session_id;
  block.end_of_results = response.value().end_of_results;
  block.num_tuples = response.value().num_tuples;
  block.rows = WireRows::FromText(
      std::move(response.value().payload),
      static_cast<size_t>(response.value().num_tuples < 0
                              ? 0
                              : response.value().num_tuples));
  return block;
}

}  // namespace wsq::codec
