#include "wsq/codec/binary_codec.h"

#include <cstring>
#include <utility>

#include "wsq/codec/lz.h"
#include "wsq/codec/varint.h"

namespace wsq::codec {
namespace {

// Hostile-input guards: a decoded block may not claim more rows or
// columns than any legitimate payload under the 64 MiB frame cap could
// carry.
constexpr uint64_t kMaxRows = uint64_t{1} << 26;
constexpr uint64_t kMaxColumns = 4096;

void PutPrelude(std::string* out, uint8_t kind, uint8_t flags) {
  out->append(kBinaryMagic);
  out->push_back(static_cast<char>(kBinaryVersion));
  out->push_back(static_cast<char>(kind));
  out->push_back(static_cast<char>(flags));
  out->push_back(0);  // reserved
}

void PutDoubleBits(std::string* out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

/// Parses the prelude and returns the flags byte after validating
/// magic, version, kind and the reserved byte.
Result<uint8_t> ReadPrelude(ByteCursor* cursor, uint8_t expected_kind) {
  Result<const char*> magic = cursor->ReadBytes(kBinaryMagic.size());
  if (!magic.ok()) return magic.status();
  if (std::string_view(magic.value(), kBinaryMagic.size()) != kBinaryMagic) {
    return Status::InvalidArgument("binary codec: bad magic");
  }
  Result<uint8_t> version = cursor->ReadByte();
  if (!version.ok()) return version.status();
  if (version.value() != kBinaryVersion) {
    return Status::InvalidArgument("binary codec: unsupported version " +
                                   std::to_string(version.value()));
  }
  Result<uint8_t> kind = cursor->ReadByte();
  if (!kind.ok()) return kind.status();
  if (kind.value() != expected_kind) {
    return Status::InvalidArgument("binary codec: unexpected message kind " +
                                   std::to_string(kind.value()));
  }
  Result<uint8_t> flags = cursor->ReadByte();
  if (!flags.ok()) return flags.status();
  Result<uint8_t> reserved = cursor->ReadByte();
  if (!reserved.ok()) return reserved.status();
  if (reserved.value() != 0) {
    return Status::InvalidArgument("binary codec: non-zero reserved byte");
  }
  return flags;
}

/// Upper bound on the encoded body size — an exact pre-pass over the
/// string columns plus worst-case varint widths, so EncodeBody appends
/// into pre-reserved storage and never reallocates mid-block.
size_t BodySizeBound(const Schema& schema, const std::vector<Tuple>& rows) {
  const size_t bitmap_bytes = (rows.size() + 7) / 8;
  size_t bound = 10;  // column-count varint
  for (size_t col = 0; col < schema.num_columns(); ++col) {
    bound += 1 + bitmap_bytes;
    switch (schema.column(col).type) {
      case ColumnType::kInt64:
        bound += 10 * rows.size();
        break;
      case ColumnType::kDouble:
        bound += 8 * rows.size();
        break;
      case ColumnType::kString:
        bound += 5 * rows.size();
        for (const Tuple& row : rows) {
          if (const std::string* v = std::get_if<std::string>(&row.value(col))) {
            bound += v->size();
          }
        }
        break;
    }
  }
  return bound;
}

Status EncodeBody(const Schema& schema, const std::vector<Tuple>& rows,
                  std::string* body) {
  const size_t num_cols = schema.num_columns();
  const size_t bitmap_bytes = (rows.size() + 7) / 8;
  body->reserve(body->size() + BodySizeBound(schema, rows));
  PutUVarint(body, num_cols);
  for (size_t col = 0; col < num_cols; ++col) {
    const ColumnType type = schema.column(col).type;
    body->push_back(static_cast<char>(type));
    body->append(bitmap_bytes, '\0');  // no nulls in the Value model
    switch (type) {
      case ColumnType::kInt64:
        for (const Tuple& row : rows) {
          const int64_t* v = std::get_if<int64_t>(&row.value(col));
          if (v == nullptr) {
            return Status::InvalidArgument(
                "binary codec: row value does not match schema column " +
                schema.column(col).name);
          }
          PutVarint(body, *v);
        }
        break;
      case ColumnType::kDouble:
        for (const Tuple& row : rows) {
          const double* v = std::get_if<double>(&row.value(col));
          if (v == nullptr) {
            return Status::InvalidArgument(
                "binary codec: row value does not match schema column " +
                schema.column(col).name);
          }
          PutDoubleBits(body, *v);
        }
        break;
      case ColumnType::kString:
        for (const Tuple& row : rows) {
          const std::string* v = std::get_if<std::string>(&row.value(col));
          if (v == nullptr) {
            return Status::InvalidArgument(
                "binary codec: row value does not match schema column " +
                schema.column(col).name);
          }
          PutUVarint(body, v->size());
        }
        for (const Tuple& row : rows) {
          body->append(std::get<std::string>(row.value(col)));
        }
        break;
    }
  }
  return Status::Ok();
}

}  // namespace

Status BinaryCodec::DecodeBody(ByteCursor* cursor, const char* buffer_base,
                               size_t num_rows, WireRows* rows) {
  Result<uint64_t> num_cols = cursor->ReadUVarint();
  if (!num_cols.ok()) return num_cols.status();
  if (num_cols.value() > kMaxColumns) {
    return Status::InvalidArgument("binary codec: implausible column count");
  }
  const size_t bitmap_bytes = (num_rows + 7) / 8;
  rows->columns_.resize(num_cols.value());
  for (WireRows::ColumnView& column : rows->columns_) {
    Result<uint8_t> type = cursor->ReadByte();
    if (!type.ok()) return type.status();
    if (type.value() > static_cast<uint8_t>(ColumnType::kString)) {
      return Status::InvalidArgument("binary codec: unknown column type " +
                                     std::to_string(type.value()));
    }
    column.type = static_cast<ColumnType>(type.value());
    Result<const char*> bitmap = cursor->ReadBytes(bitmap_bytes);
    if (!bitmap.ok()) return bitmap.status();
    for (size_t i = 0; i < bitmap_bytes; ++i) {
      if (bitmap.value()[i] != 0) {
        return Status::InvalidArgument(
            "binary codec: null values are not supported");
      }
    }
    switch (column.type) {
      case ColumnType::kInt64: {
        // Each varint is at least one byte, so `remaining` bounds the
        // honest row count — a hostile header can't force a huge
        // allocation before the cursor runs dry.
        column.ints.reserve(
            num_rows < cursor->remaining() ? num_rows : cursor->remaining());
        for (size_t i = 0; i < num_rows; ++i) {
          Result<int64_t> v = cursor->ReadVarint();
          if (!v.ok()) return v.status();
          column.ints.push_back(v.value());
        }
        break;
      }
      case ColumnType::kDouble: {
        Result<const char*> data = cursor->ReadBytes(8 * num_rows);
        if (!data.ok()) return data.status();
        column.data_offset = static_cast<size_t>(data.value() - buffer_base);
        break;
      }
      case ColumnType::kString: {
        const size_t plausible =
            num_rows < cursor->remaining() ? num_rows : cursor->remaining();
        column.str_offsets.reserve(plausible + 1);
        uint64_t total = 0;
        std::vector<uint64_t> lengths;
        lengths.reserve(plausible);
        for (size_t i = 0; i < num_rows; ++i) {
          Result<uint64_t> len = cursor->ReadUVarint();
          if (!len.ok()) return len.status();
          // Reject each length on its own before accumulating: a single
          // near-2^64 value would wrap `total` right past the running
          // check below and turn the offsets into out-of-buffer views.
          // With both checks `total` stays <= remaining() (itself far
          // below 2^32), so the sum can never wrap.
          if (len.value() > cursor->remaining()) {
            return Status::InvalidArgument(
                "binary codec: string data overruns payload");
          }
          total += len.value();
          if (total > cursor->remaining()) {
            return Status::InvalidArgument(
                "binary codec: string data overruns payload");
          }
          lengths.push_back(len.value());
        }
        Result<const char*> data = cursor->ReadBytes(total);
        if (!data.ok()) return data.status();
        uint64_t offset = static_cast<uint64_t>(data.value() - buffer_base);
        column.str_offsets.push_back(static_cast<uint32_t>(offset));
        for (uint64_t len : lengths) {
          offset += len;
          column.str_offsets.push_back(static_cast<uint32_t>(offset));
        }
        break;
      }
    }
  }
  rows->num_rows_ = num_rows;
  return Status::Ok();
}

Result<std::string> BinaryCodec::EncodeRequestBlock(
    const RequestBlockRequest& request) const {
  std::string out;
  out.reserve(32);
  PutPrelude(&out, kBinaryMsgRequestBlock, 0);
  PutVarint(&out, request.session_id);
  PutVarint(&out, request.block_size);
  PutVarint(&out, request.sequence);
  return out;
}

Result<RequestBlockRequest> BinaryCodec::DecodeRequestBlock(
    const std::string& payload) const {
  ByteCursor cursor(payload);
  Result<uint8_t> flags = ReadPrelude(&cursor, kBinaryMsgRequestBlock);
  if (!flags.ok()) return flags.status();
  if (flags.value() != 0) {
    return Status::InvalidArgument("binary codec: request carries flags");
  }
  RequestBlockRequest request;
  Result<int64_t> session = cursor.ReadVarint();
  if (!session.ok()) return session.status();
  request.session_id = session.value();
  Result<int64_t> size = cursor.ReadVarint();
  if (!size.ok()) return size.status();
  request.block_size = size.value();
  Result<int64_t> sequence = cursor.ReadVarint();
  if (!sequence.ok()) return sequence.status();
  request.sequence = sequence.value();
  if (!cursor.exhausted()) {
    return Status::InvalidArgument("binary codec: trailing request bytes");
  }
  return request;
}

Result<std::string> BinaryCodec::EncodeBlockResponse(
    int64_t session_id, bool end_of_results, const Schema& schema,
    const std::vector<Tuple>& rows) const {
  std::string out;
  PutPrelude(&out, kBinaryMsgBlockResponse, 0);
  PutVarint(&out, session_id);
  out.push_back(end_of_results ? 1 : 0);
  PutUVarint(&out, rows.size());

  // Encode the body in place — the uncompressed path is one buffer, no
  // copy. Compression (opt-in) re-packs from the encoded tail.
  const size_t body_start = out.size();
  WSQ_RETURN_IF_ERROR(EncodeBody(schema, rows, &out));
  const size_t body_size = out.size() - body_start;

  if (options_.compress_blocks && body_size >= options_.min_compress_bytes) {
    std::string compressed;
    LzCompress(std::string_view(out.data() + body_start, body_size),
               &compressed);
    // Varint overhead for the raw size; keep compression only when it
    // actually wins.
    if (compressed.size() + 10 < body_size) {
      out[6] = static_cast<char>(kBinaryFlagCompressedBody);
      out.resize(body_start);
      PutUVarint(&out, body_size);
      out.append(compressed);
    }
  }
  return out;
}

Result<DecodedBlock> BinaryCodec::DecodeBlockResponse(
    std::string payload) const {
  ByteCursor cursor(payload);
  Result<uint8_t> flags = ReadPrelude(&cursor, kBinaryMsgBlockResponse);
  if (!flags.ok()) return flags.status();
  if ((flags.value() & ~kBinaryFlagCompressedBody) != 0) {
    return Status::InvalidArgument("binary codec: unknown response flags");
  }

  DecodedBlock block;
  Result<int64_t> session = cursor.ReadVarint();
  if (!session.ok()) return session.status();
  block.session_id = session.value();
  Result<uint8_t> eof = cursor.ReadByte();
  if (!eof.ok()) return eof.status();
  if (eof.value() > 1) {
    return Status::InvalidArgument("binary codec: bad endOfResults byte");
  }
  block.end_of_results = eof.value() == 1;
  Result<uint64_t> num_rows = cursor.ReadUVarint();
  if (!num_rows.ok()) return num_rows.status();
  if (num_rows.value() > kMaxRows) {
    return Status::InvalidArgument("binary codec: implausible row count");
  }
  block.num_tuples = static_cast<int64_t>(num_rows.value());

  if ((flags.value() & kBinaryFlagCompressedBody) != 0) {
    Result<uint64_t> raw_size = cursor.ReadUVarint();
    if (!raw_size.ok()) return raw_size.status();
    // A compressed body cannot legitimately inflate past what the frame
    // cap allows on the wire.
    if (raw_size.value() > uint64_t{256} * 1024 * 1024) {
      return Status::InvalidArgument(
          "binary codec: implausible uncompressed body size");
    }
    const size_t compressed_len = cursor.remaining();
    Result<const char*> data = cursor.ReadBytes(compressed_len);
    if (!data.ok()) return data.status();
    Result<std::string> body =
        LzDecompress(std::string_view(data.value(), compressed_len),
                     raw_size.value());
    if (!body.ok()) return body.status();
    ByteCursor body_cursor(body.value());
    WSQ_RETURN_IF_ERROR(DecodeBody(&body_cursor, body.value().data(),
                                   num_rows.value(), &block.rows));
    if (!body_cursor.exhausted()) {
      return Status::InvalidArgument("binary codec: trailing body bytes");
    }
    block.rows.buffer_ = std::move(body).value();
  } else {
    WSQ_RETURN_IF_ERROR(DecodeBody(&cursor, payload.data(),
                                   num_rows.value(), &block.rows));
    if (!cursor.exhausted()) {
      return Status::InvalidArgument("binary codec: trailing body bytes");
    }
    block.rows.buffer_ = std::move(payload);
  }
  return block;
}

}  // namespace wsq::codec
