#ifndef WSQ_CODEC_SOAP_CODEC_H_
#define WSQ_CODEC_SOAP_CODEC_H_

#include <string>
#include <vector>

#include "wsq/codec/codec.h"

namespace wsq::codec {

/// The seed-era wire form behind the BlockCodec interface: rows go
/// through TupleSerializer's delimited text and ride inside a SOAP/XML
/// BlockResponse envelope. This class produces byte-for-byte the same
/// documents the pre-codec data path did — it only *relocates* that
/// logic, so every size-sensitive simulation result is unchanged.
class SoapCodec : public BlockCodec {
 public:
  CodecKind kind() const override { return CodecKind::kSoap; }
  std::string_view name() const override { return "soap"; }

  Result<std::string> EncodeRequestBlock(
      const RequestBlockRequest& request) const override;
  Result<RequestBlockRequest> DecodeRequestBlock(
      const std::string& payload) const override;

  Result<std::string> EncodeBlockResponse(
      int64_t session_id, bool end_of_results, const Schema& schema,
      const std::vector<Tuple>& rows) const override;
  Result<DecodedBlock> DecodeBlockResponse(std::string payload) const override;
};

}  // namespace wsq::codec

#endif  // WSQ_CODEC_SOAP_CODEC_H_
