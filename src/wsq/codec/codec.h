#ifndef WSQ_CODEC_CODEC_H_
#define WSQ_CODEC_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "wsq/codec/wire_rows.h"
#include "wsq/common/status.h"
#include "wsq/relation/schema.h"
#include "wsq/relation/tuple.h"
#include "wsq/soap/message.h"

namespace wsq::codec {

/// Which wire representation a result block travels in. kSoap is the
/// seed-era SOAP/XML envelope (and the compatibility default); kBinary
/// is the columnar format negotiated over the WSQ1 handshake.
enum class CodecKind : uint8_t {
  kSoap = 0,
  kBinary = 1,
};

std::string_view CodecKindName(CodecKind kind);

/// A concrete codec selection: the kind plus per-codec options. Parsed
/// from the user-facing --codec flag values "soap", "binary" and
/// "binary+lz" (binary with the compressed-body flag set on encode).
struct CodecChoice {
  CodecKind kind = CodecKind::kSoap;
  bool compress_blocks = false;

  static Result<CodecChoice> FromName(std::string_view name);
  std::string ToString() const;

  bool operator==(const CodecChoice& other) const {
    return kind == other.kind && compress_blocks == other.compress_blocks;
  }
};

/// A fully decoded block response, independent of wire form.
struct DecodedBlock {
  int64_t session_id = 0;
  bool end_of_results = false;
  int64_t num_tuples = 0;
  WireRows rows;
};

/// The block data path's pluggable wire format. Only the per-block
/// hot-path messages go through here (RequestBlock and its response);
/// session control, ProcessBlock push traffic and every fault reply
/// stay SOAP on all codecs.
class BlockCodec {
 public:
  virtual ~BlockCodec() = default;

  virtual CodecKind kind() const = 0;
  virtual std::string_view name() const = 0;

  virtual Result<std::string> EncodeRequestBlock(
      const RequestBlockRequest& request) const = 0;
  virtual Result<RequestBlockRequest> DecodeRequestBlock(
      const std::string& payload) const = 0;

  virtual Result<std::string> EncodeBlockResponse(
      int64_t session_id, bool end_of_results, const Schema& schema,
      const std::vector<Tuple>& rows) const = 0;

  /// Takes the payload by value: binary decoding adopts the buffer so
  /// WireRows views point straight into the received bytes.
  virtual Result<DecodedBlock> DecodeBlockResponse(
      std::string payload) const = 0;
};

std::unique_ptr<BlockCodec> MakeBlockCodec(const CodecChoice& choice);

/// Distinguishes a binary block message from a SOAP envelope by its
/// leading bytes ('WSQB' magic vs. '<'). Lets the server dispatch and
/// fault-classify without knowing the connection's negotiated codec.
CodecKind SniffPayloadCodec(std::string_view payload);

/// --- Handshake negotiation -------------------------------------------
///
/// The client's Hello payload is a comma-separated preference-ordered
/// list of codec names; the server answers with the single name it
/// picked. Unknown names are ignored on both sides, and anything that
/// fails to parse degrades to SOAP — an un-negotiated peer keeps
/// working exactly as before this protocol existed.

/// The Hello payload advertising `preferred` (most preferred first,
/// always ending in "soap").
std::string AdvertisedCodecs(CodecKind preferred);

/// The server's pick: the client's most preferred codec that the server
/// is willing to speak (bounded by `server_max`). Falls back to kSoap.
CodecKind NegotiateCodec(std::string_view advertised, CodecKind server_max);

/// --- Feature tokens ---------------------------------------------------
///
/// Connection-level features ride the same Hello list as codec names —
/// NegotiateCodec ignores names it does not know, so a feature token is
/// invisible to every server that predates it. A server that *does*
/// know the feature answers with "<codec>+<feature>" in the HelloAck,
/// which only a client that advertised the feature will ever parse.

/// The trace-context propagation feature (frame-header extension).
inline constexpr std::string_view kTraceFeatureToken = "trace";

/// The CRC-32C frame-integrity feature: once negotiated, every frame on
/// the connection carries a checksum trailer (net::kFrameFlagCrc) and
/// both ends verify it.
inline constexpr std::string_view kCrcFeatureToken = "crc";

/// The liveness feature: both ends may send kPing/kPong heartbeats and
/// the server may announce graceful drain with kGoaway. Gated behind
/// negotiation because a legacy peer rejects the unknown frame types.
inline constexpr std::string_view kLiveFeatureToken = "live";

/// True when the Hello's comma-separated list contains `feature`.
bool AdvertisesFeature(std::string_view advertised, std::string_view feature);

/// Splits a HelloAck payload into the codec name and its "+"-suffixed
/// feature tokens: "binary+trace" -> {"binary", has "trace"}.
/// ("binary+crc+live" -> {"binary", crc, live}.)
struct HelloAckParts {
  std::string_view codec_name;
  bool trace = false;
  bool crc = false;
  bool live = false;
};
HelloAckParts ParseHelloAck(std::string_view payload);

}  // namespace wsq::codec

#endif  // WSQ_CODEC_CODEC_H_
