#ifndef WSQ_CODEC_LZ_H_
#define WSQ_CODEC_LZ_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "wsq/common/status.h"

namespace wsq::codec {

/// Self-contained byte-oriented LZ block compressor for the optional
/// compressed-body flag of the binary block format. The format is the
/// classic token/literals/offset/match sequence scheme: each sequence is
///
///   token byte: (literal_len << 4) | (match_len - 4)
///   — a nibble of 15 is extended with 255-run continuation bytes —
///   literal bytes, then a 2-byte little-endian back-reference offset
///   and the (possibly extended) match length. The final sequence of a
///   block carries literals only (its match nibble is zero and no
///   offset follows).
///
/// No external dependency, no framing, no checksum: the caller stores
/// the uncompressed size out of band and `LzDecompress` refuses any
/// input that does not reproduce exactly that many bytes.

/// Appends the compressed form of `input` to `*out`.
void LzCompress(std::string_view input, std::string* out);

/// Inverse of LzCompress. `expected_size` is the exact uncompressed
/// size recorded by the caller; malformed or truncated input yields
/// kInvalidArgument, never out-of-bounds access.
Result<std::string> LzDecompress(std::string_view input,
                                 size_t expected_size);

}  // namespace wsq::codec

#endif  // WSQ_CODEC_LZ_H_
