#ifndef WSQ_CODEC_WIRE_ROWS_H_
#define WSQ_CODEC_WIRE_ROWS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/relation/schema.h"
#include "wsq/relation/tuple.h"
#include "wsq/relation/tuple_serializer.h"

namespace wsq::codec {

class BinaryCodec;

/// A decoded result block, viewed in place. In *view mode* (built by
/// BinaryCodec) the object owns the raw body bytes and every string
/// accessor returns a string_view into that buffer — no per-row string
/// materialization ever happens unless the caller asks for Tuples.
/// Doubles are read as raw IEEE-754 bits (bit-exact round-trip); ints
/// are varint-decoded once at block decode time. In *text mode* (built
/// by SoapCodec) the object just carries the delimited text payload and
/// Materialize() defers to the TupleSerializer, preserving the legacy
/// 2-decimal behaviour byte for byte.
///
/// All offsets are indices into the owned buffer, not pointers, so
/// moving a WireRows never invalidates its views.
class WireRows {
 public:
  WireRows() = default;

  /// Wraps a delimited-text payload (SOAP path). `num_rows` comes from
  /// the response header, not from re-scanning the text.
  static WireRows FromText(std::string text, size_t num_rows);

  bool text_mode() const { return text_mode_; }

  /// Text-mode payload, exactly as it crossed the wire.
  const std::string& text() const { return buffer_; }

  size_t num_rows() const { return num_rows_; }

  /// Columnar accessors — view mode only. Callers must respect the
  /// column type; these do no dynamic checking on the hot path.
  size_t num_columns() const { return columns_.size(); }
  ColumnType column_type(size_t col) const { return columns_[col].type; }

  int64_t Int64At(size_t row, size_t col) const {
    return columns_[col].ints[row];
  }

  double DoubleAt(size_t row, size_t col) const;

  std::string_view StringAt(size_t row, size_t col) const {
    const ColumnView& c = columns_[col];
    const uint32_t begin = c.str_offsets[row];
    return std::string_view(buffer_.data() + begin,
                            c.str_offsets[row + 1] - begin);
  }

  /// The wire model has a null slot per column but the Value model has
  /// no null, so decoders reject set bits; this is always false today.
  bool IsNull(size_t row, size_t col) const {
    (void)row;
    (void)col;
    return false;
  }

  /// Copies the block out into owned Tuples. View mode builds values
  /// directly; text mode parses via `text_serializer` (which must be
  /// non-null for text-mode blocks).
  Result<std::vector<Tuple>> Materialize(
      const TupleSerializer* text_serializer) const;

  /// Size of the owned backing buffer (decoded body or text payload).
  size_t buffer_bytes() const { return buffer_.size(); }

 private:
  friend class BinaryCodec;

  struct ColumnView {
    ColumnType type = ColumnType::kInt64;
    std::vector<int64_t> ints;          // kInt64: decoded values
    size_t data_offset = 0;             // kDouble: first of 8*num_rows bytes
    std::vector<uint32_t> str_offsets;  // kString: num_rows + 1 boundaries
  };

  std::string buffer_;
  std::vector<ColumnView> columns_;
  size_t num_rows_ = 0;
  bool text_mode_ = false;
};

}  // namespace wsq::codec

#endif  // WSQ_CODEC_WIRE_ROWS_H_
