#include "wsq/codec/lz.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace wsq::codec {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;
constexpr size_t kHashSize = size_t{1} << kHashBits;

uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t Hash(uint32_t v) {
  // Fibonacci hash of the next 4 bytes; only needs to spread well
  // enough for a 13-bit table.
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutLength(std::string* out, size_t extra) {
  // Continuation of a nibble that saturated at 15.
  while (extra >= 255) {
    out->push_back(static_cast<char>(0xff));
    extra -= 255;
  }
  out->push_back(static_cast<char>(extra));
}

void EmitSequence(std::string_view literals, size_t match_len,
                  size_t offset, std::string* out) {
  const size_t lit_nibble = literals.size() < 15 ? literals.size() : 15;
  const size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  const size_t match_nibble = match_code < 15 ? match_code : 15;
  out->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutLength(out, literals.size() - 15);
  out->append(literals.data(), literals.size());
  if (match_len == 0) return;  // terminal literals-only sequence
  out->push_back(static_cast<char>(offset & 0xff));
  out->push_back(static_cast<char>((offset >> 8) & 0xff));
  if (match_nibble == 15) PutLength(out, match_code - 15);
}

}  // namespace

void LzCompress(std::string_view input, std::string* out) {
  const char* base = input.data();
  const size_t n = input.size();
  // Matches need 4 bytes of lookahead plus something to follow; tiny
  // inputs go out as one literal run.
  if (n < kMinMatch + 1) {
    EmitSequence(input, 0, 0, out);
    return;
  }

  std::vector<uint32_t> table(kHashSize, 0);
  std::vector<uint8_t> table_set(kHashSize, 0);
  size_t pos = 0;
  size_t literal_start = 0;
  const size_t match_limit = n - kMinMatch;  // last position a match can start

  while (pos <= match_limit) {
    const uint32_t h = Hash(Load32(base + pos));
    size_t candidate = table[h];
    const bool usable = table_set[h] != 0 && candidate < pos &&
                        pos - candidate <= kMaxOffset &&
                        Load32(base + candidate) == Load32(base + pos);
    table[h] = static_cast<uint32_t>(pos);
    table_set[h] = 1;
    if (!usable) {
      ++pos;
      continue;
    }
    size_t match_len = kMinMatch;
    while (pos + match_len < n &&
           base[candidate + match_len] == base[pos + match_len]) {
      ++match_len;
    }
    EmitSequence(input.substr(literal_start, pos - literal_start), match_len,
                 pos - candidate, out);
    pos += match_len;
    literal_start = pos;
  }
  EmitSequence(input.substr(literal_start), 0, 0, out);
}

Result<std::string> LzDecompress(std::string_view input,
                                 size_t expected_size) {
  std::string out;
  out.reserve(expected_size);
  const char* p = input.data();
  const char* end = p + input.size();

  auto read_length = [&](size_t nibble) -> Result<size_t> {
    size_t len = nibble;
    if (nibble == 15) {
      while (true) {
        if (p == end) {
          return Status::InvalidArgument("lz: truncated length run");
        }
        const uint8_t byte = static_cast<uint8_t>(*p++);
        len += byte;
        if (byte != 255) break;
      }
    }
    return len;
  };

  while (p != end) {
    const uint8_t token = static_cast<uint8_t>(*p++);
    Result<size_t> lit_len = read_length(token >> 4);
    if (!lit_len.ok()) return lit_len.status();
    if (static_cast<size_t>(end - p) < lit_len.value()) {
      return Status::InvalidArgument("lz: literals overrun input");
    }
    if (out.size() + lit_len.value() > expected_size) {
      return Status::InvalidArgument("lz: output exceeds declared size");
    }
    out.append(p, lit_len.value());
    p += lit_len.value();
    if (p == end) break;  // terminal sequence has no match part

    if (end - p < 2) return Status::InvalidArgument("lz: truncated offset");
    const size_t offset = static_cast<uint8_t>(p[0]) |
                          (static_cast<size_t>(static_cast<uint8_t>(p[1]))
                           << 8);
    p += 2;
    if (offset == 0 || offset > out.size()) {
      return Status::InvalidArgument("lz: back-reference out of range");
    }
    Result<size_t> match_code = read_length(token & 0x0f);
    if (!match_code.ok()) return match_code.status();
    const size_t match_len = match_code.value() + kMinMatch;
    if (out.size() + match_len > expected_size) {
      return Status::InvalidArgument("lz: output exceeds declared size");
    }
    // Byte-at-a-time on purpose: overlapping matches (offset < length)
    // are the RLE case and must re-read bytes the loop just wrote.
    size_t from = out.size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out.push_back(out[from + i]);
    }
  }

  if (out.size() != expected_size) {
    return Status::InvalidArgument("lz: output size mismatch");
  }
  return out;
}

}  // namespace wsq::codec
