#include "wsq/codec/wire_rows.h"

#include <cstring>
#include <utility>

namespace wsq::codec {

WireRows WireRows::FromText(std::string text, size_t num_rows) {
  WireRows rows;
  rows.buffer_ = std::move(text);
  rows.num_rows_ = num_rows;
  rows.text_mode_ = true;
  return rows;
}

double WireRows::DoubleAt(size_t row, size_t col) const {
  // Assemble the little-endian wire bytes explicitly so the result is
  // bit-exact regardless of host endianness.
  const unsigned char* p = reinterpret_cast<const unsigned char*>(
      buffer_.data() + columns_[col].data_offset + 8 * row);
  uint64_t bits = 0;
  for (int i = 7; i >= 0; --i) bits = (bits << 8) | p[i];
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::vector<Tuple>> WireRows::Materialize(
    const TupleSerializer* text_serializer) const {
  if (text_mode_) {
    if (text_serializer == nullptr) {
      return Status::FailedPrecondition(
          "text-mode WireRows need a TupleSerializer to materialize");
    }
    return text_serializer->DeserializeBlock(buffer_);
  }
  std::vector<Tuple> out;
  out.reserve(num_rows_);
  for (size_t row = 0; row < num_rows_; ++row) {
    std::vector<Value> values;
    values.reserve(columns_.size());
    for (size_t col = 0; col < columns_.size(); ++col) {
      switch (columns_[col].type) {
        case ColumnType::kInt64:
          values.emplace_back(Int64At(row, col));
          break;
        case ColumnType::kDouble:
          values.emplace_back(DoubleAt(row, col));
          break;
        case ColumnType::kString:
          values.emplace_back(std::string(StringAt(row, col)));
          break;
      }
    }
    out.emplace_back(std::move(values));
  }
  return out;
}

}  // namespace wsq::codec
