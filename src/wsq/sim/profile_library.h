#ifndef WSQ_SIM_PROFILE_LIBRARY_H_
#define WSQ_SIM_PROFILE_LIBRARY_H_

#include <memory>

#include "wsq/control/controller.h"
#include "wsq/sim/profile.h"

namespace wsq {

/// The five experimental configurations of the paper's evaluation,
/// recreated as parametric profiles calibrated so the *shape* facts the
/// paper reports hold: where the optimum sits, how much a fixed
/// 1000-tuple block costs relative to it, which side blows up, and how
/// many local minima pollute the curve. Absolute times are in the same
/// order of magnitude as the paper's but are not meant to match — the
/// controllers only ever see relative changes.
///
/// WAN family (Customer, 150K tuples, limits [100, 20000]):
///  - conf1.1: unloaded server and client; optimum at the upper limit;
///    smooth curve, small noise.
///  - conf1.2: 3 concurrent queries sharing network + memory + CPU;
///    optimum unchanged but the curve is noisier with local minima.
///  - conf1.3: memory-intensive jobs at the server; optimum shifts left
///    (~13.5K) and obvious local minima appear.
///
/// LAN family:
///  - conf2.1: 3 concurrent queries, Customer, limits [100, 7000];
///    sharp bowl with the optimum near 2.2K.
///  - conf2.2: Orders (450K tuples, 3x result), loaded server, limits
///    [100, 20000]; optimum near 7.5K, many local minima, heavy
///    penalty toward the upper limit.
struct ConfiguredProfile {
  std::shared_ptr<const ResponseProfile> profile;
  BlockSizeLimits limits;
  /// Noise amplitude of the uniform multiplicative measurement noise the
  /// sim engine should inject for this configuration.
  double noise_amplitude = 0.10;
  /// The b1 the paper uses for this configuration.
  double paper_b1 = 2000.0;
};

ConfiguredProfile Conf1_1();
ConfiguredProfile Conf1_2();
ConfiguredProfile Conf1_3();
ConfiguredProfile Conf2_1();
ConfiguredProfile Conf2_2();

/// Looks up a configuration by its paper name ("conf1.1" ... "conf2.2").
Result<ConfiguredProfile> ConfigurationByName(const std::string& name);

/// All five names in paper order.
std::vector<std::string> AllConfigurationNames();

}  // namespace wsq

#endif  // WSQ_SIM_PROFILE_LIBRARY_H_
