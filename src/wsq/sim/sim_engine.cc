#include "wsq/sim/sim_engine.h"

#include <algorithm>
#include <cmath>

namespace wsq {

SimEngine::SimEngine(const SimOptions& options)
    : options_(options), rng_(options.seed) {}

void SimEngine::AdvanceDrift() {
  if (options_.drift_sigma <= 0.0) return;
  drift_scale_ *= 1.0 + rng_.Gaussian(0.0, options_.drift_sigma);
  drift_scale_ = std::clamp(drift_scale_, 0.5, 2.0);
}

double SimEngine::MeasurePerTupleMs(const ResponseProfile& profile,
                                    int64_t block_size) {
  AdvanceDrift();
  // Horizontal drift: evaluating at x / scale moves the optimum to
  // optimum * scale.
  const double x =
      std::max(static_cast<double>(block_size) / drift_scale_, 1.0);
  double y = profile.PerTupleMs(x);

  if (options_.noise_amplitude > 0.0) {
    y *= rng_.Uniform(1.0 - options_.noise_amplitude,
                      1.0 + options_.noise_amplitude);
  }
  if (options_.transient_penalty > 0.0 && block_size != last_block_size_) {
    y *= 1.0 + options_.transient_penalty;
  }
  last_block_size_ = block_size;
  return std::max(y, 1e-9);
}

Result<SimRunResult> SimEngine::RunQuery(Controller* controller,
                                         const ResponseProfile& profile) {
  if (controller == nullptr) {
    return Status::InvalidArgument("RunQuery: null controller");
  }
  SimRunResult result;
  int64_t remaining = profile.dataset_tuples();
  int64_t block_size = controller->initial_block_size();

  while (remaining > 0) {
    // Replay any injected failures first: their (capped) costs and
    // backoff are dead time on the run clock, charged to no block.
    const ExchangePlay play =
        PlayExchange(injector_, policy_, result.total_blocks,
                     result.total_time_ms, block_size, observer_,
                     sim_now_micros_);
    result.total_time_ms += play.dead_time_ms;
    result.retry_time_ms += play.dead_time_ms;
    result.total_retries += play.retries;
    sim_now_micros_ += std::llround(play.dead_time_ms * 1000.0);
    if (!play.completed) {
      return Status::Unavailable(
          "injected faults exhausted the retry budget at block " +
          std::to_string(result.total_blocks));
    }

    const int64_t delivered = std::min<int64_t>(block_size, remaining);
    double per_tuple = MeasurePerTupleMs(profile, block_size);
    if (play.perturbation.active()) {
      // Latency spikes / server stalls inflate the completed exchange;
      // the controller observes the perturbed cost like any other.
      per_tuple = play.perturbation.Apply(
                      per_tuple * static_cast<double>(delivered)) /
                  static_cast<double>(delivered);
    }

    SimStep step;
    step.step = result.total_blocks;
    step.block_size = block_size;
    step.per_tuple_ms = per_tuple;
    step.retries = play.retries;
    result.steps.push_back(step);

    result.total_time_ms += per_tuple * static_cast<double>(delivered);
    result.total_blocks += 1;
    result.total_tuples += delivered;
    remaining -= delivered;

    int64_t next_size = controller->NextBlockSize(per_tuple);
    result.steps.back().adaptivity_steps = controller->adaptivity_steps();
    if (policy_ != nullptr) {
      next_size = policy_->GovernNextSize(next_size);
    }
    if (observer_ != nullptr) {
      ObserveStep(controller, block_size, delivered, per_tuple, next_size,
                  play.retries);
    }
    EmitBreakerTransitions(policy_, observer_, sim_now_micros_);
    block_size = next_size;
  }
  return result;
}

Result<SimRunResult> SimEngine::RunSchedule(
    Controller* controller, const std::vector<const ResponseProfile*>& schedule,
    int64_t steps_per_profile, int64_t total_steps) {
  if (controller == nullptr) {
    return Status::InvalidArgument("RunSchedule: null controller");
  }
  if (schedule.empty()) {
    return Status::InvalidArgument("RunSchedule: empty schedule");
  }
  for (const ResponseProfile* profile : schedule) {
    if (profile == nullptr) {
      return Status::InvalidArgument("RunSchedule: null profile in schedule");
    }
  }
  if (steps_per_profile < 1 || total_steps < 1) {
    return Status::InvalidArgument("RunSchedule: step counts must be >= 1");
  }

  SimRunResult result;
  int64_t block_size = controller->initial_block_size();

  for (int64_t step = 0; step < total_steps; ++step) {
    const size_t slot = std::min<size_t>(
        static_cast<size_t>(step / steps_per_profile), schedule.size() - 1);
    const ResponseProfile& profile = *schedule[slot];

    const ExchangePlay play = PlayExchange(
        injector_, policy_, step, result.total_time_ms, block_size,
        observer_, sim_now_micros_);
    result.total_time_ms += play.dead_time_ms;
    result.retry_time_ms += play.dead_time_ms;
    result.total_retries += play.retries;
    sim_now_micros_ += std::llround(play.dead_time_ms * 1000.0);
    if (!play.completed) {
      return Status::Unavailable(
          "injected faults exhausted the retry budget at step " +
          std::to_string(step));
    }

    double per_tuple = MeasurePerTupleMs(profile, block_size);
    if (play.perturbation.active()) {
      per_tuple = play.perturbation.Apply(
                      per_tuple * static_cast<double>(block_size)) /
                  static_cast<double>(block_size);
    }

    SimStep trace;
    trace.step = step;
    trace.block_size = block_size;
    trace.per_tuple_ms = per_tuple;
    trace.retries = play.retries;
    result.steps.push_back(trace);

    result.total_time_ms += per_tuple * static_cast<double>(block_size);
    result.total_blocks += 1;
    result.total_tuples += block_size;

    int64_t next_size = controller->NextBlockSize(per_tuple);
    result.steps.back().adaptivity_steps = controller->adaptivity_steps();
    if (policy_ != nullptr) {
      next_size = policy_->GovernNextSize(next_size);
    }
    if (observer_ != nullptr) {
      ObserveStep(controller, block_size, block_size, per_tuple, next_size,
                  play.retries);
    }
    EmitBreakerTransitions(policy_, observer_, sim_now_micros_);
    block_size = next_size;
  }
  return result;
}

void SimEngine::ObserveStep(Controller* controller, int64_t block_size,
                            int64_t delivered, double per_tuple_ms,
                            int64_t next_size, int64_t retries) {
  const double block_ms = per_tuple_ms * static_cast<double>(delivered);
  const int64_t dur = std::llround(block_ms * 1000.0);
  observer_->OnBlock(sim_now_micros_, dur, block_size, delivered,
                     per_tuple_ms, retries);
  sim_now_micros_ += dur;
  observer_->OnControllerDecision(sim_now_micros_, controller->name(),
                                  controller->DebugState(),
                                  controller->adaptivity_steps(), next_size);
}

}  // namespace wsq
