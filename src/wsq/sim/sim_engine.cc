#include "wsq/sim/sim_engine.h"

#include <algorithm>
#include <cmath>

namespace wsq {

SimEngine::SimEngine(const SimOptions& options)
    : options_(options), rng_(options.seed) {}

void SimEngine::AdvanceDrift() {
  if (options_.drift_sigma <= 0.0) return;
  drift_scale_ *= 1.0 + rng_.Gaussian(0.0, options_.drift_sigma);
  drift_scale_ = std::clamp(drift_scale_, 0.5, 2.0);
}

double SimEngine::MeasurePerTupleMs(const ResponseProfile& profile,
                                    int64_t block_size) {
  AdvanceDrift();
  // Horizontal drift: evaluating at x / scale moves the optimum to
  // optimum * scale.
  const double x =
      std::max(static_cast<double>(block_size) / drift_scale_, 1.0);
  double y = profile.PerTupleMs(x);

  if (options_.noise_amplitude > 0.0) {
    y *= rng_.Uniform(1.0 - options_.noise_amplitude,
                      1.0 + options_.noise_amplitude);
  }
  if (options_.transient_penalty > 0.0 && block_size != last_block_size_) {
    y *= 1.0 + options_.transient_penalty;
  }
  last_block_size_ = block_size;
  return std::max(y, 1e-9);
}

Result<SimRunResult> SimEngine::RunQuery(Controller* controller,
                                         const ResponseProfile& profile) {
  if (controller == nullptr) {
    return Status::InvalidArgument("RunQuery: null controller");
  }
  SimRunResult result;
  int64_t remaining = profile.dataset_tuples();
  int64_t block_size = controller->initial_block_size();

  while (remaining > 0) {
    const int64_t delivered = std::min<int64_t>(block_size, remaining);
    const double per_tuple = MeasurePerTupleMs(profile, block_size);

    SimStep step;
    step.step = result.total_blocks;
    step.block_size = block_size;
    step.per_tuple_ms = per_tuple;
    result.steps.push_back(step);

    result.total_time_ms += per_tuple * static_cast<double>(delivered);
    result.total_blocks += 1;
    result.total_tuples += delivered;
    remaining -= delivered;

    const int64_t next_size = controller->NextBlockSize(per_tuple);
    result.steps.back().adaptivity_steps = controller->adaptivity_steps();
    if (observer_ != nullptr) {
      ObserveStep(controller, block_size, delivered, per_tuple, next_size);
    }
    block_size = next_size;
  }
  return result;
}

Result<SimRunResult> SimEngine::RunSchedule(
    Controller* controller, const std::vector<const ResponseProfile*>& schedule,
    int64_t steps_per_profile, int64_t total_steps) {
  if (controller == nullptr) {
    return Status::InvalidArgument("RunSchedule: null controller");
  }
  if (schedule.empty()) {
    return Status::InvalidArgument("RunSchedule: empty schedule");
  }
  for (const ResponseProfile* profile : schedule) {
    if (profile == nullptr) {
      return Status::InvalidArgument("RunSchedule: null profile in schedule");
    }
  }
  if (steps_per_profile < 1 || total_steps < 1) {
    return Status::InvalidArgument("RunSchedule: step counts must be >= 1");
  }

  SimRunResult result;
  int64_t block_size = controller->initial_block_size();

  for (int64_t step = 0; step < total_steps; ++step) {
    const size_t slot = std::min<size_t>(
        static_cast<size_t>(step / steps_per_profile), schedule.size() - 1);
    const ResponseProfile& profile = *schedule[slot];

    const double per_tuple = MeasurePerTupleMs(profile, block_size);

    SimStep trace;
    trace.step = step;
    trace.block_size = block_size;
    trace.per_tuple_ms = per_tuple;
    result.steps.push_back(trace);

    result.total_time_ms += per_tuple * static_cast<double>(block_size);
    result.total_blocks += 1;
    result.total_tuples += block_size;

    const int64_t next_size = controller->NextBlockSize(per_tuple);
    result.steps.back().adaptivity_steps = controller->adaptivity_steps();
    if (observer_ != nullptr) {
      ObserveStep(controller, block_size, block_size, per_tuple, next_size);
    }
    block_size = next_size;
  }
  return result;
}

void SimEngine::ObserveStep(Controller* controller, int64_t block_size,
                            int64_t delivered, double per_tuple_ms,
                            int64_t next_size) {
  const double block_ms = per_tuple_ms * static_cast<double>(delivered);
  const int64_t dur = std::llround(block_ms * 1000.0);
  observer_->OnBlock(sim_now_micros_, dur, block_size, delivered,
                     per_tuple_ms, /*retries=*/0);
  sim_now_micros_ += dur;
  observer_->OnControllerDecision(sim_now_micros_, controller->name(),
                                  controller->DebugState(),
                                  controller->adaptivity_steps(), next_size);
}

}  // namespace wsq
