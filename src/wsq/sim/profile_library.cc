#include "wsq/sim/profile_library.h"

namespace wsq {
namespace {

constexpr int64_t kCustomerTuples = 150000;
constexpr int64_t kOrdersTuples = 450000;

}  // namespace

ConfiguredProfile Conf1_1() {
  ParametricProfile::Params p;
  p.name = "conf1.1";
  p.dataset_tuples = kCustomerTuples;
  p.overhead_ms = 105.0;   // WAN round trip + request handling
  p.per_tuple_ms = 0.25;   // transfer + serialize, unloaded
  p.slope_ms = 0.0;        // no memory pressure: bigger stays better
  p.paging_ms = 0.0;
  // A couple of shallow ripples; the curve stays monotone enough that
  // the optimum is the upper limit (paper Fig. 3).
  p.bumps = {{6000.0, 900.0, 900.0}, {12000.0, 1200.0, 600.0}};

  ConfiguredProfile out;
  out.profile = std::make_shared<ParametricProfile>(std::move(p));
  out.limits = {100, 20000};
  out.noise_amplitude = 0.05;
  out.paper_b1 = 2000.0;
  return out;
}

ConfiguredProfile Conf1_2() {
  ParametricProfile::Params p;
  p.name = "conf1.2";
  p.dataset_tuples = kCustomerTuples;
  p.overhead_ms = 395.0;   // 3 queries share the path: per-block cost up
  p.per_tuple_ms = 0.35;
  p.slope_ms = 0.0;
  p.paging_ms = 0.0;
  // Larger ripples: the higher stddev "may insert more local optimum
  // points" (paper Fig. 3 discussion).
  p.bumps = {{5000.0, 700.0, 4200.0},
             {9500.0, 900.0, 3000.0},
             {15000.0, 1100.0, 2500.0}};

  ConfiguredProfile out;
  out.profile = std::make_shared<ParametricProfile>(std::move(p));
  out.limits = {100, 20000};
  out.noise_amplitude = 0.15;
  out.paper_b1 = 1200.0;   // the paper drops b1 to 1200 for conf1.2
  return out;
}

ConfiguredProfile Conf1_3() {
  ParametricProfile::Params p;
  p.name = "conf1.3";
  p.dataset_tuples = kCustomerTuples;
  p.overhead_ms = 200.0;
  p.per_tuple_ms = 0.28;
  p.slope_ms = 0.0;
  // Memory-intensive jobs: paging sets in past ~12K tuples, pulling the
  // optimum to ~13.5K (left of the upper limit).
  p.paging_ms = 5.7e-4;
  p.buffer_tuples = 12000.0;
  p.bumps = {{6000.0, 600.0, 5200.0},
             {10000.0, 800.0, 4200.0},
             {16500.0, 900.0, 3600.0}};

  ConfiguredProfile out;
  out.profile = std::make_shared<ParametricProfile>(std::move(p));
  out.limits = {100, 20000};
  out.noise_amplitude = 0.12;
  out.paper_b1 = 2000.0;
  return out;
}

ConfiguredProfile Conf2_1() {
  ParametricProfile::Params p;
  p.name = "conf2.1";
  p.dataset_tuples = kCustomerTuples;
  p.overhead_ms = 107.0;   // loaded container: request handling dominates
  p.per_tuple_ms = 0.05;   // 1 Gbps LAN: transfer is nearly free
  p.slope_ms = 0.0;
  // 3 queries share a small effective buffer: sharp bowl, optimum ~2.2K.
  p.paging_ms = 2.6e-3;
  p.buffer_tuples = 1800.0;
  p.bumps = {{900.0, 250.0, 1800.0}, {3800.0, 450.0, 2400.0}};

  ConfiguredProfile out;
  out.profile = std::make_shared<ParametricProfile>(std::move(p));
  out.limits = {100, 7000};  // paper resets the upper limit to 7000
  out.noise_amplitude = 0.12;
  out.paper_b1 = 1200.0;
  return out;
}

ConfiguredProfile Conf2_2() {
  ParametricProfile::Params p;
  p.name = "conf2.2";
  p.dataset_tuples = kOrdersTuples;  // 3x the Customer result
  p.overhead_ms = 120.0;
  p.per_tuple_ms = 0.04;
  p.slope_ms = 0.0;
  p.paging_ms = 6.9e-4;
  p.buffer_tuples = 6500.0;
  // "there exist many local minima, and the quadratic model fitting
  // fails to approximate the global one" (paper Fig. 9 discussion).
  p.bumps = {{2500.0, 400.0, 9000.0},
             {4800.0, 350.0, -2200.0},   // a local dip left of the optimum
             {11500.0, 700.0, 6500.0},
             {15500.0, 600.0, -2600.0},  // a local dip right of the optimum
             {17800.0, 500.0, 5200.0}};

  ConfiguredProfile out;
  out.profile = std::make_shared<ParametricProfile>(std::move(p));
  out.limits = {100, 20000};
  out.noise_amplitude = 0.12;
  out.paper_b1 = 1200.0;
  return out;
}

Result<ConfiguredProfile> ConfigurationByName(const std::string& name) {
  if (name == "conf1.1") return Conf1_1();
  if (name == "conf1.2") return Conf1_2();
  if (name == "conf1.3") return Conf1_3();
  if (name == "conf2.1") return Conf2_1();
  if (name == "conf2.2") return Conf2_2();
  return Status::NotFound("unknown configuration: " + name);
}

std::vector<std::string> AllConfigurationNames() {
  return {"conf1.1", "conf1.2", "conf1.3", "conf2.1", "conf2.2"};
}

}  // namespace wsq
