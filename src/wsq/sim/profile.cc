#include "wsq/sim/profile.h"

#include <algorithm>
#include <cmath>

namespace wsq {

double ParametricProfile::AggregateMs(double block_size) const {
  const double x = std::max(block_size, 1.0);
  const double n = static_cast<double>(params_.dataset_tuples);
  const double blocks = n / x;

  double total = params_.overhead_ms * blocks;
  total += params_.per_tuple_ms * n;
  total += params_.slope_ms * x;

  const double overshoot = x - params_.buffer_tuples;
  if (overshoot > 0.0 && params_.paging_ms > 0.0) {
    total += blocks * params_.paging_ms * overshoot * overshoot /
             std::sqrt(params_.buffer_tuples);
  }

  for (const ProfileBump& bump : params_.bumps) {
    const double z = (x - bump.center) / bump.width;
    total += bump.height_ms * std::exp(-0.5 * z * z);
  }
  return total;
}

Result<TabulatedProfile> TabulatedProfile::Create(
    std::string name, int64_t dataset_tuples,
    std::vector<std::pair<double, double>> points) {
  if (points.empty()) {
    return Status::InvalidArgument("TabulatedProfile: no points");
  }
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].first <= points[i - 1].first) {
      return Status::InvalidArgument(
          "TabulatedProfile: block sizes must be strictly increasing");
    }
  }
  if (dataset_tuples < 1) {
    return Status::InvalidArgument("TabulatedProfile: dataset must be >= 1");
  }
  return TabulatedProfile(std::move(name), dataset_tuples, std::move(points));
}

double TabulatedProfile::AggregateMs(double block_size) const {
  if (block_size <= points_.front().first) return points_.front().second;
  if (block_size >= points_.back().first) return points_.back().second;
  // Binary search for the enclosing segment.
  size_t lo = 0;
  size_t hi = points_.size() - 1;
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (points_[mid].first <= block_size) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const auto& [x0, y0] = points_[lo];
  const auto& [x1, y1] = points_[hi];
  const double frac = (block_size - x0) / (x1 - x0);
  return y0 + frac * (y1 - y0);
}

int64_t NoiseFreeOptimum(const ResponseProfile& profile, int64_t min_size,
                         int64_t max_size, int64_t step) {
  int64_t best_x = min_size;
  double best_y = profile.AggregateMs(static_cast<double>(min_size));
  for (int64_t x = min_size; x <= max_size; x += std::max<int64_t>(step, 1)) {
    const double y = profile.AggregateMs(static_cast<double>(x));
    if (y < best_y) {
      best_y = y;
      best_x = x;
    }
  }
  // Make sure the exact upper limit is considered.
  const double y_max = profile.AggregateMs(static_cast<double>(max_size));
  if (y_max < best_y) best_x = max_size;
  return best_x;
}

}  // namespace wsq
