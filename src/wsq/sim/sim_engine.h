#ifndef WSQ_SIM_SIM_ENGINE_H_
#define WSQ_SIM_SIM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "wsq/common/random.h"
#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/fault/exchange_player.h"
#include "wsq/obs/run_observer.h"
#include "wsq/sim/profile.h"

namespace wsq {

/// Noise and volatility injected on top of a static profile — the
/// "unknown and unpredictable factors" the paper's MATLAB engine
/// emulates: jitter, transients after block size changes, and movements
/// of the optimal point.
struct SimOptions {
  /// Uniform multiplicative noise: each measurement is scaled by a draw
  /// from [1 - amplitude, 1 + amplitude].
  double noise_amplitude = 0.10;
  /// Random-walk drift of the optimum: each block, the profile's
  /// horizontal scale is multiplied by (1 + N(0, drift_sigma)). 0
  /// disables drift.
  double drift_sigma = 0.0;
  /// Extra transient penalty applied to the first measurement after a
  /// block-size change, as a fraction of the measurement (warm caches /
  /// renegotiated buffers). 0 disables.
  double transient_penalty = 0.0;
  uint64_t seed = 1;
};

/// Per-adaptivity-step record of a simulated run.
struct SimStep {
  int64_t step = 0;
  /// Block size the controller had commanded for this measurement.
  int64_t block_size = 0;
  /// Noisy per-tuple cost the controller observed (ms/tuple).
  double per_tuple_ms = 0.0;
  /// Controller adaptivity steps completed after this measurement was
  /// folded in (fixed-size controllers always report 0); keeps the sim
  /// trace convertible to the canonical backend RunTrace.
  int64_t adaptivity_steps = 0;
  /// Injected-fault exchange failures retried before this block's
  /// measurement completed (0 without a fault plan).
  int64_t retries = 0;
};

struct SimRunResult {
  /// Query response time (ms): sum of per-block costs plus any
  /// retry/backoff dead time injected by a fault plan.
  double total_time_ms = 0.0;
  int64_t total_blocks = 0;
  int64_t total_tuples = 0;
  /// Retried exchanges across the run and their dead time (failed
  /// attempts' capped costs + backoff), included in total_time_ms but in
  /// no per-block cost — the cross-backend retry accounting invariant.
  int64_t total_retries = 0;
  double retry_time_ms = 0.0;
  std::vector<SimStep> steps;
};

/// Profile-driven simulation engine (the paper's Section III-C / IV-B
/// methodology): runs a controller against a response profile, feeding
/// it noisy per-tuple costs and accounting the aggregate time.
class SimEngine {
 public:
  explicit SimEngine(const SimOptions& options);

  /// Drains one query of `profile.dataset_tuples()` tuples under
  /// `controller`. The controller is NOT reset first (callers own reset
  /// policy so warm-started continuations are possible).
  Result<SimRunResult> RunQuery(Controller* controller,
                                const ResponseProfile& profile);

  /// Long-lived run of exactly `total_steps` adaptivity steps across a
  /// schedule of profiles: `schedule[i]` is active for steps
  /// [i * steps_per_profile, (i+1) * steps_per_profile); the last entry
  /// stays active through the end (Fig. 8 methodology). The dataset is
  /// treated as unbounded.
  Result<SimRunResult> RunSchedule(
      Controller* controller,
      const std::vector<const ResponseProfile*>& schedule,
      int64_t steps_per_profile, int64_t total_steps);

  /// Measures one block: noisy per-tuple cost of `profile` at
  /// `block_size` under current drift. Exposed for ground-truth sweeps.
  double MeasurePerTupleMs(const ResponseProfile& profile,
                           int64_t block_size);

  /// Attaches an observability sink (block spans + controller decisions
  /// in simulated time); null (the default) disables emission. The
  /// simulated-time cursor persists across runs so repeated runs lay out
  /// sequentially on one trace timeline. Not owned.
  void set_observer(RunObserver* observer) { observer_ = observer; }

  /// Simulated-time cursor (microseconds) the observer events are
  /// stamped with. Callers that recreate engines per run (seed
  /// isolation) hand the cursor across so consecutive runs lay out
  /// sequentially on one trace timeline.
  int64_t sim_time_micros() const { return sim_now_micros_; }
  void set_sim_time_micros(int64_t micros) { sim_now_micros_ = micros; }

  /// Attaches the chaos layer for the next run(s): injected failures
  /// pay their (deadline-capped) cost plus backoff as dead time, success
  /// perturbations inflate the observed block cost, and the policy's
  /// breaker governs the commanded sizes. Both null (the default) = no
  /// faults, byte-identical to the historical engine. Not owned; a
  /// policy must be supplied whenever an injector is.
  void set_fault_injection(FaultInjector* injector,
                           ResiliencePolicy* policy) {
    injector_ = injector;
    policy_ = policy;
  }

 private:
  void AdvanceDrift();

  /// Emits block span + decision sample and advances the sim-time cursor.
  void ObserveStep(Controller* controller, int64_t block_size,
                   int64_t delivered, double per_tuple_ms, int64_t next_size,
                   int64_t retries);

  SimOptions options_;
  Random rng_;
  double drift_scale_ = 1.0;
  int64_t last_block_size_ = -1;
  RunObserver* observer_ = nullptr;
  int64_t sim_now_micros_ = 0;
  FaultInjector* injector_ = nullptr;
  ResiliencePolicy* policy_ = nullptr;
};

}  // namespace wsq

#endif  // WSQ_SIM_SIM_ENGINE_H_
