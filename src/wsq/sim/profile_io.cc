#include "wsq/sim/profile_io.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "wsq/common/csv_writer.h"

namespace wsq {

Result<TabulatedProfile> ProfileFromSweep(std::string name,
                                          int64_t dataset_tuples,
                                          const GroundTruth& ground_truth) {
  std::vector<std::pair<double, double>> points;
  points.reserve(ground_truth.sweep.size());
  for (const SweepPoint& point : ground_truth.sweep) {
    points.emplace_back(static_cast<double>(point.block_size),
                        point.mean_ms);
  }
  return TabulatedProfile::Create(std::move(name), dataset_tuples,
                                  std::move(points));
}

Status SaveProfileCsv(const ResponseProfile& profile, int64_t min_size,
                      int64_t max_size, int64_t step,
                      const std::string& path) {
  if (min_size < 1 || min_size > max_size || step < 1) {
    return Status::InvalidArgument("SaveProfileCsv: bad grid");
  }
  CsvWriter csv({"block_size", "aggregate_ms"});
  int64_t last = -1;
  for (int64_t x = min_size; x <= max_size; x += step) {
    csv.AddNumericRow({static_cast<double>(x),
                       profile.AggregateMs(static_cast<double>(x))},
                      6);
    last = x;
  }
  if (last != max_size) {
    // Always include the exact upper limit so the table covers the
    // whole search space.
    csv.AddNumericRow({static_cast<double>(max_size),
                       profile.AggregateMs(static_cast<double>(max_size))},
                      6);
  }
  return csv.WriteToFile(path);
}

Result<TabulatedProfile> LoadProfileCsv(std::string name,
                                        int64_t dataset_tuples,
                                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::Unavailable("cannot open profile CSV: " + path);
  }

  std::vector<std::pair<double, double>> points;
  char line[512];
  bool first = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (first) {  // header
      first = false;
      continue;
    }
    char* end = nullptr;
    const double x = std::strtod(line, &end);
    if (end == line || *end != ',') {
      std::fclose(f);
      return Status::InvalidArgument("malformed profile CSV row: " +
                                     std::string(line));
    }
    const char* second = end + 1;
    char* end2 = nullptr;
    const double y = std::strtod(second, &end2);
    if (end2 == second) {
      std::fclose(f);
      return Status::InvalidArgument("malformed profile CSV row: " +
                                     std::string(line));
    }
    points.emplace_back(x, y);
  }
  std::fclose(f);
  return TabulatedProfile::Create(std::move(name), dataset_tuples,
                                  std::move(points));
}

}  // namespace wsq
