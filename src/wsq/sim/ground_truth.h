#ifndef WSQ_SIM_GROUND_TRUTH_H_
#define WSQ_SIM_GROUND_TRUTH_H_

#include <cstdint>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/sim/profile.h"
#include "wsq/sim/sim_engine.h"
#include "wsq/stats/running_stats.h"

namespace wsq {

/// One point of a fixed-block-size sweep: mean and stddev of the query
/// response time over the repeated runs — the data behind paper Figs. 3,
/// 6(a) and 7(a).
struct SweepPoint {
  int64_t block_size = 0;
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
};

struct GroundTruth {
  std::vector<SweepPoint> sweep;
  /// The post-mortem optimum: the fixed size with the lowest mean time.
  int64_t optimum_block_size = 0;
  double optimum_mean_ms = 0.0;
};

/// Runs `runs` noisy fixed-size queries at each block size on the grid
/// {min, min+step, ..., max} (max always included) and returns the sweep
/// plus the empirical optimum — the paper's methodology for defining
/// "1.0" in its normalized tables ("the optimum block size ... can be
/// defined only through a post-mortem analysis").
Result<GroundTruth> ComputeGroundTruth(const ResponseProfile& profile,
                                       const BlockSizeLimits& limits,
                                       int64_t grid_step, int runs,
                                       const SimOptions& options);

}  // namespace wsq

#endif  // WSQ_SIM_GROUND_TRUTH_H_
