#include "wsq/sim/experiment.h"

#include <algorithm>

namespace wsq {
namespace {

/// Folds per-run step traces into the summary's per-step mean decisions.
void FoldDecisions(const std::vector<std::vector<int64_t>>& per_run_decisions,
                   RepeatedRunSummary* summary) {
  if (per_run_decisions.empty()) return;
  size_t min_len = per_run_decisions.front().size();
  for (const auto& run : per_run_decisions) {
    min_len = std::min(min_len, run.size());
  }
  summary->mean_decision_per_step.assign(min_len, 0.0);
  for (const auto& run : per_run_decisions) {
    for (size_t i = 0; i < min_len; ++i) {
      summary->mean_decision_per_step[i] +=
          static_cast<double>(run[i]) /
          static_cast<double>(per_run_decisions.size());
    }
  }
}

}  // namespace

double RepeatedRunSummary::NormalizedMean(double optimum_ms) const {
  if (optimum_ms <= 0.0) return 0.0;
  return total_time_ms.mean() / optimum_ms;
}

Result<RepeatedRunSummary> RunRepeated(
    const ControllerFactoryFn& make_controller,
    const ResponseProfile& profile, int runs, const SimOptions& options) {
  if (runs < 1) {
    return Status::InvalidArgument("RunRepeated: runs must be >= 1");
  }
  RepeatedRunSummary summary;
  std::vector<std::vector<int64_t>> decisions;
  decisions.reserve(static_cast<size_t>(runs));

  for (int run = 0; run < runs; ++run) {
    std::unique_ptr<Controller> controller = make_controller();
    if (controller == nullptr) {
      return Status::InvalidArgument("RunRepeated: factory returned null");
    }
    if (run == 0) summary.controller_name = controller->name();

    SimOptions run_options = options;
    run_options.seed = options.seed + static_cast<uint64_t>(run) * 104729;
    SimEngine engine(run_options);
    Result<SimRunResult> result = engine.RunQuery(controller.get(), profile);
    if (!result.ok()) return result.status();

    summary.total_time_ms.Add(result.value().total_time_ms);
    std::vector<int64_t> run_decisions;
    run_decisions.reserve(result.value().steps.size());
    for (const SimStep& step : result.value().steps) {
      run_decisions.push_back(step.block_size);
    }
    if (!run_decisions.empty()) {
      summary.final_block_size.Add(
          static_cast<double>(run_decisions.back()));
    }
    decisions.push_back(std::move(run_decisions));
  }
  FoldDecisions(decisions, &summary);
  return summary;
}

Result<RepeatedRunSummary> RunRepeatedSchedule(
    const ControllerFactoryFn& make_controller,
    const std::vector<const ResponseProfile*>& schedule,
    int64_t steps_per_profile, int64_t total_steps, int runs,
    const SimOptions& options) {
  if (runs < 1) {
    return Status::InvalidArgument("RunRepeatedSchedule: runs must be >= 1");
  }
  RepeatedRunSummary summary;
  std::vector<std::vector<int64_t>> decisions;
  decisions.reserve(static_cast<size_t>(runs));

  for (int run = 0; run < runs; ++run) {
    std::unique_ptr<Controller> controller = make_controller();
    if (controller == nullptr) {
      return Status::InvalidArgument(
          "RunRepeatedSchedule: factory returned null");
    }
    if (run == 0) summary.controller_name = controller->name();

    SimOptions run_options = options;
    run_options.seed = options.seed + static_cast<uint64_t>(run) * 104729;
    SimEngine engine(run_options);
    Result<SimRunResult> result = engine.RunSchedule(
        controller.get(), schedule, steps_per_profile, total_steps);
    if (!result.ok()) return result.status();

    summary.total_time_ms.Add(result.value().total_time_ms);
    std::vector<int64_t> run_decisions;
    run_decisions.reserve(result.value().steps.size());
    for (const SimStep& step : result.value().steps) {
      run_decisions.push_back(step.block_size);
    }
    if (!run_decisions.empty()) {
      summary.final_block_size.Add(
          static_cast<double>(run_decisions.back()));
    }
    decisions.push_back(std::move(run_decisions));
  }
  FoldDecisions(decisions, &summary);
  return summary;
}

}  // namespace wsq
