#include "wsq/sim/ground_truth.h"

#include "wsq/control/fixed_controller.h"

namespace wsq {

Result<GroundTruth> ComputeGroundTruth(const ResponseProfile& profile,
                                       const BlockSizeLimits& limits,
                                       int64_t grid_step, int runs,
                                       const SimOptions& options) {
  if (!limits.Valid()) {
    return Status::InvalidArgument("ComputeGroundTruth: invalid limits");
  }
  if (grid_step < 1 || runs < 1) {
    return Status::InvalidArgument(
        "ComputeGroundTruth: grid_step and runs must be >= 1");
  }

  GroundTruth out;
  std::vector<int64_t> grid;
  for (int64_t x = limits.min_size; x <= limits.max_size; x += grid_step) {
    grid.push_back(x);
  }
  if (grid.back() != limits.max_size) grid.push_back(limits.max_size);

  for (int64_t x : grid) {
    RunningStats stats;
    for (int run = 0; run < runs; ++run) {
      SimOptions run_options = options;
      run_options.seed = options.seed + static_cast<uint64_t>(run) * 7919 +
                         static_cast<uint64_t>(x);
      SimEngine engine(run_options);
      FixedController controller(x);
      Result<SimRunResult> result = engine.RunQuery(&controller, profile);
      if (!result.ok()) return result.status();
      stats.Add(result.value().total_time_ms);
    }
    SweepPoint point;
    point.block_size = x;
    point.mean_ms = stats.mean();
    point.stddev_ms = stats.stddev();
    out.sweep.push_back(point);
  }

  const SweepPoint* best = &out.sweep.front();
  for (const SweepPoint& point : out.sweep) {
    if (point.mean_ms < best->mean_ms) best = &point;
  }
  out.optimum_block_size = best->block_size;
  out.optimum_mean_ms = best->mean_ms;
  return out;
}

}  // namespace wsq
