#ifndef WSQ_SIM_PROFILE_IO_H_
#define WSQ_SIM_PROFILE_IO_H_

#include <string>

#include "wsq/common/status.h"
#include "wsq/sim/ground_truth.h"
#include "wsq/sim/profile.h"

namespace wsq {

/// The paper's methodology bridge: its MATLAB engine ran "on the basis
/// of the profiles obtained by real evaluation experiments". These
/// helpers capture a measured fixed-size sweep as a TabulatedProfile and
/// persist profiles as two-column CSV (block_size, aggregate_ms), so an
/// empirical sweep from the full SOAP stack can drive the simulation
/// engine directly.

/// Builds a tabulated profile from a ground-truth sweep (mean response
/// times per block size). kInvalidArgument when the sweep is empty or
/// dataset_tuples < 1.
Result<TabulatedProfile> ProfileFromSweep(std::string name,
                                          int64_t dataset_tuples,
                                          const GroundTruth& ground_truth);

/// Samples `profile` on the grid {min, min+step, ..., max} and writes
/// "block_size,aggregate_ms" CSV (with header) to `path`.
Status SaveProfileCsv(const ResponseProfile& profile, int64_t min_size,
                      int64_t max_size, int64_t step,
                      const std::string& path);

/// Parses a CSV produced by SaveProfileCsv (or any two-column numeric
/// CSV with a one-line header) into a tabulated profile.
Result<TabulatedProfile> LoadProfileCsv(std::string name,
                                        int64_t dataset_tuples,
                                        const std::string& path);

}  // namespace wsq

#endif  // WSQ_SIM_PROFILE_IO_H_
