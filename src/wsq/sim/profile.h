#ifndef WSQ_SIM_PROFILE_H_
#define WSQ_SIM_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wsq/common/status.h"

namespace wsq {

/// A response-time profile: the noise-free relation between the block
/// size and the aggregate response time for retrieving one complete
/// dataset (the curves of paper Figs. 1-3, 6(a), 7(a)). The simulation
/// engine layers noise, drift and switching on top.
class ResponseProfile {
 public:
  virtual ~ResponseProfile() = default;

  /// Total response time (ms) for pulling the entire dataset at a fixed
  /// block size of `block_size` tuples.
  virtual double AggregateMs(double block_size) const = 0;

  /// Number of tuples in the dataset the profile describes.
  virtual int64_t dataset_tuples() const = 0;

  virtual std::string name() const = 0;

  /// Per-tuple cost (ms/tuple) at `block_size` — the metric controllers
  /// consume.
  double PerTupleMs(double block_size) const {
    return AggregateMs(block_size) /
           static_cast<double>(dataset_tuples());
  }

  /// Cost of one block of `block_size` tuples.
  double PerBlockMs(double block_size) const {
    return PerTupleMs(block_size) * block_size;
  }
};

/// A Gaussian bump added to a parametric profile, modelling the local
/// optimum points the paper observes on both sides of the global one.
struct ProfileBump {
  /// Center (tuples), width (tuples), and peak height (ms, may be
  /// negative to carve a local dip).
  double center = 0.0;
  double width = 1.0;
  double height_ms = 0.0;
};

/// Parametric profile
///
///   T(x) = overhead_ms * N / x            (per-block latency, amortized)
///        + per_tuple_ms * N               (size-independent work)
///        + slope_ms * x                   (linear memory/buffer cost)
///        + (N / x) * paging_ms * max(0, x - buffer)^2 / sqrt(buffer)
///        + sum of Gaussian bumps
///
/// The first two terms give the classic 1/x decay, the last two the
/// concave right side whose severity grows with load; bumps inject local
/// minima.
class ParametricProfile final : public ResponseProfile {
 public:
  struct Params {
    std::string name = "parametric";
    int64_t dataset_tuples = 150000;
    /// Fixed cost charged per block (latency + request handling), ms.
    double overhead_ms = 50.0;
    /// Cost per tuple independent of blocking, ms.
    double per_tuple_ms = 0.2;
    /// Linear growth with the block size, ms per tuple of block size.
    double slope_ms = 0.0;
    /// Paging penalty coefficient and buffer knee (tuples).
    double paging_ms = 0.0;
    double buffer_tuples = 1e12;
    std::vector<ProfileBump> bumps;
  };

  explicit ParametricProfile(Params params) : params_(std::move(params)) {}

  double AggregateMs(double block_size) const override;
  int64_t dataset_tuples() const override { return params_.dataset_tuples; }
  std::string name() const override { return params_.name; }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// Piecewise-linear profile over tabulated (block_size, aggregate_ms)
/// points; extrapolates flat beyond the table. Useful for encoding
/// measured curves directly.
class TabulatedProfile final : public ResponseProfile {
 public:
  /// Points must be non-empty with strictly increasing block sizes.
  static Result<TabulatedProfile> Create(
      std::string name, int64_t dataset_tuples,
      std::vector<std::pair<double, double>> points);

  double AggregateMs(double block_size) const override;
  int64_t dataset_tuples() const override { return dataset_tuples_; }
  std::string name() const override { return name_; }

 private:
  TabulatedProfile(std::string name, int64_t dataset_tuples,
                   std::vector<std::pair<double, double>> points)
      : name_(std::move(name)),
        dataset_tuples_(dataset_tuples),
        points_(std::move(points)) {}

  std::string name_;
  int64_t dataset_tuples_;
  std::vector<std::pair<double, double>> points_;
};

/// Finds the minimizing block size of a (noise-free) profile over
/// [min_size, max_size] by grid search with `step` granularity.
int64_t NoiseFreeOptimum(const ResponseProfile& profile, int64_t min_size,
                         int64_t max_size, int64_t step = 50);

}  // namespace wsq

#endif  // WSQ_SIM_PROFILE_H_
