#ifndef WSQ_SIM_EXPERIMENT_H_
#define WSQ_SIM_EXPERIMENT_H_

/// The repeated-run experiment harness moved to wsq/backend/experiment.h
/// when it became backend-generic (any QueryBackend, not just the
/// profile-driven SimEngine). This forwarding header keeps historical
/// includes — and the profile-based compatibility overloads of
/// RunRepeated/RunRepeatedSchedule — working unchanged.

#include "wsq/backend/experiment.h"

#endif  // WSQ_SIM_EXPERIMENT_H_
