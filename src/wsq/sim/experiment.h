#ifndef WSQ_SIM_EXPERIMENT_H_
#define WSQ_SIM_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/sim/profile.h"
#include "wsq/sim/sim_engine.h"
#include "wsq/stats/running_stats.h"

namespace wsq {

/// Builds a fresh controller for one run; experiments construct one per
/// repetition so runs are independent (mirrors the paper's "10 runs ...
/// scheduled in a round-robin fashion").
using ControllerFactoryFn = std::function<std::unique_ptr<Controller>()>;

/// Aggregate of repeated simulated runs of one controller against one
/// profile.
struct RepeatedRunSummary {
  std::string controller_name;
  /// Query response time across runs.
  RunningStats total_time_ms;
  /// Mean commanded block size at each adaptivity step, averaged across
  /// runs (the y-values of paper Figs. 4-9); truncated to the shortest
  /// run so every step has all runs contributing.
  std::vector<double> mean_decision_per_step;
  /// Final block size at the end of each run.
  RunningStats final_block_size;

  /// total_time mean divided by `optimum_ms` — the paper's normalized
  /// response time (1.0 = post-mortem optimum).
  double NormalizedMean(double optimum_ms) const;
};

/// Runs `runs` independent queries of `make_controller()` against
/// `profile`, varying the engine seed per run.
Result<RepeatedRunSummary> RunRepeated(const ControllerFactoryFn& make_controller,
                                       const ResponseProfile& profile,
                                       int runs, const SimOptions& options);

/// Same but over a profile schedule of fixed total steps (Fig. 8).
Result<RepeatedRunSummary> RunRepeatedSchedule(
    const ControllerFactoryFn& make_controller,
    const std::vector<const ResponseProfile*>& schedule,
    int64_t steps_per_profile, int64_t total_steps, int runs,
    const SimOptions& options);

}  // namespace wsq

#endif  // WSQ_SIM_EXPERIMENT_H_
