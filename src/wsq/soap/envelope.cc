#include "wsq/soap/envelope.h"

namespace wsq {
namespace {

constexpr std::string_view kXmlDeclaration =
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";

XmlNode MakeEnvelopeShell() {
  XmlNode envelope(std::string(kSoapPrefix) + ":Envelope");
  envelope.AddAttribute("xmlns:" + std::string(kSoapPrefix),
                        std::string(kSoapNamespace));
  return envelope;
}

}  // namespace

std::string BuildEnvelope(const XmlNode& body_payload) {
  XmlNode envelope = MakeEnvelopeShell();
  XmlNode body(std::string(kSoapPrefix) + ":Body");
  body.AddChild(body_payload);
  envelope.AddChild(std::move(body));
  return std::string(kXmlDeclaration) + envelope.ToString();
}

std::string BuildFaultEnvelope(const SoapFault& fault) {
  XmlNode fault_node(std::string(kSoapPrefix) + ":Fault");
  XmlNode code("faultcode");
  code.set_text(std::string(kSoapPrefix) + ":" + fault.code);
  XmlNode message("faultstring");
  message.set_text(fault.message);
  fault_node.AddChild(std::move(code));
  fault_node.AddChild(std::move(message));
  return BuildEnvelope(fault_node);
}

Result<XmlNode> ParseEnvelope(std::string_view document) {
  Result<XmlNode> root = ParseXml(document);
  if (!root.ok()) return root.status();
  if (LocalName(root.value().name()) != "Envelope") {
    return Status::InvalidArgument("document root is not a SOAP Envelope");
  }
  Result<const XmlNode*> body = root.value().ChildByLocalName("Body");
  if (!body.ok()) {
    return Status::InvalidArgument("SOAP Envelope has no Body");
  }
  if (body.value()->children().empty()) {
    return Status::InvalidArgument("SOAP Body is empty");
  }
  const XmlNode& payload = body.value()->children().front();
  if (LocalName(payload.name()) == "Fault") {
    Result<std::string> message = payload.ChildText("faultstring");
    return Status::RemoteFault(message.ok() ? message.value()
                                            : "unspecified SOAP fault");
  }
  return payload;
}

}  // namespace wsq
