#ifndef WSQ_SOAP_XML_H_
#define WSQ_SOAP_XML_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "wsq/common/status.h"

namespace wsq {

/// A parsed XML element: name, attributes, child elements and
/// concatenated text content. This is the minimal document model the
/// SOAP layer needs — no namespaces resolution (prefixes stay part of
/// names), no comments/CDATA/doctype support, which is all our own
/// envelopes use.
class XmlNode {
 public:
  XmlNode() = default;
  explicit XmlNode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view text) { text_.append(text); }

  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  void AddAttribute(std::string name, std::string value);
  /// Value of attribute `name`; kNotFound when absent.
  Result<std::string> Attribute(std::string_view name) const;

  const std::vector<XmlNode>& children() const { return children_; }
  /// Appends a child and returns a reference to the stored copy.
  XmlNode& AddChild(XmlNode child);

  /// First child with `name` (exact match including any prefix);
  /// kNotFound when absent.
  Result<const XmlNode*> Child(std::string_view name) const;

  /// First child whose name equals `name` ignoring any namespace prefix
  /// ("soapenv:Body" matches local name "Body").
  Result<const XmlNode*> ChildByLocalName(std::string_view name) const;

  /// Text of the first child named `name`; kNotFound when absent.
  Result<std::string> ChildText(std::string_view name) const;

  /// Serializes this element (and subtree) as XML.
  std::string ToString() const;

 private:
  void AppendTo(std::string& out) const;

  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<XmlNode> children_;
};

/// Escapes &, <, >, ", ' for use in text content or attribute values.
std::string XmlEscape(std::string_view raw);

/// Parses a single-rooted XML document. Leading XML declarations
/// (<?xml ...?>) are skipped. Returns kInvalidArgument on malformed
/// input (mismatched tags, bad entities, trailing garbage).
Result<XmlNode> ParseXml(std::string_view input);

/// Strips a namespace prefix: LocalName("soapenv:Body") == "Body".
std::string_view LocalName(std::string_view qualified);

}  // namespace wsq

#endif  // WSQ_SOAP_XML_H_
