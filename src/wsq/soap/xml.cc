#include "wsq/soap/xml.h"

#include <cctype>

namespace wsq {
namespace {

/// Incremental parser over a string_view with position tracking.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<XmlNode> ParseDocument() {
    SkipWhitespaceAndProlog();
    Result<XmlNode> root = ParseElement();
    if (!root.ok()) return root.status();
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return Error("trailing content after document root");
    }
    return root;
  }

 private:
  Status Error(std::string_view message) const {
    return Status::InvalidArgument("XML parse error at offset " +
                                   std::to_string(pos_) + ": " +
                                   std::string(message));
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Consume(char c) {
    if (!AtEnd() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  void SkipWhitespaceAndProlog() {
    SkipWhitespace();
    // <?xml ... ?> declarations and processing instructions.
    while (pos_ + 1 < input_.size() && input_[pos_] == '<' &&
           input_[pos_ + 1] == '?') {
      const size_t end = input_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? input_.size() : end + 2;
      SkipWhitespace();
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == ':' ||
           c == '_' || c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return Error("unterminated entity");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "amp") {
        out += '&';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else {
        return Error("unknown entity: " + std::string(entity));
      }
      i = semi;
    }
    return out;
  }

  Result<XmlNode> ParseElement() {
    if (!Consume('<')) return Error("expected '<'");
    Result<std::string> name = ParseName();
    if (!name.ok()) return name.status();
    XmlNode node(name.value());

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '/' || Peek() == '>') break;
      Result<std::string> attr_name = ParseName();
      if (!attr_name.ok()) return attr_name.status();
      SkipWhitespace();
      if (!Consume('=')) return Error("expected '=' in attribute");
      SkipWhitespace();
      const char quote = AtEnd() ? '\0' : Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected quoted attribute value");
      }
      ++pos_;
      const size_t value_start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      Result<std::string> value =
          DecodeEntities(input_.substr(value_start, pos_ - value_start));
      if (!value.ok()) return value.status();
      ++pos_;  // closing quote
      node.AddAttribute(std::move(attr_name).value(),
                        std::move(value).value());
    }

    if (Consume('/')) {
      if (!Consume('>')) return Error("expected '>' after '/'");
      return node;  // self-closing element
    }
    if (!Consume('>')) return Error("expected '>'");

    // Content: text and child elements until the matching end tag.
    while (true) {
      if (AtEnd()) return Error("unterminated element: " + node.name());
      if (Peek() == '<') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
          pos_ += 2;
          Result<std::string> end_name = ParseName();
          if (!end_name.ok()) return end_name.status();
          if (end_name.value() != node.name()) {
            return Error("mismatched end tag: expected " + node.name() +
                         ", got " + end_name.value());
          }
          SkipWhitespace();
          if (!Consume('>')) return Error("expected '>' in end tag");
          return node;
        }
        Result<XmlNode> child = ParseElement();
        if (!child.ok()) return child.status();
        node.AddChild(std::move(child).value());
      } else {
        const size_t start = pos_;
        while (!AtEnd() && Peek() != '<') ++pos_;
        Result<std::string> text =
            DecodeEntities(input_.substr(start, pos_ - start));
        if (!text.ok()) return text.status();
        node.append_text(text.value());
      }
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

std::string XmlEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string_view LocalName(std::string_view qualified) {
  const size_t colon = qualified.rfind(':');
  return colon == std::string_view::npos ? qualified
                                         : qualified.substr(colon + 1);
}

void XmlNode::AddAttribute(std::string name, std::string value) {
  attributes_.emplace_back(std::move(name), std::move(value));
}

Result<std::string> XmlNode::Attribute(std::string_view name) const {
  for (const auto& [attr_name, value] : attributes_) {
    if (attr_name == name) return value;
  }
  return Status::NotFound("no attribute named " + std::string(name));
}

XmlNode& XmlNode::AddChild(XmlNode child) {
  children_.push_back(std::move(child));
  return children_.back();
}

Result<const XmlNode*> XmlNode::Child(std::string_view name) const {
  for (const XmlNode& child : children_) {
    if (child.name() == name) return &child;
  }
  return Status::NotFound("no child element named " + std::string(name));
}

Result<const XmlNode*> XmlNode::ChildByLocalName(
    std::string_view name) const {
  for (const XmlNode& child : children_) {
    if (LocalName(child.name()) == name) return &child;
  }
  return Status::NotFound("no child element with local name " +
                          std::string(name));
}

Result<std::string> XmlNode::ChildText(std::string_view name) const {
  Result<const XmlNode*> child = Child(name);
  if (!child.ok()) return child.status();
  return child.value()->text();
}

void XmlNode::AppendTo(std::string& out) const {
  out += '<';
  out += name_;
  for (const auto& [attr_name, value] : attributes_) {
    out += ' ';
    out += attr_name;
    out += "=\"";
    out += XmlEscape(value);
    out += '"';
  }
  if (text_.empty() && children_.empty()) {
    out += "/>";
    return;
  }
  out += '>';
  out += XmlEscape(text_);
  for (const XmlNode& child : children_) child.AppendTo(out);
  out += "</";
  out += name_;
  out += '>';
}

std::string XmlNode::ToString() const {
  std::string out;
  AppendTo(out);
  return out;
}

Result<XmlNode> ParseXml(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

}  // namespace wsq
