#ifndef WSQ_SOAP_MESSAGE_H_
#define WSQ_SOAP_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/xml.h"

namespace wsq {

/// The wsq data-service message vocabulary — the OGSA-DAI-style protocol
/// spoken between the client (BlockFetcher) and the server
/// (DataService):
///
///   OpenSession(table, columns)  -> OpenSessionResponse(session_id)
///   RequestBlock(session, size)  -> BlockResponse(tuples, eof)
///   CloseSession(session)        -> CloseSessionResponse
///
/// Every message is one element inside a SOAP Body; errors come back as
/// SOAP Faults.

struct OpenSessionRequest {
  std::string table;
  /// Projection; empty means all columns.
  std::vector<std::string> columns;
  /// Optional filter expression (relation/predicate.h grammar); empty
  /// keeps every row.
  std::string filter;
};

struct OpenSessionResponse {
  int64_t session_id = 0;
  /// Rows in the underlying table — the result size for plain
  /// scan-project queries, an upper bound when a filter is set.
  int64_t total_rows = 0;
};

struct RequestBlockRequest {
  int64_t session_id = 0;
  int64_t block_size = 0;
  /// Client block sequence number, used by the server's replay cache to
  /// make retried fetches idempotent. -1 means "not sequenced": the
  /// SOAP encoding omits the element entirely so legacy requests stay
  /// byte-identical (the binary codec always carries it).
  int64_t sequence = -1;
};

struct BlockResponse {
  int64_t session_id = 0;
  bool end_of_results = false;
  int64_t num_tuples = 0;
  /// Serialized tuple rows (TupleSerializer format).
  std::string payload;
};

struct CloseSessionRequest {
  int64_t session_id = 0;
};

struct CloseSessionResponse {
  int64_t session_id = 0;
};

/// The *push* direction (paper Section I: "submitting calls to a WS to
/// perform data processing ... needs to be block-based"): the client
/// ships a block of input tuples to a named server-side function and
/// receives the processed tuples back.
struct ProcessBlockRequest {
  /// Registered function to invoke.
  std::string function;
  /// Client-chosen sequence number, echoed back (lets clients correlate
  /// responses and makes retries observable server-side).
  int64_t sequence = 0;
  int64_t num_tuples = 0;
  /// Serialized input tuples (TupleSerializer format, the function's
  /// input schema).
  std::string payload;
};

struct ProcessBlockResponse {
  int64_t sequence = 0;
  int64_t num_tuples = 0;
  /// Serialized output tuples (the function's output schema).
  std::string payload;
};

/// Kind tag for server-side dispatch.
enum class RequestKind {
  kOpenSession,
  kRequestBlock,
  kCloseSession,
  kProcessBlock,
};

/// Encoders: full envelope documents ready for "transmission".
std::string EncodeOpenSession(const OpenSessionRequest& request);
std::string EncodeOpenSessionResponse(const OpenSessionResponse& response);
std::string EncodeRequestBlock(const RequestBlockRequest& request);
std::string EncodeBlockResponse(const BlockResponse& response);
std::string EncodeCloseSession(const CloseSessionRequest& request);
std::string EncodeCloseSessionResponse(const CloseSessionResponse& response);
std::string EncodeProcessBlock(const ProcessBlockRequest& request);
std::string EncodeProcessBlockResponse(const ProcessBlockResponse& response);

/// Classifies a parsed request payload element by its local name;
/// kInvalidArgument for unknown operations.
Result<RequestKind> ClassifyRequest(const XmlNode& payload);

/// Decoders from the Body payload element (as returned by
/// ParseEnvelope). Each validates the element name and required fields.
Result<OpenSessionRequest> DecodeOpenSession(const XmlNode& payload);
Result<OpenSessionResponse> DecodeOpenSessionResponse(const XmlNode& payload);
Result<RequestBlockRequest> DecodeRequestBlock(const XmlNode& payload);
Result<BlockResponse> DecodeBlockResponse(const XmlNode& payload);
Result<CloseSessionRequest> DecodeCloseSession(const XmlNode& payload);
Result<CloseSessionResponse> DecodeCloseSessionResponse(
    const XmlNode& payload);
Result<ProcessBlockRequest> DecodeProcessBlock(const XmlNode& payload);
Result<ProcessBlockResponse> DecodeProcessBlockResponse(
    const XmlNode& payload);

}  // namespace wsq

#endif  // WSQ_SOAP_MESSAGE_H_
