#ifndef WSQ_SOAP_ENVELOPE_H_
#define WSQ_SOAP_ENVELOPE_H_

#include <optional>
#include <string>

#include "wsq/common/status.h"
#include "wsq/soap/xml.h"

namespace wsq {

/// The SOAP 1.1 envelope namespace prefix our messages use.
inline constexpr std::string_view kSoapPrefix = "soapenv";
inline constexpr std::string_view kSoapNamespace =
    "http://schemas.xmlsoap.org/soap/envelope/";

/// A SOAP fault, the error shape web services return instead of a
/// payload (maps onto StatusCode::kRemoteFault at the client).
struct SoapFault {
  /// "Client" (caller error) or "Server" (service error), per SOAP 1.1.
  std::string code;
  std::string message;
};

/// Wraps `body_payload` (one element) in a SOAP envelope document with
/// the standard XML declaration.
std::string BuildEnvelope(const XmlNode& body_payload);

/// Builds a fault envelope.
std::string BuildFaultEnvelope(const SoapFault& fault);

/// Parses an envelope and returns the first element inside Body.
/// When the body holds a Fault, returns kRemoteFault with the fault
/// string as the message. kInvalidArgument for malformed envelopes.
Result<XmlNode> ParseEnvelope(std::string_view document);

}  // namespace wsq

#endif  // WSQ_SOAP_ENVELOPE_H_
