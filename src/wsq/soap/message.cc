#include "wsq/soap/message.h"

#include <charconv>

namespace wsq {
namespace {

constexpr std::string_view kServiceNamespace = "urn:wsq:data-service";

XmlNode MakeOperation(std::string_view name) {
  XmlNode node{std::string(name)};
  node.AddAttribute("xmlns", std::string(kServiceNamespace));
  return node;
}

void AddTextChild(XmlNode& parent, std::string_view name,
                  std::string_view text) {
  XmlNode child{std::string(name)};
  child.set_text(std::string(text));
  parent.AddChild(std::move(child));
}

void AddIntChild(XmlNode& parent, std::string_view name, int64_t value) {
  AddTextChild(parent, name, std::to_string(value));
}

Status ExpectName(const XmlNode& payload, std::string_view name) {
  if (LocalName(payload.name()) != name) {
    return Status::InvalidArgument("expected element " + std::string(name) +
                                   ", got " + payload.name());
  }
  return Status::Ok();
}

Result<int64_t> IntChild(const XmlNode& payload, std::string_view name) {
  Result<std::string> text = payload.ChildText(name);
  if (!text.ok()) return text.status();
  int64_t value = 0;
  const std::string& s = text.value();
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("element " + std::string(name) +
                                   " is not an integer: " + s);
  }
  return value;
}

Result<bool> BoolChild(const XmlNode& payload, std::string_view name) {
  Result<std::string> text = payload.ChildText(name);
  if (!text.ok()) return text.status();
  if (text.value() == "true") return true;
  if (text.value() == "false") return false;
  return Status::InvalidArgument("element " + std::string(name) +
                                 " is not a boolean: " + text.value());
}

}  // namespace

std::string EncodeOpenSession(const OpenSessionRequest& request) {
  XmlNode op = MakeOperation("OpenSession");
  AddTextChild(op, "table", request.table);
  XmlNode columns("columns");
  for (const std::string& column : request.columns) {
    AddTextChild(columns, "column", column);
  }
  op.AddChild(std::move(columns));
  if (!request.filter.empty()) {
    AddTextChild(op, "filter", request.filter);
  }
  return BuildEnvelope(op);
}

std::string EncodeOpenSessionResponse(const OpenSessionResponse& response) {
  XmlNode op = MakeOperation("OpenSessionResponse");
  AddIntChild(op, "sessionId", response.session_id);
  AddIntChild(op, "totalRows", response.total_rows);
  return BuildEnvelope(op);
}

std::string EncodeRequestBlock(const RequestBlockRequest& request) {
  XmlNode op = MakeOperation("RequestBlock");
  AddIntChild(op, "sessionId", request.session_id);
  AddIntChild(op, "blockSize", request.block_size);
  // Unsequenced requests (-1) omit the element so pre-replay-cache
  // request documents keep their exact historical byte size.
  if (request.sequence >= 0) {
    AddIntChild(op, "blockSeq", request.sequence);
  }
  return BuildEnvelope(op);
}

std::string EncodeBlockResponse(const BlockResponse& response) {
  XmlNode op = MakeOperation("BlockResponse");
  AddIntChild(op, "sessionId", response.session_id);
  AddTextChild(op, "endOfResults", response.end_of_results ? "true" : "false");
  AddIntChild(op, "numTuples", response.num_tuples);
  AddTextChild(op, "payload", response.payload);
  return BuildEnvelope(op);
}

std::string EncodeCloseSession(const CloseSessionRequest& request) {
  XmlNode op = MakeOperation("CloseSession");
  AddIntChild(op, "sessionId", request.session_id);
  return BuildEnvelope(op);
}

std::string EncodeCloseSessionResponse(const CloseSessionResponse& response) {
  XmlNode op = MakeOperation("CloseSessionResponse");
  AddIntChild(op, "sessionId", response.session_id);
  return BuildEnvelope(op);
}

std::string EncodeProcessBlock(const ProcessBlockRequest& request) {
  XmlNode op = MakeOperation("ProcessBlock");
  AddTextChild(op, "function", request.function);
  AddIntChild(op, "sequence", request.sequence);
  AddIntChild(op, "numTuples", request.num_tuples);
  AddTextChild(op, "payload", request.payload);
  return BuildEnvelope(op);
}

std::string EncodeProcessBlockResponse(const ProcessBlockResponse& response) {
  XmlNode op = MakeOperation("ProcessBlockResponse");
  AddIntChild(op, "sequence", response.sequence);
  AddIntChild(op, "numTuples", response.num_tuples);
  AddTextChild(op, "payload", response.payload);
  return BuildEnvelope(op);
}

Result<RequestKind> ClassifyRequest(const XmlNode& payload) {
  const std::string_view local = LocalName(payload.name());
  if (local == "OpenSession") return RequestKind::kOpenSession;
  if (local == "RequestBlock") return RequestKind::kRequestBlock;
  if (local == "CloseSession") return RequestKind::kCloseSession;
  if (local == "ProcessBlock") return RequestKind::kProcessBlock;
  return Status::InvalidArgument("unknown operation: " + std::string(local));
}

Result<OpenSessionRequest> DecodeOpenSession(const XmlNode& payload) {
  WSQ_RETURN_IF_ERROR(ExpectName(payload, "OpenSession"));
  OpenSessionRequest request;
  Result<std::string> table = payload.ChildText("table");
  if (!table.ok()) return table.status();
  request.table = table.value();
  Result<const XmlNode*> columns = payload.Child("columns");
  if (columns.ok()) {
    for (const XmlNode& column : columns.value()->children()) {
      if (LocalName(column.name()) == "column") {
        request.columns.push_back(column.text());
      }
    }
  }
  Result<std::string> filter = payload.ChildText("filter");
  if (filter.ok()) request.filter = filter.value();
  return request;
}

Result<OpenSessionResponse> DecodeOpenSessionResponse(const XmlNode& payload) {
  WSQ_RETURN_IF_ERROR(ExpectName(payload, "OpenSessionResponse"));
  OpenSessionResponse response;
  Result<int64_t> id = IntChild(payload, "sessionId");
  if (!id.ok()) return id.status();
  response.session_id = id.value();
  Result<int64_t> rows = IntChild(payload, "totalRows");
  if (!rows.ok()) return rows.status();
  response.total_rows = rows.value();
  return response;
}

Result<RequestBlockRequest> DecodeRequestBlock(const XmlNode& payload) {
  WSQ_RETURN_IF_ERROR(ExpectName(payload, "RequestBlock"));
  RequestBlockRequest request;
  Result<int64_t> id = IntChild(payload, "sessionId");
  if (!id.ok()) return id.status();
  request.session_id = id.value();
  Result<int64_t> size = IntChild(payload, "blockSize");
  if (!size.ok()) return size.status();
  request.block_size = size.value();
  Result<int64_t> sequence = IntChild(payload, "blockSeq");
  if (sequence.ok()) request.sequence = sequence.value();
  return request;
}

Result<BlockResponse> DecodeBlockResponse(const XmlNode& payload) {
  WSQ_RETURN_IF_ERROR(ExpectName(payload, "BlockResponse"));
  BlockResponse response;
  Result<int64_t> id = IntChild(payload, "sessionId");
  if (!id.ok()) return id.status();
  response.session_id = id.value();
  Result<bool> eof = BoolChild(payload, "endOfResults");
  if (!eof.ok()) return eof.status();
  response.end_of_results = eof.value();
  Result<int64_t> count = IntChild(payload, "numTuples");
  if (!count.ok()) return count.status();
  response.num_tuples = count.value();
  Result<std::string> data = payload.ChildText("payload");
  if (!data.ok()) return data.status();
  response.payload = data.value();
  return response;
}

Result<CloseSessionRequest> DecodeCloseSession(const XmlNode& payload) {
  WSQ_RETURN_IF_ERROR(ExpectName(payload, "CloseSession"));
  CloseSessionRequest request;
  Result<int64_t> id = IntChild(payload, "sessionId");
  if (!id.ok()) return id.status();
  request.session_id = id.value();
  return request;
}

Result<CloseSessionResponse> DecodeCloseSessionResponse(
    const XmlNode& payload) {
  WSQ_RETURN_IF_ERROR(ExpectName(payload, "CloseSessionResponse"));
  CloseSessionResponse response;
  Result<int64_t> id = IntChild(payload, "sessionId");
  if (!id.ok()) return id.status();
  response.session_id = id.value();
  return response;
}

Result<ProcessBlockRequest> DecodeProcessBlock(const XmlNode& payload) {
  WSQ_RETURN_IF_ERROR(ExpectName(payload, "ProcessBlock"));
  ProcessBlockRequest request;
  Result<std::string> function = payload.ChildText("function");
  if (!function.ok()) return function.status();
  request.function = function.value();
  Result<int64_t> sequence = IntChild(payload, "sequence");
  if (!sequence.ok()) return sequence.status();
  request.sequence = sequence.value();
  Result<int64_t> count = IntChild(payload, "numTuples");
  if (!count.ok()) return count.status();
  request.num_tuples = count.value();
  Result<std::string> data = payload.ChildText("payload");
  if (!data.ok()) return data.status();
  request.payload = data.value();
  return request;
}

Result<ProcessBlockResponse> DecodeProcessBlockResponse(
    const XmlNode& payload) {
  WSQ_RETURN_IF_ERROR(ExpectName(payload, "ProcessBlockResponse"));
  ProcessBlockResponse response;
  Result<int64_t> sequence = IntChild(payload, "sequence");
  if (!sequence.ok()) return sequence.status();
  response.sequence = sequence.value();
  Result<int64_t> count = IntChild(payload, "numTuples");
  if (!count.ok()) return count.status();
  response.num_tuples = count.value();
  Result<std::string> data = payload.ChildText("payload");
  if (!data.ok()) return data.status();
  response.payload = data.value();
  return response;
}

}  // namespace wsq
