#ifndef WSQ_NETSIM_LINK_MODEL_H_
#define WSQ_NETSIM_LINK_MODEL_H_

#include <cstddef>
#include <string>

#include "wsq/common/random.h"
#include "wsq/common/status.h"

namespace wsq {

/// Parameters of a simulated client<->server network path. The defaults
/// are a mid-range WAN; see presets.h for the paper's concrete setups.
struct LinkConfig {
  /// Round-trip propagation + HTTP/TCP handshake latency charged once
  /// per request/response exchange (milliseconds). This is the fixed
  /// per-block overhead that makes tiny blocks expensive.
  double round_trip_latency_ms = 40.0;
  /// Application-level payload throughput in megabits per second.
  double bandwidth_mbps = 8.0;
  /// Lognormal jitter sigma applied multiplicatively to each exchange;
  /// 0 disables jitter.
  double jitter_sigma = 0.12;
  /// Share of the nominal bandwidth available to this flow (cross
  /// traffic / concurrent queries on the same path reduce it).
  double bandwidth_share = 1.0;
  /// Probability that an exchange is lost (the client observes a
  /// timeout); 0 disables failure injection.
  double drop_probability = 0.0;
  /// Wall time a lost exchange costs the client before it gives up.
  double timeout_ms = 30000.0;

  Status Validate() const;
};

/// Computes simulated wire times for SOAP exchanges.
class LinkModel {
 public:
  explicit LinkModel(const LinkConfig& config) : config_(config) {}

  const LinkConfig& config() const { return config_; }
  void set_bandwidth_share(double share);

  /// Time on the wire for one request/response exchange carrying the
  /// given byte counts, including latency and jitter. `rng` supplies the
  /// jitter draw.
  double ExchangeTimeMs(size_t request_bytes, size_t response_bytes,
                        Random& rng) const;

  /// Draws whether this exchange is dropped (failure injection).
  bool ExchangeDropped(Random& rng) const;

  /// Deterministic (jitter-free) exchange time; used by tests and the
  /// analytic ground-truth sweep.
  double NominalExchangeTimeMs(size_t request_bytes,
                               size_t response_bytes) const;

 private:
  LinkConfig config_;
};

}  // namespace wsq

#endif  // WSQ_NETSIM_LINK_MODEL_H_
