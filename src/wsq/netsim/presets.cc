#include "wsq/netsim/presets.h"

namespace wsq {

LinkConfig WanUkToSwitzerland() {
  LinkConfig config;
  config.round_trip_latency_ms = 38.0;
  config.bandwidth_mbps = 9.0;
  config.jitter_sigma = 0.15;
  return config;
}

LinkConfig WanUkToGreece() {
  LinkConfig config;
  config.round_trip_latency_ms = 62.0;
  config.bandwidth_mbps = 6.5;
  config.jitter_sigma = 0.18;
  return config;
}

LinkConfig Lan1Gbps() {
  LinkConfig config;
  config.round_trip_latency_ms = 0.7;
  config.bandwidth_mbps = 1000.0;
  config.jitter_sigma = 0.05;
  return config;
}

}  // namespace wsq
