#include "wsq/netsim/link_model.h"

#include <algorithm>

namespace wsq {

Status LinkConfig::Validate() const {
  if (round_trip_latency_ms < 0.0) {
    return Status::InvalidArgument("latency must be >= 0");
  }
  if (bandwidth_mbps <= 0.0) {
    return Status::InvalidArgument("bandwidth must be > 0");
  }
  if (jitter_sigma < 0.0) {
    return Status::InvalidArgument("jitter sigma must be >= 0");
  }
  if (bandwidth_share <= 0.0 || bandwidth_share > 1.0) {
    return Status::InvalidArgument("bandwidth share must be in (0, 1]");
  }
  if (drop_probability < 0.0 || drop_probability >= 1.0) {
    return Status::InvalidArgument("drop probability must be in [0, 1)");
  }
  if (timeout_ms <= 0.0) {
    return Status::InvalidArgument("timeout must be positive");
  }
  return Status::Ok();
}

void LinkModel::set_bandwidth_share(double share) {
  config_.bandwidth_share = std::clamp(share, 0.01, 1.0);
}

double LinkModel::NominalExchangeTimeMs(size_t request_bytes,
                                        size_t response_bytes) const {
  const double total_bits =
      8.0 * static_cast<double>(request_bytes + response_bytes);
  const double effective_mbps =
      config_.bandwidth_mbps * config_.bandwidth_share;
  const double transfer_ms = total_bits / (effective_mbps * 1e6) * 1e3;
  return config_.round_trip_latency_ms + transfer_ms;
}

double LinkModel::ExchangeTimeMs(size_t request_bytes, size_t response_bytes,
                                 Random& rng) const {
  const double nominal = NominalExchangeTimeMs(request_bytes, response_bytes);
  if (config_.jitter_sigma <= 0.0) return nominal;
  return nominal * rng.LognormalMultiplier(config_.jitter_sigma);
}

bool LinkModel::ExchangeDropped(Random& rng) const {
  if (config_.drop_probability <= 0.0) return false;
  return rng.Bernoulli(config_.drop_probability);
}

}  // namespace wsq
