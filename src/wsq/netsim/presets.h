#ifndef WSQ_NETSIM_PRESETS_H_
#define WSQ_NETSIM_PRESETS_H_

#include "wsq/netsim/link_model.h"

namespace wsq {

/// The paper's WAN path for the motivation scenario: server in the UK,
/// client on a PlanetLab node in Switzerland. High latency, moderate
/// bandwidth, noticeable cross-traffic jitter.
LinkConfig WanUkToSwitzerland();

/// The paper's WAN path for Section III-B.1: server in the UK, client in
/// Greece. Slightly longer path than the Swiss one.
LinkConfig WanUkToGreece();

/// The paper's LAN setup for Section III-B.2: machines connected via
/// 1 Gbps Ethernet. Latency-cheap, so the interesting cost shifts to the
/// server side.
LinkConfig Lan1Gbps();

}  // namespace wsq

#endif  // WSQ_NETSIM_PRESETS_H_
