#include "wsq/common/random.h"

#include <algorithm>
#include <cmath>

namespace wsq {

double Random::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Random::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Random::LognormalMultiplier(double sigma) {
  // Median of lognormal(mu=0, sigma) is exp(0) = 1, so the multiplier is
  // centered (in the median sense) on "no jitter".
  std::lognormal_distribution<double> dist(0.0, sigma);
  return dist(engine_);
}

bool Random::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

Random Random::Fork() {
  // Mix the next raw draw so forked streams do not overlap with the
  // parent's future output in practice.
  uint64_t s = engine_();
  s ^= s >> 33;
  s *= 0xff51afd7ed558ccdULL;
  s ^= s >> 33;
  return Random(s);
}

}  // namespace wsq
