#ifndef WSQ_COMMON_LOGGING_H_
#define WSQ_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace wsq {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide log threshold; messages below it are dropped. Defaults to
/// kWarning so that library internals stay quiet in benchmarks.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Destination for formatted log lines. The `line` already carries the
/// "[<tag> <elapsed>s <file>:<line>] " prefix but no trailing newline.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

/// Replaces the process-wide sink. Passing a null sink restores the
/// default (stderr, one line per message). The sink is invoked from
/// whichever thread logged, so it must be thread-safe itself.
void SetLogSink(LogSink sink);

/// Seconds elapsed since the first log-related call in this process, on
/// the monotonic clock; this is the value stamped into log prefixes.
double LogElapsedSeconds();

namespace internal_logging {

/// Maps a WSQ_LOG level argument to a runtime level while rejecting
/// kOff at compile time: kOff is a threshold ("log nothing"), not a
/// message severity, so `WSQ_LOG(kOff) << ...` is a bug.
template <LogLevel Level>
struct LoggableLevel {
  static_assert(Level != LogLevel::kOff,
                "WSQ_LOG(kOff) is invalid: kOff is a threshold for "
                "SetLogLevel, not a message severity");
  static constexpr LogLevel value = Level;
};

/// Stream-style message collector; emits to the active sink (stderr by
/// default) on destruction when the level passes the threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define WSQ_LOG(level)                                      \
  ::wsq::internal_logging::LogMessage(                      \
      ::wsq::internal_logging::LoggableLevel<               \
          ::wsq::LogLevel::level>::value,                   \
      __FILE__, __LINE__)

}  // namespace wsq

#endif  // WSQ_COMMON_LOGGING_H_
