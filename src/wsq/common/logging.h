#ifndef WSQ_COMMON_LOGGING_H_
#define WSQ_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace wsq {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide log threshold; messages below it are dropped. Defaults to
/// kWarning so that library internals stay quiet in benchmarks.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style message collector; emits to stderr on destruction when the
/// level passes the threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define WSQ_LOG(level)                                                     \
  ::wsq::internal_logging::LogMessage(::wsq::LogLevel::level, __FILE__, \
                                      __LINE__)

}  // namespace wsq

#endif  // WSQ_COMMON_LOGGING_H_
