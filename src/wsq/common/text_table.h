#ifndef WSQ_COMMON_TEXT_TABLE_H_
#define WSQ_COMMON_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace wsq {

/// Builds a fixed-width, human-readable table, the format every bench
/// binary uses to print the rows/series a paper table or figure reports.
///
/// Example:
///   TextTable t({"conf", "static 1000", "hybrid"});
///   t.AddRow({"conf1.1", "1.39", "0.98"});
///   std::cout << t.ToString();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells, long rows
  /// extend the column set.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for numeric rows; renders each value with `precision`
  /// significant fraction digits.
  void AddNumericRow(const std::string& label, const std::vector<double>& values,
                     int precision = 3);

  size_t num_rows() const { return rows_.size(); }

  /// Renders the table with a separator line under the header.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `precision` fraction digits (fixed notation).
std::string FormatDouble(double value, int precision);

}  // namespace wsq

#endif  // WSQ_COMMON_TEXT_TABLE_H_
