#include "wsq/common/logging.h"

#include <atomic>
#include <cstdio>

namespace wsq {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    // Keep just the basename to avoid noisy absolute paths.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal_logging
}  // namespace wsq
