#include "wsq/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

namespace wsq {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

std::mutex& SinkMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

// Guarded by SinkMutex(); leaked so logging stays safe during static
// destruction.
LogSink& SinkSlot() {
  static LogSink* sink = new LogSink;
  return *sink;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      break;  // unreachable: WSQ_LOG(kOff) is rejected at compile time.
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

double LogElapsedSeconds() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    // Keep just the basename to avoid noisy absolute paths.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    char elapsed[32];
    std::snprintf(elapsed, sizeof(elapsed), "%.3f", LogElapsedSeconds());
    stream_ << "[" << LevelTag(level_) << " " << elapsed << "s " << base
            << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  const std::string line = stream_.str();
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    sink = SinkSlot();
  }
  if (sink) {
    sink(level_, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace internal_logging
}  // namespace wsq
