#ifndef WSQ_COMMON_CLOCK_H_
#define WSQ_COMMON_CLOCK_H_

#include <cstdint>

namespace wsq {

/// Abstract time source. The client-side control loop (paper Algorithm 1)
/// timestamps each block request; in the simulated environment those
/// timestamps come from a SimClock advanced by the network/server models,
/// while unit tests and examples may use WallClock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;
};

/// Deterministic, manually advanced clock for simulation. All simulated
/// costs (network transfer, server processing, client parsing) are
/// converted to microseconds and pushed through Advance().
class SimClock final : public Clock {
 public:
  SimClock() = default;
  explicit SimClock(int64_t start_micros) : now_micros_(start_micros) {}

  int64_t NowMicros() const override { return now_micros_; }

  /// Moves time forward; negative deltas are ignored (time never goes
  /// backwards, even if a cost model misbehaves).
  void AdvanceMicros(int64_t delta);

  /// Convenience for models that compute costs in fractional milliseconds.
  void AdvanceMillis(double delta_millis);

 private:
  int64_t now_micros_ = 0;
};

/// Real time, for examples that want actual elapsed durations.
class WallClock final : public Clock {
 public:
  int64_t NowMicros() const override;
};

}  // namespace wsq

#endif  // WSQ_COMMON_CLOCK_H_
