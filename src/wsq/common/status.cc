#include "wsq/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace wsq {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kRemoteFault:
      return "remote_fault";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace internal_status {

void DieOnBadAccess(const Status& status) {
  std::fprintf(stderr, "wsq: Result::value() called on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace wsq
