#include "wsq/common/text_table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace wsq {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::AddNumericRow(const std::string& label,
                              const std::vector<double>& values,
                              int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string TextTable::ToString() const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());

  std::vector<size_t> widths(cols, 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      out << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) out << "  ";
    }
    out << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  total += widths.empty() ? 0 : 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace wsq
