#ifndef WSQ_COMMON_CSV_WRITER_H_
#define WSQ_COMMON_CSV_WRITER_H_

#include <string>
#include <vector>

#include "wsq/common/status.h"

namespace wsq {

/// Accumulates rows and writes RFC-4180-ish CSV, used by bench binaries to
/// optionally dump the series behind each figure for external plotting.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(const std::vector<std::string>& cells);
  void AddNumericRow(const std::vector<double>& values, int precision = 6);

  /// Serializes header + rows; cells containing commas, quotes or newlines
  /// are quoted with doubled inner quotes.
  std::string ToString() const;

  /// Writes ToString() to `path`, overwriting. Returns kUnavailable when
  /// the file cannot be opened.
  Status WriteToFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wsq

#endif  // WSQ_COMMON_CSV_WRITER_H_
