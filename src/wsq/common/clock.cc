#include "wsq/common/clock.h"

#include <chrono>
#include <cmath>

namespace wsq {

void SimClock::AdvanceMicros(int64_t delta) {
  if (delta > 0) now_micros_ += delta;
}

void SimClock::AdvanceMillis(double delta_millis) {
  if (delta_millis > 0) {
    now_micros_ += static_cast<int64_t>(std::llround(delta_millis * 1000.0));
  }
}

int64_t WallClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace wsq
