#ifndef WSQ_COMMON_RANDOM_H_
#define WSQ_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace wsq {

/// Deterministic pseudo-random source used everywhere in the library so
/// that experiments are reproducible run-to-run. Wraps a Mersenne Twister
/// and exposes the handful of distributions the paper's machinery needs
/// (Gaussian dither, uniform noise, lognormal network jitter).
///
/// Not thread-safe; give each simulated entity its own instance, seeded
/// from a parent via Fork() to keep streams independent.
class Random {
 public:
  explicit Random(uint64_t seed) : engine_(seed) {}

  /// Draws from N(mean, stddev). Used for the dither signal d(k) = df*w(k)
  /// where w ~ N(0, 1) (paper Section III-A).
  double Gaussian(double mean, double stddev);

  /// Draws uniformly from [lo, hi).
  double Uniform(double lo, double hi);

  /// Draws uniformly from {lo, ..., hi} inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Draws from a lognormal such that the median multiplier is 1.0 and
  /// `sigma` controls the spread; models network jitter multipliers.
  double LognormalMultiplier(double sigma);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Derives an independent child generator; the i-th fork of a given
  /// parent is deterministic.
  Random Fork();

  /// Raw 64-bit draw, for hashing-style uses.
  uint64_t Next64() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace wsq

#endif  // WSQ_COMMON_RANDOM_H_
