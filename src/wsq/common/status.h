#ifndef WSQ_COMMON_STATUS_H_
#define WSQ_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace wsq {

/// Error categories used across the library. Modeled after the
/// absl::Status / rocksdb::Status idiom: hot paths never throw; fallible
/// operations return a Status (or Result<T>) that callers must consult.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument is outside the documented domain.
  kInvalidArgument,
  /// A named entity (table, session, element) does not exist.
  kNotFound,
  /// An index or cursor moved past its valid range.
  kOutOfRange,
  /// The operation requires state the object is not in (e.g. fetching
  /// from a closed session).
  kFailedPrecondition,
  /// An invariant inside the library broke; indicates a bug.
  kInternal,
  /// A transient environment failure (e.g. simulated network drop).
  kUnavailable,
  /// A SOAP fault was returned by the remote service.
  kRemoteFault,
};

/// Returns the canonical lowercase name of `code` (e.g. "invalid_argument").
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic error carrier. An ok Status stores no message and is
/// cheap to copy. Non-ok Statuses carry a human-readable message that is
/// meant for logs, not for programmatic dispatch (dispatch on code()).
class Status {
 public:
  /// Constructs an ok status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status RemoteFault(std::string_view msg) {
    return Status(StatusCode::kRemoteFault, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "code: message" for logs; "ok" for the ok status.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-ok Status explaining its absence.
/// Accessing value() on an error Result aborts the process (programming
/// error), so callers must check ok() first.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return t;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-ok status: allows `return Status::NotFound(..)`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
/// Aborts with a message including `status`; out-of-line so Result stays
/// header-lean.
[[noreturn]] void DieOnBadAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::CheckOk() const {
  if (!ok()) internal_status::DieOnBadAccess(status_);
}

/// Evaluates `expr` (a Status expression) and returns it from the current
/// function if it is not ok.
#define WSQ_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::wsq::Status wsq_status_tmp_ = (expr);         \
    if (!wsq_status_tmp_.ok()) return wsq_status_tmp_; \
  } while (false)

}  // namespace wsq

#endif  // WSQ_COMMON_STATUS_H_
