#include "wsq/common/csv_writer.h"

#include <cstdio>
#include <sstream>

#include "wsq/common/text_table.h"

namespace wsq {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteCell(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void EmitRow(std::ostringstream& out, const std::vector<std::string>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out << ',';
    out << QuoteCell(row[i]);
  }
  out << '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

void CsvWriter::AddNumericRow(const std::vector<double>& values,
                              int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(FormatDouble(v, precision));
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::ostringstream out;
  EmitRow(out, header_);
  for (const auto& row : rows_) EmitRow(out, row);
  return out.str();
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open file for writing: " + path);
  }
  const std::string data = ToString();
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace wsq
