#include "wsq/server/container.h"

namespace wsq {

ServiceContainer::ServiceContainer(Service* service,
                                   const LoadModelConfig& load, uint64_t seed)
    : service_(service), load_model_(load), rng_(seed) {}

DispatchResult ServiceContainer::Dispatch(
    const std::string& request_document) {
  return Dispatch(request_document, nullptr);
}

DispatchResult ServiceContainer::Dispatch(
    const std::string& request_document,
    const codec::BlockCodec* response_codec) {
  ServiceResult handled = service_->Handle(request_document, response_codec);

  DispatchResult result;
  result.response = std::move(handled.response);
  result.is_fault = handled.is_fault;
  result.replayed = handled.replayed;
  // Block-producing requests pay the full tuple-dependent cost; session
  // management and faults pay only the envelope-handling cost.
  result.service_time_ms =
      load_model_.ServiceTimeMs(handled.tuples_produced, rng_);

  total_busy_ms_ += result.service_time_ms;
  ++requests_served_;
  return result;
}

}  // namespace wsq
