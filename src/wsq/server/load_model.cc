#include "wsq/server/load_model.h"

#include <algorithm>
#include <cmath>

namespace wsq {

Status LoadModelConfig::Validate() const {
  if (concurrent_jobs < 0) {
    return Status::InvalidArgument("concurrent_jobs must be >= 0");
  }
  if (concurrent_queries < 1) {
    return Status::InvalidArgument("concurrent_queries must be >= 1");
  }
  if (memory_pressure < 0.0 || memory_pressure >= 1.0) {
    return Status::InvalidArgument("memory_pressure must be in [0, 1)");
  }
  if (buffer_capacity_tuples <= 0.0) {
    return Status::InvalidArgument("buffer_capacity_tuples must be > 0");
  }
  if (job_buffer_shrink < 0.0 || query_buffer_shrink < 0.0) {
    return Status::InvalidArgument("buffer shrink factors must be >= 0");
  }
  if (per_tuple_cpu_ms < 0.0 || per_request_cpu_ms < 0.0 ||
      paging_penalty_ms < 0.0) {
    return Status::InvalidArgument("cost coefficients must be >= 0");
  }
  if (noise_sigma < 0.0) {
    return Status::InvalidArgument("noise_sigma must be >= 0");
  }
  return Status::Ok();
}

double LoadModel::CpuMultiplier() const {
  return 1.0 +
         config_.job_slowdown * static_cast<double>(config_.concurrent_jobs) +
         config_.query_slowdown *
             static_cast<double>(config_.concurrent_queries - 1);
}

double LoadModel::EffectiveBufferTuples() const {
  const double job_factor =
      1.0 + config_.job_buffer_shrink *
                static_cast<double>(config_.concurrent_jobs);
  const double query_factor =
      1.0 + config_.query_buffer_shrink *
                static_cast<double>(config_.concurrent_queries - 1);
  const double shared =
      config_.buffer_capacity_tuples / (job_factor * query_factor);
  return std::max(shared * (1.0 - config_.memory_pressure), 1.0);
}

double LoadModel::NominalServiceTimeMs(int64_t block_tuples) const {
  const double tuples = static_cast<double>(std::max<int64_t>(block_tuples, 0));
  const double multiplier = CpuMultiplier();
  double time_ms = multiplier * (config_.per_request_cpu_ms +
                                 config_.per_tuple_cpu_ms * tuples);

  // Blocks larger than the effective buffer page: the overshoot costs
  // quadratically, which creates the concave right side of the
  // response-time profile and the order-of-magnitude blowups of Fig. 2(b).
  const double buffer = EffectiveBufferTuples();
  const double overshoot = tuples - buffer;
  if (overshoot > 0.0) {
    time_ms += multiplier * config_.paging_penalty_ms * overshoot * overshoot /
               std::sqrt(buffer);
  }
  return time_ms;
}

double LoadModel::ServiceTimeMs(int64_t block_tuples, Random& rng) const {
  const double nominal = NominalServiceTimeMs(block_tuples);
  if (config_.noise_sigma <= 0.0) return nominal;
  return nominal * rng.LognormalMultiplier(config_.noise_sigma);
}

}  // namespace wsq
