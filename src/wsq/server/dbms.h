#ifndef WSQ_SERVER_DBMS_H_
#define WSQ_SERVER_DBMS_H_

#include <map>
#include <memory>
#include <string>

#include "wsq/common/status.h"
#include "wsq/relation/query.h"
#include "wsq/relation/table.h"

namespace wsq {

/// The MySQL stand-in behind the data service: a catalog of in-memory
/// tables plus cursor-based query execution. Single-threaded by design —
/// the simulated container serializes access, and the concurrency
/// *effects* (CPU sharing, buffer sharing) are modeled by LoadModel.
class Dbms {
 public:
  Dbms() = default;

  Dbms(const Dbms&) = delete;
  Dbms& operator=(const Dbms&) = delete;

  /// Registers a table; kInvalidArgument if a table with the same name
  /// already exists or the pointer is null.
  Status RegisterTable(std::shared_ptr<Table> table);

  /// Looks up a table by name.
  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;

  /// Opens a pull-mode cursor for `query`; the Dbms (and its tables)
  /// must outlive the cursor.
  Result<std::unique_ptr<QueryCursor>> OpenCursor(
      const ScanProjectQuery& query) const;

  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace wsq

#endif  // WSQ_SERVER_DBMS_H_
