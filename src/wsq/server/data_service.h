#ifndef WSQ_SERVER_DATA_SERVICE_H_
#define WSQ_SERVER_DATA_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "wsq/codec/codec.h"
#include "wsq/common/status.h"
#include "wsq/relation/tuple_serializer.h"
#include "wsq/server/dbms.h"
#include "wsq/server/service.h"
#include "wsq/soap/message.h"

namespace wsq {

/// The OGSA-DAI-style data service endpoint: wraps a Dbms, owns
/// per-session query cursors, and speaks the message vocabulary of
/// soap/message.h. Faults (unknown table, bad session, malformed XML)
/// are returned as SOAP faults, never as C++ errors — exactly what a
/// remote client would observe.
class DataService final : public Service {
 public:
  /// `dbms` must outlive the service.
  explicit DataService(const Dbms* dbms) : dbms_(dbms) {}

  DataService(const DataService&) = delete;
  DataService& operator=(const DataService&) = delete;

  ServiceResult Handle(const std::string& request_document) override;

  /// Codec-aware entry point. Binary block messages (sniffed by magic)
  /// are answered in binary; everything else takes the legacy SOAP path
  /// unchanged. `response_codec`, when binary, supplies the encoding
  /// options (compression) for binary responses. Faults are always SOAP
  /// fault envelopes regardless of codec.
  ServiceResult Handle(const std::string& request_document,
                       const codec::BlockCodec* response_codec) override;

  size_t open_sessions() const { return sessions_.size(); }

  int64_t ActiveSessions() const override {
    return static_cast<int64_t>(sessions_.size());
  }

  int64_t EvictIdleSessions(int64_t now_micros, int64_t idle_micros) override;

 private:
  struct Session {
    std::unique_ptr<QueryCursor> cursor;
    std::unique_ptr<TupleSerializer> serializer;
    /// Idempotent-retry replay cache: the last sequenced block this
    /// session dispatched. A repeated GetNextBlock with the same
    /// sequence number replays the cached response instead of
    /// re-advancing the cursor (closing the at-most-once residual of
    /// DESIGN.md §3f). Unsequenced requests (-1) bypass the cache.
    int64_t last_sequence = -1;
    std::string last_response;
    /// Whether last_response is a fault envelope. Encode failures after
    /// a successful fetch are cached too — the cursor has already
    /// advanced, so a retry must see the same deterministic fault, not
    /// re-fetch and silently skip the lost block.
    bool last_is_fault = false;
    /// Wall-clock stamp of the last Handle that touched this session
    /// (open or block fetch); what EvictIdleSessions compares against.
    int64_t last_touch_micros = 0;
  };

  ServiceResult HandleOpenSession(const XmlNode& payload);
  ServiceResult HandleRequestBlock(const RequestBlockRequest& request,
                                   const codec::BlockCodec& response_codec);
  ServiceResult HandleCloseSession(const XmlNode& payload);
  ServiceResult HandleBinaryRequest(const std::string& request_document,
                                    const codec::BlockCodec* response_codec);

  static ServiceResult Fault(std::string_view code, std::string_view message);

  const Dbms* dbms_;
  int64_t next_session_id_ = 1;
  std::map<int64_t, Session> sessions_;
};

}  // namespace wsq

#endif  // WSQ_SERVER_DATA_SERVICE_H_
