#include "wsq/server/data_service.h"

#include "wsq/codec/binary_codec.h"
#include "wsq/codec/soap_codec.h"
#include "wsq/common/clock.h"
#include "wsq/soap/envelope.h"

namespace wsq {
namespace {

const codec::SoapCodec& DefaultSoapCodec() {
  static const codec::SoapCodec* soap = new codec::SoapCodec();
  return *soap;
}

const codec::BinaryCodec& DefaultBinaryCodec() {
  static const codec::BinaryCodec* binary = new codec::BinaryCodec();
  return *binary;
}

}  // namespace

ServiceResult DataService::Fault(std::string_view code,
                                 std::string_view message) {
  ServiceResult result;
  result.response = BuildFaultEnvelope(
      SoapFault{std::string(code), std::string(message)});
  result.is_fault = true;
  return result;
}

ServiceResult DataService::Handle(const std::string& request_document) {
  return Handle(request_document, nullptr);
}

ServiceResult DataService::Handle(const std::string& request_document,
                                  const codec::BlockCodec* response_codec) {
  if (codec::SniffPayloadCodec(request_document) ==
      codec::CodecKind::kBinary) {
    return HandleBinaryRequest(request_document, response_codec);
  }
  Result<XmlNode> payload = ParseEnvelope(request_document);
  if (!payload.ok()) {
    return Fault("Client", payload.status().ToString());
  }
  Result<RequestKind> kind = ClassifyRequest(payload.value());
  if (!kind.ok()) {
    return Fault("Client", kind.status().ToString());
  }
  switch (kind.value()) {
    case RequestKind::kOpenSession:
      return HandleOpenSession(payload.value());
    case RequestKind::kRequestBlock: {
      Result<RequestBlockRequest> request =
          DecodeRequestBlock(payload.value());
      if (!request.ok()) {
        return Fault("Client", request.status().ToString());
      }
      // A SOAP request gets a SOAP response no matter what the
      // connection negotiated — this is what keeps legacy clients and
      // every pre-codec simulation byte-identical.
      return HandleRequestBlock(request.value(), DefaultSoapCodec());
    }
    case RequestKind::kCloseSession:
      return HandleCloseSession(payload.value());
  }
  return Fault("Server", "unreachable dispatch");
}

ServiceResult DataService::HandleBinaryRequest(
    const std::string& request_document,
    const codec::BlockCodec* response_codec) {
  Result<RequestBlockRequest> request =
      DefaultBinaryCodec().DecodeRequestBlock(request_document);
  if (!request.ok()) {
    return Fault("Client", request.status().ToString());
  }
  // Binary requests are answered in binary; the negotiated codec only
  // contributes its encoding options (e.g. compression).
  const codec::BlockCodec& codec =
      response_codec != nullptr &&
              response_codec->kind() == codec::CodecKind::kBinary
          ? *response_codec
          : DefaultBinaryCodec();
  return HandleRequestBlock(request.value(), codec);
}

ServiceResult DataService::HandleOpenSession(const XmlNode& payload) {
  Result<OpenSessionRequest> request = DecodeOpenSession(payload);
  if (!request.ok()) {
    return Fault("Client", request.status().ToString());
  }

  ScanProjectQuery query;
  query.table_name = request.value().table;
  query.projected_columns = request.value().columns;
  query.filter = request.value().filter;

  Result<std::unique_ptr<QueryCursor>> cursor = dbms_->OpenCursor(query);
  if (!cursor.ok()) {
    return Fault("Client", cursor.status().ToString());
  }

  Result<std::shared_ptr<Table>> table =
      dbms_->GetTable(request.value().table);
  if (!table.ok()) {
    return Fault("Client", table.status().ToString());
  }

  Session session;
  session.serializer = std::make_unique<TupleSerializer>(
      cursor.value()->output_schema());
  session.cursor = std::move(cursor).value();
  session.last_touch_micros = WallClock().NowMicros();

  const int64_t id = next_session_id_++;
  sessions_.emplace(id, std::move(session));

  OpenSessionResponse response;
  response.session_id = id;
  response.total_rows = static_cast<int64_t>(table.value()->num_rows());

  ServiceResult result;
  result.response = EncodeOpenSessionResponse(response);
  return result;
}

ServiceResult DataService::HandleRequestBlock(
    const RequestBlockRequest& request,
    const codec::BlockCodec& response_codec) {
  auto it = sessions_.find(request.session_id);
  if (it == sessions_.end()) {
    return Fault("Client",
                 "unknown session id " + std::to_string(request.session_id));
  }
  if (request.block_size < 1) {
    return Fault("Client", "block size must be >= 1");
  }

  Session& session = it->second;
  session.last_touch_micros = WallClock().NowMicros();
  if (request.sequence >= 0 && request.sequence == session.last_sequence &&
      !session.last_response.empty()) {
    // Idempotent retry: the client never saw our last response, so
    // replay it without advancing the cursor. The cache hit does no
    // tuple work, so it is charged as a session-management op.
    ServiceResult replay;
    replay.response = session.last_response;
    replay.is_fault = session.last_is_fault;
    replay.replayed = true;
    return replay;
  }

  Result<std::vector<Tuple>> block =
      session.cursor->FetchBlock(request.block_size);
  if (!block.ok()) {
    return Fault("Server", block.status().ToString());
  }

  Result<std::string> encoded = response_codec.EncodeBlockResponse(
      request.session_id, session.cursor->exhausted(),
      session.serializer->schema(), block.value());
  if (!encoded.ok()) {
    // The fetch above already advanced the cursor, so this block's
    // tuples are gone. Cache the fault under the request's sequence so
    // a retry replays the same deterministic failure — the query dies
    // loudly instead of re-fetching and silently skipping the block.
    ServiceResult fault = Fault("Server", encoded.status().ToString());
    if (request.sequence >= 0) {
      session.last_sequence = request.sequence;
      session.last_response = fault.response;
      session.last_is_fault = true;
    }
    return fault;
  }

  ServiceResult result;
  result.tuples_produced = static_cast<int64_t>(block.value().size());
  result.response = std::move(encoded).value();
  if (request.sequence >= 0) {
    session.last_sequence = request.sequence;
    session.last_response = result.response;
    session.last_is_fault = false;
  }
  return result;
}

ServiceResult DataService::HandleCloseSession(const XmlNode& payload) {
  Result<CloseSessionRequest> request = DecodeCloseSession(payload);
  if (!request.ok()) {
    return Fault("Client", request.status().ToString());
  }
  auto it = sessions_.find(request.value().session_id);
  if (it == sessions_.end()) {
    return Fault("Client", "unknown session id " +
                               std::to_string(request.value().session_id));
  }
  sessions_.erase(it);

  CloseSessionResponse response;
  response.session_id = request.value().session_id;

  ServiceResult result;
  result.response = EncodeCloseSessionResponse(response);
  return result;
}

int64_t DataService::EvictIdleSessions(int64_t now_micros,
                                       int64_t idle_micros) {
  int64_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now_micros - it->second.last_touch_micros >= idle_micros) {
      it = sessions_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace wsq
