#include "wsq/server/data_service.h"

#include "wsq/soap/envelope.h"

namespace wsq {

ServiceResult DataService::Fault(std::string_view code,
                                 std::string_view message) {
  ServiceResult result;
  result.response = BuildFaultEnvelope(
      SoapFault{std::string(code), std::string(message)});
  result.is_fault = true;
  return result;
}

ServiceResult DataService::Handle(const std::string& request_document) {
  Result<XmlNode> payload = ParseEnvelope(request_document);
  if (!payload.ok()) {
    return Fault("Client", payload.status().ToString());
  }
  Result<RequestKind> kind = ClassifyRequest(payload.value());
  if (!kind.ok()) {
    return Fault("Client", kind.status().ToString());
  }
  switch (kind.value()) {
    case RequestKind::kOpenSession:
      return HandleOpenSession(payload.value());
    case RequestKind::kRequestBlock:
      return HandleRequestBlock(payload.value());
    case RequestKind::kCloseSession:
      return HandleCloseSession(payload.value());
  }
  return Fault("Server", "unreachable dispatch");
}

ServiceResult DataService::HandleOpenSession(const XmlNode& payload) {
  Result<OpenSessionRequest> request = DecodeOpenSession(payload);
  if (!request.ok()) {
    return Fault("Client", request.status().ToString());
  }

  ScanProjectQuery query;
  query.table_name = request.value().table;
  query.projected_columns = request.value().columns;
  query.filter = request.value().filter;

  Result<std::unique_ptr<QueryCursor>> cursor = dbms_->OpenCursor(query);
  if (!cursor.ok()) {
    return Fault("Client", cursor.status().ToString());
  }

  Result<std::shared_ptr<Table>> table =
      dbms_->GetTable(request.value().table);
  if (!table.ok()) {
    return Fault("Client", table.status().ToString());
  }

  Session session;
  session.serializer = std::make_unique<TupleSerializer>(
      cursor.value()->output_schema());
  session.cursor = std::move(cursor).value();

  const int64_t id = next_session_id_++;
  sessions_.emplace(id, std::move(session));

  OpenSessionResponse response;
  response.session_id = id;
  response.total_rows = static_cast<int64_t>(table.value()->num_rows());

  ServiceResult result;
  result.response = EncodeOpenSessionResponse(response);
  return result;
}

ServiceResult DataService::HandleRequestBlock(const XmlNode& payload) {
  Result<RequestBlockRequest> request = DecodeRequestBlock(payload);
  if (!request.ok()) {
    return Fault("Client", request.status().ToString());
  }
  auto it = sessions_.find(request.value().session_id);
  if (it == sessions_.end()) {
    return Fault("Client", "unknown session id " +
                               std::to_string(request.value().session_id));
  }
  if (request.value().block_size < 1) {
    return Fault("Client", "block size must be >= 1");
  }

  Session& session = it->second;
  Result<std::vector<Tuple>> block =
      session.cursor->FetchBlock(request.value().block_size);
  if (!block.ok()) {
    return Fault("Server", block.status().ToString());
  }
  Result<std::string> serialized =
      session.serializer->SerializeBlock(block.value());
  if (!serialized.ok()) {
    return Fault("Server", serialized.status().ToString());
  }

  BlockResponse response;
  response.session_id = request.value().session_id;
  response.num_tuples = static_cast<int64_t>(block.value().size());
  response.end_of_results = session.cursor->exhausted();
  response.payload = std::move(serialized).value();

  ServiceResult result;
  result.tuples_produced = response.num_tuples;
  result.response = EncodeBlockResponse(response);
  return result;
}

ServiceResult DataService::HandleCloseSession(const XmlNode& payload) {
  Result<CloseSessionRequest> request = DecodeCloseSession(payload);
  if (!request.ok()) {
    return Fault("Client", request.status().ToString());
  }
  auto it = sessions_.find(request.value().session_id);
  if (it == sessions_.end()) {
    return Fault("Client", "unknown session id " +
                               std::to_string(request.value().session_id));
  }
  sessions_.erase(it);

  CloseSessionResponse response;
  response.session_id = request.value().session_id;

  ServiceResult result;
  result.response = EncodeCloseSessionResponse(response);
  return result;
}

}  // namespace wsq
