#include "wsq/server/processing_service.h"

#include "wsq/soap/envelope.h"

namespace wsq {

ServiceResult ProcessingService::Fault(std::string_view code,
                                       std::string_view message) {
  ServiceResult result;
  result.response =
      BuildFaultEnvelope(SoapFault{std::string(code), std::string(message)});
  result.is_fault = true;
  return result;
}

Status ProcessingService::RegisterFunction(const std::string& name,
                                           ProcessingFunction function) {
  if (function.transform == nullptr) {
    return Status::InvalidArgument("RegisterFunction: null transform");
  }
  auto [it, inserted] = functions_.emplace(name, std::move(function));
  if (!inserted) {
    return Status::InvalidArgument("function already registered: " + name);
  }
  return Status::Ok();
}

Result<const ProcessingFunction*> ProcessingService::GetFunction(
    const std::string& name) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return Status::NotFound("no function named " + name);
  }
  return &it->second;
}

ServiceResult ProcessingService::Handle(const std::string& request_document) {
  Result<XmlNode> payload = ParseEnvelope(request_document);
  if (!payload.ok()) {
    return Fault("Client", payload.status().ToString());
  }
  Result<RequestKind> kind = ClassifyRequest(payload.value());
  if (!kind.ok() || kind.value() != RequestKind::kProcessBlock) {
    return Fault("Client",
                 "processing service only understands ProcessBlock");
  }
  return HandleProcessBlock(payload.value());
}

ServiceResult ProcessingService::HandleProcessBlock(const XmlNode& payload) {
  Result<ProcessBlockRequest> request = DecodeProcessBlock(payload);
  if (!request.ok()) {
    return Fault("Client", request.status().ToString());
  }
  auto it = functions_.find(request.value().function);
  if (it == functions_.end()) {
    return Fault("Client",
                 "no function named " + request.value().function);
  }
  const ProcessingFunction& function = it->second;

  TupleSerializer input_serializer(function.input_schema);
  Result<std::vector<Tuple>> inputs =
      input_serializer.DeserializeBlock(request.value().payload);
  if (!inputs.ok()) {
    return Fault("Client", inputs.status().ToString());
  }
  if (static_cast<int64_t>(inputs.value().size()) !=
      request.value().num_tuples) {
    return Fault("Client", "numTuples does not match the payload");
  }

  std::vector<Tuple> outputs;
  outputs.reserve(inputs.value().size());
  for (const Tuple& input : inputs.value()) {
    if (!input.ConformsTo(function.input_schema).ok()) {
      return Fault("Client", "input tuple does not match the schema");
    }
    Result<Tuple> output = function.transform(input);
    if (!output.ok()) {
      return Fault("Server", "function failed: " +
                                 output.status().ToString());
    }
    if (!output.value().ConformsTo(function.output_schema).ok()) {
      return Fault("Server", "function produced a nonconforming tuple");
    }
    outputs.push_back(std::move(output).value());
  }

  TupleSerializer output_serializer(function.output_schema);
  Result<std::string> serialized =
      output_serializer.SerializeBlock(outputs);
  if (!serialized.ok()) {
    return Fault("Server", serialized.status().ToString());
  }

  ProcessBlockResponse response;
  response.sequence = request.value().sequence;
  response.num_tuples = static_cast<int64_t>(outputs.size());
  response.payload = std::move(serialized).value();

  tuples_processed_ += response.num_tuples;

  ServiceResult result;
  result.tuples_produced = response.num_tuples;
  result.response = EncodeProcessBlockResponse(response);
  return result;
}

}  // namespace wsq
