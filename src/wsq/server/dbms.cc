#include "wsq/server/dbms.h"

namespace wsq {

Status Dbms::RegisterTable(std::shared_ptr<Table> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("RegisterTable: null table");
  }
  auto [it, inserted] = tables_.emplace(table->name(), table);
  if (!inserted) {
    return Status::InvalidArgument("table already registered: " +
                                   table->name());
  }
  return Status::Ok();
}

Result<std::shared_ptr<Table>> Dbms::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return it->second;
}

Result<std::unique_ptr<QueryCursor>> Dbms::OpenCursor(
    const ScanProjectQuery& query) const {
  Result<std::shared_ptr<Table>> table = GetTable(query.table_name);
  if (!table.ok()) return table.status();
  return QueryCursor::Open(table.value().get(), query);
}

}  // namespace wsq
