#ifndef WSQ_SERVER_PROCESSING_SERVICE_H_
#define WSQ_SERVER_PROCESSING_SERVICE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "wsq/common/status.h"
#include "wsq/relation/tuple_serializer.h"
#include "wsq/server/service.h"
#include "wsq/soap/message.h"

namespace wsq {

/// Per-tuple transform applied by a processing function. Returning an
/// error makes the whole block request fault (remote functions are
/// all-or-nothing per call, like a WS operation).
using TupleTransform = std::function<Result<Tuple>(const Tuple&)>;

/// A registered server-side function: input/output schemas plus the
/// transform.
struct ProcessingFunction {
  Schema input_schema;
  Schema output_schema;
  TupleTransform transform;
};

/// The WS-management-system-style endpoint of the paper's setting:
/// "functions called from within database queries" exposed as a web
/// service, invoked with *blocks* of tuples whose size the client-side
/// controller tunes — the push-direction dual of DataService.
///
/// Typical uses: lookups, enrichment, scoring — anything mapping one
/// input tuple to one output tuple.
class ProcessingService final : public Service {
 public:
  ProcessingService() = default;

  ProcessingService(const ProcessingService&) = delete;
  ProcessingService& operator=(const ProcessingService&) = delete;

  /// Registers `function` under `name`; kInvalidArgument when the name
  /// is taken or the transform is null.
  Status RegisterFunction(const std::string& name,
                          ProcessingFunction function);

  /// The schemas of a registered function (clients need them to build
  /// serializers); kNotFound when absent.
  Result<const ProcessingFunction*> GetFunction(
      const std::string& name) const;

  ServiceResult Handle(const std::string& request_document) override;

  int64_t tuples_processed() const { return tuples_processed_; }

 private:
  ServiceResult HandleProcessBlock(const XmlNode& payload);

  static ServiceResult Fault(std::string_view code,
                             std::string_view message);

  std::map<std::string, ProcessingFunction> functions_;
  int64_t tuples_processed_ = 0;
};

}  // namespace wsq

#endif  // WSQ_SERVER_PROCESSING_SERVICE_H_
