#ifndef WSQ_SERVER_CONTAINER_H_
#define WSQ_SERVER_CONTAINER_H_

#include <string>

#include "wsq/common/random.h"
#include "wsq/server/load_model.h"
#include "wsq/server/service.h"

namespace wsq {

/// One dispatched request: the response document plus the simulated
/// server residence time the network layer should charge.
struct DispatchResult {
  std::string response;
  double service_time_ms = 0.0;
  bool is_fault = false;
  /// Mirrors ServiceResult::replayed — the response came from the
  /// per-session replay cache.
  bool replayed = false;
};

/// The Tomcat stand-in: hosts a Service (data retrieval, processing,
/// ...) and converts its work accounting into simulated processing time
/// via the LoadModel. Block production/processing pays per-request +
/// per-tuple CPU plus the paging penalty when the block exceeds the
/// effective buffer; session management ops pay the per-request cost
/// only.
class ServiceContainer {
 public:
  /// `service` must outlive the container. The load model is owned and
  /// reconfigurable mid-run (experiments add/remove load).
  ServiceContainer(Service* service, const LoadModelConfig& load,
                   uint64_t seed);

  /// Dispatches one raw SOAP document.
  DispatchResult Dispatch(const std::string& request_document);

  /// Codec-aware dispatch: forwards `response_codec` to the service so
  /// a negotiated connection's block responses come back in its wire
  /// form. Null behaves exactly like the overload above.
  DispatchResult Dispatch(const std::string& request_document,
                          const codec::BlockCodec* response_codec);

  LoadModel& load_model() { return load_model_; }
  const LoadModel& load_model() const { return load_model_; }

  /// Total simulated busy time, for utilization-style assertions.
  double total_busy_ms() const { return total_busy_ms_; }
  int64_t requests_served() const { return requests_served_; }

  /// Forwards the hosted service's open-session count (-1 when the
  /// service is sessionless).
  int64_t active_sessions() const { return service_->ActiveSessions(); }

  /// Forwards idle-session eviction to the hosted service (see
  /// Service::EvictIdleSessions). Caller must serialize with Dispatch,
  /// exactly as for Dispatch itself.
  int64_t EvictIdleSessions(int64_t now_micros, int64_t idle_micros) {
    return service_->EvictIdleSessions(now_micros, idle_micros);
  }

 private:
  Service* service_;
  LoadModel load_model_;
  Random rng_;
  double total_busy_ms_ = 0.0;
  int64_t requests_served_ = 0;
};

}  // namespace wsq

#endif  // WSQ_SERVER_CONTAINER_H_
