#ifndef WSQ_SERVER_SERVICE_H_
#define WSQ_SERVER_SERVICE_H_

#include <cstdint>
#include <string>

namespace wsq {

namespace codec {
class BlockCodec;
}  // namespace codec

/// Outcome of one service invocation: the response document plus
/// the work accounting the container converts into simulated time.
struct ServiceResult {
  std::string response;
  /// Tuples produced/processed by this invocation (0 for session
  /// management ops); drives the tuple-dependent part of the simulated
  /// service time.
  int64_t tuples_produced = 0;
  /// True when the response is a SOAP fault.
  bool is_fault = false;
  /// True when the response was served from the per-session replay cache
  /// (a retried sequence number) rather than produced fresh. Surfaced so
  /// the telemetry plane can count replay hits per session.
  bool replayed = false;
};

/// A web service endpoint hosted by a ServiceContainer. Implementations
/// parse the SOAP request, do the work, and answer with either a
/// response envelope or a fault — never a C++ error; remote callers can
/// only ever see documents.
class Service {
 public:
  virtual ~Service() = default;

  /// Handles one raw SOAP request document.
  virtual ServiceResult Handle(const std::string& request_document) = 0;

  /// Codec-aware entry point: `response_codec` configures how block
  /// responses are encoded (e.g. the compression option of a negotiated
  /// binary connection). The request's own wire form is always sniffed
  /// from its leading bytes. Services that predate codecs simply fall
  /// through to the SOAP-only Handle above.
  virtual ServiceResult Handle(const std::string& request_document,
                               const codec::BlockCodec* response_codec) {
    (void)response_codec;
    return Handle(request_document);
  }

  /// Number of currently open sessions, for the live stats snapshot.
  /// -1 when the service has no session concept.
  virtual int64_t ActiveSessions() const { return -1; }

  /// Evicts every session idle (untouched by any Handle) for longer
  /// than `idle_micros` as of `now_micros`; returns the count evicted.
  /// Bounds the per-session state (cursors, replay caches) an abandoned
  /// client can strand forever. Default: no session concept, nothing to
  /// evict.
  virtual int64_t EvictIdleSessions(int64_t now_micros, int64_t idle_micros) {
    (void)now_micros;
    (void)idle_micros;
    return 0;
  }
};

}  // namespace wsq

#endif  // WSQ_SERVER_SERVICE_H_
