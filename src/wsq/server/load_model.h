#ifndef WSQ_SERVER_LOAD_MODEL_H_
#define WSQ_SERVER_LOAD_MODEL_H_

#include <string>

#include "wsq/common/random.h"
#include "wsq/common/status.h"

namespace wsq {

/// Server-side load environment — the knob the paper's experiments turn:
/// concurrent non-database jobs on the web server (Fig. 1), concurrent
/// queries sharing the WS + DBMS + network (Fig. 2a), and
/// memory-intensive jobs shrinking the usable buffer (Fig. 2b, conf1.3).
struct LoadModelConfig {
  /// Non-database jobs competing for the web server's CPU. Each adds a
  /// fractional slowdown to per-request and per-tuple processing.
  int concurrent_jobs = 0;
  /// Queries being answered concurrently, *including* this one; >= 1.
  /// They share CPU, the DBMS and server memory.
  int concurrent_queries = 1;
  /// Extra memory pressure in [0, 1) from memory-intensive jobs;
  /// shrinks the effective buffer.
  double memory_pressure = 0.0;

  /// Tuples the server can buffer for one session before paging sets in;
  /// the source of the superlinear right side of the profile.
  double buffer_capacity_tuples = 9700.0;
  /// Fractional buffer shrink per concurrent job / per extra concurrent
  /// query — what shifts the optimum block size left under load
  /// (paper Figs. 1-2).
  double job_buffer_shrink = 0.03;
  double query_buffer_shrink = 0.35;
  /// Cost (ms) to scan + serialize one tuple, unloaded.
  double per_tuple_cpu_ms = 0.010;
  /// Cost (ms) to parse the SOAP request, dispatch, and build the
  /// response envelope, unloaded.
  double per_request_cpu_ms = 3.0;
  /// Coefficient of the quadratic paging penalty beyond the buffer.
  double paging_penalty_ms = 0.006;
  /// CPU slowdown contributed by each concurrent job/query.
  double job_slowdown = 0.12;
  double query_slowdown = 0.45;
  /// Multiplicative noise sigma on service times (server-side jitter).
  double noise_sigma = 0.10;

  Status Validate() const;
};

/// Converts a block request into simulated server processing time.
class LoadModel {
 public:
  explicit LoadModel(const LoadModelConfig& config) : config_(config) {}

  const LoadModelConfig& config() const { return config_; }

  /// Live reconfiguration: experiments change the load mid-run (e.g. a
  /// third query arriving).
  void set_config(const LoadModelConfig& config) { config_ = config; }

  /// CPU slowdown multiplier from concurrent jobs and queries.
  double CpuMultiplier() const;

  /// Effective per-session buffer after memory pressure and sharing
  /// across concurrent queries.
  double EffectiveBufferTuples() const;

  /// Deterministic service time (ms) for producing one block of
  /// `block_tuples` tuples: request handling + scan/serialize + paging
  /// penalty when the block exceeds the effective buffer.
  double NominalServiceTimeMs(int64_t block_tuples) const;

  /// NominalServiceTimeMs with multiplicative server noise.
  double ServiceTimeMs(int64_t block_tuples, Random& rng) const;

 private:
  LoadModelConfig config_;
};

}  // namespace wsq

#endif  // WSQ_SERVER_LOAD_MODEL_H_
