#ifndef WSQ_NET_SOCKET_H_
#define WSQ_NET_SOCKET_H_

#include <string>

#include "wsq/common/status.h"
#include "wsq/net/frame.h"

namespace wsq::net {

/// Thin RAII wrapper over a TCP socket fd implementing the framing
/// layer's ByteStream with poll-based deadlines. Moves like unique_ptr;
/// closing an invalid socket is a no-op. Not thread-safe, with one
/// deliberate exception: Shutdown() may be called from another thread to
/// wake a blocked reader (the server uses it to tear down live
/// connections on Stop()).
class Socket final : public ByteStream {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (which must be a connected or listening
  /// socket, or -1).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() override;

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the fd (graceful FIN path).
  void Close();

  /// Abortive close: SO_LINGER 0, so the peer sees an RST — the live
  /// analogue of the fault layer's connection-reset kind.
  void CloseHard();

  /// shutdown(2) both directions without closing the fd; any blocked
  /// read on another thread returns immediately. Safe cross-thread.
  void Shutdown();

  /// Per-operation deadline for ReadSome/WriteSome; <= 0 (the default)
  /// blocks indefinitely. Deadline expiry surfaces as kUnavailable.
  void set_io_timeout_ms(double ms) { io_timeout_ms_ = ms; }
  double io_timeout_ms() const { return io_timeout_ms_; }

  /// True when the peer has closed its end (a zero-byte peek succeeds).
  /// Used by the server to avoid dispatching work for an exchange the
  /// client already abandoned.
  bool PeerClosed() const;

  Result<size_t> ReadSome(void* buf, size_t len) override;
  Result<size_t> WriteSome(const void* buf, size_t len) override;

 private:
  int fd_ = -1;
  double io_timeout_ms_ = -1.0;
};

/// Connects to host:port (numeric IPv4 or a resolvable name) within
/// `timeout_ms`. kUnavailable on refusal/timeout — connection failures
/// are transient on the live path.
Result<Socket> TcpConnect(const std::string& host, int port,
                          double timeout_ms);

/// Binds (SO_REUSEADDR) and listens on `port`; 0 picks an ephemeral
/// port — read it back with LocalPort.
Result<Socket> TcpListen(int port, int backlog = 64);

/// The locally bound port of a listening or connected socket.
Result<int> LocalPort(const Socket& socket);

/// The remote peer's IP address ("127.0.0.1", "::1", ...) of a
/// connected socket — the admission layer's rate-limit key.
Result<std::string> PeerIp(const Socket& socket);

/// Toggles O_NONBLOCK on `fd`. The event-loop server runs every
/// accepted connection (and the listener itself) non-blocking; clients
/// keep the default blocking mode with poll-based deadlines.
void SetNonBlocking(int fd, bool enable);

/// Waits up to `timeout_ms` for a connection on `listener` (<= 0 polls
/// without blocking). kUnavailable when none arrived in time or the
/// listener was shut down.
Result<Socket> Accept(Socket& listener, double timeout_ms);

}  // namespace wsq::net

#endif  // WSQ_NET_SOCKET_H_
