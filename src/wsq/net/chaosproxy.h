#ifndef WSQ_NET_CHAOSPROXY_H_
#define WSQ_NET_CHAOSPROXY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "wsq/common/random.h"
#include "wsq/common/status.h"
#include "wsq/fault/net_fault_plan.h"
#include "wsq/net/epoll.h"
#include "wsq/net/socket.h"

namespace wsq::net {

struct ChaosProxyOptions {
  /// Where real traffic goes (the wsqd under test).
  std::string upstream_host = "127.0.0.1";
  int upstream_port = 0;

  /// Port the proxy listens on; 0 picks an ephemeral port (read it back
  /// with port() after Start()).
  int listen_port = 0;

  /// The transport faults to inject. An empty plan relays every byte
  /// unmodified and unshaped — the proxy is then wire-transparent, which
  /// the conformance suite asserts byte-for-byte.
  NetFaultPlan plan;

  /// Per-direction buffered-bytes cap: when a pipe's shaped queue
  /// exceeds this, the proxy stops reading from the source side until
  /// the sink drains (the proxy must not become an unbounded buffer in
  /// front of a slow consumer).
  size_t max_buffered_bytes = 4u * 1024u * 1024u;

  /// Deadline for the upstream connect performed at accept time.
  double upstream_connect_timeout_ms = 2000.0;
};

/// In-process TCP chaos proxy (toxiproxy-style): sits between
/// TcpWsClient and wsqd on loopback and perturbs the byte stream
/// according to a NetFaultPlan — added latency/jitter, bandwidth caps,
/// slow-loris trickle, mid-frame RSTs, black holes, half-open drops,
/// and byte corruption. It operates strictly below the framing layer
/// (it never parses a frame), so everything the protocol survives here
/// it survives against a real degraded WAN.
///
/// Single epoll loop thread, same event-loop idiom as WsqServer:
/// non-blocking accept/read/write, level-triggered interest re-armed
/// explicitly, per-pipe delayed-release chunk queues implementing the
/// time-based shaping. Start()/Stop() bracket the loop; all stats
/// accessors are safe from any thread.
class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Validates the plan, binds the listener, and starts the loop.
  Status Start();

  /// Stops the loop and closes every proxied connection (hard). Safe to
  /// call twice.
  void Stop();

  /// The proxy's listening port (valid after Start()).
  int port() const { return port_; }

  /// --- Fault/throughput accounting (any thread) ---------------------
  int64_t connections_accepted() const { return accepted_.load(); }
  int64_t bytes_forwarded() const { return forwarded_bytes_.load(); }
  int64_t resets_injected() const { return resets_injected_.load(); }
  int64_t bytes_corrupted() const { return corrupted_bytes_.load(); }
  int64_t bytes_dropped() const { return dropped_bytes_.load(); }
  int64_t blackholed_connections() const { return blackholed_.load(); }

 private:
  /// One shaped chunk awaiting its release time.
  struct Chunk {
    int64_t release_micros = 0;
    std::string bytes;
  };

  /// One direction of a proxied connection: bytes read from `src` are
  /// shaped into `queue` and written to `dst` once due.
  struct Pipe {
    std::deque<Chunk> queue;
    size_t buffered = 0;      ///< total unsent bytes across the queue
    size_t cursor = 0;        ///< bytes of queue.front() already written
    bool eof = false;         ///< source half closed
    bool fin_sent = false;    ///< FIN propagated to the sink
    bool drop = false;        ///< silently discard this direction
    int64_t meter_micros = 0; ///< bandwidth-cap release meter
    size_t skip_left = 0;     ///< corrupt-free handshake window remaining
  };

  struct Link {
    uint64_t id = 0;
    Socket client;
    Socket upstream;          ///< invalid for black-hole links
    Pipe to_upstream;         ///< client → upstream
    Pipe to_client;           ///< upstream → client
    bool blackhole = false;
    int64_t relayed = 0;      ///< bytes written out, both directions
    uint32_t client_interest = 0;
    uint32_t upstream_interest = 0;
  };

  void LoopMain();
  void AcceptReady();
  void HandleEvent(Link& link, bool client_side, uint32_t events);
  /// Reads everything currently available from one side, shapes it into
  /// the forward pipe. Returns false when the link died.
  bool ReadSide(Link& link, bool client_side);
  /// Shapes `data` into `pipe` (corruption, latency, trickle,
  /// bandwidth), stamping release times from `now_micros`.
  void ShapeInto(Link& link, Pipe& pipe, const char* data, size_t len,
                 int64_t now_micros);
  /// Writes every due chunk of `pipe` into `dst`. Returns false when
  /// the link died (write error or injected reset).
  bool FlushPipe(Link& link, Pipe& pipe, Socket& dst, int64_t now_micros);
  /// Recomputes and re-arms both fds' interest sets.
  void UpdateInterest(Link& link);
  void CloseLink(Link& link, bool hard);
  /// Earliest pending release time across all pipes, or -1 if none.
  int64_t NextRelease() const;

  ChaosProxyOptions options_;
  int port_ = 0;

  Socket listener_;
  std::unique_ptr<Epoll> epoll_;
  std::unique_ptr<EventFd> wakeup_;
  std::thread loop_;
  std::atomic<bool> running_{false};

  /// Loop-thread-only state.
  std::map<uint64_t, std::unique_ptr<Link>> links_;
  uint64_t next_id_ = 1;
  Random rng_;
  int corruptions_done_ = 0;

  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> forwarded_bytes_{0};
  std::atomic<int64_t> resets_injected_{0};
  std::atomic<int64_t> corrupted_bytes_{0};
  std::atomic<int64_t> dropped_bytes_{0};
  std::atomic<int64_t> blackholed_{0};
};

}  // namespace wsq::net

#endif  // WSQ_NET_CHAOSPROXY_H_
