#ifndef WSQ_NET_SERVER_H_
#define WSQ_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "wsq/codec/codec.h"
#include "wsq/common/status.h"
#include "wsq/exec/thread_pool.h"
#include "wsq/fault/fault_injector.h"
#include "wsq/fault/fault_plan.h"
#include "wsq/net/admission.h"
#include "wsq/net/epoll.h"
#include "wsq/net/socket.h"
#include "wsq/obs/metrics.h"
#include "wsq/obs/span_context.h"
#include "wsq/server/container.h"

namespace wsq::net {

struct WsqServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// port() after Start).
  int port = 0;
  /// Dispatch worker-pool size. Under the event loop this no longer caps
  /// concurrent *connections* (the loop holds thousands); it caps
  /// concurrently *executing* exchanges — stalls and simulated service
  /// sleeps run on these threads.
  int worker_threads = 8;
  /// Server-side chaos: a non-empty plan is replayed per *session* (not
  /// per connection), so a client that reconnects after an injected
  /// connection drop resumes the same fault schedule at the same block.
  FaultPlan fault_plan;
  /// Per-run seed for the fault plan's probabilistic specs.
  uint64_t fault_seed = 0;
  /// When true (the default, and what wsqd uses), the server sleeps each
  /// exchange's LoadModel-simulated service time for real before
  /// replying, so live response times carry the paper's block-size
  /// dependence and adaptive controllers have a genuine signal to chase.
  /// Tests that only care about protocol mechanics turn it off.
  bool simulate_service_time = true;
  /// The richest block codec this server negotiates (wsqd --codec).
  /// The default keeps negotiation answering "soap" to everyone; set to
  /// binary to let advertising clients upgrade. Its compression option
  /// applies to the binary responses this server encodes.
  codec::CodecChoice codec;
  /// Admission policy: connection cap, per-peer rate limits, and the
  /// worker-queue watermark past which requests are shed with a
  /// retryable fault (all default-off).
  AdmissionConfig admission;
  /// Per-connection write-buffer backpressure threshold: once this many
  /// unsent response bytes are queued on a connection, the loop stops
  /// reading from it (EPOLLIN paused) until the peer drains the buffer —
  /// a slow reader cannot balloon server memory.
  size_t write_buffer_limit = 4u * 1024u * 1024u;
  /// Half-open detection (wsqd --idle-timeout-s): a connection with no
  /// inbound bytes and no in-flight work for this long is evicted. A
  /// "live"-negotiated connection gets a kPing at half the timeout
  /// first, so a healthy-but-quiet peer answers and stays. 0 disables.
  double idle_timeout_ms = 0.0;
  /// Session TTL (wsqd --session-ttl-s): DataService sessions (cursor +
  /// replay cache), fault-replay state, and per-session stats rollups
  /// untouched for this long are evicted by loop housekeeping — an
  /// abandoned client cannot strand per-session state forever. 0
  /// disables.
  double session_ttl_ms = 0.0;
};

/// The network frontend of the data service: accepts framed SOAP
/// exchanges over TCP and dispatches them to a ServiceContainer —
/// turning the in-process pull protocol into the wsqd daemon's wire
/// protocol.
///
/// Architecture: a single readiness-based epoll event loop owns the
/// listener and every connection (non-blocking accept/read/write, one
/// incremental FrameParser per connection), so connection count is
/// bounded by fds, not threads. Query dispatch — the only blocking work
/// (container dispatch, injected stalls, simulated service sleeps) —
/// runs on a small exec::ThreadPool; workers post completed responses
/// back to the loop through a completion queue plus eventfd wakeup, and
/// the loop writes them out. Per-connection ordering is preserved by
/// keeping at most one dispatch in flight per connection and queueing
/// later pipelined frames. Container dispatch is serialized by an
/// internal mutex (DataService and LoadModel are single-threaded by
/// design).
///
/// Start/Stop is a *frontend* lifecycle: Stop tears down the listener
/// and every live connection but leaves the container — and therefore
/// all open DataService sessions — intact, so a restarted server
/// resumes half-finished queries. That is precisely what lets a client
/// with a resilient retry policy survive a server kill mid-query.
class WsqServer {
 public:
  /// `container` must outlive the server and every Start/Stop cycle.
  WsqServer(ServiceContainer* container, WsqServerOptions options);
  ~WsqServer();

  WsqServer(const WsqServer&) = delete;
  WsqServer& operator=(const WsqServer&) = delete;

  /// Binds and starts accepting. The first Start resolves an ephemeral
  /// port request; later Starts re-bind the same pinned port (so
  /// clients can reconnect after a Stop/Start cycle). No-op when
  /// already running.
  Status Start();

  /// Stops accepting, closes every live connection (waking blocked
  /// client reads), joins the loop and drains the workers. Idempotent.
  /// Sessions persist.
  void Stop();

  /// Flips the server into draining: the listener closes (no new
  /// connections), idle "live"-negotiated connections get a kGoaway,
  /// legacy idle connections a plain FIN, and new requests are shed
  /// with a retryable fault — all of which the client maps to
  /// kUnavailable and retries through. In-flight dispatches finish and
  /// their responses flush before the connection closes. Async;
  /// housekeeping on the loop thread does the work.
  void BeginDrain();

  /// wsqd's SIGTERM path: BeginDrain, wait up to `timeout_s` for every
  /// connection and dispatch to finish, then Stop. Returns true when
  /// the drain completed cleanly within the budget (false means Stop
  /// cut off stragglers). Sessions persist either way, so a restarted
  /// server resumes half-finished queries exactly-once.
  bool Drain(double timeout_s);

  bool draining() const { return draining_.load(); }

  bool running() const { return running_.load(); }

  /// The bound port; 0 before the first successful Start.
  int port() const { return pinned_port_; }

  int64_t connections_accepted() const { return connections_accepted_.load(); }
  int64_t exchanges_served() const { return exchanges_served_.load(); }
  int64_t faults_injected() const { return faults_injected_.load(); }
  int64_t replay_hits() const { return replay_hits_.load(); }
  int64_t stats_requests() const { return stats_requests_.load(); }
  int64_t trace_connections() const { return trace_connections_.load(); }
  /// Connections answered with a rejection fault because the loop was at
  /// --max-connections.
  int64_t connections_rejected() const { return connections_rejected_.load(); }
  /// Connections answered with a rejection fault because the peer's
  /// token bucket was empty.
  int64_t rate_limited() const { return rate_limited_.load(); }
  /// Requests shed with a retryable fault because the worker queue sat
  /// at or above the shed watermark.
  int64_t sheds() const { return sheds_.load(); }
  /// Connections currently registered with the event loop.
  int64_t live_connections() const { return live_connections_.load(); }
  /// Connections evicted by half-open detection (idle past
  /// --idle-timeout with no pong).
  int64_t idle_evicted() const { return idle_evicted_.load(); }
  /// Liveness probes sent to quiet "live"-negotiated connections.
  int64_t pings_sent() const { return pings_sent_.load(); }
  /// kGoaway frames sent while draining.
  int64_t goaways_sent() const { return goaways_sent_.load(); }
  /// DataService sessions evicted by the --session-ttl sweep.
  int64_t evicted_sessions() const { return evicted_sessions_.load(); }

  /// The live stats snapshot this server answers kStats frames with (and
  /// wsqd exports via --stats-out / SIGUSR1): schema_version, frontend
  /// counters, codec mix, worker queue depth, event-loop gauges
  /// (connections, ready-queue depth, sheds, rejections), the
  /// container's open session count, per-session rollups and the
  /// server's private metric registry — all as one RFC 8259 JSON
  /// document. Callable from any thread.
  std::string StatsJson();

 private:
  /// Fault-plan replay state for one DataService session, persisted
  /// across reconnects.
  struct SessionFaultState {
    std::unique_ptr<FaultInjector> injector;
    int64_t blocks_served = 0;
    int64_t start_micros = 0;
    /// Stamp of the last exchange that looked this state up; what the
    /// --session-ttl sweep compares against.
    int64_t last_touch_micros = 0;
  };

  /// How one served exchange ends: keep the connection, close gracefully
  /// (FIN), or close abortively (RST — injected connection resets).
  enum class ExchangeOutcome { kContinue, kClose, kCloseHard };

  /// Per-session transfer accounting for the stats plane (guarded by
  /// stats_mu_). Entries persist across reconnects, like the sessions
  /// they describe.
  struct SessionStats {
    int64_t blocks = 0;
    int64_t bytes_in = 0;
    int64_t bytes_out = 0;
    int64_t replay_hits = 0;
    int64_t faults = 0;
    /// Stamp of the last exchange folded in, for the --session-ttl
    /// sweep.
    int64_t last_touch_micros = 0;
    /// Block residence latency (request fully read -> response stamped,
    /// ms); allocated on first exchange. Feeds the per-session p99 and
    /// the stats plane's fairness section, so a live fleet can read
    /// cross-tenant latency spread without client-side merging.
    std::unique_ptr<Histogram> latency_ms;
  };

  /// One live connection, owned exclusively by the loop thread (no
  /// locking: workers never touch it — they get value copies via
  /// DispatchJob and talk back through the completion queue).
  struct Connection {
    int64_t id = -1;
    Socket socket;
    FrameParser parser;
    /// Outbound bytes not yet accepted by the kernel; [write_cursor,
    /// end) is pending. EPOLLOUT is armed exactly while non-empty.
    std::string write_buf;
    size_t write_cursor = 0;
    /// epoll interest set currently installed for this fd.
    uint32_t interest = 0;
    /// Negotiated response codec (null until a Hello upgrades it).
    /// shared_ptr because an in-flight worker may still be encoding
    /// with the previous codec when a re-Hello swaps it.
    std::shared_ptr<const codec::BlockCodec> negotiated;
    bool trace_negotiated = false;
    /// Hello advertised "crc": every frame this server sends on the
    /// connection carries a CRC-32C trailer, and the client's do too.
    bool crc_negotiated = false;
    /// Hello advertised "live": the peer understands kPing/kPong/
    /// kGoaway, so half-open detection probes before evicting and
    /// drain says goodbye explicitly.
    bool live_negotiated = false;
    /// Wall-clock stamp of the last inbound bytes (or accept); drives
    /// the idle scan.
    int64_t last_activity_micros = 0;
    /// A kPing went out and no bytes have arrived since. The next
    /// idle-timeout expiry evicts instead of probing again.
    bool ping_pending = false;
    /// Admission verdict from accept time: a rejecting connection still
    /// answers Hello (a fault there would read as a legacy-server
    /// signal and trigger the client's SOAP downgrade) and kStats (the
    /// telemetry plane must work *especially* under overload), but its
    /// first kRequest is answered with one transient-fault frame and
    /// the connection closes after the flush.
    bool rejecting = false;
    /// At most one dispatch per connection is in flight; frames parsed
    /// meanwhile queue here, preserving request→response order.
    bool dispatch_inflight = false;
    std::deque<Frame> pending;
    /// Close requested once write_buf fully drains.
    bool close_after_flush = false;
    /// Terminal state, applied by FinishConn (dead_hard ⇒ RST).
    bool dead = false;
    bool dead_hard = false;
    /// Shared with in-flight workers: flipped false on peer hangup so a
    /// worker waking from an injected stall can see the exchange was
    /// abandoned and skip the dispatch (otherwise the session cursor
    /// would advance past a block the client never received).
    std::shared_ptr<std::atomic<bool>> alive;
  };

  /// Everything a worker needs to run one exchange, captured by value —
  /// workers never see a Connection.
  struct DispatchJob {
    int64_t conn_id = -1;
    Frame request;
    std::shared_ptr<const codec::BlockCodec> codec;
    bool trace_negotiated = false;
    std::shared_ptr<std::atomic<bool>> alive;
  };

  /// A finished exchange travelling worker → loop.
  struct Completion {
    int64_t conn_id = -1;
    bool has_response = false;
    Frame response;
    ExchangeOutcome outcome = ExchangeOutcome::kContinue;
  };

  void EventLoop();
  void AcceptReady();
  void HandleConnEvent(uint64_t tag, uint32_t events);
  void ReadReady(Connection& conn);
  /// Routes one parsed frame: queue behind an in-flight dispatch, or
  /// handle now (Hello/Stats inline on the loop; kRequest via admission
  /// → shed → worker submit).
  void ProcessFrame(Connection& conn, Frame frame);
  void HandleFrameNow(Connection& conn, Frame frame);
  void HandleRequestFrame(Connection& conn, Frame frame);
  /// Serializes `frame` into the connection's write buffer, stamping
  /// the CRC trailer when the connection negotiated "crc" (by value:
  /// the stamp mutates the frame).
  void SendFrame(Connection& conn, Frame frame);
  /// Appends the transient-fault frame rejected/shed exchanges are
  /// answered with (client-side: retryable kUnavailable).
  void SendBackpressureFault(Connection& conn, const std::string& detail);
  void FlushWrites(Connection& conn);
  void UpdateInterest(int64_t id, Connection& conn);
  /// Flush, re-arm interest, and bury the connection if it died — the
  /// single exit point every event path funnels through.
  void FinishConn(int64_t id);
  void CloseConn(int64_t id, bool hard);
  void DrainCompletions();
  /// Timer-driven upkeep, run from the loop at the tick cadence: the
  /// drain sweep (close the listener, say goodbye to idle
  /// connections), half-open detection (ping then evict), and the
  /// session-TTL sweep over the container, fault-replay and stats
  /// maps.
  void Housekeeping();
  static void MarkDead(Connection& conn, bool hard);

  /// The worker-side body of one exchange: chaos injection, stalls,
  /// container dispatch, simulated service sleep, tracing — everything
  /// the old blocking handler did between reading the request and
  /// writing the response.
  Completion RunExchange(const DispatchJob& job);

  std::shared_ptr<SessionFaultState> FaultStateForSession(int64_t session_id);

  /// The session id of a block request payload (binary or SOAP), or -1
  /// when the payload is anything else. Shared by chaos targeting and
  /// per-session stats attribution.
  static int64_t BlockRequestSessionId(const std::string& payload);

  /// Folds one served exchange into the per-session rollups and their
  /// labeled mirrors in stats_registry_. `latency_ms` is the exchange's
  /// server residence (request fully read -> response stamped).
  void RecordExchangeStats(int64_t session_id, size_t request_bytes,
                           size_t response_bytes, bool replayed, bool fault,
                           double latency_ms);

  ServiceContainer* container_;
  WsqServerOptions options_;

  Socket listener_;
  int pinned_port_ = 0;
  std::thread loop_thread_;
  std::unique_ptr<Epoll> epoll_;
  std::unique_ptr<EventFd> wakeup_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::unique_ptr<AdmissionController> admission_;
  std::atomic<bool> running_{false};
  /// Drain mode (see BeginDrain). Cleared by Start and Stop, so a
  /// drained-then-restarted server accepts again.
  std::atomic<bool> draining_{false};
  /// Loop-thread throttle for Housekeeping (the loop can spin far
  /// faster than the tick under load).
  int64_t last_housekeeping_micros_ = 0;

  /// Loop-thread state: the connection table and id allocator. No mutex
  /// by design — single-owner, which is what keeps the loop TSan-clean.
  std::map<int64_t, std::unique_ptr<Connection>> conns_;
  int64_t next_connection_id_ = 0;

  /// Worker → loop completion queue; wakeup_ is signalled after a push.
  std::mutex completions_mu_;
  std::deque<Completion> completions_;

  /// Serializes ServiceContainer::Dispatch.
  std::mutex dispatch_mu_;

  /// Session-keyed fault replay state (guarded by fault_mu_). Entries
  /// outlive connections deliberately — see WsqServerOptions::fault_plan.
  /// shared_ptr values so the TTL sweep can evict an entry while a
  /// worker still holds its state across an exchange (the worker's
  /// reference keeps the node alive; the map just forgets it).
  std::mutex fault_mu_;
  std::map<int64_t, std::shared_ptr<SessionFaultState>> session_faults_;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> exchanges_served_{0};
  std::atomic<int64_t> faults_injected_{0};
  std::atomic<int64_t> replay_hits_{0};
  std::atomic<int64_t> stats_requests_{0};
  std::atomic<int64_t> trace_connections_{0};
  std::atomic<int64_t> connections_rejected_{0};
  std::atomic<int64_t> rate_limited_{0};
  std::atomic<int64_t> sheds_{0};
  std::atomic<int64_t> live_connections_{0};
  std::atomic<int64_t> idle_evicted_{0};
  std::atomic<int64_t> pings_sent_{0};
  std::atomic<int64_t> goaways_sent_{0};
  std::atomic<int64_t> evicted_sessions_{0};
  /// Dispatches submitted but not yet drained (queued + executing) —
  /// the load signal the shed watermark compares against.
  std::atomic<int64_t> dispatch_inflight_{0};
  /// Size of the last epoll batch — the loop's ready-queue depth gauge.
  std::atomic<int64_t> ready_queue_depth_{0};
  std::atomic<int64_t> bytes_in_{0};
  std::atomic<int64_t> bytes_out_{0};
  std::atomic<int64_t> soap_responses_{0};
  std::atomic<int64_t> binary_responses_{0};

  /// Server-side span-id allocator: unique within the process, which is
  /// all the Chrome-trace model needs.
  std::atomic<uint64_t> next_span_id_{1};

  /// Per-session rollups + the private registry their labeled mirrors
  /// live in (kept out of the global registry so a server embedded in a
  /// test or bench process does not leak per-session series into the
  /// client's own metric exports).
  std::mutex stats_mu_;
  std::map<int64_t, SessionStats> session_stats_;
  MetricsRegistry stats_registry_;
};

/// Client side of the kStats control frame: opens a fresh connection to
/// `host:port`, asks for a stats snapshot and returns the JSON document.
/// A dedicated connection keeps the telemetry plane off the data path —
/// no interleaving with in-flight exchanges, no codec negotiation.
Result<std::string> FetchServerStats(const std::string& host, int port,
                                     double timeout_ms);

}  // namespace wsq::net

#endif  // WSQ_NET_SERVER_H_
