#ifndef WSQ_NET_SERVER_H_
#define WSQ_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "wsq/codec/codec.h"
#include "wsq/common/status.h"
#include "wsq/exec/thread_pool.h"
#include "wsq/fault/fault_injector.h"
#include "wsq/fault/fault_plan.h"
#include "wsq/net/socket.h"
#include "wsq/obs/metrics.h"
#include "wsq/obs/span_context.h"
#include "wsq/server/container.h"

namespace wsq::net {

struct WsqServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// port() after Start).
  int port = 0;
  /// Connection-handler pool size — the cap on concurrently served
  /// clients.
  int worker_threads = 8;
  /// Server-side chaos: a non-empty plan is replayed per *session* (not
  /// per connection), so a client that reconnects after an injected
  /// connection drop resumes the same fault schedule at the same block.
  FaultPlan fault_plan;
  /// Per-run seed for the fault plan's probabilistic specs.
  uint64_t fault_seed = 0;
  /// When true (the default, and what wsqd uses), the server sleeps each
  /// exchange's LoadModel-simulated service time for real before
  /// replying, so live response times carry the paper's block-size
  /// dependence and adaptive controllers have a genuine signal to chase.
  /// Tests that only care about protocol mechanics turn it off.
  bool simulate_service_time = true;
  /// The richest block codec this server negotiates (wsqd --codec).
  /// The default keeps negotiation answering "soap" to everyone; set to
  /// binary to let advertising clients upgrade. Its compression option
  /// applies to the binary responses this server encodes.
  codec::CodecChoice codec;
};

/// The network frontend of the data service: accepts framed SOAP
/// exchanges over TCP and dispatches them to a ServiceContainer —
/// turning the in-process pull protocol into the wsqd daemon's wire
/// protocol. Thread-per-connection on an exec::ThreadPool; container
/// dispatch is serialized by an internal mutex (DataService and
/// LoadModel are single-threaded by design).
///
/// Start/Stop is a *frontend* lifecycle: Stop tears down the listener
/// and every live connection but leaves the container — and therefore
/// all open DataService sessions — intact, so a restarted server
/// resumes half-finished queries. That is precisely what lets a client
/// with a resilient retry policy survive a server kill mid-query.
class WsqServer {
 public:
  /// `container` must outlive the server and every Start/Stop cycle.
  WsqServer(ServiceContainer* container, WsqServerOptions options);
  ~WsqServer();

  WsqServer(const WsqServer&) = delete;
  WsqServer& operator=(const WsqServer&) = delete;

  /// Binds and starts accepting. The first Start resolves an ephemeral
  /// port request; later Starts re-bind the same pinned port (so
  /// clients can reconnect after a Stop/Start cycle). No-op when
  /// already running.
  Status Start();

  /// Stops accepting, wakes and drains every live connection handler,
  /// and joins the workers. Idempotent. Sessions persist.
  void Stop();

  bool running() const { return running_.load(); }

  /// The bound port; 0 before the first successful Start.
  int port() const { return pinned_port_; }

  int64_t connections_accepted() const { return connections_accepted_.load(); }
  int64_t exchanges_served() const { return exchanges_served_.load(); }
  int64_t faults_injected() const { return faults_injected_.load(); }
  int64_t replay_hits() const { return replay_hits_.load(); }
  int64_t stats_requests() const { return stats_requests_.load(); }
  int64_t trace_connections() const { return trace_connections_.load(); }

  /// The live stats snapshot this server answers kStats frames with (and
  /// wsqd exports via --stats-out / SIGUSR1): schema_version, frontend
  /// counters, codec mix, worker queue depth, the container's open
  /// session count, per-session rollups and the server's private metric
  /// registry — all as one RFC 8259 JSON document.
  std::string StatsJson();

 private:
  /// Fault-plan replay state for one DataService session, persisted
  /// across reconnects.
  struct SessionFaultState {
    std::unique_ptr<FaultInjector> injector;
    int64_t blocks_served = 0;
    int64_t start_micros = 0;
  };

  /// How one served exchange ends: keep reading, close gracefully (FIN),
  /// or close abortively (RST — injected connection resets).
  enum class ExchangeOutcome { kContinue, kClose, kCloseHard };

  /// Per-session transfer accounting for the stats plane (guarded by
  /// stats_mu_). Entries persist across reconnects, like the sessions
  /// they describe.
  struct SessionStats {
    int64_t blocks = 0;
    int64_t bytes_in = 0;
    int64_t bytes_out = 0;
    int64_t replay_hits = 0;
    int64_t faults = 0;
  };

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Socket> conn, int64_t id);
  ExchangeOutcome ServeExchange(Socket& conn, const Frame& request,
                                const codec::BlockCodec* response_codec,
                                bool trace_negotiated);
  SessionFaultState* FaultStateForSession(int64_t session_id);

  /// The session id of a block request payload (binary or SOAP), or -1
  /// when the payload is anything else. Shared by chaos targeting and
  /// per-session stats attribution.
  static int64_t BlockRequestSessionId(const std::string& payload);

  /// Folds one served exchange into the per-session rollups and their
  /// labeled mirrors in stats_registry_.
  void RecordExchangeStats(int64_t session_id, size_t request_bytes,
                           size_t response_bytes, bool replayed, bool fault);

  ServiceContainer* container_;
  WsqServerOptions options_;

  Socket listener_;
  int pinned_port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::atomic<bool> running_{false};

  /// Live connections, so Stop can wake blocked readers. Handlers
  /// deregister (under the mutex) before closing their socket, which
  /// makes the cross-thread Shutdown race-free.
  std::mutex conn_mu_;
  std::map<int64_t, std::shared_ptr<Socket>> live_connections_;
  int64_t next_connection_id_ = 0;

  /// Serializes ServiceContainer::Dispatch.
  std::mutex dispatch_mu_;

  /// Session-keyed fault replay state (guarded by fault_mu_). Entries
  /// outlive connections deliberately — see WsqServerOptions::fault_plan.
  std::mutex fault_mu_;
  std::map<int64_t, SessionFaultState> session_faults_;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> exchanges_served_{0};
  std::atomic<int64_t> faults_injected_{0};
  std::atomic<int64_t> replay_hits_{0};
  std::atomic<int64_t> stats_requests_{0};
  std::atomic<int64_t> trace_connections_{0};
  std::atomic<int64_t> bytes_in_{0};
  std::atomic<int64_t> bytes_out_{0};
  std::atomic<int64_t> soap_responses_{0};
  std::atomic<int64_t> binary_responses_{0};

  /// Server-side span-id allocator: unique within the process, which is
  /// all the Chrome-trace model needs.
  std::atomic<uint64_t> next_span_id_{1};

  /// Per-session rollups + the private registry their labeled mirrors
  /// live in (kept out of the global registry so a server embedded in a
  /// test or bench process does not leak per-session series into the
  /// client's own metric exports).
  std::mutex stats_mu_;
  std::map<int64_t, SessionStats> session_stats_;
  MetricsRegistry stats_registry_;
};

/// Client side of the kStats control frame: opens a fresh connection to
/// `host:port`, asks for a stats snapshot and returns the JSON document.
/// A dedicated connection keeps the telemetry plane off the data path —
/// no interleaving with in-flight exchanges, no codec negotiation.
Result<std::string> FetchServerStats(const std::string& host, int port,
                                     double timeout_ms);

}  // namespace wsq::net

#endif  // WSQ_NET_SERVER_H_
