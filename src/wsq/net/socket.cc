#include "wsq/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

namespace wsq::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

int PollTimeout(double ms) {
  if (ms <= 0) return -1;  // block indefinitely
  return static_cast<int>(std::ceil(ms));
}

/// Waits for `events` readiness on `fd`. Returns 1 when ready, 0 on
/// timeout, -1 on poll failure (errno set). EINTR restarts with the
/// *remaining* deadline, not the full one — a signal storm must not
/// stretch a 100ms read timeout indefinitely, and a caller-observed
/// timeout has to mean the wall-clock deadline actually passed.
int WaitReady(int fd, short events, double timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  if (timeout_ms <= 0) {
    for (;;) {
      const int rc = ::poll(&pfd, 1, PollTimeout(timeout_ms));
      if (rc < 0 && errno == EINTR) continue;
      return rc;
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(timeout_ms);
  for (;;) {
    const double remaining_ms =
        std::chrono::duration<double, std::milli>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (remaining_ms <= 0) return 0;
    const int rc = ::poll(&pfd, 1, PollTimeout(remaining_ms));
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

}  // namespace

void SetNonBlocking(int fd, bool enable) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  if (enable) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  ::fcntl(fd, F_SETFL, flags);
}

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), io_timeout_ms_(other.io_timeout_ms_) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    io_timeout_ms_ = other.io_timeout_ms_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::CloseHard() {
  if (fd_ >= 0) {
    struct linger lg;
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::Shutdown() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

bool Socket::PeerClosed() const {
  if (fd_ < 0) return true;
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  if (::poll(&pfd, 1, 0) <= 0) return false;  // nothing pending
  if ((pfd.revents & (POLLERR | POLLHUP)) != 0) return true;
  if ((pfd.revents & POLLIN) != 0) {
    char probe;
    const ssize_t n = ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0) return true;                     // orderly shutdown
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      return true;  // reset or other hard error
    }
  }
  return false;
}

Result<size_t> Socket::ReadSome(void* buf, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("read on a closed socket");
  const int ready = WaitReady(fd_, POLLIN, io_timeout_ms_);
  if (ready < 0) return Status::Internal(Errno("poll"));
  if (ready == 0) return Status::Unavailable("read timed out");
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET || errno == EPIPE) {
      return Status::Unavailable(Errno("recv"));
    }
    return Status::Internal(Errno("recv"));
  }
}

Result<size_t> Socket::WriteSome(const void* buf, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("write on a closed socket");
  const int ready = WaitReady(fd_, POLLOUT, io_timeout_ms_);
  if (ready < 0) return Status::Internal(Errno("poll"));
  if (ready == 0) return Status::Unavailable("write timed out");
  for (;;) {
    const ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET || errno == EPIPE) {
      return Status::Unavailable(Errno("send"));
    }
    return Status::Internal(Errno("send"));
  }
}

Result<Socket> TcpConnect(const std::string& host, int port,
                          double timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;

  struct addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &results);
  if (rc != 0) {
    return Status::Unavailable("resolve " + host + ": " +
                               ::gai_strerror(rc));
  }

  Status last = Status::Unavailable("no addresses for " + host);
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(Errno("socket"));
      continue;
    }
    // Non-blocking connect so the caller's timeout is honored even when
    // the peer silently drops SYNs.
    SetNonBlocking(fd, true);
    int crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (crc < 0 && errno == EINPROGRESS) {
      const int ready = WaitReady(fd, POLLOUT, timeout_ms);
      if (ready <= 0) {
        last = ready == 0 ? Status::Unavailable("connect timed out")
                          : Status::Internal(Errno("poll"));
        ::close(fd);
        ::freeaddrinfo(results);
        return last;
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
      crc = err == 0 ? 0 : -1;
      errno = err;
    }
    if (crc != 0) {
      last = Status::Unavailable(Errno("connect to " + host));
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd, false);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(results);
    return Socket(fd);
  }
  ::freeaddrinfo(results);
  return last;
}

Result<Socket> TcpListen(int port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Status::Unavailable(
        Errno("bind port " + std::to_string(port)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) < 0) {
    const Status st = Status::Internal(Errno("listen"));
    ::close(fd);
    return st;
  }
  return Socket(fd);
}

Result<int> LocalPort(const Socket& socket) {
  if (!socket.valid()) {
    return Status::FailedPrecondition("socket is not open");
  }
  struct sockaddr_in addr;
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) < 0) {
    return Status::Internal(Errno("getsockname"));
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<std::string> PeerIp(const Socket& socket) {
  if (!socket.valid()) {
    return Status::FailedPrecondition("socket is not open");
  }
  struct sockaddr_storage addr;
  socklen_t addr_len = sizeof(addr);
  if (::getpeername(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) < 0) {
    return Status::Internal(Errno("getpeername"));
  }
  char buf[INET6_ADDRSTRLEN] = {0};
  const void* src = nullptr;
  if (addr.ss_family == AF_INET) {
    src = &reinterpret_cast<struct sockaddr_in*>(&addr)->sin_addr;
  } else if (addr.ss_family == AF_INET6) {
    src = &reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_addr;
  } else {
    return Status::InvalidArgument("unsupported address family");
  }
  if (::inet_ntop(addr.ss_family, src, buf, sizeof(buf)) == nullptr) {
    return Status::Internal(Errno("inet_ntop"));
  }
  return std::string(buf);
}

Result<Socket> Accept(Socket& listener, double timeout_ms) {
  if (!listener.valid()) {
    return Status::FailedPrecondition("accept on a closed listener");
  }
  const int ready = WaitReady(listener.fd(), POLLIN, timeout_ms);
  if (ready < 0) return Status::Internal(Errno("poll"));
  if (ready == 0) return Status::Unavailable("no connection within deadline");
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // The listener was shut down from another thread, or the pending
    // connection died between poll and accept.
    return Status::Unavailable(Errno("accept"));
  }
}

}  // namespace wsq::net
