#include "wsq/net/frame.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "wsq/net/crc32c.h"
#include "wsq/obs/metrics.h"

namespace wsq::net {

namespace {

/// Process-wide transport counters (the "frame plane" of the live stats
/// surface). Cached handles into the global registry: the framing layer
/// has no context object to hang a private registry on, and in the wsqd
/// process the global registry *is* the server's registry.
Counter& FramesReadCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("wsq.net.frames_read");
  return *counter;
}

Counter& FramesWrittenCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("wsq.net.frames_written");
  return *counter;
}

Counter& PartialReadsCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("wsq.net.partial_reads");
  return *counter;
}

Counter& ShortWritesCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("wsq.net.short_writes");
  return *counter;
}

Counter& CrcFailuresCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("wsq.net.crc_failures");
  return *counter;
}

void PutU32(char* out, uint32_t v) {
  out[0] = static_cast<char>((v >> 24) & 0xff);
  out[1] = static_cast<char>((v >> 16) & 0xff);
  out[2] = static_cast<char>((v >> 8) & 0xff);
  out[3] = static_cast<char>(v & 0xff);
}

void PutU64(char* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v >> 32));
  PutU32(out + 4, static_cast<uint32_t>(v & 0xffffffffull));
}

uint32_t GetU32(const char* in) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(in);
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t GetU64(const char* in) {
  return (static_cast<uint64_t>(GetU32(in)) << 32) |
         static_cast<uint64_t>(GetU32(in + 4));
}

constexpr std::string_view kCleanCloseMessage = "connection closed by peer";

constexpr std::string_view kChecksumMismatchMessage =
    "frame checksum mismatch (corrupted on the wire)";

}  // namespace

Status ReadExact(ByteStream& stream, void* buf, size_t len) {
  char* out = static_cast<char*>(buf);
  size_t got = 0;
  while (got < len) {
    Result<size_t> n = stream.ReadSome(out + got, len - got);
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      return Status::Unavailable(got == 0
                                     ? kCleanCloseMessage
                                     : "connection closed mid-message");
    }
    if (n.value() < len - got) PartialReadsCounter().Increment();
    got += n.value();
  }
  return Status::Ok();
}

bool IsCleanClose(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message() == kCleanCloseMessage;
}

bool IsChecksumMismatch(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message() == kChecksumMismatchMessage;
}

Status WriteAll(ByteStream& stream, const void* buf, size_t len) {
  const char* in = static_cast<const char*>(buf);
  size_t put = 0;
  while (put < len) {
    Result<size_t> n = stream.WriteSome(in + put, len - put);
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      return Status::Unavailable("connection refused further writes");
    }
    if (n.value() < len - put) ShortWritesCounter().Increment();
    put += n.value();
  }
  return Status::Ok();
}

void EncodeFrameHeader(const Frame& frame, char out[kFrameHeaderBytes]) {
  uint8_t flags =
      frame.flags &
      static_cast<uint8_t>(~(kFrameFlagTraceContext | kFrameFlagServerSpans |
                             kFrameFlagCrc));
  if (frame.has_trace) {
    flags |= kFrameFlagTraceContext;
    // Spans never travel without the context that parents them.
    if (!frame.span_block.empty()) flags |= kFrameFlagServerSpans;
  }
  if (frame.has_crc) flags |= kFrameFlagCrc;
  PutU32(out, kFrameMagic);
  out[4] = static_cast<char>(frame.type);
  out[5] = static_cast<char>(flags);
  out[6] = 0;  // reserved
  out[7] = 0;  // reserved
  PutU32(out + 8, static_cast<uint32_t>(frame.payload.size()));
  PutU64(out + 12, frame.service_micros);
}

Result<FrameHeader> DecodeFrameHeader(const char in[kFrameHeaderBytes]) {
  if (GetU32(in) != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic (not a wsq peer?)");
  }
  const uint8_t type = static_cast<uint8_t>(in[4]);
  if (type != static_cast<uint8_t>(FrameType::kRequest) &&
      type != static_cast<uint8_t>(FrameType::kResponse) &&
      type != static_cast<uint8_t>(FrameType::kHello) &&
      type != static_cast<uint8_t>(FrameType::kHelloAck) &&
      type != static_cast<uint8_t>(FrameType::kStats) &&
      type != static_cast<uint8_t>(FrameType::kStatsAck) &&
      type != static_cast<uint8_t>(FrameType::kPing) &&
      type != static_cast<uint8_t>(FrameType::kPong) &&
      type != static_cast<uint8_t>(FrameType::kGoaway)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  header.flags = static_cast<uint8_t>(in[5]);
  header.payload_len = GetU32(in + 8);
  header.service_micros = GetU64(in + 12);
  if ((header.flags & kFrameFlagServerSpans) != 0 &&
      (header.flags & kFrameFlagTraceContext) == 0) {
    return Status::InvalidArgument(
        "span extension announced without a trace context");
  }
  if (header.payload_len > kMaxFramePayloadBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(header.payload_len) +
        " bytes exceeds the " + std::to_string(kMaxFramePayloadBytes) +
        "-byte limit");
  }
  return header;
}

Result<Frame> ReadFrame(ByteStream& stream) {
  char raw[kFrameHeaderBytes];
  WSQ_RETURN_IF_ERROR(ReadExact(stream, raw, sizeof(raw)));
  Result<FrameHeader> header = DecodeFrameHeader(raw);
  if (!header.ok()) return header.status();

  // CRC accumulates over the raw bytes exactly as transmitted, so the
  // trailer is comparable regardless of which extensions travelled.
  const bool checked = (header.value().flags & kFrameFlagCrc) != 0;
  uint32_t crc = checked ? Crc32cExtend(0, raw, sizeof(raw)) : 0;

  Frame frame;
  frame.type = header.value().type;
  frame.flags = header.value().flags;
  frame.service_micros = header.value().service_micros;
  if ((header.value().flags & kFrameFlagTraceContext) != 0) {
    char ext[kTraceContextBytes];
    WSQ_RETURN_IF_ERROR(ReadExact(stream, ext, sizeof(ext)));
    if (checked) crc = Crc32cExtend(crc, ext, sizeof(ext));
    frame.has_trace = true;
    frame.trace = DecodeTraceContext(ext);
  }
  if ((header.value().flags & kFrameFlagServerSpans) != 0) {
    char len_raw[4];
    WSQ_RETURN_IF_ERROR(ReadExact(stream, len_raw, sizeof(len_raw)));
    if (checked) crc = Crc32cExtend(crc, len_raw, sizeof(len_raw));
    const uint32_t span_len = GetU32(len_raw);
    if (span_len > kMaxRemoteSpanBytes) {
      return Status::InvalidArgument(
          "span block of " + std::to_string(span_len) +
          " bytes exceeds the " + std::to_string(kMaxRemoteSpanBytes) +
          "-byte limit");
    }
    frame.span_block.resize(span_len);
    if (span_len > 0) {
      WSQ_RETURN_IF_ERROR(
          ReadExact(stream, frame.span_block.data(), frame.span_block.size()));
      if (checked) {
        crc = Crc32cExtend(crc, frame.span_block.data(),
                           frame.span_block.size());
      }
    }
  }
  frame.payload.resize(header.value().payload_len);
  if (header.value().payload_len > 0) {
    WSQ_RETURN_IF_ERROR(
        ReadExact(stream, frame.payload.data(), frame.payload.size()));
    if (checked) {
      crc = Crc32cExtend(crc, frame.payload.data(), frame.payload.size());
    }
  }
  if (checked) {
    char trailer[kFrameCrcBytes];
    WSQ_RETURN_IF_ERROR(ReadExact(stream, trailer, sizeof(trailer)));
    if (GetU32(trailer) != crc) {
      CrcFailuresCounter().Increment();
      return Status::Unavailable(std::string(kChecksumMismatchMessage));
    }
    frame.has_crc = true;
  }
  FramesReadCounter().Increment();
  return frame;
}

Status AppendFrameBytes(const Frame& frame, std::string* out) {
  if (frame.payload.size() > kMaxFramePayloadBytes) {
    return Status::InvalidArgument(
        "refusing to send a " + std::to_string(frame.payload.size()) +
        "-byte frame payload (limit " +
        std::to_string(kMaxFramePayloadBytes) + ")");
  }
  if (frame.span_block.size() > kMaxRemoteSpanBytes) {
    return Status::InvalidArgument(
        "refusing to send a " + std::to_string(frame.span_block.size()) +
        "-byte span block (limit " + std::to_string(kMaxRemoteSpanBytes) +
        ")");
  }
  const size_t start = out->size();
  char raw[kFrameHeaderBytes];
  EncodeFrameHeader(frame, raw);
  out->append(raw, sizeof(raw));
  if (frame.has_trace) {
    char ext[kTraceContextBytes];
    EncodeTraceContext(frame.trace, ext);
    out->append(ext, sizeof(ext));
    if (!frame.span_block.empty()) {
      char len_raw[4];
      PutU32(len_raw, static_cast<uint32_t>(frame.span_block.size()));
      out->append(len_raw, sizeof(len_raw));
      out->append(frame.span_block);
    }
  }
  out->append(frame.payload);
  if (frame.has_crc) {
    char trailer[kFrameCrcBytes];
    PutU32(trailer, Crc32c(out->data() + start, out->size() - start));
    out->append(trailer, sizeof(trailer));
  }
  FramesWrittenCounter().Increment();
  return Status::Ok();
}

void FrameParser::BeginFrame() {
  phase_ = Phase::kHeader;
  need_ = kFrameHeaderBytes;
  frame_ = Frame();
  flags_ = 0;
  payload_len_ = 0;
  crc_ = 0;
}

Status FrameParser::Step(const char* bytes, std::vector<Frame>* out) {
  // `bytes` is exactly need_ bytes of the current phase. Transitions
  // follow the wire order: header, trace context, span length, span
  // block, payload, crc trailer — skipping the extensions the flags do
  // not announce.
  const auto emit = [this, out] {
    FramesReadCounter().Increment();
    out->push_back(std::move(frame_));
    BeginFrame();
  };
  const auto finish_body = [this, &emit] {
    if ((flags_ & kFrameFlagCrc) != 0) {
      phase_ = Phase::kCrcTrailer;
      need_ = kFrameCrcBytes;
      return;
    }
    emit();
  };
  const auto enter_payload = [this, &finish_body] {
    if (payload_len_ > 0) {
      phase_ = Phase::kPayload;
      need_ = payload_len_;
      frame_.payload.reserve(payload_len_);
      return;
    }
    finish_body();
  };
  // Every body phase of a checksummed frame feeds the running CRC
  // before being interpreted (the header feeds it below, once the flag
  // is known; the trailer itself is never part of the sum). Unflagged
  // frames skip the accumulation entirely — the crc-off hot path does
  // no extra work.
  if ((flags_ & kFrameFlagCrc) != 0 && phase_ != Phase::kHeader &&
      phase_ != Phase::kCrcTrailer) {
    crc_ = Crc32cExtend(crc_, bytes, need_);
  }
  switch (phase_) {
    case Phase::kHeader: {
      Result<FrameHeader> header = DecodeFrameHeader(bytes);
      if (!header.ok()) return header.status();
      frame_.type = header.value().type;
      frame_.flags = header.value().flags;
      frame_.service_micros = header.value().service_micros;
      flags_ = header.value().flags;
      payload_len_ = header.value().payload_len;
      if ((flags_ & kFrameFlagCrc) != 0) {
        crc_ = Crc32cExtend(0, bytes, kFrameHeaderBytes);
      }
      if ((flags_ & kFrameFlagTraceContext) != 0) {
        phase_ = Phase::kTraceContext;
        need_ = kTraceContextBytes;
      } else {
        enter_payload();
      }
      return Status::Ok();
    }
    case Phase::kTraceContext: {
      frame_.has_trace = true;
      frame_.trace = DecodeTraceContext(bytes);
      if ((flags_ & kFrameFlagServerSpans) != 0) {
        phase_ = Phase::kSpanLength;
        need_ = 4;
      } else {
        enter_payload();
      }
      return Status::Ok();
    }
    case Phase::kSpanLength: {
      const uint32_t span_len = GetU32(bytes);
      if (span_len > kMaxRemoteSpanBytes) {
        return Status::InvalidArgument(
            "span block of " + std::to_string(span_len) +
            " bytes exceeds the " + std::to_string(kMaxRemoteSpanBytes) +
            "-byte limit");
      }
      if (span_len > 0) {
        phase_ = Phase::kSpanBlock;
        need_ = span_len;
        frame_.span_block.reserve(span_len);
      } else {
        enter_payload();
      }
      return Status::Ok();
    }
    case Phase::kSpanBlock: {
      frame_.span_block.assign(bytes, need_);
      enter_payload();
      return Status::Ok();
    }
    case Phase::kPayload: {
      frame_.payload.assign(bytes, need_);
      finish_body();
      return Status::Ok();
    }
    case Phase::kCrcTrailer: {
      if (GetU32(bytes) != crc_) {
        CrcFailuresCounter().Increment();
        return Status::Unavailable(std::string(kChecksumMismatchMessage));
      }
      frame_.has_crc = true;
      emit();
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable frame parser phase");
}

Status FrameParser::Consume(const char* data, size_t len,
                            std::vector<Frame>* out) {
  if (!error_.ok()) return error_;
  size_t cursor = 0;
  // Fast path: when the buffer is empty, phases are completed straight
  // out of the caller's batch without copying into buffer_ first — on
  // the hot path (whole small frames per recv) nothing is ever staged.
  for (;;) {
    if (buffer_.empty() && len - cursor >= need_) {
      const size_t step = need_;
      Status status = Step(data + cursor, out);
      if (!status.ok()) {
        error_ = status;
        return error_;
      }
      cursor += step;
      continue;
    }
    if (cursor >= len) break;
    const size_t take = std::min(need_ - buffer_.size(), len - cursor);
    buffer_.append(data + cursor, take);
    cursor += take;
    if (buffer_.size() < need_) break;
    std::string staged = std::move(buffer_);
    buffer_.clear();
    Status status = Step(staged.data(), out);
    if (!status.ok()) {
      error_ = status;
      return error_;
    }
  }
  return Status::Ok();
}

Status WriteFrame(ByteStream& stream, const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayloadBytes) {
    return Status::InvalidArgument(
        "refusing to send a " + std::to_string(frame.payload.size()) +
        "-byte frame payload (limit " +
        std::to_string(kMaxFramePayloadBytes) + ")");
  }
  if (frame.span_block.size() > kMaxRemoteSpanBytes) {
    return Status::InvalidArgument(
        "refusing to send a " + std::to_string(frame.span_block.size()) +
        "-byte span block (limit " + std::to_string(kMaxRemoteSpanBytes) +
        ")");
  }
  // The CRC accumulates piece by piece as the scattered writes go out —
  // no staging copy of the payload just to checksum it.
  uint32_t crc = 0;
  char raw[kFrameHeaderBytes];
  EncodeFrameHeader(frame, raw);
  WSQ_RETURN_IF_ERROR(WriteAll(stream, raw, sizeof(raw)));
  if (frame.has_crc) crc = Crc32cExtend(crc, raw, sizeof(raw));
  if (frame.has_trace) {
    char ext[kTraceContextBytes];
    EncodeTraceContext(frame.trace, ext);
    WSQ_RETURN_IF_ERROR(WriteAll(stream, ext, sizeof(ext)));
    if (frame.has_crc) crc = Crc32cExtend(crc, ext, sizeof(ext));
    if (!frame.span_block.empty()) {
      char len_raw[4];
      PutU32(len_raw, static_cast<uint32_t>(frame.span_block.size()));
      WSQ_RETURN_IF_ERROR(WriteAll(stream, len_raw, sizeof(len_raw)));
      WSQ_RETURN_IF_ERROR(WriteAll(stream, frame.span_block.data(),
                                   frame.span_block.size()));
      if (frame.has_crc) {
        crc = Crc32cExtend(crc, len_raw, sizeof(len_raw));
        crc = Crc32cExtend(crc, frame.span_block.data(),
                           frame.span_block.size());
      }
    }
  }
  if (!frame.payload.empty()) {
    WSQ_RETURN_IF_ERROR(
        WriteAll(stream, frame.payload.data(), frame.payload.size()));
    if (frame.has_crc) {
      crc = Crc32cExtend(crc, frame.payload.data(), frame.payload.size());
    }
  }
  if (frame.has_crc) {
    char trailer[kFrameCrcBytes];
    PutU32(trailer, crc);
    WSQ_RETURN_IF_ERROR(WriteAll(stream, trailer, sizeof(trailer)));
  }
  FramesWrittenCounter().Increment();
  return Status::Ok();
}

}  // namespace wsq::net
