#include "wsq/net/admission.h"

#include <algorithm>

namespace wsq::net {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec),
      burst_(burst > 0 ? burst : std::max(1.0, rate_per_sec)),
      tokens_(burst_) {}

bool TokenBucket::TryAcquire(int64_t now_micros) {
  if (rate_per_sec_ <= 0) return true;  // unlimited
  if (!primed_) {
    primed_ = true;
    last_micros_ = now_micros;
  }
  if (now_micros > last_micros_) {
    const double elapsed_s =
        static_cast<double>(now_micros - last_micros_) * 1e-6;
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_sec_);
    last_micros_ = now_micros;
  }
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {}

AdmitDecision AdmissionController::AdmitConnection(
    const std::string& peer_ip, int live_connections, int64_t now_micros) {
  if (config_.max_connections > 0 &&
      live_connections >= config_.max_connections) {
    return AdmitDecision::kRejectCapacity;
  }
  if (config_.rate_limit_per_sec > 0) {
    if (buckets_.size() >= kMaxTrackedPeers &&
        buckets_.find(peer_ip) == buckets_.end()) {
      buckets_.clear();
    }
    auto [it, inserted] = buckets_.try_emplace(
        peer_ip, config_.rate_limit_per_sec, config_.rate_limit_burst);
    if (!it->second.TryAcquire(now_micros)) {
      return AdmitDecision::kRejectRate;
    }
  }
  return AdmitDecision::kAdmit;
}

bool AdmissionController::ShouldShed(size_t worker_queue_depth) const {
  return config_.shed_queue_watermark > 0 &&
         worker_queue_depth >=
             static_cast<size_t>(config_.shed_queue_watermark);
}

}  // namespace wsq::net
