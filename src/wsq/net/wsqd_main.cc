// wsqd — the standalone wsq data-service daemon.
//
// Hosts the same DataService/ServiceContainer stack the simulated
// transport dispatches into, behind the framed TCP wire protocol
// (net/frame.h), so any TcpWsClient / LiveBackend / `--live` example can
// run the paper's pull protocol over a real network:
//
//   wsqd --port=9090 --scale=0.1 --profile=loaded --fault-plan=burst
//
// The daemon prints "wsqd listening on port N" once ready (scripts
// scrape the ephemeral port from it) and serves until SIGINT (immediate
// stop) or SIGTERM (graceful drain: stop accepting, kGoaway idle
// connections, finish in-flight work, then stop — bounded by
// --drain-timeout-s).

#include <csignal>
#include <cstdint>
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "wsq/codec/codec.h"
#include "wsq/fault/fault_plan.h"
#include "wsq/net/server.h"
#include "wsq/relation/tpch_gen.h"
#include "wsq/server/container.h"
#include "wsq/server/data_service.h"
#include "wsq/server/dbms.h"
#include "wsq/server/load_model.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_drain = 0;
volatile std::sig_atomic_t g_dump_stats = 0;

void HandleSignal(int) { g_stop = 1; }
void HandleDrainSignal(int) { g_drain = 1; }
void HandleStatsSignal(int) { g_dump_stats = 1; }

struct WsqdFlags {
  int port = 9090;
  double scale = 0.05;
  uint64_t seed = 7;
  std::string profile = "unloaded";
  std::string fault_plan = "none";
  std::string codec = "binary";
  int worker_threads = 8;
  bool simulate_service_time = true;
  /// Also write the bound port here after startup (ephemeral-port
  /// consumers that cannot scrape stdout).
  std::string port_file;
  /// Live telemetry: write the server's stats JSON snapshot here every
  /// stats_interval_s seconds (0 = only on SIGUSR1 and at shutdown).
  std::string stats_out;
  int stats_interval_s = 0;
  /// Admission control (0 = off for each knob).
  int max_connections = 0;
  double rate_limit = 0.0;
  double rate_limit_burst = 0.0;
  int shed_watermark = 0;
  /// SIGTERM drain budget: in-flight work gets this long to finish
  /// before the server stops hard.
  double drain_timeout_s = 10.0;
  /// Half-open detection: evict connections idle this long (live peers
  /// get a ping at half of it first). 0 = off.
  double idle_timeout_s = 0.0;
  /// Evict DataService sessions (and their fault/stats state) untouched
  /// this long. 0 = off.
  double session_ttl_s = 0.0;
};

/// One stats snapshot to `path` (atomic enough for pollers: write to a
/// temp name, then rename over the target).
void WriteStatsSnapshot(wsq::net::WsqServer& server, const std::string& path) {
  const std::string body = server.StatsJson();
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "wsqd: cannot open %s\n", tmp.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), out);
  std::fclose(out);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "wsqd: cannot rename %s -> %s\n", tmp.c_str(),
                 path.c_str());
  }
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: wsqd [--port=N] [--scale=F] [--seed=N] [--profile=NAME]\n"
      "            [--fault-plan=NAME] [--codec=NAME] [--workers=N]\n"
      "            [--no-service-sleep] [--port-file=PATH]\n"
      "            [--stats-out=PATH] [--stats-interval-s=N]\n"
      "            [--max-connections=N] [--rate-limit=F]\n"
      "            [--rate-limit-burst=F] [--shed-watermark=N]\n"
      "            [--drain-timeout-s=F] [--idle-timeout-s=F]\n"
      "            [--session-ttl-s=F]\n"
      "\n"
      "  --port=N           TCP port to listen on; 0 = ephemeral (default "
      "9090)\n"
      "  --port-file=PATH   also write the bound port to PATH once "
      "listening\n"
      "  --stats-out=PATH   write the live stats JSON snapshot to PATH on "
      "SIGUSR1,\n"
      "                     every --stats-interval-s seconds, and at "
      "shutdown\n"
      "  --stats-interval-s=N periodic stats snapshot interval (default 0 = "
      "off)\n"
      "  --scale=F          TPC-H scale factor for the hosted Customer/Orders "
      "tables (default 0.05)\n"
      "  --seed=N           data + load-noise seed (default 7)\n"
      "  --profile=NAME     server load profile: unloaded | loaded | memory "
      "(paper conf1.1/1.2/1.3)\n"
      "  --fault-plan=NAME  server-side chaos preset (none | burst | latency "
      "| stall | flaky | outage | resets)\n"
      "  --codec=NAME       richest block codec offered in negotiation: soap "
      "| binary | binary+lz (default binary; clients that don't ask still "
      "get SOAP)\n"
      "  --workers=N        dispatch worker threads (default 8)\n"
      "  --no-service-sleep serve at raw dispatch speed instead of sleeping "
      "the modeled service time\n"
      "  --max-connections=N  reject connections beyond N with a retryable "
      "fault (default 0 = unlimited)\n"
      "  --rate-limit=F     per-client-IP new-connection rate per second "
      "(token bucket; default 0 = unlimited)\n"
      "  --rate-limit-burst=F  token-bucket burst capacity (default "
      "max(1, rate))\n"
      "  --shed-watermark=N shed requests with a retryable fault while N "
      "dispatches are queued or running (default 0 = never)\n"
      "  --drain-timeout-s=F  SIGTERM grace: finish in-flight work within F "
      "seconds before stopping hard (default 10)\n"
      "  --idle-timeout-s=F evict connections idle for F seconds; live peers "
      "are pinged at F/2 first (default 0 = never)\n"
      "  --session-ttl-s=F  evict sessions (cursor, replay cache, stats) "
      "untouched for F seconds (default 0 = never)\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

/// The paper's server-side configurations as LoadModelConfig presets:
/// "unloaded" (conf1.1), "loaded" (conf1.2: concurrent queries sharing
/// CPU/memory), "memory" (conf1.3: memory-intensive jobs shrinking the
/// buffer).
bool LoadProfileByName(const std::string& name, wsq::LoadModelConfig* out) {
  wsq::LoadModelConfig config;
  if (name == "unloaded") {
    *out = config;
    return true;
  }
  if (name == "loaded") {
    config.concurrent_queries = 3;
    *out = config;
    return true;
  }
  if (name == "memory") {
    config.concurrent_jobs = 4;
    config.memory_pressure = 0.5;
    *out = config;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  WsqdFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--port", &value)) {
      flags.port = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--scale", &value)) {
      flags.scale = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      flags.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--profile", &value)) {
      flags.profile = value;
    } else if (ParseFlag(argv[i], "--fault-plan", &value)) {
      flags.fault_plan = value;
    } else if (ParseFlag(argv[i], "--codec", &value)) {
      flags.codec = value;
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      flags.worker_threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--port-file", &value)) {
      flags.port_file = value;
    } else if (ParseFlag(argv[i], "--stats-out", &value)) {
      flags.stats_out = value;
    } else if (ParseFlag(argv[i], "--stats-interval-s", &value)) {
      flags.stats_interval_s = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--max-connections", &value)) {
      flags.max_connections = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--rate-limit", &value)) {
      flags.rate_limit = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--rate-limit-burst", &value)) {
      flags.rate_limit_burst = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--shed-watermark", &value)) {
      flags.shed_watermark = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--drain-timeout-s", &value)) {
      flags.drain_timeout_s = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--idle-timeout-s", &value)) {
      flags.idle_timeout_s = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--session-ttl-s", &value)) {
      flags.session_ttl_s = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--no-service-sleep") == 0) {
      flags.simulate_service_time = false;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "wsqd: unknown flag %s\n", argv[i]);
      PrintUsage();
      return 2;
    }
  }

  wsq::LoadModelConfig load;
  if (!LoadProfileByName(flags.profile, &load)) {
    std::fprintf(stderr, "wsqd: unknown --profile=%s\n",
                 flags.profile.c_str());
    return 2;
  }
  wsq::Result<wsq::FaultPlan> plan =
      wsq::FaultPlan::FromName(flags.fault_plan);
  if (!plan.ok()) {
    std::fprintf(stderr, "wsqd: %s\n", plan.status().ToString().c_str());
    return 2;
  }
  wsq::Result<wsq::codec::CodecChoice> codec =
      wsq::codec::CodecChoice::FromName(flags.codec);
  if (!codec.ok()) {
    std::fprintf(stderr, "wsqd: %s\n", codec.status().ToString().c_str());
    return 2;
  }

  wsq::TpchGenOptions gen;
  gen.scale = flags.scale;
  gen.seed = flags.seed;
  wsq::Result<std::shared_ptr<wsq::Table>> customer =
      wsq::GenerateCustomer(gen);
  wsq::Result<std::shared_ptr<wsq::Table>> orders = wsq::GenerateOrders(gen);
  if (!customer.ok() || !orders.ok()) {
    std::fprintf(stderr, "wsqd: table generation failed\n");
    return 1;
  }

  wsq::Dbms dbms;
  if (!dbms.RegisterTable(customer.value()).ok() ||
      !dbms.RegisterTable(orders.value()).ok()) {
    std::fprintf(stderr, "wsqd: table registration failed\n");
    return 1;
  }
  wsq::DataService service(&dbms);
  wsq::ServiceContainer container(&service, load, flags.seed);

  wsq::net::WsqServerOptions server_options;
  server_options.port = flags.port;
  server_options.worker_threads = flags.worker_threads;
  server_options.fault_plan = std::move(plan).value();
  server_options.fault_seed = flags.seed;
  server_options.simulate_service_time = flags.simulate_service_time;
  server_options.codec = codec.value();
  server_options.admission.max_connections = flags.max_connections;
  server_options.admission.rate_limit_per_sec = flags.rate_limit;
  server_options.admission.rate_limit_burst = flags.rate_limit_burst;
  server_options.admission.shed_queue_watermark = flags.shed_watermark;
  server_options.idle_timeout_ms = flags.idle_timeout_s * 1000.0;
  server_options.session_ttl_ms = flags.session_ttl_s * 1000.0;
  wsq::net::WsqServer server(&container, server_options);

  wsq::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "wsqd: %s\n", started.ToString().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "wsqd: profile=%s fault-plan=%s codec<=%s scale=%g (%lld "
               "customer rows)\n",
               flags.profile.c_str(), flags.fault_plan.c_str(),
               flags.codec.c_str(), flags.scale,
               static_cast<long long>(customer.value()->num_rows()));
  // The machine-readable ready line scripts wait for and scrape.
  std::printf("wsqd listening on port %d\n", server.port());
  std::fflush(stdout);
  if (!flags.port_file.empty()) {
    std::FILE* out = std::fopen(flags.port_file.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "wsqd: cannot open --port-file=%s\n",
                   flags.port_file.c_str());
      return 1;
    }
    std::fprintf(out, "%d\n", server.port());
    std::fclose(out);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGUSR1, HandleStatsSignal);
  int64_t ticks = 0;  // 100 ms each
  while (g_stop == 0 && g_drain == 0) {
    struct timespec ts {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
    ++ticks;
    const bool periodic_due =
        !flags.stats_out.empty() && flags.stats_interval_s > 0 &&
        ticks % (static_cast<int64_t>(flags.stats_interval_s) * 10) == 0;
    if (g_dump_stats != 0 || periodic_due) {
      g_dump_stats = 0;
      if (!flags.stats_out.empty()) {
        WriteStatsSnapshot(server, flags.stats_out);
      } else {
        // SIGUSR1 without --stats-out: dump to stderr — still useful
        // for a quick look at a running daemon.
        std::fprintf(stderr, "%s\n", server.StatsJson().c_str());
      }
    }
  }

  // Final snapshot before teardown, so a consumer always sees the
  // complete run even when it never signaled.
  if (!flags.stats_out.empty()) WriteStatsSnapshot(server, flags.stats_out);
  if (g_drain != 0) {
    // SIGTERM: graceful drain. Clients mid-query see a retryable
    // goodbye (kGoaway / shed fault / FIN) and resume against the
    // replacement daemon; sessions would persist across a Start in the
    // same process.
    std::fprintf(stderr, "wsqd: draining (timeout %gs)\n",
                 flags.drain_timeout_s);
    const bool clean = server.Drain(flags.drain_timeout_s);
    std::fprintf(stderr, "wsqd: drain %s\n",
                 clean ? "complete" : "timed out; stopped hard");
  } else {
    server.Stop();
  }
  if (!flags.port_file.empty()) {
    // A stale port file must not point a launcher at a dead (or worse,
    // someone else's) port.
    std::remove(flags.port_file.c_str());
  }
  std::fprintf(stderr, "wsqd: served %lld exchanges on %lld connections "
                       "(%lld injected faults)\n",
               static_cast<long long>(server.exchanges_served()),
               static_cast<long long>(server.connections_accepted()),
               static_cast<long long>(server.faults_injected()));
  return 0;
}
