#include "wsq/net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "wsq/codec/binary_codec.h"
#include "wsq/common/clock.h"
#include "wsq/net/frame.h"
#include "wsq/obs/json_lite.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq::net {

namespace {

void SleepMs(double ms) {
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

/// epoll tags for the two non-connection fds. Connection ids count up
/// from 0, so the top of the u64 range can never collide.
constexpr uint64_t kListenerTag = ~0ull;
constexpr uint64_t kWakeupTag = ~0ull - 1;

/// Events per epoll_wait batch. Level-triggered: anything beyond the
/// batch stays ready and surfaces next iteration.
constexpr int kEpollBatch = 256;

/// Loop wakeup cadence when nothing is ready — the Stop() latency floor.
constexpr int kLoopTickMs = 100;

/// Read chunks per EPOLLIN event before yielding to the rest of the
/// batch (level-triggered re-fires for the remainder): one slow loop
/// iteration must not let a single fat connection starve thousands.
constexpr int kMaxReadsPerEvent = 8;

/// Pipelined frames a connection may queue behind its in-flight
/// dispatch before it is considered abusive and dropped.
constexpr size_t kMaxPendingFrames = 1024;

/// Housekeeping cadence floor: under load the loop iterates far faster
/// than the idle tick, and the idle/drain/TTL sweeps are O(conns).
constexpr int64_t kHousekeepingIntervalMicros = 50 * 1000;

}  // namespace

WsqServer::WsqServer(ServiceContainer* container, WsqServerOptions options)
    : container_(container), options_(std::move(options)) {}

WsqServer::~WsqServer() { Stop(); }

Status WsqServer::Start() {
  if (running_.load()) return Status::Ok();
  Result<Socket> listener =
      TcpListen(pinned_port_ != 0 ? pinned_port_ : options_.port,
                /*backlog=*/1024);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Result<int> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  pinned_port_ = port.value();
  SetNonBlocking(listener_.fd(), true);

  epoll_ = std::make_unique<Epoll>();
  wakeup_ = std::make_unique<EventFd>();
  if (!epoll_->valid() || !wakeup_->valid()) {
    listener_.Close();
    return Status::Internal("failed to create epoll/eventfd");
  }
  Status st = epoll_->Add(listener_.fd(), EPOLLIN, kListenerTag);
  if (st.ok()) st = epoll_->Add(wakeup_->fd(), EPOLLIN, kWakeupTag);
  if (!st.ok()) {
    listener_.Close();
    return st;
  }

  admission_ = std::make_unique<AdmissionController>(options_.admission);
  pool_ = std::make_unique<exec::ThreadPool>(options_.worker_threads);
  draining_.store(false);
  last_housekeeping_micros_ = 0;
  running_.store(true);
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::Ok();
}

void WsqServer::Stop() {
  if (!running_.exchange(false)) return;
  if (wakeup_) wakeup_->Signal();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop's epilogue closed the listener and every connection (the
  // FIN wakes clients blocked mid-read). Workers may still be finishing
  // dispatches; joining them here is what makes Stop() a full barrier.
  pool_.reset();
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.clear();
  }
  dispatch_inflight_.store(0);
  draining_.store(false);
}

void WsqServer::BeginDrain() {
  if (!running_.load()) return;
  draining_.store(true);
  if (wakeup_) wakeup_->Signal();
}

bool WsqServer::Drain(double timeout_s) {
  if (!running_.load()) return true;
  BeginDrain();
  const int64_t deadline =
      WallClock().NowMicros() + static_cast<int64_t>(timeout_s * 1'000'000.0);
  bool clean = false;
  for (;;) {
    if (live_connections_.load() == 0 && dispatch_inflight_.load() == 0) {
      clean = true;
      break;
    }
    if (WallClock().NowMicros() >= deadline) break;
    SleepMs(5.0);
  }
  Stop();
  return clean;
}

void WsqServer::EventLoop() {
  std::vector<struct epoll_event> events(kEpollBatch);
  while (running_.load()) {
    Result<int> ready = epoll_->Wait(events.data(), kEpollBatch, kLoopTickMs);
    if (!ready.ok()) break;
    ready_queue_depth_.store(ready.value());
    for (int i = 0; i < ready.value(); ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kWakeupTag) {
        wakeup_->Drain();
        continue;
      }
      if (tag == kListenerTag) {
        AcceptReady();
        continue;
      }
      HandleConnEvent(tag, events[i].events);
    }
    DrainCompletions();
    Housekeeping();
  }
  // Teardown belongs to the loop thread, the connections' only owner.
  // A graceful close sends FIN, which is exactly what wakes a client
  // blocked in a read ("connection closed" → retryable kUnavailable).
  for (auto& [id, conn] : conns_) {
    conn->alive->store(false);
    conn->socket.Close();
  }
  conns_.clear();
  live_connections_.store(0);
  listener_.Close();
}

void WsqServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: drained. Anything else (EMFILE under fd pressure,
      // a connection that died in the backlog): give up this round,
      // the listener stays armed.
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetNonBlocking(fd, true);
    connections_accepted_.fetch_add(1);

    Socket socket(fd);
    std::string peer_ip;
    if (Result<std::string> ip = PeerIp(socket); ip.ok()) {
      peer_ip = std::move(ip).value();
    }
    const AdmitDecision decision = admission_->AdmitConnection(
        peer_ip, static_cast<int>(conns_.size()), WallClock().NowMicros());
    if (decision == AdmitDecision::kRejectCapacity) {
      connections_rejected_.fetch_add(1);
    } else if (decision == AdmitDecision::kRejectRate) {
      rate_limited_.fetch_add(1);
    }

    auto conn = std::make_unique<Connection>();
    conn->rejecting = decision != AdmitDecision::kAdmit;
    conn->alive = std::make_shared<std::atomic<bool>>(true);
    conn->interest = EPOLLIN | EPOLLRDHUP;
    conn->last_activity_micros = WallClock().NowMicros();
    const int64_t id = next_connection_id_++;
    conn->id = id;
    if (!epoll_->Add(fd, conn->interest, static_cast<uint64_t>(id)).ok()) {
      continue;  // socket closes via RAII
    }
    conn->socket = std::move(socket);
    conns_.emplace(id, std::move(conn));
    live_connections_.store(static_cast<int64_t>(conns_.size()));
  }
}

void WsqServer::MarkDead(Connection& conn, bool hard) {
  conn.dead = true;
  conn.dead_hard = conn.dead_hard || hard;
}

void WsqServer::CloseConn(int64_t id, bool hard) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  conn.alive->store(false);
  if (hard) {
    conn.socket.CloseHard();
  } else {
    conn.socket.Close();
  }
  conns_.erase(it);
  live_connections_.store(static_cast<int64_t>(conns_.size()));
}

void WsqServer::HandleConnEvent(uint64_t tag, uint32_t events) {
  const int64_t id = static_cast<int64_t>(tag);
  auto it = conns_.find(id);
  if (it == conns_.end()) return;  // closed earlier in this batch
  Connection& conn = *it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    conn.alive->store(false);
    CloseConn(id, /*hard=*/false);
    return;
  }
  if ((events & EPOLLIN) != 0) ReadReady(conn);
  if (!conn.dead && (events & EPOLLOUT) != 0) FlushWrites(conn);
  if (!conn.dead && (events & EPOLLRDHUP) != 0 &&
      (conn.interest & EPOLLIN) == 0) {
    // Reads are paused (backpressure) so ReadReady will not observe the
    // hangup; without this the connection would linger forever.
    conn.alive->store(false);
    MarkDead(conn, /*hard=*/false);
  }
  FinishConn(id);
}

void WsqServer::ReadReady(Connection& conn) {
  char buf[64 * 1024];
  for (int round = 0; round < kMaxReadsPerEvent && !conn.dead; ++round) {
    const ssize_t n = ::recv(conn.socket.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn.last_activity_micros = WallClock().NowMicros();
      conn.ping_pending = false;
      std::vector<Frame> frames;
      const Status st =
          conn.parser.Consume(buf, static_cast<size_t>(n), &frames);
      for (Frame& frame : frames) {
        if (conn.dead) break;
        ProcessFrame(conn, std::move(frame));
      }
      if (!st.ok()) {
        // Garbage speaker: framing is unrecoverable. Frames completed
        // before the poison were served; the connection is done.
        MarkDead(conn, /*hard=*/false);
        return;
      }
      if (static_cast<size_t>(n) < sizeof(buf)) return;  // drained
      // Large responses queued meanwhile? Stop reading under
      // backpressure; level-triggered EPOLLIN resumes us later.
      if (conn.write_buf.size() - conn.write_cursor >=
          options_.write_buffer_limit) {
        return;
      }
      continue;
    }
    if (n == 0) {
      // Peer FIN. Any in-flight dispatch is abandoned (the alive flag
      // tells a stalled worker); its completion is dropped by id.
      conn.alive->store(false);
      MarkDead(conn, /*hard=*/false);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn.alive->store(false);
    MarkDead(conn, /*hard=*/false);
    return;
  }
}

void WsqServer::ProcessFrame(Connection& conn, Frame frame) {
  if (conn.close_after_flush) return;  // already saying goodbye
  // Liveness control frames bypass the dispatch queue entirely: a
  // heartbeat must answer even while a long dispatch is in flight, or
  // the probe would measure queue depth instead of liveness.
  if (frame.type == FrameType::kPing) {
    Frame pong;
    pong.type = FrameType::kPong;
    SendFrame(conn, std::move(pong));
    return;
  }
  if (frame.type == FrameType::kPong) return;  // ReadReady cleared the flag
  if (frame.type == FrameType::kGoaway) {
    // The peer is going away; finish the goodbye with a plain FIN.
    MarkDead(conn, /*hard=*/false);
    return;
  }
  if (conn.dispatch_inflight || !conn.pending.empty()) {
    if (conn.pending.size() >= kMaxPendingFrames) {
      MarkDead(conn, /*hard=*/false);
      return;
    }
    conn.pending.push_back(std::move(frame));
    return;
  }
  HandleFrameNow(conn, std::move(frame));
}

void WsqServer::HandleFrameNow(Connection& conn, Frame frame) {
  if (frame.type == FrameType::kHello) {
    const codec::CodecKind picked =
        codec::NegotiateCodec(frame.payload, options_.codec.kind);
    codec::CodecChoice choice;
    choice.kind = picked;
    choice.compress_blocks = picked == codec::CodecKind::kBinary &&
                             options_.codec.compress_blocks;
    conn.negotiated = codec::MakeBlockCodec(choice);
    Frame ack;
    ack.type = FrameType::kHelloAck;
    ack.payload = std::string(codec::CodecKindName(picked));
    if (codec::AdvertisesFeature(frame.payload, codec::kTraceFeatureToken)) {
      conn.trace_negotiated = true;
      trace_connections_.fetch_add(1);
      ack.payload += '+';
      ack.payload += codec::kTraceFeatureToken;
    }
    // crc/live flip on *before* the ack goes out, so the ack itself is
    // integrity-protected — safe, because only a peer that advertised
    // the token (and so parses flagged frames) ever sees it.
    if (codec::AdvertisesFeature(frame.payload, codec::kCrcFeatureToken)) {
      conn.crc_negotiated = true;
      ack.payload += '+';
      ack.payload += codec::kCrcFeatureToken;
    }
    if (codec::AdvertisesFeature(frame.payload, codec::kLiveFeatureToken)) {
      conn.live_negotiated = true;
      ack.payload += '+';
      ack.payload += codec::kLiveFeatureToken;
    }
    SendFrame(conn, std::move(ack));
    return;
  }
  if (frame.type == FrameType::kStats) {
    stats_requests_.fetch_add(1);
    Frame ack;
    ack.type = FrameType::kStatsAck;
    ack.payload = StatsJson();
    SendFrame(conn, std::move(ack));
    return;
  }
  if (frame.type != FrameType::kRequest) {
    MarkDead(conn, /*hard=*/false);
    return;
  }
  HandleRequestFrame(conn, std::move(frame));
}

void WsqServer::HandleRequestFrame(Connection& conn, Frame frame) {
  if (conn.rejecting) {
    // Admission said no at accept time; the first exchange carries the
    // verdict as a retryable fault and the connection closes. (Hello
    // was still answered normally above — a fault there would read as
    // a legacy-server signal and wrongly downgrade the client to SOAP.)
    SendBackpressureFault(conn, "connection rejected (admission control)");
    conn.close_after_flush = true;
    return;
  }
  if (draining_.load()) {
    // Draining: in-flight work finishes, new work does not start. The
    // retryable fault sends the client back to reconnect — which the
    // closed listener refuses until the restarted server takes over.
    SendBackpressureFault(conn, "server draining (restart in progress)");
    conn.close_after_flush = true;
    return;
  }
  if (admission_->ShouldShed(
          static_cast<size_t>(dispatch_inflight_.load()))) {
    // Overload: answer now from the loop, never touching the workers.
    // The connection survives — shedding is backpressure, not eviction.
    sheds_.fetch_add(1);
    SendBackpressureFault(conn, "request shed (worker queue over watermark)");
    return;
  }
  conn.dispatch_inflight = true;
  dispatch_inflight_.fetch_add(1);
  DispatchJob job;
  job.conn_id = conn.id;
  job.request = std::move(frame);
  job.codec = conn.negotiated;
  job.trace_negotiated = conn.trace_negotiated;
  job.alive = conn.alive;
  pool_->Submit([this, job = std::move(job)]() mutable {
    Completion done = RunExchange(job);
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(std::move(done));
    }
    wakeup_->Signal();
  });
}

void WsqServer::SendFrame(Connection& conn, Frame frame) {
  frame.has_crc = conn.crc_negotiated;
  if (!AppendFrameBytes(frame, &conn.write_buf).ok()) {
    MarkDead(conn, /*hard=*/false);
  }
}

void WsqServer::SendBackpressureFault(Connection& conn,
                                      const std::string& detail) {
  Frame response;
  response.type = FrameType::kResponse;
  // Transient: the client maps this to kUnavailable — retry, the
  // session cursor did not move — exactly like an injected chaos fault.
  response.flags = kFrameFlagSoapFault | kFrameFlagTransientFault;
  response.payload = BuildFaultEnvelope({"Server", detail});
  SendFrame(conn, std::move(response));
}

void WsqServer::FlushWrites(Connection& conn) {
  while (conn.write_cursor < conn.write_buf.size()) {
    const ssize_t n = ::send(conn.socket.fd(),
                             conn.write_buf.data() + conn.write_cursor,
                             conn.write_buf.size() - conn.write_cursor,
                             MSG_NOSIGNAL);
    if (n >= 0) {
      conn.write_cursor += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.alive->store(false);
    MarkDead(conn, errno == ECONNRESET);
    return;
  }
  if (conn.write_cursor == conn.write_buf.size()) {
    conn.write_buf.clear();
    conn.write_cursor = 0;
    if (conn.close_after_flush) MarkDead(conn, /*hard=*/false);
  } else if (conn.write_cursor > 64 * 1024) {
    // Compact so a long-lived slow reader does not pin every byte it
    // ever lagged behind on.
    conn.write_buf.erase(0, conn.write_cursor);
    conn.write_cursor = 0;
  }
}

void WsqServer::UpdateInterest(int64_t id, Connection& conn) {
  uint32_t want = EPOLLRDHUP;
  const size_t unsent = conn.write_buf.size() - conn.write_cursor;
  if (unsent > 0) want |= EPOLLOUT;
  const bool paused = conn.close_after_flush ||
                      unsent >= options_.write_buffer_limit ||
                      conn.pending.size() >= kMaxPendingFrames;
  if (!paused) want |= EPOLLIN;
  if (want != conn.interest) {
    if (epoll_->Modify(conn.socket.fd(), want, static_cast<uint64_t>(id))
            .ok()) {
      conn.interest = want;
    }
  }
}

void WsqServer::FinishConn(int64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (!conn.dead) FlushWrites(conn);
  if (conn.dead) {
    CloseConn(id, conn.dead_hard);
    return;
  }
  UpdateInterest(id, conn);
}

void WsqServer::DrainCompletions() {
  std::deque<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    done.swap(completions_);
  }
  for (Completion& completion : done) {
    dispatch_inflight_.fetch_sub(1);
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // connection died mid-dispatch
    Connection& conn = *it->second;
    conn.dispatch_inflight = false;
    switch (completion.outcome) {
      case ExchangeOutcome::kContinue:
        if (completion.has_response) {
          SendFrame(conn, std::move(completion.response));
        }
        break;
      case ExchangeOutcome::kClose:
        MarkDead(conn, /*hard=*/false);
        break;
      case ExchangeOutcome::kCloseHard:
        MarkDead(conn, /*hard=*/true);
        break;
    }
    // The dispatch slot freed up: pump frames that queued behind it.
    while (!conn.dead && !conn.dispatch_inflight && !conn.close_after_flush &&
           !conn.pending.empty()) {
      Frame next = std::move(conn.pending.front());
      conn.pending.pop_front();
      HandleFrameNow(conn, std::move(next));
    }
    FinishConn(completion.conn_id);
  }
}

void WsqServer::Housekeeping() {
  const int64_t now = WallClock().NowMicros();
  if (now - last_housekeeping_micros_ < kHousekeepingIntervalMicros) return;
  last_housekeeping_micros_ = now;

  const bool draining = draining_.load();
  if (draining && listener_.valid()) {
    // Stop accepting first: a drain must be a shrinking set.
    epoll_->Remove(listener_.fd());
    listener_.Close();
  }

  const int64_t idle_timeout_micros =
      static_cast<int64_t>(options_.idle_timeout_ms * 1000.0);
  if (draining || idle_timeout_micros > 0) {
    std::vector<int64_t> touched;
    for (auto& [id, conn_ptr] : conns_) {
      Connection& conn = *conn_ptr;
      if (conn.dead || conn.close_after_flush) continue;
      const bool busy = conn.dispatch_inflight || !conn.pending.empty() ||
                        conn.write_buf.size() - conn.write_cursor > 0;
      if (draining) {
        // In-flight work finishes; the moment a connection goes quiet
        // it gets its goodbye — explicit kGoaway for a "live" peer
        // (mapped to retryable kUnavailable), plain FIN otherwise
        // (same client-side observable).
        if (busy) continue;
        if (conn.live_negotiated) {
          Frame goaway;
          goaway.type = FrameType::kGoaway;
          SendFrame(conn, std::move(goaway));
          goaways_sent_.fetch_add(1);
          conn.close_after_flush = true;
        } else {
          conn.alive->store(false);
          MarkDead(conn, /*hard=*/false);
        }
        touched.push_back(id);
        continue;
      }
      if (busy) {
        // An in-flight dispatch (possibly a long simulated service
        // sleep) is proof of life; don't let the probe clock run.
        conn.last_activity_micros = now;
        continue;
      }
      const int64_t idle = now - conn.last_activity_micros;
      if (idle >= idle_timeout_micros) {
        // Half-open (or just dead quiet past the budget): evict. For a
        // "live" peer this fires only after an unanswered ping.
        idle_evicted_.fetch_add(1);
        conn.alive->store(false);
        MarkDead(conn, /*hard=*/false);
        touched.push_back(id);
      } else if (conn.live_negotiated && !conn.ping_pending &&
                 idle >= idle_timeout_micros / 2) {
        Frame ping;
        ping.type = FrameType::kPing;
        SendFrame(conn, std::move(ping));
        pings_sent_.fetch_add(1);
        conn.ping_pending = true;
        touched.push_back(id);
      }
    }
    for (int64_t id : touched) FinishConn(id);
  }

  const int64_t ttl_micros =
      static_cast<int64_t>(options_.session_ttl_ms * 1000.0);
  if (ttl_micros > 0) {
    int64_t evicted = 0;
    {
      // Same serialization rule as Dispatch — the container is
      // single-threaded by design.
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      evicted = container_->EvictIdleSessions(now, ttl_micros);
    }
    if (evicted > 0) evicted_sessions_.fetch_add(evicted);
    {
      std::lock_guard<std::mutex> lock(fault_mu_);
      for (auto it = session_faults_.begin(); it != session_faults_.end();) {
        if (now - it->second->last_touch_micros >= ttl_micros) {
          it = session_faults_.erase(it);
        } else {
          ++it;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      for (auto it = session_stats_.begin(); it != session_stats_.end();) {
        if (now - it->second.last_touch_micros >= ttl_micros) {
          it = session_stats_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
}

std::shared_ptr<WsqServer::SessionFaultState> WsqServer::FaultStateForSession(
    int64_t session_id) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  auto it = session_faults_.find(session_id);
  if (it == session_faults_.end()) {
    auto state = std::make_shared<SessionFaultState>();
    state->injector = std::make_unique<FaultInjector>(
        options_.fault_plan,
        options_.fault_seed + static_cast<uint64_t>(session_id));
    state->start_micros = WallClock().NowMicros();
    it = session_faults_.emplace(session_id, std::move(state)).first;
  }
  it->second->last_touch_micros = WallClock().NowMicros();
  return it->second;
}

int64_t WsqServer::BlockRequestSessionId(const std::string& payload) {
  if (codec::SniffPayloadCodec(payload) == codec::CodecKind::kBinary) {
    static const codec::BinaryCodec sniffer;
    Result<RequestBlockRequest> block = sniffer.DecodeRequestBlock(payload);
    return block.ok() ? block.value().session_id : -1;
  }
  Result<XmlNode> parsed = ParseEnvelope(payload);
  if (!parsed.ok()) return -1;
  Result<RequestKind> kind = ClassifyRequest(parsed.value());
  if (!kind.ok() || kind.value() != RequestKind::kRequestBlock) return -1;
  Result<RequestBlockRequest> block = DecodeRequestBlock(parsed.value());
  return block.ok() ? block.value().session_id : -1;
}

void WsqServer::RecordExchangeStats(int64_t session_id, size_t request_bytes,
                                    size_t response_bytes, bool replayed,
                                    bool fault, double latency_ms) {
  bytes_in_.fetch_add(static_cast<int64_t>(request_bytes));
  bytes_out_.fetch_add(static_cast<int64_t>(response_bytes));
  if (replayed) replay_hits_.fetch_add(1);
  if (session_id < 0) return;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    SessionStats& stats = session_stats_[session_id];
    stats.last_touch_micros = WallClock().NowMicros();
    ++stats.blocks;
    stats.bytes_in += static_cast<int64_t>(request_bytes);
    stats.bytes_out += static_cast<int64_t>(response_bytes);
    if (replayed) ++stats.replay_hits;
    if (fault) ++stats.faults;
    if (stats.latency_ms == nullptr) {
      stats.latency_ms =
          std::make_unique<Histogram>(Histogram::LatencyBucketsMs());
    }
    stats.latency_ms->Record(latency_ms);
  }
  // Labeled mirrors: the same rollups as per-session counter families,
  // so the registry's SumCounters aggregation and every exporter see
  // them without knowing about the map above.
  const std::string id = std::to_string(session_id);
  stats_registry_
      .GetCounter(LabeledName("wsq.server.session.blocks", "session", id))
      ->Increment();
  stats_registry_
      .GetCounter(LabeledName("wsq.server.session.bytes_out", "session", id))
      ->Increment(static_cast<int64_t>(response_bytes));
  if (replayed) {
    stats_registry_
        .GetCounter(
            LabeledName("wsq.server.session.replay_hits", "session", id))
        ->Increment();
  }
  stats_registry_
      .GetHistogram(LabeledName("wsq.server.session.block_ms", "session", id),
                    Histogram::LatencyBucketsMs())
      ->Record(latency_ms);
}

WsqServer::Completion WsqServer::RunExchange(const DispatchJob& job) {
  Completion done;
  done.conn_id = job.conn_id;
  const Frame& request = job.request;

  // Session attribution: block exchanges carry their session id in the
  // payload (binary or SOAP); session management and garbage do not. A
  // parse failure is fine; the container will answer with a SOAP fault.
  const int64_t session_id = BlockRequestSessionId(request.payload);

  // Chaos targeting: only data-block exchanges are scripted (session
  // management is never faulted — plans address data transfer). A
  // shared_ptr: the TTL sweep may forget the map entry mid-exchange,
  // and this reference keeps the state alive until we're done.
  std::shared_ptr<SessionFaultState> state;
  if (!options_.fault_plan.empty() && session_id >= 0) {
    state = FaultStateForSession(session_id);
  }

  const WallClock wall;
  const int64_t t0 = wall.NowMicros();

  // Server-side spans: collected only when the connection negotiated
  // tracing AND this request carries a context to parent them under.
  // spans[0] is the root "server.request" span; its duration is patched
  // when the response is stamped.
  const bool tracing = job.trace_negotiated && request.has_trace;
  std::vector<RemoteSpan> spans;
  uint64_t root_span_id = 0;
  const auto add_span = [&](std::string_view name, int64_t ts_micros,
                            int64_t dur_micros, uint64_t parent) {
    const uint64_t id = next_span_id_.fetch_add(1);
    RemoteSpan span;
    span.span_id = id;
    span.parent_span_id = parent;
    span.ts_micros = ts_micros;
    span.dur_micros = dur_micros;
    span.name = std::string(name);
    spans.push_back(std::move(span));
    return id;
  };
  if (tracing) {
    root_span_id = add_span("server.request", t0, 0, request.trace.span_id);
  }
  const auto stamp_trace = [&](Frame& response, int64_t t_end) {
    if (!tracing) return;
    spans[0].dur_micros = t_end - t0;
    response.has_trace = true;
    response.trace.trace_id = request.trace.trace_id;
    response.trace.span_id = root_span_id;
    // The server clock reading paired with this response's
    // service_micros — the client's clock-offset sample.
    response.trace.clock_micros = static_cast<uint64_t>(t_end);
    response.span_block = EncodeRemoteSpans(spans);
  };

  double injected_sleep_ms = 0.0;
  if (state != nullptr) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    const double now_ms =
        static_cast<double>(t0 - state->start_micros) / 1000.0;
    const AttemptFault fault =
        state->injector->NextAttempt(state->blocks_served, now_ms);
    if (fault.faulted) {
      faults_injected_.fetch_add(1);
      if (fault.kind == FaultKind::kSoapFaultBurst) {
        // The service "answers" with a transient fault. The transient
        // flag tells the client this maps to kUnavailable (retry, the
        // cursor did not move), not to a terminal kRemoteFault.
        Frame response;
        response.type = FrameType::kResponse;
        response.flags = kFrameFlagSoapFault | kFrameFlagTransientFault;
        const int64_t t_fault = wall.NowMicros();
        response.service_micros = static_cast<uint64_t>(t_fault - t0);
        response.payload = BuildFaultEnvelope(
            {"Server", "injected transient fault (server-side chaos)"});
        if (tracing) {
          add_span("server.fault_injected", t_fault, 0, root_span_id);
        }
        stamp_trace(response, t_fault);
        RecordExchangeStats(session_id, request.payload.size(),
                            response.payload.size(), /*replayed=*/false,
                            /*fault=*/true,
                            static_cast<double>(t_fault - t0) / 1000.0);
        done.has_response = true;
        done.response = std::move(response);
        done.outcome = ExchangeOutcome::kContinue;
        return done;
      }
      // kUnavailability drops the connection quietly (FIN); the client
      // sees "connection closed" and retries. kConnectionReset slams it
      // (RST) — the same observable as the sim's reset fault. No
      // response frame travels, so these spans are simply lost —
      // telemetry shares the fate of the exchange it describes.
      done.outcome = fault.kind == FaultKind::kConnectionReset
                         ? ExchangeOutcome::kCloseHard
                         : ExchangeOutcome::kClose;
      return done;
    }
    const SuccessPerturbation perturb =
        state->injector->OnSuccess(state->blocks_served, now_ms);
    if (perturb.active()) {
      injected_sleep_ms = perturb.stall_ms + perturb.latency_add_ms;
    }
  }

  // Injected stalls happen BEFORE dispatch, and we re-check the peer
  // afterwards: a client whose deadline fired during the stall has
  // abandoned the exchange (the loop flipped `alive` on its hangup),
  // and dispatching anyway would advance the session cursor for a block
  // the client never received (it would then silently skip that block
  // on retry).
  if (injected_sleep_ms > 0.0) {
    const int64_t stall_begin = wall.NowMicros();
    SleepMs(injected_sleep_ms);
    if (tracing) {
      add_span("server.stall", stall_begin, wall.NowMicros() - stall_begin,
               root_span_id);
    }
  }
  if (!job.alive->load()) {
    done.outcome = ExchangeOutcome::kClose;
    return done;
  }

  DispatchResult result;
  const int64_t dispatch_begin = wall.NowMicros();
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    result = container_->Dispatch(request.payload, job.codec.get());
  }
  if (tracing) {
    add_span("server.dispatch", dispatch_begin,
             wall.NowMicros() - dispatch_begin, root_span_id);
    if (result.replayed) {
      add_span("server.replay_hit", dispatch_begin, 0, root_span_id);
    }
  }
  if (options_.simulate_service_time) {
    const int64_t sleep_begin = wall.NowMicros();
    SleepMs(result.service_time_ms);
    if (tracing && result.service_time_ms > 0.0) {
      add_span("server.service_sleep", sleep_begin,
               wall.NowMicros() - sleep_begin, root_span_id);
    }
  }

  if (state != nullptr && !result.is_fault) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    ++state->blocks_served;
  }

  Frame response;
  response.type = FrameType::kResponse;
  response.flags = result.is_fault ? kFrameFlagSoapFault : 0;
  // Measured residence (request fully read -> reply), which includes
  // both the simulated service sleep and any injected stall.
  const int64_t t_end = wall.NowMicros();
  response.service_micros = static_cast<uint64_t>(t_end - t0);
  response.payload = std::move(result.response);
  stamp_trace(response, t_end);
  exchanges_served_.fetch_add(1);
  if (codec::SniffPayloadCodec(response.payload) ==
      codec::CodecKind::kBinary) {
    binary_responses_.fetch_add(1);
  } else {
    soap_responses_.fetch_add(1);
  }
  RecordExchangeStats(session_id, request.payload.size(),
                      response.payload.size(), result.replayed,
                      result.is_fault,
                      static_cast<double>(t_end - t0) / 1000.0);
  done.has_response = true;
  done.response = std::move(response);
  done.outcome = ExchangeOutcome::kContinue;
  return done;
}

std::string WsqServer::StatsJson() {
  int64_t active_sessions = -1;
  {
    // DataService is single-threaded by design; its session map is only
    // safe to read under the same mutex that serializes Dispatch.
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    active_sessions = container_->active_sessions();
  }
  std::string out = "{\"schema_version\":1";
  const auto field = [&out](std::string_view name, int64_t value) {
    out += ",\"";
    out += name;
    out += "\":";
    out += std::to_string(value);
  };
  field("active_sessions", active_sessions);
  field("connections_accepted", connections_accepted_.load());
  field("exchanges_served", exchanges_served_.load());
  field("faults_injected", faults_injected_.load());
  field("replay_hits", replay_hits_.load());
  field("stats_requests", stats_requests_.load());
  field("trace_connections", trace_connections_.load());
  field("bytes_in", bytes_in_.load());
  field("bytes_out", bytes_out_.load());
  field("worker_queue_depth",
        pool_ ? static_cast<int64_t>(pool_->queue_depth()) : 0);
  // Event-loop gauges: what the frontend looks like *right now* —
  // connection census, last ready-batch size, the dispatch load the
  // shed watermark compares against, and the admission verdicts.
  out += ",\"event_loop\":{";
  out += "\"live_connections\":" + std::to_string(live_connections_.load());
  out += ",\"ready_queue_depth\":" + std::to_string(ready_queue_depth_.load());
  out +=
      ",\"dispatch_inflight\":" + std::to_string(dispatch_inflight_.load());
  out += ",\"sheds\":" + std::to_string(sheds_.load());
  out += ",\"rejected_capacity\":" +
         std::to_string(connections_rejected_.load());
  out += ",\"rejected_rate\":" + std::to_string(rate_limited_.load());
  out += ",\"draining\":";
  out += draining_.load() ? "true" : "false";
  out += ",\"idle_evicted\":" + std::to_string(idle_evicted_.load());
  out += ",\"pings_sent\":" + std::to_string(pings_sent_.load());
  out += ",\"goaways_sent\":" + std::to_string(goaways_sent_.load());
  out += ",\"evicted_sessions\":" + std::to_string(evicted_sessions_.load());
  out += '}';
  out += ",\"codec_mix\":{\"soap\":" + std::to_string(soap_responses_.load()) +
         ",\"binary\":" + std::to_string(binary_responses_.load()) + '}';
  out += ",\"sessions\":{";
  std::vector<double> session_p99s;
  std::vector<double> session_blocks;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    bool first = true;
    for (const auto& [id, stats] : session_stats_) {
      if (!first) out += ',';
      first = false;
      out += '"' + std::to_string(id) + "\":{";
      out += "\"blocks\":" + std::to_string(stats.blocks);
      out += ",\"bytes_in\":" + std::to_string(stats.bytes_in);
      out += ",\"bytes_out\":" + std::to_string(stats.bytes_out);
      out += ",\"replay_hits\":" + std::to_string(stats.replay_hits);
      out += ",\"faults\":" + std::to_string(stats.faults);
      if (stats.latency_ms != nullptr && stats.latency_ms->count() > 0) {
        out += ",\"latency_ms\":{";
        out += "\"count\":" + std::to_string(stats.latency_ms->count());
        out += ",\"mean\":" + JsonNumber(stats.latency_ms->mean());
        out += ",\"p50\":" + JsonNumber(stats.latency_ms->p50());
        out += ",\"p99\":" + JsonNumber(stats.latency_ms->p99());
        out += '}';
        session_p99s.push_back(stats.latency_ms->p99());
        session_blocks.push_back(static_cast<double>(stats.blocks));
      }
      out += '}';
    }
  }
  out += '}';
  // Fairness across the sessions with recorded latency: the tail-latency
  // spread an operator compares against an SLO, and Jain's index over
  // per-session served blocks (1.0 = every session got an equal share of
  // the server). A live fleet reads this instead of merging client-side.
  out += ",\"fairness\":{";
  out += "\"sessions\":" + std::to_string(session_p99s.size());
  if (!session_p99s.empty()) {
    const double p99_max =
        *std::max_element(session_p99s.begin(), session_p99s.end());
    const double p99_min =
        *std::min_element(session_p99s.begin(), session_p99s.end());
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double b : session_blocks) {
      sum += b;
      sum_sq += b * b;
    }
    const double jain =
        sum_sq > 0.0 ? (sum * sum) / (static_cast<double>(session_blocks.size()) *
                                      sum_sq)
                     : 1.0;
    out += ",\"p99_max_ms\":" + JsonNumber(p99_max);
    out += ",\"p99_min_ms\":" + JsonNumber(p99_min);
    out += ",\"p99_spread_ms\":" + JsonNumber(p99_max - p99_min);
    out += ",\"jain_index\":" + JsonNumber(jain);
  }
  out += '}';
  out += ",\"metrics\":" + stats_registry_.ToJson();
  out += '}';
  return out;
}

Result<std::string> FetchServerStats(const std::string& host, int port,
                                     double timeout_ms) {
  Result<Socket> conn = TcpConnect(host, port, timeout_ms);
  if (!conn.ok()) return conn.status();
  Socket socket = std::move(conn).value();
  socket.set_io_timeout_ms(timeout_ms);
  Frame request;
  request.type = FrameType::kStats;
  WSQ_RETURN_IF_ERROR(WriteFrame(socket, request));
  Result<Frame> response = ReadFrame(socket);
  if (!response.ok()) return response.status();
  if (response.value().type != FrameType::kStatsAck) {
    return Status::InvalidArgument(
        "peer answered a stats request with frame type " +
        std::to_string(static_cast<int>(response.value().type)));
  }
  return std::move(response.value().payload);
}

}  // namespace wsq::net
