#include "wsq/net/server.h"

#include <chrono>
#include <utility>

#include "wsq/codec/binary_codec.h"
#include "wsq/common/clock.h"
#include "wsq/net/frame.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq::net {

namespace {

void SleepMs(double ms) {
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

}  // namespace

WsqServer::WsqServer(ServiceContainer* container, WsqServerOptions options)
    : container_(container), options_(std::move(options)) {}

WsqServer::~WsqServer() { Stop(); }

Status WsqServer::Start() {
  if (running_.load()) return Status::Ok();
  Result<Socket> listener =
      TcpListen(pinned_port_ != 0 ? pinned_port_ : options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Result<int> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  pinned_port_ = port.value();

  pool_ = std::make_unique<exec::ThreadPool>(options_.worker_threads);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void WsqServer::Stop() {
  if (!running_.exchange(false)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, conn] : live_connections_) {
      conn->Shutdown();  // wakes any handler blocked in ReadFrame
    }
  }
  // Drains every in-flight and queued connection handler, then joins.
  // Handlers deregister themselves on the way out.
  pool_.reset();
}

void WsqServer::AcceptLoop() {
  while (running_.load()) {
    // Short accept deadline so Stop() is noticed promptly without
    // needing a cross-thread wakeup on the listener.
    Result<Socket> conn = Accept(listener_, 100.0);
    if (!conn.ok()) continue;
    connections_accepted_.fetch_add(1);
    auto shared = std::make_shared<Socket>(std::move(conn).value());
    int64_t id;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      id = next_connection_id_++;
      live_connections_[id] = shared;
    }
    pool_->Submit([this, shared, id] { ServeConnection(shared, id); });
  }
}

void WsqServer::ServeConnection(std::shared_ptr<Socket> conn, int64_t id) {
  bool hard = false;
  // The connection's negotiated response codec. Null until (unless) the
  // client sends a Hello — un-negotiated peers are answered per-request
  // by payload sniffing, which means SOAP for every pre-codec client.
  std::unique_ptr<codec::BlockCodec> negotiated;
  for (;;) {
    Result<Frame> request = ReadFrame(*conn);
    // Any read failure ends the connection: clean close between frames,
    // a shutdown from Stop(), or a peer that is not speaking the
    // protocol (garbage header — framing is unrecoverable).
    if (!request.ok()) break;
    if (request.value().type == FrameType::kHello) {
      const codec::CodecKind picked = codec::NegotiateCodec(
          request.value().payload, options_.codec.kind);
      codec::CodecChoice choice;
      choice.kind = picked;
      choice.compress_blocks = picked == codec::CodecKind::kBinary &&
                               options_.codec.compress_blocks;
      negotiated = codec::MakeBlockCodec(choice);
      Frame ack;
      ack.type = FrameType::kHelloAck;
      ack.payload = std::string(codec::CodecKindName(picked));
      if (!WriteFrame(*conn, ack).ok()) break;
      continue;
    }
    if (request.value().type != FrameType::kRequest) break;
    const ExchangeOutcome outcome =
        ServeExchange(*conn, request.value(), negotiated.get());
    if (outcome == ExchangeOutcome::kContinue) continue;
    hard = outcome == ExchangeOutcome::kCloseHard;
    break;
  }
  // Deregister before closing: Stop() only touches registered sockets,
  // so the cross-thread Shutdown can never race our Close.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    live_connections_.erase(id);
  }
  if (hard) {
    conn->CloseHard();
  } else {
    conn->Close();
  }
}

WsqServer::SessionFaultState* WsqServer::FaultStateForSession(
    int64_t session_id) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  auto it = session_faults_.find(session_id);
  if (it == session_faults_.end()) {
    SessionFaultState state;
    state.injector = std::make_unique<FaultInjector>(
        options_.fault_plan,
        options_.fault_seed + static_cast<uint64_t>(session_id));
    state.start_micros = WallClock().NowMicros();
    it = session_faults_.emplace(session_id, std::move(state)).first;
  }
  return &it->second;  // std::map nodes are pointer-stable
}

WsqServer::ExchangeOutcome WsqServer::ServeExchange(
    Socket& conn, const Frame& request,
    const codec::BlockCodec* response_codec) {
  // Chaos targeting: only data-block exchanges are scripted (session
  // management is never faulted — plans address data transfer). A parse
  // failure here is fine; the container will answer with a SOAP fault.
  SessionFaultState* state = nullptr;
  if (!options_.fault_plan.empty()) {
    if (codec::SniffPayloadCodec(request.payload) ==
        codec::CodecKind::kBinary) {
      static const codec::BinaryCodec sniffer;
      Result<RequestBlockRequest> block =
          sniffer.DecodeRequestBlock(request.payload);
      if (block.ok()) {
        state = FaultStateForSession(block.value().session_id);
      }
    } else {
      Result<XmlNode> payload = ParseEnvelope(request.payload);
      if (payload.ok()) {
        Result<RequestKind> kind = ClassifyRequest(payload.value());
        if (kind.ok() && kind.value() == RequestKind::kRequestBlock) {
          Result<RequestBlockRequest> block =
              DecodeRequestBlock(payload.value());
          if (block.ok()) {
            state = FaultStateForSession(block.value().session_id);
          }
        }
      }
    }
  }

  const WallClock wall;
  const int64_t t0 = wall.NowMicros();

  double injected_sleep_ms = 0.0;
  if (state != nullptr) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    const double now_ms =
        static_cast<double>(t0 - state->start_micros) / 1000.0;
    const AttemptFault fault =
        state->injector->NextAttempt(state->blocks_served, now_ms);
    if (fault.faulted) {
      faults_injected_.fetch_add(1);
      if (fault.kind == FaultKind::kSoapFaultBurst) {
        // The service "answers" with a transient fault. The transient
        // flag tells the client this maps to kUnavailable (retry, the
        // cursor did not move), not to a terminal kRemoteFault.
        Frame response;
        response.type = FrameType::kResponse;
        response.flags = kFrameFlagSoapFault | kFrameFlagTransientFault;
        response.service_micros =
            static_cast<uint64_t>(wall.NowMicros() - t0);
        response.payload = BuildFaultEnvelope(
            {"Server", "injected transient fault (server-side chaos)"});
        return WriteFrame(conn, response).ok() ? ExchangeOutcome::kContinue
                                               : ExchangeOutcome::kClose;
      }
      // kUnavailability drops the connection quietly (FIN); the client
      // sees "connection closed" and retries. kConnectionReset slams it
      // (RST) — the same observable as the sim's reset fault.
      return fault.kind == FaultKind::kConnectionReset
                 ? ExchangeOutcome::kCloseHard
                 : ExchangeOutcome::kClose;
    }
    const SuccessPerturbation perturb =
        state->injector->OnSuccess(state->blocks_served, now_ms);
    if (perturb.active()) {
      injected_sleep_ms = perturb.stall_ms + perturb.latency_add_ms;
    }
  }

  // Injected stalls happen BEFORE dispatch, and we re-check the peer
  // afterwards: a client whose deadline fired during the stall has
  // abandoned the exchange, and dispatching anyway would advance the
  // session cursor for a block the client never received (it would then
  // silently skip that block on retry).
  SleepMs(injected_sleep_ms);
  if (conn.PeerClosed()) return ExchangeOutcome::kClose;

  DispatchResult result;
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    result = container_->Dispatch(request.payload, response_codec);
  }
  if (options_.simulate_service_time) {
    SleepMs(result.service_time_ms);
  }

  if (state != nullptr && !result.is_fault) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    ++state->blocks_served;
  }

  Frame response;
  response.type = FrameType::kResponse;
  response.flags = result.is_fault ? kFrameFlagSoapFault : 0;
  // Measured residence (request fully read -> reply), which includes
  // both the simulated service sleep and any injected stall.
  response.service_micros = static_cast<uint64_t>(wall.NowMicros() - t0);
  response.payload = std::move(result.response);
  exchanges_served_.fetch_add(1);
  return WriteFrame(conn, response).ok() ? ExchangeOutcome::kContinue
                                         : ExchangeOutcome::kClose;
}

}  // namespace wsq::net
