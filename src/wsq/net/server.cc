#include "wsq/net/server.h"

#include <chrono>
#include <utility>

#include "wsq/codec/binary_codec.h"
#include "wsq/common/clock.h"
#include "wsq/net/frame.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"

namespace wsq::net {

namespace {

void SleepMs(double ms) {
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

}  // namespace

WsqServer::WsqServer(ServiceContainer* container, WsqServerOptions options)
    : container_(container), options_(std::move(options)) {}

WsqServer::~WsqServer() { Stop(); }

Status WsqServer::Start() {
  if (running_.load()) return Status::Ok();
  Result<Socket> listener =
      TcpListen(pinned_port_ != 0 ? pinned_port_ : options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Result<int> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  pinned_port_ = port.value();

  pool_ = std::make_unique<exec::ThreadPool>(options_.worker_threads);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void WsqServer::Stop() {
  if (!running_.exchange(false)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, conn] : live_connections_) {
      conn->Shutdown();  // wakes any handler blocked in ReadFrame
    }
  }
  // Drains every in-flight and queued connection handler, then joins.
  // Handlers deregister themselves on the way out.
  pool_.reset();
}

void WsqServer::AcceptLoop() {
  while (running_.load()) {
    // Short accept deadline so Stop() is noticed promptly without
    // needing a cross-thread wakeup on the listener.
    Result<Socket> conn = Accept(listener_, 100.0);
    if (!conn.ok()) continue;
    connections_accepted_.fetch_add(1);
    auto shared = std::make_shared<Socket>(std::move(conn).value());
    int64_t id;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      id = next_connection_id_++;
      live_connections_[id] = shared;
    }
    pool_->Submit([this, shared, id] { ServeConnection(shared, id); });
  }
}

void WsqServer::ServeConnection(std::shared_ptr<Socket> conn, int64_t id) {
  bool hard = false;
  // The connection's negotiated response codec. Null until (unless) the
  // client sends a Hello — un-negotiated peers are answered per-request
  // by payload sniffing, which means SOAP for every pre-codec client.
  std::unique_ptr<codec::BlockCodec> negotiated;
  // Whether this connection negotiated the trace feature. Only a Hello
  // advertising "trace" flips it, so legacy connections never see a
  // trace-context byte on the wire.
  bool trace_negotiated = false;
  for (;;) {
    Result<Frame> request = ReadFrame(*conn);
    // Any read failure ends the connection: clean close between frames,
    // a shutdown from Stop(), or a peer that is not speaking the
    // protocol (garbage header — framing is unrecoverable).
    if (!request.ok()) break;
    if (request.value().type == FrameType::kHello) {
      const codec::CodecKind picked = codec::NegotiateCodec(
          request.value().payload, options_.codec.kind);
      codec::CodecChoice choice;
      choice.kind = picked;
      choice.compress_blocks = picked == codec::CodecKind::kBinary &&
                               options_.codec.compress_blocks;
      negotiated = codec::MakeBlockCodec(choice);
      Frame ack;
      ack.type = FrameType::kHelloAck;
      ack.payload = std::string(codec::CodecKindName(picked));
      if (codec::AdvertisesFeature(request.value().payload,
                                   codec::kTraceFeatureToken)) {
        trace_negotiated = true;
        trace_connections_.fetch_add(1);
        ack.payload += '+';
        ack.payload += codec::kTraceFeatureToken;
      }
      if (!WriteFrame(*conn, ack).ok()) break;
      continue;
    }
    if (request.value().type == FrameType::kStats) {
      stats_requests_.fetch_add(1);
      Frame ack;
      ack.type = FrameType::kStatsAck;
      ack.payload = StatsJson();
      if (!WriteFrame(*conn, ack).ok()) break;
      continue;
    }
    if (request.value().type != FrameType::kRequest) break;
    const ExchangeOutcome outcome = ServeExchange(
        *conn, request.value(), negotiated.get(), trace_negotiated);
    if (outcome == ExchangeOutcome::kContinue) continue;
    hard = outcome == ExchangeOutcome::kCloseHard;
    break;
  }
  // Deregister before closing: Stop() only touches registered sockets,
  // so the cross-thread Shutdown can never race our Close.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    live_connections_.erase(id);
  }
  if (hard) {
    conn->CloseHard();
  } else {
    conn->Close();
  }
}

WsqServer::SessionFaultState* WsqServer::FaultStateForSession(
    int64_t session_id) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  auto it = session_faults_.find(session_id);
  if (it == session_faults_.end()) {
    SessionFaultState state;
    state.injector = std::make_unique<FaultInjector>(
        options_.fault_plan,
        options_.fault_seed + static_cast<uint64_t>(session_id));
    state.start_micros = WallClock().NowMicros();
    it = session_faults_.emplace(session_id, std::move(state)).first;
  }
  return &it->second;  // std::map nodes are pointer-stable
}

int64_t WsqServer::BlockRequestSessionId(const std::string& payload) {
  if (codec::SniffPayloadCodec(payload) == codec::CodecKind::kBinary) {
    static const codec::BinaryCodec sniffer;
    Result<RequestBlockRequest> block = sniffer.DecodeRequestBlock(payload);
    return block.ok() ? block.value().session_id : -1;
  }
  Result<XmlNode> parsed = ParseEnvelope(payload);
  if (!parsed.ok()) return -1;
  Result<RequestKind> kind = ClassifyRequest(parsed.value());
  if (!kind.ok() || kind.value() != RequestKind::kRequestBlock) return -1;
  Result<RequestBlockRequest> block = DecodeRequestBlock(parsed.value());
  return block.ok() ? block.value().session_id : -1;
}

void WsqServer::RecordExchangeStats(int64_t session_id, size_t request_bytes,
                                    size_t response_bytes, bool replayed,
                                    bool fault) {
  bytes_in_.fetch_add(static_cast<int64_t>(request_bytes));
  bytes_out_.fetch_add(static_cast<int64_t>(response_bytes));
  if (replayed) replay_hits_.fetch_add(1);
  if (session_id < 0) return;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    SessionStats& stats = session_stats_[session_id];
    ++stats.blocks;
    stats.bytes_in += static_cast<int64_t>(request_bytes);
    stats.bytes_out += static_cast<int64_t>(response_bytes);
    if (replayed) ++stats.replay_hits;
    if (fault) ++stats.faults;
  }
  // Labeled mirrors: the same rollups as per-session counter families,
  // so the registry's SumCounters aggregation and every exporter see
  // them without knowing about the map above.
  const std::string id = std::to_string(session_id);
  stats_registry_
      .GetCounter(LabeledName("wsq.server.session.blocks", "session", id))
      ->Increment();
  stats_registry_
      .GetCounter(LabeledName("wsq.server.session.bytes_out", "session", id))
      ->Increment(static_cast<int64_t>(response_bytes));
  if (replayed) {
    stats_registry_
        .GetCounter(
            LabeledName("wsq.server.session.replay_hits", "session", id))
        ->Increment();
  }
}

WsqServer::ExchangeOutcome WsqServer::ServeExchange(
    Socket& conn, const Frame& request,
    const codec::BlockCodec* response_codec, bool trace_negotiated) {
  // Session attribution: block exchanges carry their session id in the
  // payload (binary or SOAP); session management and garbage do not. A
  // parse failure is fine; the container will answer with a SOAP fault.
  const int64_t session_id = BlockRequestSessionId(request.payload);

  // Chaos targeting: only data-block exchanges are scripted (session
  // management is never faulted — plans address data transfer).
  SessionFaultState* state = nullptr;
  if (!options_.fault_plan.empty() && session_id >= 0) {
    state = FaultStateForSession(session_id);
  }

  const WallClock wall;
  const int64_t t0 = wall.NowMicros();

  // Server-side spans: collected only when the connection negotiated
  // tracing AND this request carries a context to parent them under.
  // spans[0] is the root "server.request" span; its duration is patched
  // when the response is stamped.
  const bool tracing = trace_negotiated && request.has_trace;
  std::vector<RemoteSpan> spans;
  uint64_t root_span_id = 0;
  const auto add_span = [&](std::string_view name, int64_t ts_micros,
                            int64_t dur_micros, uint64_t parent) {
    const uint64_t id = next_span_id_.fetch_add(1);
    RemoteSpan span;
    span.span_id = id;
    span.parent_span_id = parent;
    span.ts_micros = ts_micros;
    span.dur_micros = dur_micros;
    span.name = std::string(name);
    spans.push_back(std::move(span));
    return id;
  };
  if (tracing) {
    root_span_id = add_span("server.request", t0, 0, request.trace.span_id);
  }
  const auto stamp_trace = [&](Frame& response, int64_t t_end) {
    if (!tracing) return;
    spans[0].dur_micros = t_end - t0;
    response.has_trace = true;
    response.trace.trace_id = request.trace.trace_id;
    response.trace.span_id = root_span_id;
    // The server clock reading paired with this response's
    // service_micros — the client's clock-offset sample.
    response.trace.clock_micros = static_cast<uint64_t>(t_end);
    response.span_block = EncodeRemoteSpans(spans);
  };

  double injected_sleep_ms = 0.0;
  if (state != nullptr) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    const double now_ms =
        static_cast<double>(t0 - state->start_micros) / 1000.0;
    const AttemptFault fault =
        state->injector->NextAttempt(state->blocks_served, now_ms);
    if (fault.faulted) {
      faults_injected_.fetch_add(1);
      if (fault.kind == FaultKind::kSoapFaultBurst) {
        // The service "answers" with a transient fault. The transient
        // flag tells the client this maps to kUnavailable (retry, the
        // cursor did not move), not to a terminal kRemoteFault.
        Frame response;
        response.type = FrameType::kResponse;
        response.flags = kFrameFlagSoapFault | kFrameFlagTransientFault;
        const int64_t t_fault = wall.NowMicros();
        response.service_micros = static_cast<uint64_t>(t_fault - t0);
        response.payload = BuildFaultEnvelope(
            {"Server", "injected transient fault (server-side chaos)"});
        if (tracing) {
          add_span("server.fault_injected", t_fault, 0, root_span_id);
        }
        stamp_trace(response, t_fault);
        RecordExchangeStats(session_id, request.payload.size(),
                            response.payload.size(), /*replayed=*/false,
                            /*fault=*/true);
        return WriteFrame(conn, response).ok() ? ExchangeOutcome::kContinue
                                               : ExchangeOutcome::kClose;
      }
      // kUnavailability drops the connection quietly (FIN); the client
      // sees "connection closed" and retries. kConnectionReset slams it
      // (RST) — the same observable as the sim's reset fault. No
      // response frame travels, so these spans are simply lost —
      // telemetry shares the fate of the exchange it describes.
      return fault.kind == FaultKind::kConnectionReset
                 ? ExchangeOutcome::kCloseHard
                 : ExchangeOutcome::kClose;
    }
    const SuccessPerturbation perturb =
        state->injector->OnSuccess(state->blocks_served, now_ms);
    if (perturb.active()) {
      injected_sleep_ms = perturb.stall_ms + perturb.latency_add_ms;
    }
  }

  // Injected stalls happen BEFORE dispatch, and we re-check the peer
  // afterwards: a client whose deadline fired during the stall has
  // abandoned the exchange, and dispatching anyway would advance the
  // session cursor for a block the client never received (it would then
  // silently skip that block on retry).
  if (injected_sleep_ms > 0.0) {
    const int64_t stall_begin = wall.NowMicros();
    SleepMs(injected_sleep_ms);
    if (tracing) {
      add_span("server.stall", stall_begin, wall.NowMicros() - stall_begin,
               root_span_id);
    }
  }
  if (conn.PeerClosed()) return ExchangeOutcome::kClose;

  DispatchResult result;
  const int64_t dispatch_begin = wall.NowMicros();
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    result = container_->Dispatch(request.payload, response_codec);
  }
  if (tracing) {
    add_span("server.dispatch", dispatch_begin,
             wall.NowMicros() - dispatch_begin, root_span_id);
    if (result.replayed) {
      add_span("server.replay_hit", dispatch_begin, 0, root_span_id);
    }
  }
  if (options_.simulate_service_time) {
    const int64_t sleep_begin = wall.NowMicros();
    SleepMs(result.service_time_ms);
    if (tracing && result.service_time_ms > 0.0) {
      add_span("server.service_sleep", sleep_begin,
               wall.NowMicros() - sleep_begin, root_span_id);
    }
  }

  if (state != nullptr && !result.is_fault) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    ++state->blocks_served;
  }

  Frame response;
  response.type = FrameType::kResponse;
  response.flags = result.is_fault ? kFrameFlagSoapFault : 0;
  // Measured residence (request fully read -> reply), which includes
  // both the simulated service sleep and any injected stall.
  const int64_t t_end = wall.NowMicros();
  response.service_micros = static_cast<uint64_t>(t_end - t0);
  response.payload = std::move(result.response);
  stamp_trace(response, t_end);
  exchanges_served_.fetch_add(1);
  if (codec::SniffPayloadCodec(response.payload) == codec::CodecKind::kBinary) {
    binary_responses_.fetch_add(1);
  } else {
    soap_responses_.fetch_add(1);
  }
  RecordExchangeStats(session_id, request.payload.size(),
                      response.payload.size(), result.replayed,
                      result.is_fault);
  return WriteFrame(conn, response).ok() ? ExchangeOutcome::kContinue
                                         : ExchangeOutcome::kClose;
}

std::string WsqServer::StatsJson() {
  int64_t active_sessions = -1;
  {
    // DataService is single-threaded by design; its session map is only
    // safe to read under the same mutex that serializes Dispatch.
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    active_sessions = container_->active_sessions();
  }
  std::string out = "{\"schema_version\":1";
  const auto field = [&out](std::string_view name, int64_t value) {
    out += ",\"";
    out += name;
    out += "\":";
    out += std::to_string(value);
  };
  field("active_sessions", active_sessions);
  field("connections_accepted", connections_accepted_.load());
  field("exchanges_served", exchanges_served_.load());
  field("faults_injected", faults_injected_.load());
  field("replay_hits", replay_hits_.load());
  field("stats_requests", stats_requests_.load());
  field("trace_connections", trace_connections_.load());
  field("bytes_in", bytes_in_.load());
  field("bytes_out", bytes_out_.load());
  field("worker_queue_depth",
        pool_ ? static_cast<int64_t>(pool_->queue_depth()) : 0);
  out += ",\"codec_mix\":{\"soap\":" + std::to_string(soap_responses_.load()) +
         ",\"binary\":" + std::to_string(binary_responses_.load()) + '}';
  out += ",\"sessions\":{";
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    bool first = true;
    for (const auto& [id, stats] : session_stats_) {
      if (!first) out += ',';
      first = false;
      out += '"' + std::to_string(id) + "\":{";
      out += "\"blocks\":" + std::to_string(stats.blocks);
      out += ",\"bytes_in\":" + std::to_string(stats.bytes_in);
      out += ",\"bytes_out\":" + std::to_string(stats.bytes_out);
      out += ",\"replay_hits\":" + std::to_string(stats.replay_hits);
      out += ",\"faults\":" + std::to_string(stats.faults);
      out += '}';
    }
  }
  out += '}';
  out += ",\"metrics\":" + stats_registry_.ToJson();
  out += '}';
  return out;
}

Result<std::string> FetchServerStats(const std::string& host, int port,
                                     double timeout_ms) {
  Result<Socket> conn = TcpConnect(host, port, timeout_ms);
  if (!conn.ok()) return conn.status();
  Socket socket = std::move(conn).value();
  socket.set_io_timeout_ms(timeout_ms);
  Frame request;
  request.type = FrameType::kStats;
  WSQ_RETURN_IF_ERROR(WriteFrame(socket, request));
  Result<Frame> response = ReadFrame(socket);
  if (!response.ok()) return response.status();
  if (response.value().type != FrameType::kStatsAck) {
    return Status::InvalidArgument(
        "peer answered a stats request with frame type " +
        std::to_string(static_cast<int>(response.value().type)));
  }
  return std::move(response.value().payload);
}

}  // namespace wsq::net
