#ifndef WSQ_NET_ADMISSION_H_
#define WSQ_NET_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace wsq::net {

/// Server-side admission policy knobs (wsqd flags). Zero always means
/// "unlimited / disabled" so a default-constructed config reproduces the
/// pre-admission server exactly.
struct AdmissionConfig {
  /// Connections the loop will hold concurrently; an accept beyond the
  /// cap is answered with one transient-fault frame and closed
  /// (`--max-connections`).
  int max_connections = 0;
  /// Steady-state new-connection rate allowed per peer IP
  /// (`--rate-limit`), enforced by a token bucket.
  double rate_limit_per_sec = 0.0;
  /// Bucket capacity — the burst of connections a peer may open at
  /// once before the steady-state rate bites (`--rate-limit-burst`;
  /// 0 defaults to max(1, rate_limit_per_sec)).
  double rate_limit_burst = 0.0;
  /// Worker-pool queue depth beyond which request dispatch is shed with
  /// a retryable fault instead of enqueued (`--shed-watermark`). The
  /// paper's client-side adaptation treats kUnavailable as backpressure,
  /// so shedding here closes the control loop end to end.
  int shed_queue_watermark = 0;
};

/// Classic token bucket with an injected clock: `now_micros` comes from
/// the caller (the server's monotonic clock in production, a scripted
/// sequence in tests) so refill timing is deterministic under test.
/// Starts full — a fresh peer gets its whole burst.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst);

  /// Takes one token if available, refilling first from the elapsed
  /// time since the previous call. False = rate exceeded. A
  /// default-constructed (unlimited) bucket always admits.
  bool TryAcquire(int64_t now_micros);

  /// Tokens currently in the bucket (pre-refill; test introspection).
  double tokens() const { return tokens_; }

 private:
  double rate_per_sec_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  int64_t last_micros_ = 0;
  bool primed_ = false;
};

/// The admission decisions the loop acts on. Both rejections travel as
/// the same wire frame (transient fault → client-side kUnavailable);
/// the split exists for the stats plane.
enum class AdmitDecision : uint8_t {
  kAdmit,
  /// Loop is at --max-connections.
  kRejectCapacity,
  /// This peer's token bucket is empty.
  kRejectRate,
};

/// Admission policy evaluated by the loop thread on every accept and
/// every request dispatch. Single-threaded by construction (the loop is
/// the only caller), hence no locking.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  /// Decision for a new connection from `peer_ip` while the loop holds
  /// `live_connections` (excluding the new one).
  AdmitDecision AdmitConnection(const std::string& peer_ip,
                                int live_connections, int64_t now_micros);

  /// True when a request arriving now should be shed instead of
  /// enqueued: the worker queue (queued + executing dispatches) sits at
  /// or above the watermark.
  bool ShouldShed(size_t worker_queue_depth) const;

  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  /// Per-peer-IP buckets. Bounded: past kMaxTrackedPeers the map is
  /// cleared (every tracked peer re-primes with a full burst) — crude,
  /// but an attacker rotating source IPs is a different defense's job
  /// and an unbounded map is a slow memory leak.
  static constexpr size_t kMaxTrackedPeers = 16384;
  std::unordered_map<std::string, TokenBucket> buckets_;
};

}  // namespace wsq::net

#endif  // WSQ_NET_ADMISSION_H_
