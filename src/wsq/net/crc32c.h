#ifndef WSQ_NET_CRC32C_H_
#define WSQ_NET_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace wsq::net {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected to 0x82F63B78) —
/// the checksum used by iSCSI/ext4/gRPC for on-wire integrity, chosen
/// over CRC-32 (zlib) for its better error-detection properties on the
/// burst errors real links produce.
///
/// `Crc32cExtend(crc, data, len)` folds `len` bytes into a running
/// checksum. Pass 0 to start; chaining is associative over
/// concatenation, i.e.
///   Crc32cExtend(Crc32cExtend(0, a, la), b, lb) == Crc32c(a||b)
/// so the framing layer can accumulate across header / extension /
/// payload scatter without staging a contiguous copy. The pre/post
/// conditioning (~0 init, final xor) is handled internally per call.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

/// One-shot convenience: CRC-32C of a single buffer.
inline uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

}  // namespace wsq::net

#endif  // WSQ_NET_CRC32C_H_
