#ifndef WSQ_NET_FRAME_H_
#define WSQ_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/obs/span_context.h"

namespace wsq::net {

/// Abstract byte stream the framing layer reads/writes — a connected TCP
/// socket in production, an in-memory buffer (possibly throttled to
/// 1-byte reads/writes) in tests. Implementations may transfer fewer
/// bytes than asked; the framing layer loops.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Reads up to `len` bytes into `buf`. Returns the count actually read
  /// (>= 1), or 0 on clean end-of-stream (peer closed). Errors (socket
  /// failure, deadline expiry) come back as non-ok.
  virtual Result<size_t> ReadSome(void* buf, size_t len) = 0;

  /// Writes up to `len` bytes from `buf`; returns the count actually
  /// written (>= 1). Short writes are normal (full socket buffers).
  virtual Result<size_t> WriteSome(const void* buf, size_t len) = 0;
};

/// Loops ReadSome until exactly `len` bytes have arrived. A clean EOF
/// after 0 bytes — or mid-message — is kUnavailable ("connection
/// closed"): on the live path a torn-down connection is a transient,
/// retryable condition.
Status ReadExact(ByteStream& stream, void* buf, size_t len);

/// Loops WriteSome until all `len` bytes are out.
Status WriteAll(ByteStream& stream, const void* buf, size_t len);

/// True when `status` is the clean-close signal ReadExact/ReadFrame emit
/// for a peer that shut the connection before sending a single byte of
/// the next message. This is the one read failure that reflects a
/// deliberate peer action (e.g. a pre-codec server dropping an unknown
/// Hello frame) rather than an ambient one (deadline expiry, reset
/// mid-frame), so callers may dispatch on it — centralized here, next to
/// the producer, instead of string-matching at call sites.
bool IsCleanClose(const Status& status);

/// Frame type tag. Every exchange on a wsq connection is one request
/// frame answered by one response frame, strictly in order. A client
/// may open the connection with one optional Hello/HelloAck exchange to
/// negotiate the block codec; a client that skips it (every pre-codec
/// peer) simply speaks SOAP, as always.
enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  /// Codec negotiation: payload is a comma-separated, preference-ordered
  /// list of codec names the client can speak (e.g. "binary,soap").
  kHello = 3,
  /// Server's answer: payload is the single codec name it picked,
  /// optionally suffixed with negotiated feature tokens ("+trace").
  kHelloAck = 4,
  /// Telemetry-plane control frame: asks the server for its live stats
  /// snapshot. Empty payload; answered with one kStatsAck whose payload
  /// is the stats JSON document. Never sent by legacy peers (the type
  /// did not exist), so accepting it costs them nothing.
  kStats = 5,
  kStatsAck = 6,
  /// Liveness probe (empty payload): either side may send one; the peer
  /// answers with kPong. Only sent on connections whose handshake
  /// negotiated the "live" feature — a legacy peer would reject the
  /// unknown type as a protocol error and poison the connection.
  kPing = 7,
  kPong = 8,
  /// Graceful-shutdown notice (empty payload): a draining server tells
  /// an idle client the connection is going away; the client treats it
  /// as a retryable close and reconnects elsewhere/later. "live"-gated
  /// like kPing.
  kGoaway = 9,
};

/// Response flag: the payload is a SOAP fault envelope (the service
/// answered, but with an error — maps to kRemoteFault client-side, never
/// retried).
inline constexpr uint8_t kFrameFlagSoapFault = 0x01;
/// Response flag: the exchange was failed by server-side fault injection
/// (wsqd --fault-plan). Maps to kUnavailable client-side — retryable,
/// exactly like a connection that dropped. The server's cursor did NOT
/// advance.
inline constexpr uint8_t kFrameFlagTransientFault = 0x02;
/// The frame carries a 24-byte trace-context extension (obs/span_context
/// TraceContext) between the fixed header and the payload. Only set on
/// connections whose handshake negotiated the "trace" feature — legacy
/// peers and un-negotiated connections never see the flag, keeping
/// their frames byte-identical to the pre-extension wire.
inline constexpr uint8_t kFrameFlagTraceContext = 0x04;
/// The frame additionally carries a span-block extension (u32 length +
/// EncodeRemoteSpans bytes) after the trace context: the server-side
/// spans of this exchange, piggybacked on the response. Requires
/// kFrameFlagTraceContext; a frame with spans but no context is
/// structurally invalid.
inline constexpr uint8_t kFrameFlagServerSpans = 0x08;
/// The frame is followed by a 4-byte CRC-32C trailer covering every
/// preceding byte of the frame as transmitted (header, extensions,
/// payload). Only set on connections whose handshake negotiated the
/// "crc" feature — the crc-off wire stays byte-identical to the
/// pre-checksum protocol. The flag is self-describing: a receiver
/// verifies any frame that carries it, negotiated or not.
inline constexpr uint8_t kFrameFlagCrc = 0x10;

/// "WSQ1" — the protocol magic leading every frame. A peer that opens
/// with anything else is not speaking this protocol; reject, don't
/// guess.
inline constexpr uint32_t kFrameMagic = 0x57535131;

/// Fixed header size: magic(4) type(1) flags(2:1 reserved) payload
/// length(4) service time(8).
inline constexpr size_t kFrameHeaderBytes = 20;

/// Size of the CRC-32C trailer announced by kFrameFlagCrc.
inline constexpr size_t kFrameCrcBytes = 4;

/// Oversized-frame guard: a header announcing a payload beyond this is
/// rejected before any allocation — one malformed (or hostile) length
/// field must not make the peer try to buffer gigabytes.
inline constexpr uint32_t kMaxFramePayloadBytes = 64u * 1024u * 1024u;

/// One framed message: a SOAP envelope plus transport metadata. The
/// server stamps `service_micros` on responses (wall time from request
/// fully read to response write), so the client can decompose its
/// measured call time into wire vs server residence — the live analogue
/// of the simulated CallResult.wire_ms/service_ms split.
struct Frame {
  FrameType type = FrameType::kRequest;
  uint8_t flags = 0;
  uint64_t service_micros = 0;
  std::string payload;
  /// Trace-context extension (kFrameFlagTraceContext). WriteFrame sets
  /// the flag from `has_trace`; ReadFrame sets `has_trace` from the
  /// received flags.
  bool has_trace = false;
  TraceContext trace;
  /// Span-block extension (kFrameFlagServerSpans): raw EncodeRemoteSpans
  /// bytes, empty = no extension. Responses only by convention.
  std::string span_block;
  /// CRC trailer (kFrameFlagCrc). WriteFrame/AppendFrameBytes emit the
  /// trailer when `has_crc` is set; readers set `has_crc` from the
  /// received flags after verifying the checksum.
  bool has_crc = false;
};

/// True when `status` is the checksum-mismatch signal the framing layer
/// emits for a frame whose CRC trailer did not match its bytes. Carried
/// as kUnavailable: corruption on the wire is an ambient transient —
/// the retry path treats it exactly like a dropped connection, never
/// like a protocol bug. Centralized next to the producer so callers and
/// tests never string-match.
bool IsChecksumMismatch(const Status& status);

/// Serializes the fixed header for `frame` into `out` (network byte
/// order throughout). Flags for the trace/span extensions are derived
/// from the frame's `has_trace` / `span_block` fields, never taken from
/// `flags` — a frame without the data cannot announce the extension.
void EncodeFrameHeader(const Frame& frame, char out[kFrameHeaderBytes]);

/// Parsed header fields, pre-payload.
struct FrameHeader {
  FrameType type = FrameType::kRequest;
  uint8_t flags = 0;
  uint32_t payload_len = 0;
  uint64_t service_micros = 0;
};

/// Validates and decodes a fixed header: wrong magic, unknown type, or a
/// payload length beyond kMaxFramePayloadBytes are kInvalidArgument —
/// the connection is unsalvageable after any of them (framing is lost).
Result<FrameHeader> DecodeFrameHeader(const char in[kFrameHeaderBytes]);

/// Reads one complete frame: header (validated), any negotiated
/// extensions (trace context, span block — length-capped before
/// allocation), then payload, handling partial reads. kUnavailable when
/// the peer closed the connection (cleanly between frames or
/// mid-frame); kInvalidArgument on garbage, oversized headers, a span
/// block past kMaxRemoteSpanBytes, or a span flag without a trace flag.
Result<Frame> ReadFrame(ByteStream& stream);

/// Writes one complete frame, handling short writes. Refuses payloads
/// beyond kMaxFramePayloadBytes (kInvalidArgument) — the guard is
/// enforced symmetrically so a well-behaved peer can never emit a frame
/// the other side must reject.
Status WriteFrame(ByteStream& stream, const Frame& frame);

/// Serializes one complete frame (header, negotiated extensions,
/// payload) and appends the bytes to `out` — the buffered-write half of
/// the readiness-based path, where frames are queued into a
/// per-connection write buffer instead of written to a blocking stream.
/// Same oversize guards as WriteFrame; on error `out` is untouched.
Status AppendFrameBytes(const Frame& frame, std::string* out);

/// Incremental frame decoder for readiness-based (non-blocking) I/O:
/// feed it whatever bytes recv() produced and it advances a
/// header → trace-context → span-block → payload state machine,
/// emitting every frame completed so far. The phase the parser is in
/// *is* the connection's read state, so a single event-loop thread can
/// interleave thousands of connections each mid-frame.
///
/// Validation is identical to ReadFrame (same DecodeFrameHeader, same
/// span-length cap); any protocol error poisons the parser — framing is
/// unrecoverable after garbage, so every later Consume returns the same
/// error and the connection must be dropped.
class FrameParser {
 public:
  /// Consumes `len` bytes, appending each completed frame to `out` (one
  /// read batch can complete several pipelined frames). Frames are
  /// counted in wsq.net.frames_read exactly like ReadFrame's.
  Status Consume(const char* data, size_t len, std::vector<Frame>* out);

  /// Bytes buffered toward the frame in progress (0 between frames).
  size_t buffered_bytes() const { return buffer_.size(); }

  /// True once a protocol error poisoned the parser.
  bool failed() const { return !error_.ok(); }

 private:
  enum class Phase : uint8_t {
    kHeader,
    kTraceContext,
    kSpanLength,
    kSpanBlock,
    kPayload,
    kCrcTrailer,
  };

  /// Finishes the current phase from buffer_[cursor..], transitioning
  /// phase_/need_ and emitting the frame when the payload completes.
  Status Step(const char* bytes, std::vector<Frame>* out);

  void BeginFrame();

  Phase phase_ = Phase::kHeader;
  size_t need_ = kFrameHeaderBytes;
  std::string buffer_;
  Frame frame_;
  uint8_t flags_ = 0;
  uint32_t payload_len_ = 0;
  /// Running CRC-32C over every wire byte of the frame in progress
  /// (accumulated per phase; compared against the trailer at the end).
  uint32_t crc_ = 0;
  Status error_ = Status::Ok();
};

}  // namespace wsq::net

#endif  // WSQ_NET_FRAME_H_
