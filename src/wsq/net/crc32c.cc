#include "wsq/net/crc32c.h"

#include <array>

namespace wsq::net {

namespace {

/// 8 slice-by-8 tables, built once at first use. Slicing-by-8 processes
/// 8 input bytes per iteration with table lookups only — no hardware
/// CRC instruction dependency, portable across every CI target, and
/// fast enough (~1 GB/s) that framing stays wire-bound.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xffu] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const auto& t = Tables().t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (len >= 8) {
    // Fold the current crc into the first 4 bytes, then slice all 8.
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               (static_cast<uint32_t>(p[1]) << 8) |
                               (static_cast<uint32_t>(p[2]) << 16) |
                               (static_cast<uint32_t>(p[3]) << 24));
    crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
          t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace wsq::net
