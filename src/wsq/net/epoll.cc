#include "wsq/net/epoll.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace wsq::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Epoll::Epoll() { fd_ = ::epoll_create1(EPOLL_CLOEXEC); }

Epoll::~Epoll() {
  if (fd_ >= 0) ::close(fd_);
}

Status Epoll::Add(int fd, uint32_t events, uint64_t tag) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Status::Internal(Errno("epoll_ctl(ADD)"));
  }
  return Status::Ok();
}

Status Epoll::Modify(int fd, uint32_t events, uint64_t tag) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Status::Internal(Errno("epoll_ctl(MOD)"));
  }
  return Status::Ok();
}

void Epoll::Remove(int fd) {
  ::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr);
}

Result<int> Epoll::Wait(struct epoll_event* out, int max_events,
                        int timeout_ms) {
  for (;;) {
    const int n = ::epoll_wait(fd_, out, max_events, timeout_ms);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return Status::Internal(Errno("epoll_wait"));
  }
}

EventFd::EventFd() { fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC); }

EventFd::~EventFd() {
  if (fd_ >= 0) ::close(fd_);
}

void EventFd::Signal() {
  const uint64_t one = 1;
  // EAGAIN (counter saturated) means a wakeup is already pending; any
  // other failure is unreportable from a worker thread and the loop's
  // periodic timeout covers it.
  [[maybe_unused]] ssize_t rc = ::write(fd_, &one, sizeof(one));
}

void EventFd::Drain() {
  uint64_t count = 0;
  [[maybe_unused]] ssize_t rc = ::read(fd_, &count, sizeof(count));
}

}  // namespace wsq::net
