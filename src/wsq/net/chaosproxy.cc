#include "wsq/net/chaosproxy.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <algorithm>
#include <vector>

#include "wsq/common/clock.h"

namespace wsq::net {

namespace {

/// Listener and wakeup tags; link tags are id*2 (client side) and
/// id*2+1 (upstream side) with ids starting at 1, so they never
/// collide.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeupTag = 1;

/// Idle tick when no shaped chunk is pending — bounds how long Stop()
/// waits for the loop to notice running_ flipped.
constexpr int kIdleTickMs = 100;

/// recv buffer; also the natural chunk size shaping operates on.
constexpr size_t kReadChunkBytes = 16 * 1024;

}  // namespace

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(std::move(options)),
      rng_(options_.plan.seed ^ 0x9e3779b97f4a7c15ull) {}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start() {
  WSQ_RETURN_IF_ERROR(options_.plan.Validate());
  if (running_.load()) return Status::FailedPrecondition("proxy running");
  Result<Socket> listener = TcpListen(options_.listen_port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener.value());
  Result<int> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  port_ = port.value();
  SetNonBlocking(listener_.fd(), true);

  epoll_ = std::make_unique<Epoll>();
  wakeup_ = std::make_unique<EventFd>();
  if (!epoll_->valid() || !wakeup_->valid()) {
    return Status::Internal("chaos proxy: epoll/eventfd creation failed");
  }
  WSQ_RETURN_IF_ERROR(epoll_->Add(listener_.fd(), EPOLLIN, kListenerTag));
  WSQ_RETURN_IF_ERROR(epoll_->Add(wakeup_->fd(), EPOLLIN, kWakeupTag));

  running_.store(true);
  loop_ = std::thread([this] { LoopMain(); });
  return Status::Ok();
}

void ChaosProxy::Stop() {
  if (!running_.exchange(false)) {
    if (loop_.joinable()) loop_.join();
    return;
  }
  wakeup_->Signal();
  if (loop_.joinable()) loop_.join();
  listener_.Close();
}

int64_t ChaosProxy::NextRelease() const {
  int64_t next = -1;
  for (const auto& [id, link] : links_) {
    for (const Pipe* pipe : {&link->to_upstream, &link->to_client}) {
      if (pipe->queue.empty()) continue;
      const int64_t at = pipe->queue.front().release_micros;
      if (next < 0 || at < next) next = at;
    }
  }
  return next;
}

void ChaosProxy::LoopMain() {
  const WallClock wall;
  struct epoll_event events[64];
  while (running_.load()) {
    int timeout_ms = kIdleTickMs;
    const int64_t next = NextRelease();
    if (next >= 0) {
      const int64_t now = wall.NowMicros();
      timeout_ms = next <= now
                       ? 0
                       : static_cast<int>(
                             std::min<int64_t>((next - now + 999) / 1000,
                                               kIdleTickMs));
    }
    Result<int> n = epoll_->Wait(events, 64, timeout_ms);
    if (!n.ok()) break;
    for (int i = 0; i < n.value(); ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        AcceptReady();
        continue;
      }
      if (tag == kWakeupTag) {
        wakeup_->Drain();
        continue;
      }
      auto it = links_.find(tag / 2);
      if (it == links_.end()) continue;  // stale event after a close
      HandleEvent(*it->second, (tag % 2) == 0, events[i].events);
    }
    // Timer sweep: release every due chunk, propagate FINs, retire
    // fully drained links, re-arm interest.
    const int64_t now = wall.NowMicros();
    std::vector<uint64_t> ids;
    ids.reserve(links_.size());
    for (const auto& [id, link] : links_) ids.push_back(id);
    for (uint64_t id : ids) {
      auto it = links_.find(id);
      if (it == links_.end()) continue;
      Link& link = *it->second;
      if (!link.blackhole) {
        if (!FlushPipe(link, link.to_upstream, link.upstream, now)) continue;
        if (!FlushPipe(link, link.to_client, link.client, now)) continue;
        const auto drained = [](const Pipe& p) {
          return p.eof && p.queue.empty();
        };
        if (drained(link.to_upstream) && drained(link.to_client)) {
          CloseLink(link, /*hard=*/false);
          continue;
        }
      } else if (link.to_upstream.eof) {
        // A black hole holds the port open until the client gives up.
        CloseLink(link, /*hard=*/false);
        continue;
      }
      UpdateInterest(link);
    }
  }
  // Loop exit: tear everything down hard (Stop is not a drain).
  std::vector<uint64_t> ids;
  for (const auto& [id, link] : links_) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = links_.find(id);
    if (it != links_.end()) CloseLink(*it->second, /*hard=*/true);
  }
}

void ChaosProxy::AcceptReady() {
  for (;;) {
    // Drain the non-blocking listener directly; Accept()'s poll helper
    // would block forever once the backlog is empty.
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained (or listener shut down)
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const int64_t ordinal = accepted_.fetch_add(1) + 1;
    auto link = std::make_unique<Link>();
    link->id = next_id_++;
    link->client = Socket(fd);
    SetNonBlocking(link->client.fd(), true);
    link->to_upstream.skip_left = options_.plan.corrupt_skip_bytes;
    link->to_client.skip_left = options_.plan.corrupt_skip_bytes;

    if (ordinal <= options_.plan.blackhole_connections) {
      link->blackhole = true;
      blackholed_.fetch_add(1);
    } else {
      Result<Socket> up =
          TcpConnect(options_.upstream_host, options_.upstream_port,
                     options_.upstream_connect_timeout_ms);
      if (!up.ok()) {
        link->client.Close();
        continue;
      }
      link->upstream = std::move(up.value());
      SetNonBlocking(link->upstream.fd(), true);
      const int64_t relay_ordinal =
          ordinal - options_.plan.blackhole_connections;
      if (options_.plan.drop_connections > 0 &&
          relay_ordinal <= options_.plan.drop_connections) {
        if (options_.plan.drop_direction == NetDropDirection::kToUpstream) {
          link->to_upstream.drop = true;
        } else if (options_.plan.drop_direction ==
                   NetDropDirection::kToClient) {
          link->to_client.drop = true;
        }
      }
      if (!epoll_->Add(link->upstream.fd(), EPOLLIN, link->id * 2 + 1)
               .ok()) {
        link->client.Close();
        continue;
      }
      link->upstream_interest = EPOLLIN;
    }
    if (!epoll_->Add(link->client.fd(), EPOLLIN, link->id * 2).ok()) {
      if (link->upstream.valid()) epoll_->Remove(link->upstream.fd());
      continue;
    }
    link->client_interest = EPOLLIN;
    links_[link->id] = std::move(link);
  }
}

void ChaosProxy::HandleEvent(Link& link, bool client_side, uint32_t events) {
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseLink(link, /*hard=*/false);
    return;
  }
  if ((events & EPOLLIN) != 0) {
    if (!ReadSide(link, client_side)) return;
  }
  // EPOLLOUT (and the post-event sweep) drain via FlushPipe in LoopMain.
}

bool ChaosProxy::ReadSide(Link& link, bool client_side) {
  const WallClock wall;
  Socket& src = client_side ? link.client : link.upstream;
  Pipe& pipe = client_side ? link.to_upstream : link.to_client;
  char buf[kReadChunkBytes];
  for (;;) {
    if (!link.blackhole && pipe.buffered >= options_.max_buffered_bytes) {
      return true;  // backpressure: stop reading until the sink drains
    }
    const ssize_t n = ::recv(src.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      if (link.blackhole || pipe.drop) {
        dropped_bytes_.fetch_add(n);
        continue;
      }
      ShapeInto(link, pipe, buf, static_cast<size_t>(n), wall.NowMicros());
      continue;
    }
    if (n == 0) {
      pipe.eof = true;
      return true;  // FIN propagates once the queue drains
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    CloseLink(link, /*hard=*/false);
    return false;
  }
}

void ChaosProxy::ShapeInto(Link& link, Pipe& pipe, const char* data,
                           size_t len, int64_t now_micros) {
  const NetFaultPlan& plan = options_.plan;
  std::string bytes(data, len);

  // Corruption: flip one random bit of one byte beyond the per-pipe
  // handshake window, within the lifetime budget.
  const size_t skip_now = std::min(pipe.skip_left, len);
  pipe.skip_left -= skip_now;
  if (plan.corrupt_probability > 0.0 && len > skip_now &&
      (plan.corrupt_max == 0 || corruptions_done_ < plan.corrupt_max) &&
      rng_.Bernoulli(plan.corrupt_probability)) {
    const int64_t idx = rng_.UniformInt(static_cast<int64_t>(skip_now),
                                        static_cast<int64_t>(len) - 1);
    bytes[static_cast<size_t>(idx)] ^=
        static_cast<char>(1u << rng_.UniformInt(0, 7));
    corrupted_bytes_.fetch_add(1);
    ++corruptions_done_;
  }

  // Release scheduling: a per-pipe meter enforces inter-chunk spacing
  // (bandwidth byte-time, trickle interval); latency+jitter shift each
  // piece's release on top of the meter without compounding.
  const size_t piece_len =
      plan.trickle_bytes > 0 ? plan.trickle_bytes : bytes.size();
  if (pipe.meter_micros < now_micros) pipe.meter_micros = now_micros;
  size_t offset = 0;
  while (offset < bytes.size()) {
    const size_t take = std::min(piece_len, bytes.size() - offset);
    // Serialization first: the chunk's own byte-time (store-and-forward)
    // advances the meter *before* release, so N bytes through a B-byte/s
    // cap genuinely take N/B seconds — the first chunk does not ride
    // free. Latency+jitter then shift the release without compounding.
    double spacing_us = 0.0;
    if (plan.bandwidth_bytes_per_sec > 0.0) {
      spacing_us += static_cast<double>(take) * 1e6 /
                    plan.bandwidth_bytes_per_sec;
    }
    if (plan.trickle_bytes > 0) {
      spacing_us = std::max(spacing_us, plan.trickle_interval_ms * 1000.0);
    }
    pipe.meter_micros += static_cast<int64_t>(spacing_us);
    double delay_us = plan.latency_ms * 1000.0;
    if (plan.jitter_ms > 0.0) {
      delay_us += rng_.Uniform(0.0, plan.jitter_ms * 1000.0);
    }
    Chunk chunk;
    chunk.release_micros =
        pipe.meter_micros + static_cast<int64_t>(delay_us);
    chunk.bytes = bytes.substr(offset, take);
    pipe.buffered += take;
    pipe.queue.push_back(std::move(chunk));
    offset += take;
  }
}

bool ChaosProxy::FlushPipe(Link& link, Pipe& pipe, Socket& dst,
                           int64_t now_micros) {
  const NetFaultPlan& plan = options_.plan;
  while (!pipe.queue.empty() &&
         pipe.queue.front().release_micros <= now_micros) {
    Chunk& head = pipe.queue.front();
    const ssize_t n =
        ::send(dst.fd(), head.bytes.data() + pipe.cursor,
               head.bytes.size() - pipe.cursor, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      CloseLink(link, /*hard=*/false);
      return false;
    }
    pipe.cursor += static_cast<size_t>(n);
    pipe.buffered -= static_cast<size_t>(n);
    forwarded_bytes_.fetch_add(n);
    link.relayed += n;
    if (plan.reset_after_bytes >= 0 &&
        link.relayed >= plan.reset_after_bytes &&
        (plan.max_resets == 0 ||
         resets_injected_.load() < plan.max_resets)) {
      resets_injected_.fetch_add(1);
      CloseLink(link, /*hard=*/true);
      return false;
    }
    if (pipe.cursor == head.bytes.size()) {
      pipe.queue.pop_front();
      pipe.cursor = 0;
    }
  }
  if (pipe.queue.empty() && pipe.eof && !pipe.fin_sent && dst.valid()) {
    ::shutdown(dst.fd(), SHUT_WR);
    pipe.fin_sent = true;
  }
  return true;
}

void ChaosProxy::UpdateInterest(Link& link) {
  const WallClock wall;
  const int64_t now = wall.NowMicros();
  const auto want_for = [&](bool client_side) -> uint32_t {
    Pipe& inbound = client_side ? link.to_upstream : link.to_client;
    Pipe& outbound = client_side ? link.to_client : link.to_upstream;
    uint32_t want = 0;
    if (!inbound.eof &&
        (link.blackhole || inbound.buffered < options_.max_buffered_bytes)) {
      want |= EPOLLIN;
    }
    // EPOLLOUT only while a *due* chunk could not be written — a not-yet-
    // due head is the timer's job, not the readiness set's.
    if (!link.blackhole && !outbound.queue.empty() &&
        outbound.queue.front().release_micros <= now) {
      want |= EPOLLOUT;
    }
    return want;
  };
  const uint32_t client_want = want_for(true);
  if (client_want != link.client_interest && link.client.valid()) {
    if (epoll_->Modify(link.client.fd(), client_want, link.id * 2).ok()) {
      link.client_interest = client_want;
    }
  }
  if (link.upstream.valid()) {
    const uint32_t up_want = want_for(false);
    if (up_want != link.upstream_interest) {
      if (epoll_->Modify(link.upstream.fd(), up_want, link.id * 2 + 1)
              .ok()) {
        link.upstream_interest = up_want;
      }
    }
  }
}

void ChaosProxy::CloseLink(Link& link, bool hard) {
  if (link.client.valid()) {
    epoll_->Remove(link.client.fd());
    if (hard) {
      link.client.CloseHard();
    } else {
      link.client.Close();
    }
  }
  if (link.upstream.valid()) {
    epoll_->Remove(link.upstream.fd());
    if (hard) {
      link.upstream.CloseHard();
    } else {
      link.upstream.Close();
    }
  }
  links_.erase(link.id);  // invalidates `link`
}

}  // namespace wsq::net
