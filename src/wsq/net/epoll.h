#ifndef WSQ_NET_EPOLL_H_
#define WSQ_NET_EPOLL_H_

#include <sys/epoll.h>

#include <cstdint>

#include "wsq/common/status.h"

namespace wsq::net {

/// Thin RAII wrapper over an epoll instance — the readiness multiplexer
/// under the event-loop server. Level-triggered throughout: the loop
/// re-arms interest explicitly (EPOLLOUT only while a write buffer is
/// pending, EPOLLIN paused under backpressure), which keeps every state
/// transition visible in one place instead of hidden in edge-trigger
/// re-arm rules. Not thread-safe; owned and driven by the loop thread.
class Epoll {
 public:
  Epoll();
  ~Epoll();

  Epoll(const Epoll&) = delete;
  Epoll& operator=(const Epoll&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Registers `fd` for `events` (EPOLLIN | EPOLLOUT | EPOLLRDHUP...).
  /// `tag` comes back verbatim in epoll_event::data.u64 — the loop uses
  /// it as the connection id, so a stale event after a close can be
  /// detected instead of dereferencing a dangling pointer.
  Status Add(int fd, uint32_t events, uint64_t tag);

  /// Re-arms `fd` with a new interest set, keeping its tag.
  Status Modify(int fd, uint32_t events, uint64_t tag);

  /// Deregisters `fd`. A no-op error-wise if the fd was already closed
  /// (close() removes it from the set implicitly).
  void Remove(int fd);

  /// Waits up to `timeout_ms` (-1 blocks) for readiness, filling `out`
  /// with at most `max_events` entries. Returns the count; EINTR
  /// restarts internally.
  Result<int> Wait(struct epoll_event* out, int max_events, int timeout_ms);

 private:
  int fd_ = -1;
};

/// Non-blocking eventfd used as the loop's wakeup channel: worker
/// threads finishing a dispatch (and Stop()) Signal() it, the loop sees
/// the fd readable and drains completions. Signal() is async-signal- and
/// thread-safe; Drain() belongs to the loop thread.
class EventFd {
 public:
  EventFd();
  ~EventFd();

  EventFd(const EventFd&) = delete;
  EventFd& operator=(const EventFd&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Adds 1 to the counter, making the fd readable. Safe from any
  /// thread; a full counter (never in practice) is silently dropped —
  /// the wakeup is already pending in that case.
  void Signal();

  /// Resets the counter to 0 (reads it off). Loop thread only.
  void Drain();

 private:
  int fd_ = -1;
};

}  // namespace wsq::net

#endif  // WSQ_NET_EPOLL_H_
