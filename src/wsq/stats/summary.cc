#include "wsq/stats/summary.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "wsq/common/text_table.h"
#include "wsq/stats/running_stats.h"

namespace wsq {

double SortedPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  RunningStats stats;
  for (double v : samples) stats.Add(v);
  s.count = samples.size();
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.min = samples.front();
  s.max = samples.back();
  s.p25 = SortedPercentile(samples, 0.25);
  s.median = SortedPercentile(samples, 0.50);
  s.p75 = SortedPercentile(samples, 0.75);
  s.p95 = SortedPercentile(samples, 0.95);
  return s;
}

std::string Summary::ToString(int precision) const {
  std::ostringstream out;
  out << "n=" << count << " mean=" << FormatDouble(mean, precision)
      << " sd=" << FormatDouble(stddev, precision)
      << " min=" << FormatDouble(min, precision)
      << " p50=" << FormatDouble(median, precision)
      << " p95=" << FormatDouble(p95, precision)
      << " max=" << FormatDouble(max, precision);
  return out.str();
}

}  // namespace wsq
