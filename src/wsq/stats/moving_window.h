#ifndef WSQ_STATS_MOVING_WINDOW_H_
#define WSQ_STATS_MOVING_WINDOW_H_

#include <cstddef>
#include <deque>

namespace wsq {

/// Fixed-capacity sliding window with O(1) running mean, used for the
/// averaging horizon n of the switching controllers ({x̄_k, ȳ_k} in
/// paper Eq. (2)) and for the sign-switch counting horizon n' of Eq. (5).
class MovingWindow {
 public:
  /// Capacity must be >= 1; smaller requests are promoted to 1.
  explicit MovingWindow(size_t capacity);

  /// Pushes a value, evicting the oldest when full.
  void Add(double value);

  bool full() const { return values_.size() == capacity_; }
  bool empty() const { return values_.empty(); }
  size_t size() const { return values_.size(); }
  size_t capacity() const { return capacity_; }

  /// Mean of the current contents; 0 when empty.
  double Mean() const;

  /// Sum of the current contents.
  double Sum() const { return sum_; }

  /// Oldest / newest values; callers must check !empty() first.
  double Oldest() const { return values_.front(); }
  double Newest() const { return values_.back(); }

  void Clear();

 private:
  size_t capacity_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

}  // namespace wsq

#endif  // WSQ_STATS_MOVING_WINDOW_H_
