#include "wsq/stats/moving_window.h"

#include <algorithm>

namespace wsq {

MovingWindow::MovingWindow(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void MovingWindow::Add(double value) {
  values_.push_back(value);
  sum_ += value;
  if (values_.size() > capacity_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double MovingWindow::Mean() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

void MovingWindow::Clear() {
  values_.clear();
  sum_ = 0.0;
}

}  // namespace wsq
