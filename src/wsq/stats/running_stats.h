#ifndef WSQ_STATS_RUNNING_STATS_H_
#define WSQ_STATS_RUNNING_STATS_H_

#include <cstddef>
#include <limits>

namespace wsq {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm),
/// used to aggregate per-run response times and block-size decisions.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double value);

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const {
    return count_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return count_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  double sum() const { return count_ > 0 ? mean_ * count_ : 0.0; }

  void Reset();

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace wsq

#endif  // WSQ_STATS_RUNNING_STATS_H_
