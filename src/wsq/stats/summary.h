#ifndef WSQ_STATS_SUMMARY_H_
#define WSQ_STATS_SUMMARY_H_

#include <string>
#include <vector>

namespace wsq {

/// Distribution summary computed from a full sample vector; used by the
/// experiment harness when per-run distributions (not just mean/stddev)
/// matter, e.g. detecting the paper's "order of magnitude" tail cases.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;

  std::string ToString(int precision = 2) const;
};

/// Builds a Summary; empty input yields an all-zero summary.
Summary Summarize(std::vector<double> samples);

/// Linear-interpolated percentile over a *sorted* sample vector;
/// q in [0, 1]. Callers with unsorted data should use Summarize().
double SortedPercentile(const std::vector<double>& sorted, double q);

}  // namespace wsq

#endif  // WSQ_STATS_SUMMARY_H_
