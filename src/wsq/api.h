#ifndef WSQ_API_H_
#define WSQ_API_H_

/// Umbrella header for the wsq library — everything a downstream user
/// needs to run adaptive block-size-controlled queries over (simulated)
/// web services:
///
///  * controllers (wsq/control): fixed, constant/adaptive switching
///    extremum, hybrid, MIMD, model-based, self-tuning;
///  * the full simulated WS stack (relation + soap + netsim + server +
///    client) for end-to-end "empirical" runs;
///  * the profile-driven simulation engine (wsq/sim) for controlled
///    experiments;
///  * the unified execution layer (wsq/backend): one QueryBackend
///    interface and RunTrace record over all three stacks, plus the
///    backend-generic repeated-run harness;
///  * the parallel experiment engine (wsq/exec): a fixed ThreadPool and
///    run-lane fan-out with deterministic per-run seeding, so repeated
///    runs scale across cores with byte-identical figure output;
///  * the fault-injection & resilience layer (wsq/fault): scripted
///    FaultPlans honored identically by every backend, plus the
///    backoff/deadline/circuit-breaker ResiliencePolicy and the
///    controller divergence watchdog (wsq/control/watchdog_controller);
///  * the live network transport (wsq/net + TcpWsClient + LiveBackend):
///    length-prefixed framing over real TCP, the wsqd server frontend,
///    and a QueryBackend that runs the same pull loop against it on the
///    wall clock;
///  * the negotiated block codecs (wsq/codec): the historical SOAP/XML
///    round-trip behind a BlockCodec interface next to a columnar
///    binary codec with zero-copy decode and optional LZ compression,
///    selected per connection via the Hello/HelloAck handshake;
///  * the fleet co-scheduling engine (wsq/fleet): N tenant sessions
///    sharing one simulated world (one clock, one LoadModel priced at
///    the live in-flight count) or one live wsqd server, with
///    fairness / convergence / oscillation analytics exported as
///    wsq.fleet.* metrics.
///
/// See examples/quickstart.cc for the 30-line tour.

#include "wsq/backend/empirical_backend.h"
#include "wsq/backend/eventsim_backend.h"
#include "wsq/backend/experiment.h"
#include "wsq/backend/fetch_trace.h"
#include "wsq/backend/live_backend.h"
#include "wsq/backend/profile_backend.h"
#include "wsq/backend/query_backend.h"
#include "wsq/backend/run_stats.h"
#include "wsq/backend/run_trace.h"
#include "wsq/client/block_fetcher.h"
#include "wsq/client/block_shipper.h"
#include "wsq/client/call_transport.h"
#include "wsq/client/query_session.h"
#include "wsq/client/tcp_ws_client.h"
#include "wsq/client/ws_client.h"
#include "wsq/codec/binary_codec.h"
#include "wsq/codec/codec.h"
#include "wsq/codec/soap_codec.h"
#include "wsq/codec/wire_rows.h"
#include "wsq/common/clock.h"
#include "wsq/common/csv_writer.h"
#include "wsq/common/logging.h"
#include "wsq/common/random.h"
#include "wsq/common/status.h"
#include "wsq/common/text_table.h"
#include "wsq/control/controller.h"
#include "wsq/control/controller_factory.h"
#include "wsq/control/factories.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/control/hybrid_controller.h"
#include "wsq/control/mimd_controller.h"
#include "wsq/control/model_based_controller.h"
#include "wsq/control/self_tuning_controller.h"
#include "wsq/control/switching_controller.h"
#include "wsq/control/watchdog_controller.h"
#include "wsq/eventsim/event_sim.h"
#include "wsq/eventsim/ps_server.h"
#include "wsq/exec/bench_report.h"
#include "wsq/exec/exec_context.h"
#include "wsq/exec/parallel_runner.h"
#include "wsq/exec/thread_pool.h"
#include "wsq/fault/exchange_player.h"
#include "wsq/fault/fault_injector.h"
#include "wsq/fault/fault_plan.h"
#include "wsq/fault/resilience_policy.h"
#include "wsq/fleet/analytics.h"
#include "wsq/fleet/fleet_spec.h"
#include "wsq/fleet/fleet_world.h"
#include "wsq/fleet/live_fleet.h"
#include "wsq/linalg/least_squares.h"
#include "wsq/linalg/matrix.h"
#include "wsq/linalg/rls.h"
#include "wsq/net/frame.h"
#include "wsq/net/server.h"
#include "wsq/net/socket.h"
#include "wsq/netsim/link_model.h"
#include "wsq/netsim/presets.h"
#include "wsq/obs/json_lite.h"
#include "wsq/obs/metrics.h"
#include "wsq/obs/run_observer.h"
#include "wsq/obs/state_snapshot.h"
#include "wsq/obs/trace.h"
#include "wsq/relation/predicate.h"
#include "wsq/relation/query.h"
#include "wsq/relation/schema.h"
#include "wsq/relation/table.h"
#include "wsq/relation/tpch_gen.h"
#include "wsq/relation/tuple.h"
#include "wsq/relation/tuple_serializer.h"
#include "wsq/server/container.h"
#include "wsq/server/data_service.h"
#include "wsq/server/dbms.h"
#include "wsq/server/load_model.h"
#include "wsq/server/processing_service.h"
#include "wsq/server/service.h"
#include "wsq/sim/experiment.h"
#include "wsq/sim/ground_truth.h"
#include "wsq/sim/profile.h"
#include "wsq/sim/profile_io.h"
#include "wsq/sim/profile_library.h"
#include "wsq/sim/sim_engine.h"
#include "wsq/soap/envelope.h"
#include "wsq/soap/message.h"
#include "wsq/soap/xml.h"
#include "wsq/stats/moving_window.h"
#include "wsq/stats/running_stats.h"
#include "wsq/stats/summary.h"

#endif  // WSQ_API_H_
