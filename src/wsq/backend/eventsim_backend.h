#ifndef WSQ_BACKEND_EVENTSIM_BACKEND_H_
#define WSQ_BACKEND_EVENTSIM_BACKEND_H_

#include <vector>

#include "wsq/backend/query_backend.h"
#include "wsq/control/factories.h"
#include "wsq/eventsim/event_sim.h"

namespace wsq {

/// A concurrent client sharing the timeline with the tracked query; each
/// run builds it a fresh controller from its factory.
struct BackgroundClientSpec {
  ControllerFactoryFn make_controller;
  int64_t dataset_tuples = 0;
  /// When the client issues its first request (ms on the shared
  /// timeline).
  double start_time_ms = 0.0;
};

/// QueryBackend over the event-driven processor-sharing simulation: the
/// controller under test drives one *tracked* client session whose
/// per-block trace becomes the RunTrace, while optional background
/// clients genuinely contend for the server on the shared timeline
/// (paper Fig. 2's arrival/departure transients).
class EventSimBackend final : public QueryBackend {
 public:
  /// `dataset_tuples` is the tracked client's query size;
  /// `start_time_ms` staggers it against the background clients.
  EventSimBackend(const EventSimConfig& config, int64_t dataset_tuples,
                  double start_time_ms = 0.0,
                  std::vector<BackgroundClientSpec> background = {});

  std::string name() const override { return "eventsim"; }

  /// Clone copies the config and client specs; every run builds its own
  /// event timeline and background controllers, so clones are safe on
  /// concurrent lanes.
  std::unique_ptr<QueryBackend> Clone() const override;

  Result<RunTrace> RunQuery(Controller* controller,
                            const RunSpec& spec) override;

  const EventSimConfig& config() const { return config_; }

 private:
  EventSimConfig config_;
  int64_t dataset_tuples_;
  double start_time_ms_;
  std::vector<BackgroundClientSpec> background_;
};

}  // namespace wsq

#endif  // WSQ_BACKEND_EVENTSIM_BACKEND_H_
