#ifndef WSQ_BACKEND_RUN_STATS_H_
#define WSQ_BACKEND_RUN_STATS_H_

#include <cstdint>
#include <string>

#include "wsq/backend/run_trace.h"
#include "wsq/obs/metrics.h"
#include "wsq/obs/run_observer.h"
#include "wsq/obs/state_snapshot.h"
#include "wsq/stats/running_stats.h"

namespace wsq {

/// Per-run summary distilled from a RunTrace: the totals plus Welford
/// aggregates over the per-block series. Lives next to RunTrace so
/// callers that only want headline numbers (benches, the metrics
/// registry) never re-walk the steps themselves.
struct RunStats {
  std::string backend_name;
  std::string controller_name;

  double total_time_ms = 0.0;
  int64_t total_blocks = 0;
  int64_t total_tuples = 0;
  int64_t total_retries = 0;
  /// Subset of total_retries spent on session open/close exchanges.
  int64_t session_retries = 0;
  /// Dead time of retried exchanges (timeouts, fault costs, backoff).
  double retry_time_ms = 0.0;
  /// Faults the chaos layer injected (0 without a fault plan).
  int64_t faults_injected = 0;
  /// Times the resilience policy's circuit breaker opened.
  int64_t breaker_trips = 0;
  /// Adaptivity steps the controller completed over the whole run.
  int64_t adaptivity_steps = 0;
  /// End-to-end time not attributable to any block (session open/close,
  /// retry timeouts): total_time_ms - sum(block_time_ms).
  double dead_time_ms = 0.0;
  /// Tuples per second over the end-to-end time; 0 for a zero-length run.
  double throughput_tuples_per_s = 0.0;

  /// Aggregates over the per-block series.
  RunningStats block_time_ms;
  RunningStats per_tuple_ms;
  RunningStats requested_size;

  /// Distills `trace` into a summary.
  static RunStats FromTrace(const RunTrace& trace);

  /// Ordered key/value view, for logs and trace-event args.
  StateSnapshot ToSnapshot() const;

  /// Folds this run into `registry` under wsq.run.* metrics, so repeated
  /// runs accumulate cross-run distributions (total time, throughput,
  /// dead time).
  void RecordTo(MetricsRegistry& registry) const;
};

/// Convenience for the backend adapters: distills `trace` and folds it
/// into the observer's metrics registry. Safe on null observer or an
/// observer without metrics (no-op).
void ObserveRunSummary(RunObserver* observer, const RunTrace& trace);

}  // namespace wsq

#endif  // WSQ_BACKEND_RUN_STATS_H_
