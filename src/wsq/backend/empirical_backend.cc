#include "wsq/backend/empirical_backend.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "wsq/backend/run_stats.h"

namespace wsq {

EmpiricalBackend::EmpiricalBackend(EmpiricalSetup setup)
    : setup_(std::move(setup)) {}

std::unique_ptr<QueryBackend> EmpiricalBackend::Clone() const {
  return std::make_unique<EmpiricalBackend>(setup_);
}

Result<RunTrace> EmpiricalBackend::RunQuery(Controller* controller,
                                            const RunSpec& spec) {
  return RunQueryKeepingTuples(controller, spec, nullptr);
}

Result<RunTrace> EmpiricalBackend::RunQueryKeepingTuples(
    Controller* controller, const RunSpec& spec, std::vector<Tuple>* rows) {
  if (controller == nullptr) {
    return Status::InvalidArgument("EmpiricalBackend: null controller");
  }
  if (spec.is_schedule()) {
    return Status::FailedPrecondition(
        "EmpiricalBackend: profile schedules are not supported");
  }

  EmpiricalSetup run_setup = setup_;
  if (spec.seed != 0) run_setup.seed = spec.seed;
  Result<std::unique_ptr<QuerySession>> session =
      QuerySession::Create(std::move(run_setup));
  if (!session.ok()) return session.status();

  RunObserver* observer = ResolveObserver(spec);
  if (observer != nullptr) {
    // The empirical load model is static per run; one sample marks the
    // level this run executed under (jobs + queries, incl. this one).
    observer->OnServerLoadLevel(
        session.value()->clock().NowMicros(),
        setup_.load.concurrent_jobs + setup_.load.concurrent_queries);
  }
  Result<FetchOutcome> outcome =
      session.value()->Execute(controller, rows, observer);
  if (!outcome.ok()) return outcome.status();
  const FetchOutcome& fetch = outcome.value();

  RunTrace trace;
  trace.backend_name = "empirical";
  trace.controller_name = controller->name();
  trace.total_time_ms = fetch.total_time_ms;
  trace.total_blocks = fetch.total_blocks;
  trace.total_tuples = fetch.total_tuples;
  trace.total_retries = fetch.retries;
  trace.steps.reserve(fetch.trace.size());
  for (const BlockTrace& block : fetch.trace) {
    RunStep step;
    step.step = block.block_index;
    step.requested_size = block.requested_size;
    step.received_tuples = block.received_tuples;
    step.block_time_ms = block.response_time_ms;
    step.per_tuple_ms =
        block.response_time_ms /
        static_cast<double>(std::max<int64_t>(block.received_tuples, 1));
    step.retries = block.retries;
    step.adaptivity_step = block.adaptivity_steps;
    trace.steps.push_back(step);
  }
  ObserveRunSummary(observer, trace);
  return trace;
}

}  // namespace wsq
