#include "wsq/backend/empirical_backend.h"

#include <memory>
#include <optional>
#include <utility>

#include "wsq/backend/fetch_trace.h"
#include "wsq/backend/run_stats.h"
#include "wsq/fault/fault_injector.h"

namespace wsq {

EmpiricalBackend::EmpiricalBackend(EmpiricalSetup setup)
    : setup_(std::move(setup)) {}

std::unique_ptr<QueryBackend> EmpiricalBackend::Clone() const {
  return std::make_unique<EmpiricalBackend>(setup_);
}

Result<RunTrace> EmpiricalBackend::RunQuery(Controller* controller,
                                            const RunSpec& spec) {
  return RunQueryKeepingTuples(controller, spec, nullptr);
}

Result<RunTrace> EmpiricalBackend::RunQueryKeepingTuples(
    Controller* controller, const RunSpec& spec, std::vector<Tuple>* rows) {
  if (controller == nullptr) {
    return Status::InvalidArgument("EmpiricalBackend: null controller");
  }
  if (spec.is_schedule()) {
    return Status::FailedPrecondition(
        "EmpiricalBackend: profile schedules are not supported");
  }

  EmpiricalSetup run_setup = setup_;
  if (spec.seed != 0) run_setup.seed = spec.seed;
  const uint64_t run_seed = run_setup.seed;
  Result<std::unique_ptr<QuerySession>> session =
      QuerySession::Create(std::move(run_setup));
  if (!session.ok()) return session.status();

  // Chaos layer: both streams derive from the *effective* run seed, so
  // parallel lanes (seed = base + run * 104729) replay the identical
  // fault sequence as the serial path — and as the other backends.
  std::optional<FaultInjector> injector;
  std::optional<ResiliencePolicy> policy;
  if (spec.fault_plan != nullptr && !spec.fault_plan->empty()) {
    WSQ_RETURN_IF_ERROR(spec.fault_plan->Validate());
    injector.emplace(*spec.fault_plan, run_seed);
  }
  if (injector.has_value() || spec.resilience != nullptr) {
    const ResilienceConfig resilience =
        spec.resilience != nullptr ? *spec.resilience : ResilienceConfig{};
    WSQ_RETURN_IF_ERROR(resilience.Validate());
    policy.emplace(resilience, run_seed);
  }

  RunObserver* observer = ResolveObserver(spec);
  if (observer != nullptr) {
    // The empirical load model is static per run; one sample marks the
    // level this run executed under (jobs + queries, incl. this one).
    observer->OnServerLoadLevel(
        session.value()->clock().NowMicros(),
        setup_.load.concurrent_jobs + setup_.load.concurrent_queries);
  }
  Result<FetchOutcome> outcome = session.value()->Execute(
      controller, rows, observer, policy.has_value() ? &*policy : nullptr,
      injector.has_value() ? &*injector : nullptr);
  if (!outcome.ok()) return outcome.status();

  RunTrace trace =
      RunTraceFromFetch(outcome.value(), "empirical", controller->name());
  if (injector.has_value()) trace.fault_log = injector->log();
  if (policy.has_value()) trace.breaker_trips = policy->breaker_trips();
  ObserveRunSummary(observer, trace);
  return trace;
}

}  // namespace wsq
