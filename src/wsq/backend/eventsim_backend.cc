#include "wsq/backend/eventsim_backend.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "wsq/backend/run_stats.h"
#include "wsq/fault/fault_injector.h"

namespace wsq {

EventSimBackend::EventSimBackend(const EventSimConfig& config,
                                 int64_t dataset_tuples, double start_time_ms,
                                 std::vector<BackgroundClientSpec> background)
    : config_(config),
      dataset_tuples_(dataset_tuples),
      start_time_ms_(start_time_ms),
      background_(std::move(background)) {}

std::unique_ptr<QueryBackend> EventSimBackend::Clone() const {
  return std::make_unique<EventSimBackend>(config_, dataset_tuples_,
                                           start_time_ms_, background_);
}

Result<RunTrace> EventSimBackend::RunQuery(Controller* controller,
                                           const RunSpec& spec) {
  if (controller == nullptr) {
    return Status::InvalidArgument("EventSimBackend: null controller");
  }
  if (spec.is_schedule()) {
    return Status::FailedPrecondition(
        "EventSimBackend: profile schedules are not supported");
  }

  EventSimConfig run_config = config_;
  if (spec.seed != 0) run_config.seed = spec.seed;

  // Tracked client first, then the background fleet with fresh
  // controllers owned for the duration of the run.
  RunObserver* observer = ResolveObserver(spec);

  // Chaos layer: only the tracked client sees faults. Both streams
  // derive from the *effective* run seed, so parallel lanes (seed =
  // base + run * 104729) replay the identical fault sequence.
  std::optional<FaultInjector> injector;
  std::optional<ResiliencePolicy> policy;
  if (spec.fault_plan != nullptr && !spec.fault_plan->empty()) {
    WSQ_RETURN_IF_ERROR(spec.fault_plan->Validate());
    injector.emplace(*spec.fault_plan, run_config.seed);
  }
  if (injector.has_value() || spec.resilience != nullptr) {
    const ResilienceConfig resilience =
        spec.resilience != nullptr ? *spec.resilience : ResilienceConfig{};
    WSQ_RETURN_IF_ERROR(resilience.Validate());
    policy.emplace(resilience, run_config.seed);
  }

  std::vector<std::unique_ptr<Controller>> background_controllers;
  std::vector<ClientSpec> clients;
  // Only the tracked foreground client is observed; the background fleet
  // exists to generate load, not data.
  clients.push_back({dataset_tuples_, controller, start_time_ms_, observer,
                     injector.has_value() ? &*injector : nullptr,
                     policy.has_value() ? &*policy : nullptr});
  for (const BackgroundClientSpec& spec_bg : background_) {
    if (!spec_bg.make_controller) {
      return Status::InvalidArgument(
          "EventSimBackend: background client without a factory");
    }
    background_controllers.push_back(spec_bg.make_controller());
    if (background_controllers.back() == nullptr) {
      return Status::InvalidArgument(
          "EventSimBackend: background factory returned null");
    }
    clients.push_back({spec_bg.dataset_tuples,
                       background_controllers.back().get(),
                       spec_bg.start_time_ms});
  }

  Result<std::vector<ClientOutcome>> outcomes =
      RunEventSimulation(run_config, clients);
  if (!outcomes.ok()) return outcomes.status();
  const ClientOutcome& tracked = outcomes.value().front();

  RunTrace trace;
  trace.backend_name = "eventsim";
  trace.controller_name = controller->name();
  trace.total_time_ms = tracked.response_time_ms;
  trace.total_blocks = tracked.total_blocks;
  trace.total_tuples = tracked.total_tuples;
  trace.total_retries = tracked.total_retries;
  trace.total_retry_time_ms = tracked.retry_time_ms;
  if (injector.has_value()) trace.fault_log = injector->log();
  if (policy.has_value()) trace.breaker_trips = policy->breaker_trips();
  trace.steps.reserve(tracked.block_sizes.size());
  for (size_t i = 0; i < tracked.block_sizes.size(); ++i) {
    RunStep step;
    step.step = static_cast<int64_t>(i);
    // The event sim clamps the commanded size to the remaining tuples
    // before the request leaves, so requested == received.
    step.requested_size = tracked.block_sizes[i];
    step.received_tuples = tracked.block_sizes[i];
    if (i < tracked.block_times_ms.size()) {
      step.block_time_ms = tracked.block_times_ms[i];
      step.per_tuple_ms =
          step.block_time_ms /
          static_cast<double>(std::max<int64_t>(step.received_tuples, 1));
    }
    if (i < tracked.adaptivity_steps.size()) {
      step.adaptivity_step = tracked.adaptivity_steps[i];
    }
    if (i < tracked.block_retries.size()) {
      step.retries = tracked.block_retries[i];
    }
    trace.steps.push_back(step);
  }
  ObserveRunSummary(observer, trace);
  return trace;
}

}  // namespace wsq
