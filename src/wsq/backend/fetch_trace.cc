#include "wsq/backend/fetch_trace.h"

#include <algorithm>
#include <utility>

namespace wsq {

RunTrace RunTraceFromFetch(const FetchOutcome& fetch,
                           std::string backend_name,
                           std::string controller_name) {
  RunTrace trace;
  trace.backend_name = std::move(backend_name);
  trace.controller_name = std::move(controller_name);
  trace.total_time_ms = fetch.total_time_ms;
  trace.total_blocks = fetch.total_blocks;
  trace.total_tuples = fetch.total_tuples;
  trace.total_retries = fetch.retries;
  trace.session_retries = fetch.session_retries;
  trace.total_retry_time_ms = fetch.retry_time_ms;
  trace.steps.reserve(fetch.trace.size());
  for (const BlockTrace& block : fetch.trace) {
    RunStep step;
    step.step = block.block_index;
    step.requested_size = block.requested_size;
    step.received_tuples = block.received_tuples;
    step.block_time_ms = block.response_time_ms;
    step.per_tuple_ms =
        block.response_time_ms /
        static_cast<double>(std::max<int64_t>(block.received_tuples, 1));
    step.retries = block.retries;
    step.adaptivity_step = block.adaptivity_steps;
    trace.steps.push_back(step);
  }
  return trace;
}

}  // namespace wsq
