#ifndef WSQ_BACKEND_LIVE_BACKEND_H_
#define WSQ_BACKEND_LIVE_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "wsq/backend/query_backend.h"
#include "wsq/client/tcp_ws_client.h"
#include "wsq/relation/query.h"
#include "wsq/relation/schema.h"
#include "wsq/relation/tuple.h"

namespace wsq {

/// Everything needed to point the live stack at a running wsqd server.
struct LiveSetup {
  std::string host = "127.0.0.1";
  int port = 0;
  ScanProjectQuery query;
  /// Transport options; `client_options.codec` selects what the
  /// connection handshake advertises (--codec=binary upgrades the block
  /// path when the server agrees).
  TcpWsClientOptions client_options;
  /// Retry budget when RunSpec carries no ResilienceConfig (matches the
  /// legacy BlockFetcher default).
  int max_retries_per_call = 2;
  /// Output schema of `query` (table schema after projection), needed
  /// only to deserialize result rows in RunQueryKeepingTuples; traces
  /// don't require it. The server does not ship schemas — the caller
  /// knows what it asked for.
  std::shared_ptr<Schema> output_schema;
  /// Base seed for the resilience policy's jitter stream when
  /// RunSpec::seed is 0.
  uint64_t seed = 1;
};

/// QueryBackend over a *real network*: the paper's Algorithm 1 pull loop
/// (the same BlockFetcher the empirical stack uses) driven through a
/// TcpWsClient against a wsqd server, timed on the wall clock. All
/// controllers, the resilience policy, and the observability layer run
/// unchanged — per-block times are genuine round-trip measurements, and
/// the network lane of the obs layer carries real microseconds.
///
/// Differences from the simulated backends, by necessity:
///  * traces are not reproducible across runs (wall time is not seeded);
///  * RunSpec::fault_plan is rejected — on the live path chaos is
///    injected *server-side* (wsqd --fault-plan), where a fault can
///    actually tear down a TCP connection;
///  * profile schedules are unsupported (there is no profile to swap).
class LiveBackend final : public QueryBackend {
 public:
  explicit LiveBackend(LiveSetup setup);

  std::string name() const override { return "live"; }

  /// Clones share the setup; every run opens its own connection, so
  /// clones are safe on concurrent lanes (the multi-client benchmark).
  std::unique_ptr<QueryBackend> Clone() const override;

  Result<RunTrace> RunQuery(Controller* controller,
                            const RunSpec& spec) override;

  /// Same as RunQuery but also deserializes and returns the result rows;
  /// requires LiveSetup::output_schema.
  Result<RunTrace> RunQueryKeepingTuples(Controller* controller,
                                         const RunSpec& spec,
                                         std::vector<Tuple>* rows);

  const LiveSetup& setup() const { return setup_; }

 private:
  LiveSetup setup_;
};

}  // namespace wsq

#endif  // WSQ_BACKEND_LIVE_BACKEND_H_
