#ifndef WSQ_BACKEND_FETCH_TRACE_H_
#define WSQ_BACKEND_FETCH_TRACE_H_

#include <string>

#include "wsq/backend/run_trace.h"
#include "wsq/client/block_fetcher.h"

namespace wsq {

/// Converts a BlockFetcher `FetchOutcome` into the canonical `RunTrace`.
/// Shared by every backend that drives the real pull loop (the empirical
/// stack over the simulated transport, the live stack over TCP), so the
/// two produce field-for-field comparable traces by construction.
/// Fills everything derivable from the outcome; callers add
/// backend-specific extras (fault_log, breaker_trips) afterwards.
RunTrace RunTraceFromFetch(const FetchOutcome& fetch,
                           std::string backend_name,
                           std::string controller_name);

}  // namespace wsq

#endif  // WSQ_BACKEND_FETCH_TRACE_H_
