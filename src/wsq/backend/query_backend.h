#ifndef WSQ_BACKEND_QUERY_BACKEND_H_
#define WSQ_BACKEND_QUERY_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wsq/backend/run_trace.h"
#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/fault/fault_plan.h"
#include "wsq/fault/resilience_policy.h"
#include "wsq/obs/run_observer.h"
#include "wsq/sim/profile.h"

namespace wsq {

/// Parameters of one query run through a `QueryBackend`.
struct RunSpec {
  /// Seed for this run; repeated-run harnesses vary it so runs are
  /// independent. 0 means "use the backend's configured base seed".
  uint64_t seed = 0;

  /// Observability sink for this run (metrics + trace events), or null
  /// to fall back to the process-global observer (see
  /// SetGlobalRunObserver). Not owned; must outlive the run. When both
  /// are null — the default — backends emit nothing and take a single
  /// pointer test per event site.
  RunObserver* observer = nullptr;

  /// Optional profile-schedule section (the paper's Fig. 8 methodology):
  /// when `total_steps` > 0 the run is a long-lived query of exactly
  /// `total_steps` adaptivity steps where `schedule[i]` is active for
  /// steps [i * steps_per_profile, (i+1) * steps_per_profile) and the
  /// last entry stays active through the end; the dataset is treated as
  /// unbounded. Only backends with SupportsSchedules() can execute it —
  /// the others return kFailedPrecondition.
  std::vector<const ResponseProfile*> schedule;
  int64_t steps_per_profile = 0;
  int64_t total_steps = 0;

  /// Scripted chaos for this run, honored by every backend: the plan is
  /// replayed by a per-run FaultInjector seeded from (plan.seed, the
  /// effective run seed), so repeated-run harnesses and parallel lanes
  /// replay identical fault sequences. Null (the default) = no faults.
  /// Not owned; must outlive the run.
  const FaultPlan* fault_plan = nullptr;

  /// Resilience policy configuration for this run's pull loop (retry
  /// budget, backoff, deadlines, circuit breaker). Null = the legacy
  /// behavior (ResilienceConfig defaults: 2 retries, no backoff, no
  /// breaker). Not owned; must outlive the run.
  const ResilienceConfig* resilience = nullptr;

  bool is_schedule() const { return total_steps > 0; }
};

/// The observer a backend should emit into for `spec`: the per-run one
/// when set, else the process-global one, else null (observability off).
inline RunObserver* ResolveObserver(const RunSpec& spec) {
  return spec.observer != nullptr ? spec.observer : GlobalRunObserver();
}

/// One execution stack that can drain a query under a block-size
/// controller — the unifying interface over the reproduction's three
/// methodologies (mirroring the paper's dual MATLAB-simulator /
/// physical-testbed evaluation):
///
///  * ProfileBackend   — profile-driven SimEngine (Sec. III-C / IV-B);
///  * EventSimBackend  — event-driven processor-sharing concurrency sim;
///  * EmpiricalBackend — the full SOAP client/server stack (testbed
///    analogue).
///
/// All of them run the paper's Algorithm 1 pull loop and report the
/// canonical `RunTrace`, so the same controller factory can be
/// cross-validated on every stack through one code path.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  /// Short, stable identifier ("profile", "eventsim", "empirical").
  virtual std::string name() const = 0;

  /// True when RunQuery can execute RunSpec::schedule sections.
  virtual bool SupportsSchedules() const { return false; }

  /// An independent, equivalently-configured backend for a concurrent
  /// run lane, or null when the backend cannot be replicated (the
  /// parallel harness then falls back to serial execution). A clone
  /// shares only immutable inputs with its source (profiles, tables,
  /// configs); every piece of per-run mutable state — RNG streams,
  /// simulated clocks, observability time cursors — is private to the
  /// clone, so clones may run on different threads concurrently.
  /// RunQuery(seed) on a clone returns the same RunTrace as on the
  /// source, which is what keeps parallel figure output byte-identical
  /// to the serial path.
  virtual std::unique_ptr<QueryBackend> Clone() const { return nullptr; }

  /// Drains one query under `controller` (not reset first; callers own
  /// reset policy). The controller must outlive the call.
  virtual Result<RunTrace> RunQuery(Controller* controller,
                                    const RunSpec& spec) = 0;
};

}  // namespace wsq

#endif  // WSQ_BACKEND_QUERY_BACKEND_H_
