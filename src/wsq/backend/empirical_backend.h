#ifndef WSQ_BACKEND_EMPIRICAL_BACKEND_H_
#define WSQ_BACKEND_EMPIRICAL_BACKEND_H_

#include <vector>

#include "wsq/backend/query_backend.h"
#include "wsq/client/query_session.h"
#include "wsq/relation/tuple.h"

namespace wsq {

/// QueryBackend over the full simulated SOAP stack (`QuerySession` +
/// `BlockFetcher`) — the C++ analogue of the paper's physical OGSA-DAI
/// testbed. Each run stands up a fresh client/server stack from the
/// setup so RunSpec::seed fully determines link jitter, load and
/// failures; runs are independent, like re-running the testbed
/// experiment.
class EmpiricalBackend final : public QueryBackend {
 public:
  explicit EmpiricalBackend(EmpiricalSetup setup);

  std::string name() const override { return "empirical"; }

  /// Clone shares the setup (the table via shared_ptr — it is read-only
  /// during queries); every run stands up a fresh client/server stack,
  /// so clones are safe on concurrent lanes.
  std::unique_ptr<QueryBackend> Clone() const override;

  Result<RunTrace> RunQuery(Controller* controller,
                            const RunSpec& spec) override;

  /// Same as RunQuery but also deserializes and returns the result rows
  /// (examples want the data; benches only want the trace).
  Result<RunTrace> RunQueryKeepingTuples(Controller* controller,
                                         const RunSpec& spec,
                                         std::vector<Tuple>* rows);

  const EmpiricalSetup& setup() const { return setup_; }

 private:
  EmpiricalSetup setup_;
};

}  // namespace wsq

#endif  // WSQ_BACKEND_EMPIRICAL_BACKEND_H_
