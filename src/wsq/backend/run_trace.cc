#include "wsq/backend/run_trace.h"

#include <cmath>

namespace wsq {

std::vector<int64_t> RunTrace::RequestedSizes() const {
  std::vector<int64_t> sizes;
  sizes.reserve(steps.size());
  for (const RunStep& step : steps) {
    sizes.push_back(step.requested_size);
  }
  return sizes;
}

int64_t RunTrace::final_block_size() const {
  return steps.empty() ? 0 : steps.back().requested_size;
}

Status RunTrace::CheckConsistent() const {
  if (static_cast<int64_t>(steps.size()) != total_blocks) {
    return Status::Internal("RunTrace: steps.size() != total_blocks");
  }
  int64_t tuples = 0;
  int64_t retries = 0;
  double block_time = 0.0;
  int64_t last_adaptivity = 0;
  for (const RunStep& step : steps) {
    if (step.requested_size < 1) {
      return Status::Internal("RunTrace: requested_size < 1");
    }
    if (step.received_tuples < 0 ||
        step.received_tuples > step.requested_size) {
      return Status::Internal(
          "RunTrace: received_tuples outside [0, requested_size]");
    }
    if (step.per_tuple_ms < 0.0 || step.block_time_ms < 0.0 ||
        step.retries < 0) {
      return Status::Internal("RunTrace: negative cost or retries");
    }
    if (step.adaptivity_step < last_adaptivity) {
      return Status::Internal("RunTrace: adaptivity steps not monotone");
    }
    last_adaptivity = step.adaptivity_step;
    tuples += step.received_tuples;
    retries += step.retries;
    block_time += step.block_time_ms;
  }
  if (tuples != total_tuples) {
    return Status::Internal("RunTrace: per-step tuples != total_tuples");
  }
  if (session_retries < 0) {
    return Status::Internal("RunTrace: negative session_retries");
  }
  if (retries + session_retries != total_retries) {
    return Status::Internal(
        "RunTrace: step retries + session_retries != total_retries");
  }
  if (total_retry_time_ms < 0.0) {
    return Status::Internal("RunTrace: negative total_retry_time_ms");
  }
  if (breaker_trips < 0) {
    return Status::Internal("RunTrace: negative breaker_trips");
  }
  int64_t last_fault_block = -1;
  for (const InjectedFault& fault : fault_log) {
    if (fault.block_index < 0) {
      return Status::Internal("RunTrace: fault_log block_index < 0");
    }
    if (fault.block_index < last_fault_block) {
      return Status::Internal("RunTrace: fault_log not in injection order");
    }
    last_fault_block = fault.block_index;
  }
  // The retry-time accounting invariant (see total_retry_time_ms):
  // completed-block time plus retry dead time never exceeds the
  // end-to-end total; session management may add more dead time on top,
  // but never the other way around (allow rounding slack).
  if (block_time + total_retry_time_ms >
      total_time_ms * (1.0 + 1e-9) + 1e-6) {
    return Status::Internal(
        "RunTrace: block time + retry time exceeds total time");
  }
  return Status::Ok();
}

}  // namespace wsq
