#include "wsq/backend/experiment.h"

#include <algorithm>
#include <memory>

#include "wsq/backend/profile_backend.h"

namespace wsq {
namespace {

/// Keeps repeated runs independent while staying reproducible; the
/// stride predates the backend layer, so historical figures are
/// bit-identical.
constexpr uint64_t kRunSeedStride = 104729;

/// Folds per-run step traces into the summary's per-step mean decisions.
void FoldDecisions(const std::vector<std::vector<int64_t>>& per_run_decisions,
                   RepeatedRunSummary* summary) {
  if (per_run_decisions.empty()) return;
  size_t min_len = per_run_decisions.front().size();
  for (const auto& run : per_run_decisions) {
    min_len = std::min(min_len, run.size());
  }
  summary->mean_decision_per_step.assign(min_len, 0.0);
  for (const auto& run : per_run_decisions) {
    for (size_t i = 0; i < min_len; ++i) {
      summary->mean_decision_per_step[i] +=
          static_cast<double>(run[i]) /
          static_cast<double>(per_run_decisions.size());
    }
  }
}

/// Shared driver: `spec` carries everything but the per-run seed.
Result<RepeatedRunSummary> RunMany(const ControllerFactoryFn& make_controller,
                                   QueryBackend& backend, RunSpec spec,
                                   int runs, uint64_t base_seed) {
  if (runs < 1) {
    return Status::InvalidArgument("RunRepeated: runs must be >= 1");
  }
  RepeatedRunSummary summary;
  std::vector<std::vector<int64_t>> decisions;
  decisions.reserve(static_cast<size_t>(runs));

  for (int run = 0; run < runs; ++run) {
    std::unique_ptr<Controller> controller = make_controller();
    if (controller == nullptr) {
      return Status::InvalidArgument("RunRepeated: factory returned null");
    }
    if (run == 0) summary.controller_name = controller->name();

    spec.seed = base_seed + static_cast<uint64_t>(run) * kRunSeedStride;
    Result<RunTrace> trace = backend.RunQuery(controller.get(), spec);
    if (!trace.ok()) return trace.status();

    summary.total_time_ms.Add(trace.value().total_time_ms);
    std::vector<int64_t> run_decisions = trace.value().RequestedSizes();
    if (!run_decisions.empty()) {
      summary.final_block_size.Add(
          static_cast<double>(run_decisions.back()));
    }
    decisions.push_back(std::move(run_decisions));
  }
  FoldDecisions(decisions, &summary);
  return summary;
}

}  // namespace

double RepeatedRunSummary::NormalizedMean(double optimum_ms) const {
  if (optimum_ms <= 0.0) return 0.0;
  return total_time_ms.mean() / optimum_ms;
}

Result<RepeatedRunSummary> RunRepeated(
    const ControllerFactoryFn& make_controller, QueryBackend& backend,
    int runs, uint64_t base_seed) {
  return RunMany(make_controller, backend, RunSpec{}, runs, base_seed);
}

Result<RepeatedRunSummary> RunRepeatedSchedule(
    const ControllerFactoryFn& make_controller, QueryBackend& backend,
    const std::vector<const ResponseProfile*>& schedule,
    int64_t steps_per_profile, int64_t total_steps, int runs,
    uint64_t base_seed) {
  if (!backend.SupportsSchedules()) {
    return Status::FailedPrecondition("RunRepeatedSchedule: backend '" +
                                      backend.name() +
                                      "' does not support schedules");
  }
  RunSpec spec;
  spec.schedule = schedule;
  spec.steps_per_profile = steps_per_profile;
  spec.total_steps = total_steps;
  return RunMany(make_controller, backend, std::move(spec), runs, base_seed);
}

Result<RepeatedRunSummary> RunRepeated(
    const ControllerFactoryFn& make_controller,
    const ResponseProfile& profile, int runs, const SimOptions& options) {
  ProfileBackend backend(profile, options);
  return RunRepeated(make_controller, backend, runs, options.seed);
}

Result<RepeatedRunSummary> RunRepeatedSchedule(
    const ControllerFactoryFn& make_controller,
    const std::vector<const ResponseProfile*>& schedule,
    int64_t steps_per_profile, int64_t total_steps, int runs,
    const SimOptions& options) {
  ProfileBackend backend(nullptr, options);
  return RunRepeatedSchedule(make_controller, backend, schedule,
                             steps_per_profile, total_steps, runs,
                             options.seed);
}

}  // namespace wsq
