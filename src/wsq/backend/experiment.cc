#include "wsq/backend/experiment.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "wsq/backend/profile_backend.h"
#include "wsq/exec/exec_context.h"
#include "wsq/exec/parallel_runner.h"

namespace wsq {
namespace {

/// Keeps repeated runs independent while staying reproducible; the
/// stride predates the backend layer, so historical figures are
/// bit-identical.
constexpr uint64_t kRunSeedStride = 104729;

/// Folds per-run step traces into the summary's per-step mean decisions.
void FoldDecisions(const std::vector<std::vector<int64_t>>& per_run_decisions,
                   RepeatedRunSummary* summary) {
  if (per_run_decisions.empty()) return;
  size_t min_len = per_run_decisions.front().size();
  for (const auto& run : per_run_decisions) {
    min_len = std::min(min_len, run.size());
  }
  summary->mean_decision_per_step.assign(min_len, 0.0);
  for (const auto& run : per_run_decisions) {
    for (size_t i = 0; i < min_len; ++i) {
      summary->mean_decision_per_step[i] +=
          static_cast<double>(run[i]) /
          static_cast<double>(per_run_decisions.size());
    }
  }
}

/// Shared driver: `spec` carries everything but the per-run seed. The
/// runs execute through the exec layer — serial on one lane, fanned out
/// over exec::DefaultJobs() lanes otherwise — and the traces come back
/// in run order, so the folds below accumulate in exactly the
/// historical serial sequence whatever the lane count. That ordering is
/// what keeps figure output byte-identical between --jobs=1 and
/// --jobs=N.
Result<RepeatedRunSummary> RunMany(const ControllerFactoryFn& make_controller,
                                   QueryBackend& backend, RunSpec spec,
                                   int runs, uint64_t base_seed) {
  Result<std::vector<RunTrace>> traces =
      exec::RunTraces(make_controller, backend, spec, runs, base_seed,
                      kRunSeedStride, exec::DefaultJobs());
  if (!traces.ok()) return traces.status();

  RepeatedRunSummary summary;
  summary.controller_name = traces.value().front().controller_name;
  std::vector<std::vector<int64_t>> decisions;
  decisions.reserve(static_cast<size_t>(runs));
  for (const RunTrace& trace : traces.value()) {
    summary.total_time_ms.Add(trace.total_time_ms);
    summary.total_retries += trace.total_retries;
    summary.retry_time_ms.Add(trace.total_retry_time_ms);
    summary.faults_injected += static_cast<int64_t>(trace.fault_log.size());
    summary.breaker_trips += trace.breaker_trips;
    std::vector<int64_t> run_decisions = trace.RequestedSizes();
    if (!run_decisions.empty()) {
      summary.final_block_size.Add(
          static_cast<double>(run_decisions.back()));
    }
    decisions.push_back(std::move(run_decisions));
  }
  FoldDecisions(decisions, &summary);
  return summary;
}

}  // namespace

double RepeatedRunSummary::NormalizedMean(double optimum_ms) const {
  if (optimum_ms <= 0.0) return 0.0;
  return total_time_ms.mean() / optimum_ms;
}

Result<RepeatedRunSummary> RunRepeated(
    const ControllerFactoryFn& make_controller, QueryBackend& backend,
    int runs, uint64_t base_seed) {
  return RunMany(make_controller, backend, RunSpec{}, runs, base_seed);
}

Result<RepeatedRunSummary> RunRepeated(
    const ControllerFactoryFn& make_controller, QueryBackend& backend,
    const RunSpec& proto_spec, int runs, uint64_t base_seed) {
  if (proto_spec.is_schedule()) {
    return Status::InvalidArgument(
        "RunRepeated: proto_spec carries a schedule; use "
        "RunRepeatedSchedule");
  }
  return RunMany(make_controller, backend, proto_spec, runs, base_seed);
}

Result<RepeatedRunSummary> RunRepeatedSchedule(
    const ControllerFactoryFn& make_controller, QueryBackend& backend,
    const std::vector<const ResponseProfile*>& schedule,
    int64_t steps_per_profile, int64_t total_steps, int runs,
    uint64_t base_seed) {
  if (!backend.SupportsSchedules()) {
    return Status::FailedPrecondition("RunRepeatedSchedule: backend '" +
                                      backend.name() +
                                      "' does not support schedules");
  }
  RunSpec spec;
  spec.schedule = schedule;
  spec.steps_per_profile = steps_per_profile;
  spec.total_steps = total_steps;
  return RunMany(make_controller, backend, std::move(spec), runs, base_seed);
}

Result<RepeatedRunSummary> RunRepeated(
    const ControllerFactoryFn& make_controller,
    const ResponseProfile& profile, int runs, const SimOptions& options) {
  ProfileBackend backend(profile, options);
  return RunRepeated(make_controller, backend, runs, options.seed);
}

Result<RepeatedRunSummary> RunRepeatedSchedule(
    const ControllerFactoryFn& make_controller,
    const std::vector<const ResponseProfile*>& schedule,
    int64_t steps_per_profile, int64_t total_steps, int runs,
    const SimOptions& options) {
  ProfileBackend backend(nullptr, options);
  return RunRepeatedSchedule(make_controller, backend, schedule,
                             steps_per_profile, total_steps, runs,
                             options.seed);
}

}  // namespace wsq
