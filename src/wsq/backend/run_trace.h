#ifndef WSQ_BACKEND_RUN_TRACE_H_
#define WSQ_BACKEND_RUN_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wsq/common/status.h"

namespace wsq {

/// Canonical per-block record of one query run, shared by every
/// execution backend. Subsumes the historical per-backend structs
/// (`SimStep`, `BlockTrace`, `ClientOutcome::block_sizes`): whichever
/// stack executed the query, one block of the pull loop becomes one
/// `RunStep`, so analysis and figure code never branches on the backend.
struct RunStep {
  /// 0-based block index within the run.
  int64_t step = 0;
  /// Block size the controller had commanded for this request.
  int64_t requested_size = 0;
  /// Tuples actually delivered (the last block of a bounded dataset may
  /// be short).
  int64_t received_tuples = 0;
  /// Per-tuple cost the controller observed for this block (ms/tuple) —
  /// the metric fed to Controller::NextBlockSize.
  double per_tuple_ms = 0.0;
  /// Wall time of the block: request issued -> response folded in (ms).
  double block_time_ms = 0.0;
  /// Calls retried after simulated timeouts while fetching this block
  /// (only the empirical stack injects failures today).
  int64_t retries = 0;
  /// Controller adaptivity steps completed *after* this block was folded
  /// in; lets analysis group blocks by adaptivity step. Fixed-size
  /// controllers always report 0.
  int64_t adaptivity_step = 0;
};

/// Canonical result of one query run through any `QueryBackend`.
struct RunTrace {
  /// Backend that produced the trace ("profile", "eventsim",
  /// "empirical").
  std::string backend_name;
  /// Controller::name() of the controller that drove the run.
  std::string controller_name;
  /// End-to-end response time (ms). May exceed the sum of per-block
  /// times: session open/close and retry timeouts are dead time that is
  /// charged to the query but belongs to no block.
  double total_time_ms = 0.0;
  int64_t total_blocks = 0;
  int64_t total_tuples = 0;
  int64_t total_retries = 0;
  std::vector<RunStep> steps;

  /// Commanded block size per step, in order — the y-series behind the
  /// paper's decision figures (Figs. 4-9).
  std::vector<int64_t> RequestedSizes() const;

  /// Size commanded for the last block, or 0 for an empty trace.
  int64_t final_block_size() const;

  /// Verifies the cross-field invariants every backend must uphold:
  /// steps match the totals, per-step fields are sane, block time never
  /// exceeds the end-to-end total, adaptivity steps are monotone.
  /// Returns kInternal naming the first violated invariant. This is the
  /// backend conformance contract; tests run it against all adapters.
  Status CheckConsistent() const;
};

}  // namespace wsq

#endif  // WSQ_BACKEND_RUN_TRACE_H_
