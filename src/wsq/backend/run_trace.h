#ifndef WSQ_BACKEND_RUN_TRACE_H_
#define WSQ_BACKEND_RUN_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/fault/fault_plan.h"

namespace wsq {

/// Canonical per-block record of one query run, shared by every
/// execution backend. Subsumes the historical per-backend structs
/// (`SimStep`, `BlockTrace`, `ClientOutcome::block_sizes`): whichever
/// stack executed the query, one block of the pull loop becomes one
/// `RunStep`, so analysis and figure code never branches on the backend.
struct RunStep {
  /// 0-based block index within the run.
  int64_t step = 0;
  /// Block size the controller had commanded for this request.
  int64_t requested_size = 0;
  /// Tuples actually delivered (the last block of a bounded dataset may
  /// be short).
  int64_t received_tuples = 0;
  /// Per-tuple cost the controller observed for this block (ms/tuple) —
  /// the metric fed to Controller::NextBlockSize.
  double per_tuple_ms = 0.0;
  /// Wall time of the block: request issued -> response folded in (ms).
  double block_time_ms = 0.0;
  /// Calls retried after failed exchanges (organic link drops or
  /// injected faults) while fetching this block. Block-only: session
  /// open/close retries are attributed to RunTrace::session_retries,
  /// never to a step.
  int64_t retries = 0;
  /// Controller adaptivity steps completed *after* this block was folded
  /// in; lets analysis group blocks by adaptivity step. Fixed-size
  /// controllers always report 0.
  int64_t adaptivity_step = 0;
};

/// Canonical result of one query run through any `QueryBackend`.
struct RunTrace {
  /// Backend that produced the trace ("profile", "eventsim",
  /// "empirical").
  std::string backend_name;
  /// Controller::name() of the controller that drove the run.
  std::string controller_name;
  /// End-to-end response time (ms). May exceed the sum of per-block
  /// times: session open/close and retry timeouts are dead time that is
  /// charged to the query but belongs to no block.
  double total_time_ms = 0.0;
  int64_t total_blocks = 0;
  int64_t total_tuples = 0;
  /// All retried exchanges of the run: block retries plus session
  /// retries. Invariant (CheckConsistent): the sum of per-step
  /// `retries` plus `session_retries` equals this exactly.
  int64_t total_retries = 0;
  /// Retries of the session open/close calls (empirical stack only;
  /// the simulated backends have no session exchanges and report 0).
  int64_t session_retries = 0;
  /// Dead time of all failed exchanges and backoff waits (ms).
  ///
  /// Retry-time accounting invariant, identical across backends: a
  /// failed exchange costs its (deadline-capped) timeout plus any
  /// backoff, charged to `total_time_ms` and to this field — but to no
  /// step's `block_time_ms`, which times only the completed exchange.
  /// Hence `sum(block_time_ms) + total_retry_time_ms <= total_time_ms`
  /// (CheckConsistent), with equality on backends that have no other
  /// dead time between blocks.
  double total_retry_time_ms = 0.0;
  /// Times the resilience policy's circuit breaker tripped open.
  int64_t breaker_trips = 0;
  /// Faults the chaos layer injected, in injection order — the artifact
  /// the conformance suite compares across backends: for a shared
  /// deterministic FaultPlan all three backends must log the identical
  /// sequence. Empty when the run had no fault plan.
  std::vector<InjectedFault> fault_log;
  std::vector<RunStep> steps;

  /// Commanded block size per step, in order — the y-series behind the
  /// paper's decision figures (Figs. 4-9).
  std::vector<int64_t> RequestedSizes() const;

  /// Size commanded for the last block, or 0 for an empty trace.
  int64_t final_block_size() const;

  /// Verifies the cross-field invariants every backend must uphold:
  /// steps match the totals, per-step fields are sane, block time never
  /// exceeds the end-to-end total, adaptivity steps are monotone.
  /// Returns kInternal naming the first violated invariant. This is the
  /// backend conformance contract; tests run it against all adapters.
  Status CheckConsistent() const;
};

}  // namespace wsq

#endif  // WSQ_BACKEND_RUN_TRACE_H_
