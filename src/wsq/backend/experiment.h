#ifndef WSQ_BACKEND_EXPERIMENT_H_
#define WSQ_BACKEND_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wsq/backend/query_backend.h"
#include "wsq/common/status.h"
#include "wsq/control/factories.h"
#include "wsq/sim/sim_engine.h"
#include "wsq/stats/running_stats.h"

namespace wsq {

/// Aggregate of repeated runs of one controller on one backend.
struct RepeatedRunSummary {
  std::string controller_name;
  /// Query response time across runs.
  RunningStats total_time_ms;
  /// Mean commanded block size at each adaptivity step, averaged across
  /// runs (the y-values of paper Figs. 4-9); truncated to the shortest
  /// run so every step has all runs contributing.
  std::vector<double> mean_decision_per_step;
  /// Final block size at the end of each run.
  RunningStats final_block_size;

  /// Chaos aggregates across runs (all zero without a fault plan):
  /// retried exchanges, their dead time, injected faults, breaker trips.
  int64_t total_retries = 0;
  RunningStats retry_time_ms;
  int64_t faults_injected = 0;
  int64_t breaker_trips = 0;

  /// total_time mean divided by `optimum_ms` — the paper's normalized
  /// response time (1.0 = post-mortem optimum).
  double NormalizedMean(double optimum_ms) const;
};

/// Runs `runs` independent queries of `make_controller()` on `backend`,
/// varying the per-run seed from `base_seed`. Works with any
/// QueryBackend — profile-driven, event-driven, or the full empirical
/// stack — so the same controller factory can be cross-validated on all
/// three through one code path.
///
/// Executes through the parallel experiment engine (`wsq/exec/`): with
/// exec::DefaultJobs() > 1 (what the bench `--jobs` flag sets) the runs
/// fan out over backend clones, one lane each; the summary is
/// byte-identical to the serial path whatever the lane count, because
/// per-run seeds and the fold order never depend on it.
Result<RepeatedRunSummary> RunRepeated(const ControllerFactoryFn& make_controller,
                                       QueryBackend& backend, int runs,
                                       uint64_t base_seed = 1);

/// Same, but `proto_spec` seeds every per-run RunSpec — the way to
/// thread a FaultPlan / ResilienceConfig (or an observer) through
/// repeated runs. Per-run seeds still derive from `base_seed`;
/// proto_spec.seed is ignored. Schedule fields must be unset (use
/// RunRepeatedSchedule). Pointed-to plan/config must outlive the call.
Result<RepeatedRunSummary> RunRepeated(const ControllerFactoryFn& make_controller,
                                       QueryBackend& backend,
                                       const RunSpec& proto_spec, int runs,
                                       uint64_t base_seed = 1);

/// Same but over a profile schedule of fixed total steps (Fig. 8);
/// requires backend.SupportsSchedules().
Result<RepeatedRunSummary> RunRepeatedSchedule(
    const ControllerFactoryFn& make_controller, QueryBackend& backend,
    const std::vector<const ResponseProfile*>& schedule,
    int64_t steps_per_profile, int64_t total_steps, int runs,
    uint64_t base_seed = 1);

/// Compatibility overloads predating QueryBackend: run on a
/// ProfileBackend built from `profile`/`options` (seeded from
/// options.seed). Behavior and per-run seeds are unchanged from the old
/// SimEngine-only harness.
Result<RepeatedRunSummary> RunRepeated(const ControllerFactoryFn& make_controller,
                                       const ResponseProfile& profile,
                                       int runs, const SimOptions& options);

Result<RepeatedRunSummary> RunRepeatedSchedule(
    const ControllerFactoryFn& make_controller,
    const std::vector<const ResponseProfile*>& schedule,
    int64_t steps_per_profile, int64_t total_steps, int runs,
    const SimOptions& options);

}  // namespace wsq

#endif  // WSQ_BACKEND_EXPERIMENT_H_
