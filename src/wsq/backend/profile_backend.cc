#include "wsq/backend/profile_backend.h"

#include <algorithm>
#include <optional>

#include "wsq/backend/run_stats.h"

namespace wsq {
namespace {

/// Folds a SimRunResult into the canonical trace. `dataset_tuples` < 0
/// marks an unbounded (schedule) run where every block is full-size.
RunTrace TraceFromSimResult(const SimRunResult& sim, int64_t dataset_tuples,
                            const Controller& controller) {
  RunTrace trace;
  trace.backend_name = "profile";
  trace.controller_name = controller.name();
  trace.total_time_ms = sim.total_time_ms;
  trace.total_blocks = sim.total_blocks;
  trace.total_tuples = sim.total_tuples;
  trace.total_retries = sim.total_retries;
  trace.total_retry_time_ms = sim.retry_time_ms;
  trace.steps.reserve(sim.steps.size());
  int64_t remaining = dataset_tuples;
  for (const SimStep& sim_step : sim.steps) {
    RunStep step;
    step.step = sim_step.step;
    step.requested_size = sim_step.block_size;
    step.received_tuples =
        dataset_tuples < 0
            ? sim_step.block_size
            : std::min<int64_t>(sim_step.block_size, remaining);
    step.per_tuple_ms = sim_step.per_tuple_ms;
    step.block_time_ms =
        sim_step.per_tuple_ms * static_cast<double>(step.received_tuples);
    step.adaptivity_step = sim_step.adaptivity_steps;
    step.retries = sim_step.retries;
    if (dataset_tuples >= 0) remaining -= step.received_tuples;
    trace.steps.push_back(step);
  }
  return trace;
}

}  // namespace

ProfileBackend::ProfileBackend(std::shared_ptr<const ResponseProfile> profile,
                               const SimOptions& options)
    : profile_(std::move(profile)), options_(options) {}

ProfileBackend::ProfileBackend(const ResponseProfile& profile,
                               const SimOptions& options)
    : profile_(std::shared_ptr<const ResponseProfile>(
          std::shared_ptr<const ResponseProfile>(), &profile)),
      options_(options) {}

std::unique_ptr<QueryBackend> ProfileBackend::Clone() const {
  auto clone = std::make_unique<ProfileBackend>(profile_, options_);
  clone->obs_time_cursor_micros_ = obs_time_cursor_micros_;
  return clone;
}

ProfileBackend ProfileBackend::FromConfiguration(const ConfiguredProfile& conf,
                                                 uint64_t seed) {
  SimOptions options;
  options.noise_amplitude = conf.noise_amplitude;
  options.seed = seed;
  return ProfileBackend(conf.profile, options);
}

Result<RunTrace> ProfileBackend::RunQuery(Controller* controller,
                                          const RunSpec& spec) {
  if (controller == nullptr) {
    return Status::InvalidArgument("ProfileBackend: null controller");
  }
  SimOptions run_options = options_;
  if (spec.seed != 0) run_options.seed = spec.seed;
  SimEngine engine(run_options);
  RunObserver* observer = ResolveObserver(spec);
  engine.set_observer(observer);
  engine.set_sim_time_micros(obs_time_cursor_micros_);

  // Chaos layer: both the injector and the policy derive their streams
  // from the *effective* run seed, so parallel lanes (seed = base +
  // run * 104729) replay the identical fault sequence as the serial path.
  std::optional<FaultInjector> injector;
  std::optional<ResiliencePolicy> policy;
  if (spec.fault_plan != nullptr && !spec.fault_plan->empty()) {
    WSQ_RETURN_IF_ERROR(spec.fault_plan->Validate());
    injector.emplace(*spec.fault_plan, run_options.seed);
  }
  if (injector.has_value() || spec.resilience != nullptr) {
    const ResilienceConfig config =
        spec.resilience != nullptr ? *spec.resilience : ResilienceConfig{};
    WSQ_RETURN_IF_ERROR(config.Validate());
    policy.emplace(config, run_options.seed);
  }
  engine.set_fault_injection(injector.has_value() ? &*injector : nullptr,
                             policy.has_value() ? &*policy : nullptr);

  if (spec.is_schedule()) {
    Result<SimRunResult> result = engine.RunSchedule(
        controller, spec.schedule, spec.steps_per_profile, spec.total_steps);
    if (!result.ok()) return result.status();
    obs_time_cursor_micros_ = engine.sim_time_micros();
    RunTrace trace =
        TraceFromSimResult(result.value(), /*dataset_tuples=*/-1, *controller);
    if (injector.has_value()) trace.fault_log = injector->log();
    if (policy.has_value()) trace.breaker_trips = policy->breaker_trips();
    ObserveRunSummary(observer, trace);
    return trace;
  }

  if (profile_ == nullptr) {
    return Status::FailedPrecondition(
        "ProfileBackend: no profile configured for a non-schedule run");
  }
  Result<SimRunResult> result = engine.RunQuery(controller, *profile_);
  if (!result.ok()) return result.status();
  obs_time_cursor_micros_ = engine.sim_time_micros();
  RunTrace trace = TraceFromSimResult(result.value(),
                                      profile_->dataset_tuples(), *controller);
  if (injector.has_value()) trace.fault_log = injector->log();
  if (policy.has_value()) trace.breaker_trips = policy->breaker_trips();
  ObserveRunSummary(observer, trace);
  return trace;
}

}  // namespace wsq
