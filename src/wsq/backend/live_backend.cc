#include "wsq/backend/live_backend.h"

#include <optional>
#include <utility>

#include "wsq/backend/fetch_trace.h"
#include "wsq/backend/run_stats.h"
#include "wsq/client/block_fetcher.h"
#include "wsq/relation/tuple_serializer.h"

namespace wsq {

LiveBackend::LiveBackend(LiveSetup setup) : setup_(std::move(setup)) {}

std::unique_ptr<QueryBackend> LiveBackend::Clone() const {
  return std::make_unique<LiveBackend>(setup_);
}

Result<RunTrace> LiveBackend::RunQuery(Controller* controller,
                                       const RunSpec& spec) {
  return RunQueryKeepingTuples(controller, spec, nullptr);
}

Result<RunTrace> LiveBackend::RunQueryKeepingTuples(Controller* controller,
                                                    const RunSpec& spec,
                                                    std::vector<Tuple>* rows) {
  if (controller == nullptr) {
    return Status::InvalidArgument("LiveBackend: null controller");
  }
  if (spec.is_schedule()) {
    return Status::FailedPrecondition(
        "LiveBackend: profile schedules are not supported");
  }
  if (spec.fault_plan != nullptr && !spec.fault_plan->empty()) {
    return Status::FailedPrecondition(
        "LiveBackend: client-side fault plans are not supported over a real "
        "network; inject faults server-side (wsqd --fault-plan)");
  }
  if (rows != nullptr && setup_.output_schema == nullptr) {
    return Status::FailedPrecondition(
        "LiveBackend: LiveSetup::output_schema is required to keep tuples");
  }

  const uint64_t run_seed = spec.seed != 0 ? spec.seed : setup_.seed;
  std::optional<ResiliencePolicy> policy;
  if (spec.resilience != nullptr) {
    WSQ_RETURN_IF_ERROR(spec.resilience->Validate());
    policy.emplace(*spec.resilience, run_seed);
  }

  TcpWsClient client(setup_.host, setup_.port, setup_.client_options);
  RunObserver* observer = ResolveObserver(spec);
  std::optional<BlockFetcher> fetcher;
  if (policy.has_value()) {
    fetcher.emplace(&client, controller, &*policy, /*injector=*/nullptr,
                    observer);
  } else {
    fetcher.emplace(&client, controller, setup_.max_retries_per_call,
                    observer);
  }

  std::optional<TupleSerializer> serializer;
  if (rows != nullptr) serializer.emplace(*setup_.output_schema);

  Result<FetchOutcome> outcome = fetcher->Run(
      setup_.query, serializer.has_value() ? &*serializer : nullptr, rows);
  if (!outcome.ok()) return outcome.status();

  RunTrace trace =
      RunTraceFromFetch(outcome.value(), "live", controller->name());
  if (policy.has_value()) trace.breaker_trips = policy->breaker_trips();
  ObserveRunSummary(observer, trace);
  return trace;
}

}  // namespace wsq
