#include "wsq/backend/run_stats.h"

#include <algorithm>

namespace wsq {

RunStats RunStats::FromTrace(const RunTrace& trace) {
  RunStats stats;
  stats.backend_name = trace.backend_name;
  stats.controller_name = trace.controller_name;
  stats.total_time_ms = trace.total_time_ms;
  stats.total_blocks = trace.total_blocks;
  stats.total_tuples = trace.total_tuples;
  stats.total_retries = trace.total_retries;
  stats.session_retries = trace.session_retries;
  stats.retry_time_ms = trace.total_retry_time_ms;
  stats.faults_injected = static_cast<int64_t>(trace.fault_log.size());
  stats.breaker_trips = trace.breaker_trips;

  double block_time_sum = 0.0;
  for (const RunStep& step : trace.steps) {
    stats.block_time_ms.Add(step.block_time_ms);
    stats.per_tuple_ms.Add(step.per_tuple_ms);
    stats.requested_size.Add(static_cast<double>(step.requested_size));
    block_time_sum += step.block_time_ms;
    stats.adaptivity_steps =
        std::max(stats.adaptivity_steps, step.adaptivity_step);
  }
  stats.dead_time_ms = std::max(0.0, trace.total_time_ms - block_time_sum);
  if (trace.total_time_ms > 0.0) {
    stats.throughput_tuples_per_s =
        static_cast<double>(trace.total_tuples) /
        (trace.total_time_ms / 1000.0);
  }
  return stats;
}

StateSnapshot RunStats::ToSnapshot() const {
  StateSnapshot snapshot;
  snapshot.Add("backend", backend_name);
  snapshot.Add("controller", controller_name);
  snapshot.Add("total_time_ms", total_time_ms);
  snapshot.Add("total_blocks", total_blocks);
  snapshot.Add("total_tuples", total_tuples);
  snapshot.Add("total_retries", total_retries);
  snapshot.Add("session_retries", session_retries);
  snapshot.Add("retry_time_ms", retry_time_ms);
  snapshot.Add("faults_injected", faults_injected);
  snapshot.Add("breaker_trips", breaker_trips);
  snapshot.Add("adaptivity_steps", adaptivity_steps);
  snapshot.Add("dead_time_ms", dead_time_ms);
  snapshot.Add("throughput_tuples_per_s", throughput_tuples_per_s);
  snapshot.Add("block_time_ms_mean", block_time_ms.mean());
  snapshot.Add("per_tuple_ms_mean", per_tuple_ms.mean());
  snapshot.Add("requested_size_mean", requested_size.mean());
  return snapshot;
}

void RunStats::RecordTo(MetricsRegistry& registry) const {
  registry.GetCounter("wsq.run.runs_total")->Increment();
  registry.GetCounter("wsq.run.tuples_total")->Increment(total_tuples);
  registry.GetCounter("wsq.run.retries_total")->Increment(total_retries);
  registry.GetCounter("wsq.run.session_retries_total")
      ->Increment(session_retries);
  registry.GetCounter("wsq.run.faults_injected_total")
      ->Increment(faults_injected);
  registry.GetCounter("wsq.run.breaker_trips_total")
      ->Increment(breaker_trips);
  registry.GetHistogram("wsq.run.retry_time_ms")->Record(retry_time_ms);
  registry.GetHistogram("wsq.run.total_time_ms")->Record(total_time_ms);
  registry.GetHistogram("wsq.run.dead_time_ms")->Record(dead_time_ms);
  registry.GetHistogram("wsq.run.throughput_tuples_per_s")
      ->Record(throughput_tuples_per_s);
  registry.GetGauge("wsq.run.last_total_blocks")
      ->Set(static_cast<double>(total_blocks));
  registry.GetGauge("wsq.run.last_adaptivity_steps")
      ->Set(static_cast<double>(adaptivity_steps));
}

void ObserveRunSummary(RunObserver* observer, const RunTrace& trace) {
  if (observer == nullptr || observer->metrics() == nullptr) return;
  RunStats::FromTrace(trace).RecordTo(*observer->metrics());
}

}  // namespace wsq
