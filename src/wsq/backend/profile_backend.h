#ifndef WSQ_BACKEND_PROFILE_BACKEND_H_
#define WSQ_BACKEND_PROFILE_BACKEND_H_

#include <memory>

#include "wsq/backend/query_backend.h"
#include "wsq/sim/profile_library.h"
#include "wsq/sim/sim_engine.h"

namespace wsq {

/// QueryBackend over the profile-driven `SimEngine` — the reproduction
/// of the paper's MATLAB simulation methodology. Each run constructs a
/// fresh engine so RunSpec::seed fully determines the noise stream.
class ProfileBackend final : public QueryBackend {
 public:
  /// `profile` may be null for a backend used exclusively for schedule
  /// runs (the profiles then come from RunSpec::schedule). `options.seed`
  /// is the base seed used when RunSpec::seed is 0.
  ProfileBackend(std::shared_ptr<const ResponseProfile> profile,
                 const SimOptions& options);

  /// Non-owning convenience: `profile` must outlive the backend.
  ProfileBackend(const ResponseProfile& profile, const SimOptions& options);

  /// Backend over a library configuration: its profile, its calibrated
  /// noise amplitude.
  static ProfileBackend FromConfiguration(const ConfiguredProfile& conf,
                                          uint64_t seed = 11);

  std::string name() const override { return "profile"; }
  bool SupportsSchedules() const override { return true; }

  /// Clone shares the (immutable) profile and options; each clone keeps
  /// its own simulated-time cursor, and every run constructs a fresh
  /// SimEngine anyway, so clones are safe on concurrent lanes.
  std::unique_ptr<QueryBackend> Clone() const override;

  Result<RunTrace> RunQuery(Controller* controller,
                            const RunSpec& spec) override;

  const ResponseProfile* profile() const { return profile_.get(); }
  const SimOptions& options() const { return options_; }

 private:
  std::shared_ptr<const ResponseProfile> profile_;
  SimOptions options_;
  /// Carries the engines' simulated-time cursor across runs so observer
  /// events from successive runs do not overlap at t=0.
  int64_t obs_time_cursor_micros_ = 0;
};

}  // namespace wsq

#endif  // WSQ_BACKEND_PROFILE_BACKEND_H_
