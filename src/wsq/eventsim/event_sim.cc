#include "wsq/eventsim/event_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

#include "wsq/common/random.h"
#include "wsq/eventsim/ps_server.h"

namespace wsq {
namespace {

/// Approximate request envelope size on the wire.
constexpr double kRequestBytes = 600.0;

enum class EventKind {
  kRequestArrivesAtServer,
  kResponseArrivesAtClient,
};

struct Event {
  double time_ms;
  int64_t seq;  // FIFO tiebreak for equal times
  EventKind kind;
  size_t client;

  bool operator>(const Event& other) const {
    if (time_ms != other.time_ms) return time_ms > other.time_ms;
    return seq > other.seq;
  }
};

struct ClientState {
  ClientSpec spec;
  int64_t remaining = 0;
  int64_t current_block = 0;     // tuples in the in-flight block
  double request_sent_at = 0.0;  // t1 of Algorithm 1
  double request_arrived_at = 0.0;  // server-side arrival of the request
  bool started = false;
  bool finished = false;
  /// Injected-fault state of the in-flight block, resolved at request
  /// send time (see ReplayFaults) and folded in when the response lands.
  int64_t pending_retries = 0;
  SuccessPerturbation pending_perturbation;
  bool perturbation_applied = false;
  ClientOutcome outcome;
};

/// Timeline ms -> trace-event microseconds.
int64_t Micros(double ms) { return std::llround(ms * 1000.0); }

class Simulation {
 public:
  Simulation(const EventSimConfig& config,
             const std::vector<ClientSpec>& specs)
      : config_(config), rng_(config.seed) {
    clients_.reserve(specs.size());
    for (const ClientSpec& spec : specs) {
      ClientState state;
      state.spec = spec;
      state.remaining = spec.dataset_tuples;
      clients_.push_back(std::move(state));
    }
  }

  Result<std::vector<ClientOutcome>> Run() {
    // Seed the timeline: each client's first request leaves at its start
    // time (delayed by any injected faults) and arrives one network leg
    // later.
    for (size_t i = 0; i < clients_.size(); ++i) {
      ClientState& client = clients_[i];
      client.current_block = std::min<int64_t>(
          client.spec.controller->initial_block_size(), client.remaining);
      double dead_ms = 0.0;
      WSQ_RETURN_IF_ERROR(
          ReplayFaults(client, client.spec.start_time_ms, &dead_ms));
      client.request_sent_at = client.spec.start_time_ms + dead_ms;
      Push(client.request_sent_at + RequestLegMs(), i,
           EventKind::kRequestArrivesAtServer);
    }

    while (!events_.empty() || server_.active_jobs() > 0) {
      const double next_external =
          events_.empty() ? std::numeric_limits<double>::infinity()
                          : events_.top().time_ms;
      const std::optional<double> next_completion =
          server_.NextCompletionTime();

      if (next_completion.has_value() && *next_completion <= next_external) {
        Result<std::optional<int64_t>> completed =
            server_.AdvanceTo(*next_completion);
        if (!completed.ok()) return completed.status();
        if (completed.value().has_value()) {
          WSQ_RETURN_IF_ERROR(OnJobComplete(*completed.value(),
                                            *next_completion));
        }
        continue;
      }
      if (events_.empty()) {
        return Status::Internal("event sim stalled with jobs in service");
      }

      const Event event = events_.top();
      events_.pop();
      // Safe: no completion earlier than this event exists.
      Result<std::optional<int64_t>> completed =
          server_.AdvanceTo(event.time_ms);
      if (!completed.ok()) return completed.status();
      if (completed.value().has_value()) {
        WSQ_RETURN_IF_ERROR(
            OnJobComplete(*completed.value(), event.time_ms));
      }

      switch (event.kind) {
        case EventKind::kRequestArrivesAtServer:
          WSQ_RETURN_IF_ERROR(OnRequestArrives(event));
          break;
        case EventKind::kResponseArrivesAtClient:
          WSQ_RETURN_IF_ERROR(OnResponseArrives(event));
          break;
      }
    }

    std::vector<ClientOutcome> outcomes;
    outcomes.reserve(clients_.size());
    for (ClientState& client : clients_) {
      if (!client.finished) {
        return Status::Internal("event sim ended with an unfinished client");
      }
      outcomes.push_back(std::move(client.outcome));
    }
    return outcomes;
  }

 private:
  void Push(double time_ms, size_t client, EventKind kind) {
    events_.push(Event{time_ms, next_seq_++, kind, client});
  }

  double Jitter() {
    return config_.jitter_sigma > 0.0
               ? rng_.LognormalMultiplier(config_.jitter_sigma)
               : 1.0;
  }

  double LegMs(double bytes) {
    const double transfer_ms =
        bytes * 8.0 / (config_.bandwidth_mbps * 1e6) * 1e3;
    return (config_.one_way_latency_ms + transfer_ms) * Jitter();
  }

  double RequestLegMs() { return LegMs(kRequestBytes); }

  double ResponseLegMs(int64_t tuples) {
    return LegMs(static_cast<double>(tuples) * config_.bytes_per_tuple);
  }

  /// Clients that have issued their first request and not finished —
  /// what the server's buffer is divided among.
  int ActiveSessions() const {
    int active = 0;
    for (const ClientState& client : clients_) {
      if (client.started && !client.finished) ++active;
    }
    return std::max(active, 1);
  }

  /// Solo CPU demand of serving one block of `tuples`.
  double BlockDemandMs(int64_t tuples) const {
    double demand = config_.per_request_cpu_ms +
                    config_.per_tuple_cpu_ms * static_cast<double>(tuples);
    const double buffer =
        config_.buffer_capacity_tuples /
        (1.0 + config_.query_buffer_shrink *
                   static_cast<double>(ActiveSessions() - 1));
    const double overshoot = static_cast<double>(tuples) - buffer;
    if (overshoot > 0.0) {
      demand += config_.paging_penalty_ms * overshoot * overshoot /
                std::sqrt(buffer);
    }
    return demand;
  }

  Status OnRequestArrives(const Event& event) {
    ClientState& client = clients_[event.client];
    client.started = true;
    client.request_arrived_at = event.time_ms;
    Result<int64_t> job = server_.Submit(
        event.time_ms, BlockDemandMs(client.current_block));
    if (!job.ok()) return job.status();
    job_to_client_.emplace(job.value(), event.client);
    if (RunObserver* observer = client.spec.observer) {
      observer->OnNetworkTransfer(Micros(client.request_sent_at),
                                  Micros(event.time_ms - client.request_sent_at));
      observer->OnServerQueueLength(Micros(event.time_ms),
                                    server_.active_jobs());
      observer->OnServerLoadLevel(Micros(event.time_ms), ActiveSessions());
    }
    return Status::Ok();
  }

  Status OnJobComplete(int64_t job_id, double now_ms) {
    auto it = job_to_client_.find(job_id);
    if (it == job_to_client_.end()) {
      return Status::Internal("completion for unknown job");
    }
    const size_t client_index = it->second;
    job_to_client_.erase(it);
    const ClientState& client = clients_[client_index];
    const double response_leg_ms = ResponseLegMs(client.current_block);
    Push(now_ms + response_leg_ms, client_index,
         EventKind::kResponseArrivesAtClient);
    if (RunObserver* observer = client.spec.observer) {
      observer->OnServerResidence(Micros(client.request_arrived_at),
                                  Micros(now_ms - client.request_arrived_at));
      observer->OnNetworkTransfer(Micros(now_ms), Micros(response_leg_ms));
      observer->OnServerQueueLength(Micros(now_ms), server_.active_jobs());
    }
    return Status::Ok();
  }

  /// Resolves the injected-fault attempt sequence for the block `client`
  /// is about to request at timeline time `send_at`: failed attempts and
  /// backoff become `*dead_ms` of send delay — dead time on the client's
  /// run clock, outside any block span. kUnavailable when the retry
  /// budget is exhausted.
  Status ReplayFaults(ClientState& client, double send_at, double* dead_ms) {
    *dead_ms = 0.0;
    client.pending_retries = 0;
    client.pending_perturbation = SuccessPerturbation{};
    client.perturbation_applied = false;
    if (client.spec.injector == nullptr) return Status::Ok();
    // The plan clock is the client's own run clock: time since its
    // start, matching "run start" on the other backends.
    const ExchangePlay play = PlayExchange(
        client.spec.injector, client.spec.policy,
        client.outcome.total_blocks, send_at - client.spec.start_time_ms,
        client.current_block, client.spec.observer, Micros(send_at));
    client.outcome.total_retries += play.retries;
    client.outcome.retry_time_ms += play.dead_time_ms;
    if (!play.completed) {
      return Status::Unavailable(
          "injected faults exhausted the retry budget at block " +
          std::to_string(client.outcome.total_blocks));
    }
    client.pending_retries = play.retries;
    client.pending_perturbation = play.perturbation;
    *dead_ms = play.dead_time_ms;
    return Status::Ok();
  }

  Status OnResponseArrives(const Event& event) {
    ClientState& client = clients_[event.client];
    // A pending latency spike / server stall extends the response path:
    // reschedule the arrival once by the perturbation's extra time, so
    // the client's whole subsequent timeline genuinely shifts.
    if (client.pending_perturbation.active() &&
        !client.perturbation_applied) {
      client.perturbation_applied = true;
      const double elapsed = event.time_ms - client.request_sent_at;
      const double extra =
          client.pending_perturbation.Apply(elapsed) - elapsed;
      if (extra > 0.0) {
        Push(event.time_ms + extra, event.client,
             EventKind::kResponseArrivesAtClient);
        return Status::Ok();
      }
    }
    const double elapsed_ms = event.time_ms - client.request_sent_at;
    const int64_t received = client.current_block;

    client.outcome.total_blocks += 1;
    client.outcome.total_tuples += received;
    client.outcome.block_sizes.push_back(received);
    client.outcome.block_times_ms.push_back(elapsed_ms);
    client.outcome.block_retries.push_back(client.pending_retries);
    client.remaining -= received;

    // Algorithm 1: the controller consumes the per-tuple cost of the
    // block that just arrived and names the next size.
    const double per_tuple_ms =
        elapsed_ms / static_cast<double>(std::max<int64_t>(received, 1));
    int64_t next_size = client.spec.controller->NextBlockSize(per_tuple_ms);
    client.outcome.adaptivity_steps.push_back(
        client.spec.controller->adaptivity_steps());
    if (client.spec.policy != nullptr) {
      next_size = client.spec.policy->GovernNextSize(next_size);
    }
    if (RunObserver* observer = client.spec.observer) {
      observer->OnBlock(Micros(client.request_sent_at), Micros(elapsed_ms),
                        received, received, per_tuple_ms,
                        client.pending_retries);
      observer->OnControllerDecision(
          Micros(event.time_ms), client.spec.controller->name(),
          client.spec.controller->DebugState(),
          client.spec.controller->adaptivity_steps(), next_size);
    }
    EmitBreakerTransitions(client.spec.policy, client.spec.observer,
                           Micros(event.time_ms));

    if (client.remaining <= 0) {
      client.finished = true;
      client.outcome.completion_time_ms = event.time_ms;
      client.outcome.response_time_ms =
          event.time_ms - client.spec.start_time_ms;
      return Status::Ok();
    }

    client.current_block = std::min<int64_t>(next_size, client.remaining);
    double dead_ms = 0.0;
    WSQ_RETURN_IF_ERROR(ReplayFaults(client, event.time_ms, &dead_ms));
    client.request_sent_at = event.time_ms + dead_ms;
    Push(client.request_sent_at + RequestLegMs(), event.client,
         EventKind::kRequestArrivesAtServer);
    return Status::Ok();
  }

  EventSimConfig config_;
  Random rng_;
  std::vector<ClientState> clients_;
  PsServer server_;
  std::map<int64_t, size_t> job_to_client_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      events_;
  int64_t next_seq_ = 0;
};

}  // namespace

Status EventSimConfig::Validate() const {
  if (one_way_latency_ms < 0.0) {
    return Status::InvalidArgument("latency must be >= 0");
  }
  if (bandwidth_mbps <= 0.0 || bytes_per_tuple <= 0.0) {
    return Status::InvalidArgument("bandwidth/tuple size must be > 0");
  }
  if (jitter_sigma < 0.0) {
    return Status::InvalidArgument("jitter sigma must be >= 0");
  }
  if (per_request_cpu_ms < 0.0 || per_tuple_cpu_ms < 0.0 ||
      paging_penalty_ms < 0.0) {
    return Status::InvalidArgument("cpu costs must be >= 0");
  }
  if (buffer_capacity_tuples <= 0.0 || query_buffer_shrink < 0.0) {
    return Status::InvalidArgument("buffer parameters invalid");
  }
  return Status::Ok();
}

Result<std::vector<ClientOutcome>> RunEventSimulation(
    const EventSimConfig& config, const std::vector<ClientSpec>& clients) {
  WSQ_RETURN_IF_ERROR(config.Validate());
  if (clients.empty()) {
    return Status::InvalidArgument("no clients");
  }
  for (const ClientSpec& spec : clients) {
    if (spec.controller == nullptr) {
      return Status::InvalidArgument("null controller in client spec");
    }
    if (spec.dataset_tuples < 1) {
      return Status::InvalidArgument("client dataset must be >= 1 tuple");
    }
    if (spec.start_time_ms < 0.0) {
      return Status::InvalidArgument("start time must be >= 0");
    }
  }
  Simulation simulation(config, clients);
  return simulation.Run();
}

}  // namespace wsq
