#ifndef WSQ_EVENTSIM_EVENT_SIM_H_
#define WSQ_EVENTSIM_EVENT_SIM_H_

#include <cstdint>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/fault/exchange_player.h"
#include "wsq/obs/run_observer.h"

namespace wsq {

/// Environment of the event-driven concurrency simulation. Unlike the
/// LoadModel shortcut (which folds concurrency into static multipliers),
/// this harness runs real concurrent client sessions against one
/// processor-sharing server on a shared timeline: clients genuinely slow
/// each other down, speed back up when others finish, and share the
/// server buffer dynamically. It exists to validate the shortcut and to
/// study arrival/departure transients (paper Fig. 2's "the server
/// received more load between the second and the third query").
struct EventSimConfig {
  /// One-way network latency per leg (ms).
  double one_way_latency_ms = 20.0;
  /// Dedicated per-client path bandwidth.
  double bandwidth_mbps = 9.0;
  double bytes_per_tuple = 120.0;
  /// Lognormal jitter sigma per network leg; 0 disables.
  double jitter_sigma = 0.0;

  /// Server CPU costs (solo service demand; concurrency emerges from
  /// processor sharing, NOT from multipliers).
  double per_request_cpu_ms = 3.0;
  double per_tuple_cpu_ms = 0.010;
  /// Paging penalty past the buffer; the effective buffer is the
  /// capacity divided among the sessions active at block-service time.
  double buffer_capacity_tuples = 9700.0;
  double paging_penalty_ms = 0.006;
  double query_buffer_shrink = 0.35;

  uint64_t seed = 1;

  Status Validate() const;
};

/// One concurrent client session.
struct ClientSpec {
  /// Tuples this client's query returns.
  int64_t dataset_tuples = 0;
  /// Controller driving this client's block sizes (not reset by the
  /// harness; one fresh controller per client). Must outlive the run.
  Controller* controller = nullptr;
  /// When the client issues its first request (ms on the shared
  /// timeline); staggered starts model queries arriving mid-run.
  double start_time_ms = 0.0;
  /// Observability sink for this client's pull loop (block spans,
  /// network/server decomposition, controller decisions, server queue
  /// samples), stamped in simulated timeline time. Null disables; not
  /// owned. Typically only the tracked foreground client carries one.
  RunObserver* observer = nullptr;
  /// Chaos layer for this client's exchanges (normally only the tracked
  /// foreground client): injected failures delay the request send by
  /// their capped cost + backoff (dead time outside any block span),
  /// perturbations extend the response path, and the policy's breaker
  /// governs commanded sizes. Both null = no faults. Not owned; a
  /// policy must be supplied whenever an injector is.
  FaultInjector* injector = nullptr;
  ResiliencePolicy* policy = nullptr;
};

/// Per-client result.
struct ClientOutcome {
  /// Absolute completion time on the shared timeline (ms).
  double completion_time_ms = 0.0;
  /// completion - start: the client-perceived query response time.
  double response_time_ms = 0.0;
  int64_t total_blocks = 0;
  int64_t total_tuples = 0;
  /// Block sizes requested, in order.
  std::vector<int64_t> block_sizes;
  /// Wall time of each block (request sent -> response arrived), in
  /// order; pairs with block_sizes.
  std::vector<double> block_times_ms;
  /// Controller adaptivity steps completed after each block was folded
  /// in; pairs with block_sizes.
  std::vector<int64_t> adaptivity_steps;
  /// Injected-fault retries per block (pairs with block_sizes) and their
  /// totals; the dead time is included in response_time_ms but in no
  /// entry of block_times_ms (the cross-backend retry accounting
  /// invariant).
  std::vector<int64_t> block_retries;
  int64_t total_retries = 0;
  double retry_time_ms = 0.0;
};

/// Runs all clients to completion on one shared timeline and returns
/// their outcomes in input order. kInvalidArgument on bad specs.
Result<std::vector<ClientOutcome>> RunEventSimulation(
    const EventSimConfig& config, const std::vector<ClientSpec>& clients);

}  // namespace wsq

#endif  // WSQ_EVENTSIM_EVENT_SIM_H_
