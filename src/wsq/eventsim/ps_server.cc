#include "wsq/eventsim/ps_server.h"

#include <cmath>

namespace wsq {
namespace {

/// Completions within this tolerance of `now` count as "exactly now"
/// (floating-point scheduling slack).
constexpr double kTimeEps = 1e-9;

}  // namespace

Result<int64_t> PsServer::Submit(double now_ms, double demand_ms) {
  if (demand_ms <= 0.0 || !std::isfinite(demand_ms)) {
    return Status::InvalidArgument("PsServer: demand must be positive");
  }
  if (now_ms + kTimeEps < now_ms_) {
    return Status::InvalidArgument("PsServer: time regression on Submit");
  }
  Result<std::optional<int64_t>> advanced = AdvanceTo(std::max(now_ms, now_ms_));
  if (!advanced.ok()) return advanced.status();
  if (advanced.value().has_value()) {
    return Status::FailedPrecondition(
        "PsServer: unharvested completion before Submit");
  }
  const int64_t id = next_id_++;
  remaining_.emplace(id, demand_ms);
  return id;
}

std::optional<double> PsServer::NextCompletionTime() const {
  if (remaining_.empty()) return std::nullopt;
  double min_remaining = remaining_.begin()->second;
  for (const auto& [id, remaining] : remaining_) {
    min_remaining = std::min(min_remaining, remaining);
  }
  return now_ms_ + min_remaining * static_cast<double>(remaining_.size());
}

Result<std::optional<int64_t>> PsServer::AdvanceTo(double now_ms) {
  if (now_ms + kTimeEps < now_ms_) {
    return Status::InvalidArgument("PsServer: time regression on AdvanceTo");
  }
  if (remaining_.empty()) {
    now_ms_ = std::max(now_ms_, now_ms);
    return std::optional<int64_t>();
  }

  const std::optional<double> completion = NextCompletionTime();
  if (completion.has_value() && *completion < now_ms - kTimeEps) {
    return Status::FailedPrecondition(
        "PsServer: AdvanceTo would skip past a completion at " +
        std::to_string(*completion));
  }

  const double dt = std::max(now_ms - now_ms_, 0.0);
  const double depletion = dt / static_cast<double>(remaining_.size());
  int64_t completed = -1;
  for (auto& [id, remaining] : remaining_) {
    remaining -= depletion;
    if (remaining <= kTimeEps && completed < 0) {
      completed = id;  // at most one job can hit zero per advance
    }
  }
  now_ms_ = std::max(now_ms_, now_ms);
  if (completed >= 0) {
    remaining_.erase(completed);
    return std::optional<int64_t>(completed);
  }
  return std::optional<int64_t>();
}

}  // namespace wsq
