#ifndef WSQ_EVENTSIM_PS_SERVER_H_
#define WSQ_EVENTSIM_PS_SERVER_H_

#include <cstdint>
#include <map>
#include <optional>

#include "wsq/common/status.h"

namespace wsq {

/// A processor-sharing server on a simulated timeline: all admitted jobs
/// progress simultaneously, each at rate 1/n when n jobs are active —
/// the standard model of a CPU-bound service under concurrent load, and
/// the mechanism behind "the more jobs are running on the server, the
/// [slower each one gets]" in the paper's motivation experiments.
///
/// Usage: Submit jobs with a total service demand (the time the job
/// would take alone), ask for the NextCompletionTime, and AdvanceTo
/// moments on the global timeline; completions pop out in order.
class PsServer {
 public:
  PsServer() = default;

  /// Admits a job with `demand_ms` of solo service time at current time
  /// `now_ms`; returns its id. kInvalidArgument for non-positive demand
  /// or time regressions.
  Result<int64_t> Submit(double now_ms, double demand_ms);

  /// The absolute time at which the next job completes if nothing else
  /// arrives; nullopt when idle.
  std::optional<double> NextCompletionTime() const;

  /// Advances the shared progress to `now_ms` and returns the id of the
  /// job that completed exactly at `now_ms`, if any. Jobs completing
  /// earlier than `now_ms` must be harvested first (advance to their
  /// completion times in order — RunEventSimulation does this).
  /// kFailedPrecondition when `now_ms` would skip past a completion.
  Result<std::optional<int64_t>> AdvanceTo(double now_ms);

  /// Number of jobs currently in service.
  int active_jobs() const { return static_cast<int>(remaining_.size()); }

  double now_ms() const { return now_ms_; }

 private:
  /// Remaining *solo* service demand per job; all deplete at rate
  /// 1/active_jobs().
  std::map<int64_t, double> remaining_;
  double now_ms_ = 0.0;
  int64_t next_id_ = 1;
};

}  // namespace wsq

#endif  // WSQ_EVENTSIM_PS_SERVER_H_
