#ifndef WSQ_RELATION_SCHEMA_H_
#define WSQ_RELATION_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "wsq/common/status.h"

namespace wsq {

/// Column value: the three scalar types the TPC-H-style workloads need.
using Value = std::variant<int64_t, double, std::string>;

enum class ColumnType {
  kInt64,
  kDouble,
  kString,
};

std::string_view ColumnTypeName(ColumnType type);

/// Returns the ColumnType a Value currently holds.
ColumnType TypeOf(const Value& value);

/// Renders a value as text (integers verbatim, doubles with 2 fraction
/// digits — money-style, strings verbatim).
std::string ValueToString(const Value& value);

struct Column {
  std::string name;
  ColumnType type;
};

/// Ordered list of named, typed columns. Immutable after construction.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with `name`; kNotFound when absent.
  Result<size_t> ColumnIndex(std::string_view name) const;

  /// Projection: the schema containing exactly `indices`, in order.
  /// kOutOfRange when an index is invalid.
  Result<Schema> Project(const std::vector<size_t>& indices) const;

  /// True when both schemas have identical column names and types.
  bool Equals(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace wsq

#endif  // WSQ_RELATION_SCHEMA_H_
