#include "wsq/relation/predicate.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <variant>

namespace wsq {
namespace {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

bool ApplyOrder(CompareOp op, int order) {
  switch (op) {
    case CompareOp::kEq:
      return order == 0;
    case CompareOp::kNe:
      return order != 0;
    case CompareOp::kLt:
      return order < 0;
    case CompareOp::kLe:
      return order <= 0;
    case CompareOp::kGt:
      return order > 0;
    case CompareOp::kGe:
      return order >= 0;
  }
  return false;
}

int Sign(double v) { return v < 0.0 ? -1 : (v > 0.0 ? 1 : 0); }

/// Recursive-descent compiler producing Predicate closures directly.
class Compiler {
 public:
  Compiler(const Schema& schema, std::string_view input)
      : schema_(schema), input_(input) {}

  Result<Predicate> Compile() {
    Result<Predicate> expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    SkipSpace();
    if (pos_ != input_.size()) {
      return Error("trailing input after expression");
    }
    return expr;
  }

 private:
  Status Error(std::string_view message) const {
    return Status::InvalidArgument("filter parse error at offset " +
                                   std::to_string(pos_) + ": " +
                                   std::string(message));
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= input_.size();
  }

  /// Consumes a case-insensitive keyword followed by a non-identifier
  /// boundary.
  bool ConsumeKeyword(std::string_view keyword) {
    SkipSpace();
    if (input_.size() - pos_ < keyword.size()) return false;
    for (size_t i = 0; i < keyword.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(input_[pos_ + i])) !=
          keyword[i]) {
        return false;
      }
    }
    const size_t after = pos_ + keyword.size();
    if (after < input_.size() &&
        (std::isalnum(static_cast<unsigned char>(input_[after])) ||
         input_[after] == '_')) {
      return false;  // identifier continues: not the keyword
    }
    pos_ = after;
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Predicate> ParseExpr() {
    Result<Predicate> left = ParseTerm();
    if (!left.ok()) return left.status();
    Predicate result = std::move(left).value();
    while (ConsumeKeyword("OR")) {
      Result<Predicate> right = ParseTerm();
      if (!right.ok()) return right.status();
      result = [lhs = std::move(result),
                rhs = std::move(right).value()](const Tuple& t) {
        return lhs(t) || rhs(t);
      };
    }
    return result;
  }

  Result<Predicate> ParseTerm() {
    Result<Predicate> left = ParseFactor();
    if (!left.ok()) return left.status();
    Predicate result = std::move(left).value();
    while (ConsumeKeyword("AND")) {
      Result<Predicate> right = ParseFactor();
      if (!right.ok()) return right.status();
      result = [lhs = std::move(result),
                rhs = std::move(right).value()](const Tuple& t) {
        return lhs(t) && rhs(t);
      };
    }
    return result;
  }

  Result<Predicate> ParseFactor() {
    if (ConsumeKeyword("NOT")) {
      Result<Predicate> inner = ParseFactor();
      if (!inner.ok()) return inner.status();
      return Predicate([p = std::move(inner).value()](const Tuple& t) {
        return !p(t);
      });
    }
    if (ConsumeChar('(')) {
      Result<Predicate> inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      if (!ConsumeChar(')')) return Error("expected ')'");
      return inner;
    }
    return ParseComparison();
  }

  Result<std::string> ParseIdentifier() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a column name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<CompareOp> ParseOp() {
    SkipSpace();
    if (pos_ >= input_.size()) return Error("expected an operator");
    const char c = input_[pos_];
    if (c == '=') {
      ++pos_;
      return CompareOp::kEq;
    }
    if (c == '!' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
      pos_ += 2;
      return CompareOp::kNe;
    }
    if (c == '<') {
      ++pos_;
      if (pos_ < input_.size() && input_[pos_] == '=') {
        ++pos_;
        return CompareOp::kLe;
      }
      return CompareOp::kLt;
    }
    if (c == '>') {
      ++pos_;
      if (pos_ < input_.size() && input_[pos_] == '=') {
        ++pos_;
        return CompareOp::kGe;
      }
      return CompareOp::kGt;
    }
    return Error("expected an operator (=, !=, <, <=, >, >=)");
  }

  Result<Predicate> ParseComparison() {
    Result<std::string> column = ParseIdentifier();
    if (!column.ok()) return column.status();
    Result<size_t> index = schema_.ColumnIndex(column.value());
    if (!index.ok()) {
      return Error("unknown column: " + column.value());
    }
    const size_t column_index = index.value();
    const ColumnType type = schema_.column(column_index).type;

    Result<CompareOp> op = ParseOp();
    if (!op.ok()) return op.status();

    SkipSpace();
    if (pos_ >= input_.size()) return Error("expected a literal");

    if (input_[pos_] == '\'') {
      // String literal ('' escapes a quote).
      ++pos_;
      std::string literal;
      while (pos_ < input_.size()) {
        if (input_[pos_] == '\'') {
          if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
            literal += '\'';
            pos_ += 2;
            continue;
          }
          ++pos_;
          if (type != ColumnType::kString) {
            return Error("string literal compared against numeric column " +
                         column.value());
          }
          return Predicate([column_index, cmp = op.value(),
                            literal](const Tuple& t) {
            if (column_index >= t.num_values()) return false;
            const auto* s = std::get_if<std::string>(&t.value(column_index));
            if (s == nullptr) return false;
            return ApplyOrder(cmp, s->compare(literal) < 0   ? -1
                                   : s->compare(literal) > 0 ? 1
                                                             : 0);
          });
        }
        literal += input_[pos_++];
      }
      return Error("unterminated string literal");
    }

    // Numeric literal.
    const char* begin = input_.data() + pos_;
    char* end = nullptr;
    const double literal = std::strtod(begin, &end);
    if (end == begin) return Error("expected a literal");
    pos_ += static_cast<size_t>(end - begin);
    if (type == ColumnType::kString) {
      return Error("numeric literal compared against string column " +
                   column.value());
    }
    return Predicate([column_index, cmp = op.value(),
                      literal](const Tuple& t) {
      if (column_index >= t.num_values()) return false;
      double v = 0.0;
      if (const auto* i = std::get_if<int64_t>(&t.value(column_index))) {
        v = static_cast<double>(*i);
      } else if (const auto* d =
                     std::get_if<double>(&t.value(column_index))) {
        v = *d;
      } else {
        return false;
      }
      return ApplyOrder(cmp, Sign(v - literal));
    });
  }

  const Schema& schema_;
  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<Predicate> CompilePredicate(const Schema& schema,
                                   std::string_view expression) {
  Compiler compiler(schema, expression);
  return compiler.Compile();
}

}  // namespace wsq
