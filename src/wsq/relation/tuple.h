#ifndef WSQ_RELATION_TUPLE_H_
#define WSQ_RELATION_TUPLE_H_

#include <string>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/relation/schema.h"

namespace wsq {

/// A row: positional values matching some Schema. The tuple itself does
/// not hold a schema pointer — containers (Table, blocks) own that
/// association, keeping tuples cheap to move around.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t num_values() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Verifies arity and per-column types against `schema`.
  Status ConformsTo(const Schema& schema) const;

  /// Projection onto `indices`; kOutOfRange on a bad index.
  Result<Tuple> Project(const std::vector<size_t>& indices) const;

  /// Approximate in-memory/wire footprint: 8 bytes per numeric, string
  /// length for strings. Drives the simulated network byte counts.
  size_t ApproxBytes() const;

  bool operator==(const Tuple& other) const {
    return values_ == other.values_;
  }

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace wsq

#endif  // WSQ_RELATION_TUPLE_H_
