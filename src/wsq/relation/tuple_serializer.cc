#include "wsq/relation/tuple_serializer.h"

#include <charconv>
#include <cstdlib>

namespace wsq {
namespace {

/// Splits an escaped line on unescaped '|'.
Result<std::vector<std::string>> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\') {
      if (i + 1 >= line.size()) {
        return Status::InvalidArgument("dangling escape in serialized tuple");
      }
      const char next = line[++i];
      if (next == 'n') {
        current += '\n';
      } else {
        current += next;
      }
    } else if (c == '|') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Value> ParseValue(const std::string& text, ColumnType type) {
  switch (type) {
    case ColumnType::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::InvalidArgument("bad int64 field: " + text);
      }
      return Value(v);
    }
    case ColumnType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size() || text.empty()) {
        return Status::InvalidArgument("bad double field: " + text);
      }
      return Value(v);
    }
    case ColumnType::kString:
      return Value(text);
  }
  return Status::Internal("unreachable column type");
}

}  // namespace

std::string EscapeField(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '|':
        out += "\\|";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeField(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '\\') {
      if (i + 1 >= escaped.size()) {
        return Status::InvalidArgument("dangling escape");
      }
      const char next = escaped[++i];
      out += next == 'n' ? '\n' : next;
    } else {
      out += escaped[i];
    }
  }
  return out;
}

Result<std::string> TupleSerializer::Serialize(const Tuple& tuple) const {
  WSQ_RETURN_IF_ERROR(tuple.ConformsTo(schema_));
  std::string out;
  for (size_t i = 0; i < tuple.num_values(); ++i) {
    if (i > 0) out += '|';
    out += EscapeField(ValueToString(tuple.value(i)));
  }
  return out;
}

Result<std::string> TupleSerializer::SerializeBlock(
    const std::vector<Tuple>& block) const {
  std::string out;
  for (const Tuple& tuple : block) {
    Result<std::string> row = Serialize(tuple);
    if (!row.ok()) return row.status();
    out += row.value();
    out += '\n';
  }
  return out;
}

Result<Tuple> TupleSerializer::Deserialize(const std::string& line) const {
  Result<std::vector<std::string>> fields = SplitFields(line);
  if (!fields.ok()) return fields.status();
  if (fields.value().size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "field count " + std::to_string(fields.value().size()) +
        " does not match schema arity " +
        std::to_string(schema_.num_columns()));
  }
  std::vector<Value> values;
  values.reserve(fields.value().size());
  for (size_t i = 0; i < fields.value().size(); ++i) {
    Result<Value> v = ParseValue(fields.value()[i], schema_.column(i).type);
    if (!v.ok()) return v.status();
    values.push_back(std::move(v).value());
  }
  return Tuple(std::move(values));
}

Result<std::vector<Tuple>> TupleSerializer::DeserializeBlock(
    const std::string& data) const {
  std::vector<Tuple> out;
  size_t start = 0;
  while (start < data.size()) {
    // Find the next row terminator (escaped newlines are "\\n", i.e.
    // never a literal '\n' byte in the stream). Every '\n'-terminated
    // segment is a row — including an empty one, which is the valid
    // serialization of a single-string-column tuple holding "".
    const size_t end = data.find('\n', start);
    if (end == std::string::npos) {
      // Trailing unterminated bytes: parse only if non-empty (a
      // well-formed block always terminates its last row).
      Result<Tuple> t = Deserialize(data.substr(start));
      if (!t.ok()) return t.status();
      out.push_back(std::move(t).value());
      break;
    }
    Result<Tuple> t = Deserialize(data.substr(start, end - start));
    if (!t.ok()) return t.status();
    out.push_back(std::move(t).value());
    start = end + 1;
  }
  return out;
}

}  // namespace wsq
