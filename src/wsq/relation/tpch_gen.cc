#include "wsq/relation/tpch_gen.h"

#include <array>
#include <cstdio>

#include "wsq/common/random.h"

namespace wsq {
namespace {

constexpr int64_t kCustomerBaseRows = 150000;
constexpr int64_t kOrdersBaseRows = 450000;

constexpr std::array<std::string_view, 5> kMarketSegments = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"};

constexpr std::array<std::string_view, 5> kOrderPriorities = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};

constexpr std::array<std::string_view, 24> kCommentWords = {
    "carefully", "final",    "deposits", "requests", "furiously", "quickly",
    "packages",  "accounts", "ideas",    "pending",  "express",   "regular",
    "special",   "bold",     "even",     "theodolites", "platelets", "foxes",
    "instructions", "slyly", "blithely", "daringly", "dependencies", "asymptotes"};

std::string RandomComment(Random& rng, int min_words, int max_words) {
  const int64_t words = rng.UniformInt(min_words, max_words);
  std::string out;
  for (int64_t i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += kCommentWords[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kCommentWords.size()) - 1))];
  }
  return out;
}

std::string PhoneNumber(Random& rng, int64_t nation_key) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(10 + nation_key),
                static_cast<int>(rng.UniformInt(100, 999)),
                static_cast<int>(rng.UniformInt(100, 999)),
                static_cast<int>(rng.UniformInt(1000, 9999)));
  return std::string(buf);
}

std::string OrderDate(Random& rng) {
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                static_cast<int>(rng.UniformInt(1992, 1998)),
                static_cast<int>(rng.UniformInt(1, 12)),
                static_cast<int>(rng.UniformInt(1, 28)));
  return std::string(buf);
}

int64_t RowCount(int64_t base, double scale) {
  const double rows = static_cast<double>(base) * scale;
  return rows < 1.0 ? 1 : static_cast<int64_t>(rows);
}

}  // namespace

Schema CustomerSchema() {
  return Schema({{"c_custkey", ColumnType::kInt64},
                 {"c_name", ColumnType::kString},
                 {"c_address", ColumnType::kString},
                 {"c_nationkey", ColumnType::kInt64},
                 {"c_phone", ColumnType::kString},
                 {"c_acctbal", ColumnType::kDouble},
                 {"c_mktsegment", ColumnType::kString},
                 {"c_comment", ColumnType::kString}});
}

Schema OrdersSchema() {
  return Schema({{"o_orderkey", ColumnType::kInt64},
                 {"o_custkey", ColumnType::kInt64},
                 {"o_orderstatus", ColumnType::kString},
                 {"o_totalprice", ColumnType::kDouble},
                 {"o_orderdate", ColumnType::kString},
                 {"o_orderpriority", ColumnType::kString},
                 {"o_clerk", ColumnType::kString},
                 {"o_shippriority", ColumnType::kInt64},
                 {"o_comment", ColumnType::kString}});
}

Result<std::shared_ptr<Table>> GenerateCustomer(
    const TpchGenOptions& options) {
  if (options.scale <= 0.0) {
    return Status::InvalidArgument("scale must be positive");
  }
  Random rng(options.seed);
  const int64_t rows = RowCount(kCustomerBaseRows, options.scale);
  auto table = std::make_shared<Table>("customer", CustomerSchema());

  for (int64_t key = 1; key <= rows; ++key) {
    char name[32];
    std::snprintf(name, sizeof(name), "Customer#%09lld",
                  static_cast<long long>(key));
    const int64_t nation = rng.UniformInt(0, 24);
    std::vector<Value> values;
    values.reserve(8);
    values.emplace_back(key);
    values.emplace_back(std::string(name));
    values.emplace_back(RandomComment(rng, 2, 4));
    values.emplace_back(nation);
    values.emplace_back(PhoneNumber(rng, nation));
    values.emplace_back(rng.Uniform(-999.99, 9999.99));
    values.emplace_back(std::string(kMarketSegments[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kMarketSegments.size()) - 1))]));
    values.emplace_back(RandomComment(rng, 6, 16));
    table->AppendUnchecked(Tuple(std::move(values)));
  }
  return table;
}

Result<std::shared_ptr<Table>> GenerateOrders(const TpchGenOptions& options) {
  if (options.scale <= 0.0) {
    return Status::InvalidArgument("scale must be positive");
  }
  Random rng(options.seed + 1);
  const int64_t rows = RowCount(kOrdersBaseRows, options.scale);
  const int64_t num_customers = RowCount(kCustomerBaseRows, options.scale);
  auto table = std::make_shared<Table>("orders", OrdersSchema());

  for (int64_t key = 1; key <= rows; ++key) {
    char clerk[24];
    std::snprintf(clerk, sizeof(clerk), "Clerk#%09d",
                  static_cast<int>(rng.UniformInt(1, 1000)));
    const char* status_options = "OFP";
    std::vector<Value> values;
    values.reserve(9);
    values.emplace_back(key);
    values.emplace_back(rng.UniformInt(1, num_customers));
    values.emplace_back(std::string(1, status_options[rng.UniformInt(0, 2)]));
    values.emplace_back(rng.Uniform(850.0, 550000.0));
    values.emplace_back(OrderDate(rng));
    values.emplace_back(std::string(kOrderPriorities[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kOrderPriorities.size()) - 1))]));
    values.emplace_back(std::string(clerk));
    values.emplace_back(static_cast<int64_t>(0));
    values.emplace_back(RandomComment(rng, 4, 12));
    table->AppendUnchecked(Tuple(std::move(values)));
  }
  return table;
}

}  // namespace wsq
