#include "wsq/relation/tuple.h"

#include <sstream>

namespace wsq {

Status Tuple::ConformsTo(const Schema& schema) const {
  if (values_.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(values_.size()) +
        " does not match schema arity " +
        std::to_string(schema.num_columns()));
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    if (TypeOf(values_[i]) != schema.column(i).type) {
      return Status::InvalidArgument(
          "type mismatch in column " + schema.column(i).name);
    }
  }
  return Status::Ok();
}

Result<Tuple> Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> projected;
  projected.reserve(indices.size());
  for (size_t idx : indices) {
    if (idx >= values_.size()) {
      return Status::OutOfRange("projection index out of range");
    }
    projected.push_back(values_[idx]);
  }
  return Tuple(std::move(projected));
}

size_t Tuple::ApproxBytes() const {
  size_t bytes = 0;
  for (const Value& v : values_) {
    if (const auto* s = std::get_if<std::string>(&v)) {
      bytes += s->size();
    } else {
      bytes += 8;
    }
  }
  return bytes;
}

std::string Tuple::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out << ", ";
    out << ValueToString(values_[i]);
  }
  out << "]";
  return out.str();
}

}  // namespace wsq
