#include "wsq/relation/schema.h"

#include <sstream>

#include "wsq/common/text_table.h"

namespace wsq {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "unknown";
}

ColumnType TypeOf(const Value& value) {
  if (std::holds_alternative<int64_t>(value)) return ColumnType::kInt64;
  if (std::holds_alternative<double>(value)) return ColumnType::kDouble;
  return ColumnType::kString;
}

std::string ValueToString(const Value& value) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return FormatDouble(*d, 2);
  }
  return std::get<std::string>(value);
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

Result<size_t> Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + std::string(name));
}

Result<Schema> Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Column> projected;
  projected.reserve(indices.size());
  for (size_t idx : indices) {
    if (idx >= columns_.size()) {
      return Status::OutOfRange("projection index " + std::to_string(idx) +
                                " out of range");
    }
    projected.push_back(columns_[idx]);
  }
  return Schema(std::move(projected));
}

bool Schema::Equals(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out << ", ";
    out << columns_[i].name << ":" << ColumnTypeName(columns_[i].type);
  }
  out << ")";
  return out.str();
}

}  // namespace wsq
