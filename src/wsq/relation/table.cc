#include "wsq/relation/table.h"

namespace wsq {

Status Table::Append(Tuple tuple) {
  WSQ_RETURN_IF_ERROR(tuple.ConformsTo(schema_));
  rows_.push_back(std::move(tuple));
  return Status::Ok();
}

size_t Table::ApproxBytes() const {
  size_t bytes = 0;
  for (const Tuple& t : rows_) bytes += t.ApproxBytes();
  return bytes;
}

}  // namespace wsq
