#ifndef WSQ_RELATION_TPCH_GEN_H_
#define WSQ_RELATION_TPCH_GEN_H_

#include <cstdint>
#include <memory>

#include "wsq/common/status.h"
#include "wsq/relation/table.h"

namespace wsq {

/// Deterministic generator of TPC-H-like relations. The paper retrieves
/// the Customer relation at scale factor 1 (150K tuples) over the WAN and
/// a 3x-larger Orders result over the LAN; this generator reproduces the
/// schemas, key distributions and realistic field widths so serialized
/// block sizes (bytes/tuple) match the real workload's order of
/// magnitude.
struct TpchGenOptions {
  /// TPC-H-like scale factor; Customer gets 150000 * scale rows.
  double scale = 1.0;
  uint64_t seed = 7;
};

/// Customer: c_custkey, c_name, c_address, c_nationkey, c_phone,
/// c_acctbal, c_mktsegment, c_comment.
Result<std::shared_ptr<Table>> GenerateCustomer(const TpchGenOptions& options);

/// Orders (sized per the paper's LAN experiment: 3x the Customer
/// cardinality, i.e. 450000 * scale rows): o_orderkey, o_custkey,
/// o_orderstatus, o_totalprice, o_orderdate, o_orderpriority, o_clerk,
/// o_shippriority, o_comment.
Result<std::shared_ptr<Table>> GenerateOrders(const TpchGenOptions& options);

/// The exact schemas, exposed so tests and services can validate without
/// generating data.
Schema CustomerSchema();
Schema OrdersSchema();

}  // namespace wsq

#endif  // WSQ_RELATION_TPCH_GEN_H_
