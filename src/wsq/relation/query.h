#ifndef WSQ_RELATION_QUERY_H_
#define WSQ_RELATION_QUERY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/relation/table.h"

namespace wsq {

/// Optional row filter; invoked on the *unprojected* tuple.
using Predicate = std::function<bool(const Tuple&)>;

/// A scan-project(-select) query over one table — the query class the
/// paper evaluates ("an inexpensive scan-project query over the entire
/// Customer relation"). Declarative part only; execution happens through
/// QueryCursor.
struct ScanProjectQuery {
  std::string table_name;
  /// Column names to project; empty means all columns.
  std::vector<std::string> projected_columns;
  /// Optional programmatic filter; null keeps every row.
  Predicate predicate;
  /// Optional declarative filter expression (see relation/predicate.h);
  /// compiled against the table schema when the cursor opens, and the
  /// form that travels over the wire in OpenSession. When both this and
  /// `predicate` are set, a row must pass both.
  std::string filter;
};

/// Pull-mode execution cursor: hands out result tuples in blocks of a
/// caller-chosen size, exactly the server-side machinery behind
/// `WebService.requestNewBlock(blockSize)` in the paper's Algorithm 1.
class QueryCursor {
 public:
  /// Binds `query` to `table` (whose lifetime must cover the cursor's).
  /// Fails when projected columns are missing.
  static Result<std::unique_ptr<QueryCursor>> Open(
      const Table* table, const ScanProjectQuery& query);

  /// The schema of produced tuples (after projection).
  const Schema& output_schema() const { return output_schema_; }

  /// Fetches up to `max_tuples` next tuples; an empty vector signals
  /// end-of-results. kInvalidArgument when max_tuples < 1.
  Result<std::vector<Tuple>> FetchBlock(int64_t max_tuples);

  bool exhausted() const { return position_ >= table_->num_rows(); }

  /// Rows scanned (not produced) so far — drives the simulated
  /// server-side CPU cost.
  size_t rows_scanned() const { return rows_scanned_; }
  size_t rows_produced() const { return rows_produced_; }

 private:
  QueryCursor(const Table* table, std::vector<size_t> projection,
              Predicate predicate, Schema output_schema)
      : table_(table),
        projection_(std::move(projection)),
        predicate_(std::move(predicate)),
        output_schema_(std::move(output_schema)) {}

  const Table* table_;
  std::vector<size_t> projection_;
  Predicate predicate_;
  Schema output_schema_;
  size_t position_ = 0;
  size_t rows_scanned_ = 0;
  size_t rows_produced_ = 0;
};

}  // namespace wsq

#endif  // WSQ_RELATION_QUERY_H_
