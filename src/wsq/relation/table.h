#ifndef WSQ_RELATION_TABLE_H_
#define WSQ_RELATION_TABLE_H_

#include <string>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/relation/schema.h"
#include "wsq/relation/tuple.h"

namespace wsq {

/// In-memory relation: a named schema plus row storage. This is the
/// stand-in for the MySQL tables behind the paper's OGSA-DAI service.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends after validating against the schema.
  Status Append(Tuple tuple);

  /// Appends without validation — for bulk generators that construct
  /// conforming tuples by design (validated in debug builds via tests).
  void AppendUnchecked(Tuple tuple) { rows_.push_back(std::move(tuple)); }

  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Total approximate payload bytes of all rows.
  size_t ApproxBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace wsq

#endif  // WSQ_RELATION_TABLE_H_
