#ifndef WSQ_RELATION_TUPLE_SERIALIZER_H_
#define WSQ_RELATION_TUPLE_SERIALIZER_H_

#include <string>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/relation/schema.h"
#include "wsq/relation/tuple.h"

namespace wsq {

/// Text wire format for result blocks inside the SOAP payload: one row
/// per line, fields separated by '|', with backslash escaping of the
/// delimiter, backslash and newline (a deliberately OGSA-DAI-ish
/// delimited format — verbose like the real WebRowSet payloads, cheap to
/// parse).
class TupleSerializer {
 public:
  explicit TupleSerializer(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Serializes one tuple (no trailing newline). Type-checks against the
  /// schema.
  Result<std::string> Serialize(const Tuple& tuple) const;

  /// Serializes a whole block, newline-terminated rows.
  Result<std::string> SerializeBlock(const std::vector<Tuple>& block) const;

  /// Parses one row produced by Serialize().
  Result<Tuple> Deserialize(const std::string& line) const;

  /// Parses a whole block produced by SerializeBlock().
  Result<std::vector<Tuple>> DeserializeBlock(const std::string& data) const;

 private:
  Schema schema_;
};

/// Escapes '|', '\' and newline with backslashes.
std::string EscapeField(const std::string& raw);

/// Inverse of EscapeField; kInvalidArgument on a dangling escape.
Result<std::string> UnescapeField(const std::string& escaped);

}  // namespace wsq

#endif  // WSQ_RELATION_TUPLE_SERIALIZER_H_
