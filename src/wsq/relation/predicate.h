#ifndef WSQ_RELATION_PREDICATE_H_
#define WSQ_RELATION_PREDICATE_H_

#include <string>
#include <string_view>

#include "wsq/common/status.h"
#include "wsq/relation/query.h"
#include "wsq/relation/schema.h"

namespace wsq {

/// Compiles a filter expression against `schema` into an executable
/// Predicate. This is the WHERE-clause surface of the wire protocol:
/// clients put the expression text into OpenSession and the data service
/// compiles it against the table's schema.
///
/// Grammar (case-insensitive keywords):
///
///   expr       := term ( OR term )*
///   term       := factor ( AND factor )*
///   factor     := NOT factor | '(' expr ')' | comparison
///   comparison := column op literal
///   op         := = | != | < | <= | > | >=
///   literal    := integer | decimal | 'single-quoted string'
///
/// Semantics: numeric columns (int64/double) compare numerically against
/// numeric literals; string columns compare lexicographically against
/// string literals (with = and != also supported). Comparing a column
/// against a literal of the wrong kind is a compile-time error, as is an
/// unknown column name. Inside string literals, '' escapes a quote.
///
/// Example:
///   CompilePredicate(schema,
///       "c_acctbal >= 1000 AND (c_mktsegment = 'BUILDING' OR "
///       "c_nationkey < 10)")
Result<Predicate> CompilePredicate(const Schema& schema,
                                   std::string_view expression);

}  // namespace wsq

#endif  // WSQ_RELATION_PREDICATE_H_
