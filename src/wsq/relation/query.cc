#include "wsq/relation/query.h"

#include <algorithm>

#include "wsq/relation/predicate.h"

namespace wsq {

Result<std::unique_ptr<QueryCursor>> QueryCursor::Open(
    const Table* table, const ScanProjectQuery& query) {
  if (table == nullptr) {
    return Status::InvalidArgument("QueryCursor: null table");
  }

  std::vector<size_t> projection;
  if (query.projected_columns.empty()) {
    projection.resize(table->schema().num_columns());
    for (size_t i = 0; i < projection.size(); ++i) projection[i] = i;
  } else {
    projection.reserve(query.projected_columns.size());
    for (const std::string& name : query.projected_columns) {
      Result<size_t> idx = table->schema().ColumnIndex(name);
      if (!idx.ok()) return idx.status();
      projection.push_back(idx.value());
    }
  }

  Result<Schema> output = table->schema().Project(projection);
  if (!output.ok()) return output.status();

  Predicate predicate = query.predicate;
  if (!query.filter.empty()) {
    Result<Predicate> compiled =
        CompilePredicate(table->schema(), query.filter);
    if (!compiled.ok()) return compiled.status();
    if (predicate) {
      predicate = [programmatic = std::move(predicate),
                   declarative =
                       std::move(compiled).value()](const Tuple& t) {
        return programmatic(t) && declarative(t);
      };
    } else {
      predicate = std::move(compiled).value();
    }
  }

  return std::unique_ptr<QueryCursor>(
      new QueryCursor(table, std::move(projection), std::move(predicate),
                      std::move(output).value()));
}

Result<std::vector<Tuple>> QueryCursor::FetchBlock(int64_t max_tuples) {
  if (max_tuples < 1) {
    return Status::InvalidArgument("FetchBlock: max_tuples must be >= 1");
  }
  std::vector<Tuple> block;
  // Reserve what can actually be produced — a remote caller may request
  // an absurd block size and must not drive an allocation that large.
  block.reserve(static_cast<size_t>(
      std::min<int64_t>(max_tuples,
                        static_cast<int64_t>(table_->num_rows() - position_))));
  while (position_ < table_->num_rows() &&
         block.size() < static_cast<size_t>(max_tuples)) {
    const Tuple& row = table_->row(position_);
    ++position_;
    ++rows_scanned_;
    if (predicate_ && !predicate_(row)) continue;
    Result<Tuple> projected = row.Project(projection_);
    if (!projected.ok()) return projected.status();
    block.push_back(std::move(projected).value());
    ++rows_produced_;
  }
  return block;
}

}  // namespace wsq
