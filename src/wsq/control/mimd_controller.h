#ifndef WSQ_CONTROL_MIMD_CONTROLLER_H_
#define WSQ_CONTROL_MIMD_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <string>

#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/stats/moving_window.h"

namespace wsq {

/// Parameters of the multiplicative controller. Defaults match the scale
/// of the paper's WAN experiments.
struct MimdConfig {
  /// Multiplicative factor g > 1 of Eq. (7). Each adaptivity step moves
  /// the block size one notch up or down the geometric grid x0 * g^p.
  double factor = 1.25;
  /// Raw measurements folded into one adaptivity step. MIMD relies on
  /// scale averaging (below) for smoothing, so the default steps on
  /// every measurement like the switching controllers.
  int averaging_horizon = 1;
  /// Scale-averaging window: how many historical visits of the *same*
  /// grid point contribute to its smoothed output ŷ.
  int scale_window = 4;
  BlockSizeLimits limits;
  int64_t initial_block_size = 1000;

  Status Validate() const;
};

/// Multiplicative increase / multiplicative decrease extremum controller
/// (paper Section III-B, Eq. 7):
///
///   x_k = x_0 * g^{j(k-1)},   j(k) = sum_{i=1..k} -sign(Δy_i Δx_i)
///
/// Because the control input lives on the geometric grid {x0 * g^p}, the
/// same sizes recur, which makes *scale averaging* natural: the measured
/// output of grid point p is smoothed over its last `scale_window` visits
/// and the smoothed ŷ replaces the raw y in the sign term.
///
/// The paper reports this scheme behaves like the adaptive-gain policies
/// of Fig. 4(a) (it stagnates), which is why it lost to the hybrid
/// controller; it is implemented for the comparison benches.
class MimdController final : public Controller {
 public:
  explicit MimdController(const MimdConfig& config);

  int64_t initial_block_size() const override;
  int64_t NextBlockSize(double response_time_ms) override;
  int64_t adaptivity_steps() const override { return steps_; }
  void Reset() override;
  std::string name() const override { return "mimd"; }
  StateSnapshot DebugState() const override;

  const MimdConfig& config() const { return config_; }

  /// Current grid exponent j(k).
  int exponent() const { return exponent_; }

 private:
  /// Block size for grid exponent p, clamped to limits.
  int64_t GridValue(int p) const;

  /// Smoothed output for grid exponent p after folding in `y`.
  double SmoothedOutput(int p, double y);

  MimdConfig config_;
  int exponent_ = 0;

  double window_y_sum_ = 0.0;
  int window_count_ = 0;

  bool has_prev_ = false;
  double prev_x_ = 0.0;
  double prev_y_hat_ = 0.0;

  int64_t steps_ = 0;
  std::map<int, MovingWindow> scale_history_;
};

}  // namespace wsq

#endif  // WSQ_CONTROL_MIMD_CONTROLLER_H_
