#ifndef WSQ_CONTROL_CONTROLLER_H_
#define WSQ_CONTROL_CONTROLLER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "wsq/common/status.h"
#include "wsq/obs/state_snapshot.h"

namespace wsq {

/// Inclusive bounds on the commanded block size (tuples per request).
/// The paper imposes these to avoid detrimental overshooting: WAN
/// experiments use [100, 20000], LAN conf2.1 uses an upper limit of 7000.
struct BlockSizeLimits {
  int64_t min_size = 100;
  int64_t max_size = 20000;

  /// Clamps `x` into [min_size, max_size].
  int64_t Clamp(double x) const;

  /// True when min <= max and min >= 1.
  bool Valid() const { return min_size >= 1 && min_size <= max_size; }
};

/// Client-side block-size controller: the `Controller.computeNewSize`
/// of the paper's Algorithm 1. The client fetch loop is
///
///   blockSize = initialBlockSize
///   while (!endOfResults) {
///     t1 = now(); ws.RequestNewBlock(blockSize); t2 = now();
///     blockSize = controller.NextBlockSize(t2 - t1);
///   }
///
/// Implementations are single-query state machines: feed them the
/// response time of the block that was just fetched (at the size returned
/// by the previous call, or initial_block_size() for the first block) and
/// they return the size to use for the next request.
///
/// Not thread-safe; one instance per query session.
class Controller {
 public:
  virtual ~Controller() = default;

  /// Size of the very first block to request.
  virtual int64_t initial_block_size() const = 0;

  /// Consumes the performance metric of the last fetched block and
  /// returns the size for the next request, already clamped to the
  /// configured limits.
  ///
  /// The metric must be "lower is better" and comparable across block
  /// sizes; wsq uses the per-tuple cost in milliseconds (block response
  /// time divided by tuples received), which the paper calls "response
  /// time or, equivalently, the per tuple cost". BlockFetcher and
  /// SimEngine both feed this metric.
  virtual int64_t NextBlockSize(double response_time_ms) = 0;

  /// Number of *adaptivity steps* performed so far. Every fed measurement
  /// is one application of the control law (Eq. 2 averages over a sliding
  /// window, it does not batch). Fixed-size controllers always report 0.
  virtual int64_t adaptivity_steps() const = 0;

  /// Restores the initial state so the instance can drive a fresh query.
  virtual void Reset() = 0;

  /// Short, stable identifier ("constant_gain", "hybrid", ...), used in
  /// bench output and logs.
  virtual std::string name() const = 0;

  /// Ordered key/value snapshot of the controller's internal state for
  /// observability: gain and phase for the switching family, sign-switch
  /// counts, RLS estimates and covariance trace, model-fit coefficients.
  /// Sampled per adaptivity step by the backends and attached to
  /// controller_decision trace events; keys are stable per controller.
  /// The base implementation reports only name/adaptivity_steps so
  /// third-party controllers keep working unchanged.
  virtual StateSnapshot DebugState() const;
};

}  // namespace wsq

#endif  // WSQ_CONTROL_CONTROLLER_H_
