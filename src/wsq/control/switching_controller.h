#ifndef WSQ_CONTROL_SWITCHING_CONTROLLER_H_
#define WSQ_CONTROL_SWITCHING_CONTROLLER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "wsq/common/random.h"
#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/stats/moving_window.h"

namespace wsq {

/// Gain policy for the switching extremum control law (paper Section III-A).
enum class GainMode {
  /// g = b1, a constant step; the additive-increase/additive-decrease
  /// style policy. Robust but oscillates around the optimum.
  kConstant,
  /// g = b2 * |dy / y| * |dx| (Eq. 3): the step is proportional to the
  /// product of the relative performance change and the block-size
  /// change. Accurate near the optimum, prone to overshoot far from it.
  kAdaptive,
};

std::string_view GainModeName(GainMode mode);

/// Number of times consecutive entries of a sign history differ — the
/// saw-tooth count steady-state detection rests on. Shared by the
/// switching and hybrid controllers' DebugState().
int64_t CountSignSwitches(const std::vector<int>& signs);

/// Parameters of the switching extremum controller. Defaults are the
/// paper's WAN configuration: b1=2000, b2=25, df=25, n=3, x0=1000,
/// limits [100, 20000].
struct SwitchingConfig {
  GainMode gain_mode = GainMode::kConstant;
  /// Constant gain (tuples per adaptivity step); also the size of the
  /// mandatory first step.
  double b1 = 2000.0;
  /// Adaptive gain coefficient of Eq. (3).
  double b2 = 25.0;
  /// Dither factor df: each step adds df * w, w ~ N(0,1), so the
  /// controller keeps probing the neighborhood of its operating point.
  double dither_factor = 25.0;
  /// Averaging horizon n of Eq. (2): the sliding means {x̄_k, ȳ_k} run
  /// over the last n raw (input, output) pairs. Every raw measurement is
  /// one adaptivity step; n only controls smoothing.
  int averaging_horizon = 3;
  BlockSizeLimits limits;
  int64_t initial_block_size = 1000;
  /// Seed for the dither stream; fixed seeds make runs reproducible.
  uint64_t seed = 42;

  /// Rejects non-positive gains/horizons and invalid limits.
  Status Validate() const;
};

/// Switching extremum controller (paper Eq. 1–3):
///
///   x_k = x_{k-1} - g * sign(Δȳ_{k-1} * Δx̄_{k-1}) + d(k)
///
/// over measurements averaged in windows of n blocks. The sign term
/// detects which side of the optimum the operating point sits on: grow
/// the block when growing helped (or shrinking hurt), shrink otherwise.
///
/// The first adaptivity step unconditionally increases the block by b1,
/// since no (Δx, Δy) information exists yet.
///
/// The gain mode is mutable at runtime — this is the hook the
/// HybridController supervisor uses to implement Eq. (4).
class SwitchingExtremumController : public Controller {
 public:
  explicit SwitchingExtremumController(const SwitchingConfig& config);

  int64_t initial_block_size() const override {
    return config_.limits.Clamp(
        static_cast<double>(config_.initial_block_size));
  }
  int64_t NextBlockSize(double response_time_ms) override;
  int64_t adaptivity_steps() const override { return steps_; }
  void Reset() override;
  std::string name() const override;
  StateSnapshot DebugState() const override;

  const SwitchingConfig& config() const { return config_; }

  GainMode gain_mode() const { return gain_mode_; }
  void set_gain_mode(GainMode mode) { gain_mode_ = mode; }

  /// sign(Δȳ·Δx̄) of each completed adaptivity step from the second step
  /// on (+1 or -1); consumed by the hybrid supervisor's Eq. (5) criterion.
  const std::vector<int>& sign_history() const { return sign_history_; }

  /// Averaged control input x̄_k of each completed adaptivity step;
  /// consumed by the Eq. (6) criterion.
  const std::vector<double>& averaged_input_history() const {
    return avg_x_history_;
  }

  /// Magnitude of the gain used at the most recent adaptivity step
  /// (0 before the second step).
  double last_gain() const { return last_gain_; }

  /// Clears the sign/input histories without touching the operating
  /// point; used by the periodic-reset hybrid variant so criterion state
  /// restarts fresh after a reset.
  void ClearHistories();

  /// Forgets the averaging windows and (Δx̄, Δȳ) history so the next
  /// adaptivity step recomputes deltas from fresh measurements. With
  /// `hold_position` the mandatory first-step b1 increase is suppressed
  /// and the operating point held — the hybrid supervisor uses this on
  /// the transient→steady-state transition so the first adaptive-gain
  /// step is sized from steady-state deltas instead of stale
  /// transient-scale ones.
  void ResetDeltas(bool hold_position);

  /// Moves the operating point to `block_size` (clamped). The hybrid
  /// supervisor re-centers on the saw-tooth's mean when it declares
  /// steady state — the oscillation's center, not its last extreme, is
  /// the controller's best estimate of the optimum.
  void set_command(double block_size);

 private:
  SwitchingConfig config_;
  GainMode gain_mode_;
  Random rng_;

  // Commanded block size (double so sub-tuple gain arithmetic is not
  // truncated before clamping).
  double command_ = 0.0;

  // Sliding windows over the last n raw (x, y) pairs (Eq. 2).
  MovingWindow window_x_;
  MovingWindow window_y_;

  // Sliding means at the previous adaptivity step.
  bool has_prev_ = false;
  // When true, the next "first step" holds position instead of +b1.
  bool hold_next_first_step_ = false;
  double prev_avg_x_ = 0.0;
  double prev_avg_y_ = 0.0;

  int64_t steps_ = 0;
  double last_gain_ = 0.0;
  std::vector<int> sign_history_;
  std::vector<double> avg_x_history_;
};

}  // namespace wsq

#endif  // WSQ_CONTROL_SWITCHING_CONTROLLER_H_
