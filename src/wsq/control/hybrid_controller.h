#ifndef WSQ_CONTROL_HYBRID_CONTROLLER_H_
#define WSQ_CONTROL_HYBRID_CONTROLLER_H_

#include <cstdint>
#include <string>

#include "wsq/common/status.h"
#include "wsq/control/switching_controller.h"

namespace wsq {

/// How the hybrid supervisor decides the transient phase has ended.
enum class PhaseCriterion {
  /// Eq. (5): at step k, steady state is declared when the sign terms of
  /// the last n' adaptivity steps nearly cancel,
  ///   | sum_{i=k-n'}^{k-1} sign(Δȳ_i Δx̄_i) | <= s,
  /// because a constant-gain controller at steady state oscillates around
  /// the optimum in a saw-tooth (alternating signs), while in transit the
  /// signs all agree.
  kSignSwitches,
  /// Eq. (6): steady state when the mean of x̄ over the last window of n'
  /// steps differs from the mean over the preceding disjoint window by at
  /// most b1/(n'-1). The paper finds this criterion slower to trigger and
  /// 7.6-10% worse; it is kept for the Fig. 6(c) comparison.
  kWindowMeans,
};

std::string_view PhaseCriterionName(PhaseCriterion criterion);

/// The two flavors evaluated in Table I.
enum class HybridFlavor {
  /// Once adaptive gain is engaged, never go back (the paper's better
  /// flavor, column "hybrid").
  kNoSwitchBack,
  /// Allow a detected re-entry into a transient phase to switch the gain
  /// back to constant (column "hybrid - s"; less stable in practice).
  kSwitchBack,
};

/// Current phase of the hybrid gain schedule (Eq. 4).
enum class GainPhase { kTransient, kSteadyState };

std::string_view GainPhaseName(GainPhase phase);

struct HybridConfig {
  /// Gains, dither, averaging horizon, limits and initial size of the
  /// underlying switching law. `base.gain_mode` is ignored: the hybrid
  /// supervisor owns the mode.
  SwitchingConfig base;
  PhaseCriterion criterion = PhaseCriterion::kSignSwitches;
  /// Criterion horizon n' (paper uses 5).
  int criterion_horizon = 5;
  /// Criterion threshold s (paper uses 1; should share parity with n').
  int criterion_threshold = 1;
  HybridFlavor flavor = HybridFlavor::kNoSwitchBack;
  /// When > 0: every `reset_period` adaptivity steps the controller is
  /// reset to constant-gain transient mode, the long-lived-query variant
  /// of Fig. 8. 0 disables periodic reset.
  int64_t reset_period = 0;

  Status Validate() const;
};

/// The paper's novel hybrid non-linear controller (Eq. 4): constant gain
/// while converging (good transients, robust tracking), adaptive gain at
/// steady state (small accurate steps, no saw-tooth oscillation). A
/// supervisor watches the underlying switching controller's histories and
/// flips the gain mode when the configured phase criterion fires.
class HybridController final : public Controller {
 public:
  explicit HybridController(const HybridConfig& config);

  int64_t initial_block_size() const override {
    return core_.initial_block_size();
  }
  int64_t NextBlockSize(double response_time_ms) override;
  int64_t adaptivity_steps() const override {
    return core_.adaptivity_steps();
  }
  void Reset() override;
  std::string name() const override;
  StateSnapshot DebugState() const override;

  const HybridConfig& config() const { return config_; }
  GainPhase phase() const { return phase_; }

  /// Number of transient->steady transitions so far (and back, for the
  /// switch-back flavor / periodic resets).
  int64_t phase_transitions() const { return phase_transitions_; }

 private:
  /// Evaluates the configured criterion on the core's histories,
  /// restricted to entries recorded after the last phase change.
  bool SteadyStateDetected() const;

  /// For the switch-back flavor: true when the recent signs all agree,
  /// i.e. the operating point is clearly in transit again.
  bool TransientReentryDetected() const;

  void EnterPhase(GainPhase phase);

  HybridConfig config_;
  SwitchingExtremumController core_;
  GainPhase phase_ = GainPhase::kTransient;
  int64_t phase_transitions_ = 0;
  /// Index into the core's histories at the moment of the last phase
  /// change; criterion windows never straddle a phase change.
  size_t history_mark_ = 0;
  int64_t last_reset_step_ = 0;
};

}  // namespace wsq

#endif  // WSQ_CONTROL_HYBRID_CONTROLLER_H_
