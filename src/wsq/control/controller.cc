#include "wsq/control/controller.h"

#include <algorithm>
#include <cmath>

namespace wsq {

int64_t BlockSizeLimits::Clamp(double x) const {
  if (!std::isfinite(x)) return min_size;
  const double clamped =
      std::clamp(x, static_cast<double>(min_size),
                 static_cast<double>(max_size));
  return static_cast<int64_t>(std::llround(clamped));
}

StateSnapshot Controller::DebugState() const {
  StateSnapshot snapshot;
  snapshot.Add("name", name());
  snapshot.Add("adaptivity_steps", adaptivity_steps());
  return snapshot;
}

}  // namespace wsq
