#include "wsq/control/self_tuning_controller.h"

#include <cmath>
#include <cstdlib>

#include "wsq/common/logging.h"

namespace wsq {

std::string_view ContinuationName(Continuation continuation) {
  switch (continuation) {
    case Continuation::kFixed:
      return "fixed";
    case Continuation::kConstantGain:
      return "constant_gain";
    case Continuation::kAdaptiveGain:
      return "adaptive_gain";
    case Continuation::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

Status SelfTuningConfig::Validate() const {
  WSQ_RETURN_IF_ERROR(identification.Validate());
  WSQ_RETURN_IF_ERROR(controller.Validate());
  if (rls_forgetting <= 0.0 || rls_forgetting > 1.0) {
    return Status::InvalidArgument("rls_forgetting must be in (0, 1]");
  }
  if (rls_recenter_period < 1) {
    return Status::InvalidArgument("rls_recenter_period must be >= 1");
  }
  if (rls_recenter_tolerance <= 0.0) {
    return Status::InvalidArgument("rls_recenter_tolerance must be > 0");
  }
  return Status::Ok();
}

SelfTuningController::SelfTuningController(const SelfTuningConfig& config)
    : config_(config),
      identifier_(config.identification),
      rls_(/*num_params=*/3, config.rls_forgetting) {
  last_commanded_ = identifier_.initial_block_size();
}

std::vector<double> SelfTuningController::Regressors(double x) const {
  if (config_.identification.model == IdentificationModel::kQuadratic) {
    return {x * x, x, 1.0};
  }
  return {1.0 / x, x, 1.0};
}

std::unique_ptr<Controller> SelfTuningController::MakeContinuation(
    int64_t seed) const {
  HybridConfig hybrid = config_.controller;
  hybrid.base.initial_block_size = seed;
  hybrid.base.limits = config_.identification.limits;
  switch (config_.continuation) {
    case Continuation::kFixed:
      return nullptr;
    case Continuation::kConstantGain: {
      SwitchingConfig sw = hybrid.base;
      sw.gain_mode = GainMode::kConstant;
      return std::make_unique<SwitchingExtremumController>(sw);
    }
    case Continuation::kAdaptiveGain: {
      SwitchingConfig sw = hybrid.base;
      sw.gain_mode = GainMode::kAdaptive;
      return std::make_unique<SwitchingExtremumController>(sw);
    }
    case Continuation::kHybrid:
      return std::make_unique<HybridController>(hybrid);
  }
  return nullptr;
}

int64_t SelfTuningController::NextBlockSize(double response_time_ms) {
  if (config_.enable_rls && last_commanded_ >= 1) {
    // Every raw measurement refines the online model, regardless of
    // which phase is driving.
    Status s = rls_.Update(Regressors(static_cast<double>(last_commanded_)),
                           response_time_ms);
    if (!s.ok()) {
      WSQ_LOG(kWarning) << "RLS update failed: " << s.ToString();
    }
  }

  if (continuation_ == nullptr && !identifier_.identification_complete()) {
    last_commanded_ = identifier_.NextBlockSize(response_time_ms);
    if (identifier_.identification_complete()) {
      seed_estimate_ = identifier_.identified_model().value().optimum;
      continuation_ = MakeContinuation(seed_estimate_);
      if (continuation_ != nullptr) {
        last_commanded_ = continuation_->initial_block_size();
      }
    }
    return last_commanded_;
  }

  if (continuation_ == nullptr) {
    // kFixed continuation: hold the LS estimate.
    last_commanded_ = seed_estimate_;
  } else {
    last_commanded_ = continuation_->NextBlockSize(response_time_ms);
  }
  // The RLS re-centering applies to every continuation mode — a fixed
  // operating point especially benefits when the model detects drift.
  if (config_.enable_rls) {
    ++steps_since_recenter_check_;
    if (steps_since_recenter_check_ >= config_.rls_recenter_period) {
      steps_since_recenter_check_ = 0;
      MaybeRecenter();
    }
  }
  return last_commanded_;
}

void SelfTuningController::MaybeRecenter() {
  if (rls_.num_updates() < 6) return;  // not enough data for a stable model
  bool failed = false;
  const int64_t optimum =
      AnalyticOptimum(config_.identification.model, rls_.params(),
                      config_.identification.limits, &failed);
  if (failed) return;
  const double cur = static_cast<double>(last_commanded_);
  const double drift = std::fabs(static_cast<double>(optimum) - cur) /
                       std::max(cur, 1.0);
  if (drift <= config_.rls_recenter_tolerance) return;

  WSQ_LOG(kInfo) << "self-tuning recenter: " << last_commanded_ << " -> "
                 << optimum;
  continuation_ = MakeContinuation(optimum);
  seed_estimate_ = optimum;
  if (continuation_ != nullptr) {
    last_commanded_ = continuation_->initial_block_size();
  } else {
    last_commanded_ = optimum;
  }
  ++recenter_count_;
}

int64_t SelfTuningController::adaptivity_steps() const {
  return identifier_.adaptivity_steps() +
         (continuation_ != nullptr ? continuation_->adaptivity_steps() : 0);
}

Result<int64_t> SelfTuningController::seed_estimate() const {
  if (!identifier_.identification_complete()) {
    return Status::FailedPrecondition("identification phase still running");
  }
  return seed_estimate_;
}

void SelfTuningController::Reset() {
  identifier_.Reset();
  continuation_.reset();
  seed_estimate_ = 0;
  last_commanded_ = identifier_.initial_block_size();
  rls_.Reset();
  steps_since_recenter_check_ = 0;
  recenter_count_ = 0;
}

std::string SelfTuningController::name() const {
  std::string out = "model_";
  out += IdentificationModelName(config_.identification.model);
  out += "+";
  out += ContinuationName(config_.continuation);
  if (config_.enable_rls) out += "+rls";
  return out;
}

StateSnapshot SelfTuningController::DebugState() const {
  StateSnapshot snapshot = Controller::DebugState();
  snapshot.Add("stage",
               continuation_ != nullptr ? "continuation" : "identification");
  snapshot.Add("continuation", ContinuationName(config_.continuation));
  snapshot.Add("seed_estimate", seed_estimate_);
  snapshot.Add("command", last_commanded_);
  snapshot.Add("rls_enabled", config_.enable_rls);
  if (config_.enable_rls) {
    snapshot.Add("rls_updates", static_cast<int64_t>(rls_.num_updates()));
    snapshot.Add("rls_forgetting", rls_.forgetting());
    snapshot.Add("rls_covariance_trace", rls_.CovarianceTrace());
    snapshot.Add("recenter_count", recenter_count_);
    const std::vector<double>& theta = rls_.params();
    for (size_t i = 0; i < theta.size(); ++i) {
      snapshot.Add("rls_theta_" + std::to_string(i), theta[i]);
    }
  }
  // Nest the driving sub-controller's state under a stable prefix so one
  // flat snapshot still tells the whole story mid-run.
  const Controller* inner = continuation_ != nullptr
                                ? continuation_.get()
                                : static_cast<const Controller*>(&identifier_);
  const StateSnapshot inner_state = inner->DebugState();
  for (const auto& [key, value] : inner_state.entries()) {
    snapshot.Add("inner_" + key, value);
  }
  return snapshot;
}

}  // namespace wsq
