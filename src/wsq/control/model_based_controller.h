#ifndef WSQ_CONTROL_MODEL_BASED_CONTROLLER_H_
#define WSQ_CONTROL_MODEL_BASED_CONTROLLER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wsq/common/status.h"
#include "wsq/control/controller.h"
#include "wsq/linalg/least_squares.h"

namespace wsq {

/// Which smooth profile family the identification fits (paper Section IV).
enum class IdentificationModel {
  /// Eq. (8): y = a1 x^2 + b1 x + c1 — captures the concave (bowl) effect.
  kQuadratic,
  /// Eq. (9): y = a2/x + b2 x + c2 — derived from first principles:
  /// network cost a2N/x + c2N (per-block latency amortized over x) plus
  /// computation cost b2C x + c2C (buffer/memory pressure grows with x).
  kParabolic,
};

std::string_view IdentificationModelName(IdentificationModel model);

struct ModelBasedConfig {
  IdentificationModel model = IdentificationModel::kQuadratic;
  /// Number of distinct sample sizes, evenly distributed over
  /// [limits.min_size, limits.max_size]. The paper uses 6 to keep the
  /// identification fast even for short queries.
  int num_samples = 6;
  /// Measurements averaged per sampled size. The paper uses 1 and notes
  /// it is "very prone to errors"; larger values trade sampling time for
  /// fit robustness (ablated in bench_ablation_model_samples).
  int samples_per_size = 1;
  BlockSizeLimits limits;

  /// Re-identification heuristic (paper Section IV: "the LS may rerun if
  /// the values ... deviate significantly from the derived model").
  /// When > 0: during the fixed phase, a measurement whose relative
  /// deviation from the model's prediction exceeds this fraction counts
  /// as a misfit; `reidentify_patience` consecutive misfits restart the
  /// sampling phase. 0 disables (the paper's base behavior).
  double reidentify_deviation = 0.0;
  int reidentify_patience = 3;

  Status Validate() const;
};

/// Fitted-model snapshot exposed after identification completes.
struct IdentifiedModel {
  IdentificationModel model = IdentificationModel::kQuadratic;
  FitResult fit;
  /// Analytic minimizer of the fitted curve, clamped into the limits.
  int64_t optimum = 0;
  /// True when the fitted curve has no interior minimum (e.g. a1 <= 0 for
  /// the quadratic, or a2/b2 <= 0 for the parabolic). Matches the paper's
  /// observed failure mode where the parabolic model "fails to produce a
  /// useful model, selecting the lower limit value".
  bool failed = false;
};

/// Model-based (self-tuning identification) block-size selection, paper
/// Section IV: sample the search space at `num_samples` evenly spaced
/// sizes, least-squares fit the configured smooth model (Eq. 10), set the
/// first derivative to zero for the optimum, then stay fixed at that
/// estimate until the query completes.
class ModelBasedController final : public Controller {
 public:
  explicit ModelBasedController(const ModelBasedConfig& config);

  int64_t initial_block_size() const override;
  int64_t NextBlockSize(double response_time_ms) override;
  int64_t adaptivity_steps() const override { return steps_; }
  void Reset() override;
  std::string name() const override;
  StateSnapshot DebugState() const override;

  const ModelBasedConfig& config() const { return config_; }

  bool identification_complete() const { return identified_.has_value(); }

  /// The identified model; FailedPrecondition before identification
  /// completes.
  Result<IdentifiedModel> identified_model() const;

  /// The sizes the sampling phase probes, in probe order.
  const std::vector<int64_t>& sample_sizes() const { return sample_sizes_; }

  /// Number of times the re-identification heuristic restarted sampling.
  int64_t reidentifications() const { return reidentifications_; }

 private:
  void RunIdentification();

  /// Fixed-phase deviation monitor; returns true when sampling was
  /// restarted.
  bool MaybeReidentify(double response_time_ms);

  ModelBasedConfig config_;
  std::vector<int64_t> sample_sizes_;

  size_t sample_index_ = 0;   // which sample size is being measured
  int measurements_at_current_ = 0;
  double current_sum_ = 0.0;
  std::vector<double> sampled_x_;
  std::vector<double> sampled_y_;

  std::optional<IdentifiedModel> identified_;
  int64_t command_ = 0;
  int64_t steps_ = 0;
  int consecutive_misfits_ = 0;
  int64_t reidentifications_ = 0;
};

/// Computes the analytic minimizer for fitted parameters. Exposed for
/// tests and the self-tuning controller's RLS re-centering.
///   quadratic params {a1, b1, c1}: x* = -b1 / (2 a1), requires a1 > 0.
///   parabolic params {a2, b2, c2}: x* = sqrt(a2 / b2), requires a2, b2 > 0.
/// On failure (`failed` set), returns limits.min_size as the paper's
/// observed fallback.
int64_t AnalyticOptimum(IdentificationModel model,
                        const std::vector<double>& params,
                        const BlockSizeLimits& limits, bool* failed);

}  // namespace wsq

#endif  // WSQ_CONTROL_MODEL_BASED_CONTROLLER_H_
