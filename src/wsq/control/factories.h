#ifndef WSQ_CONTROL_FACTORIES_H_
#define WSQ_CONTROL_FACTORIES_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "wsq/control/controller.h"
#include "wsq/control/controller_factory.h"
#include "wsq/control/fixed_controller.h"
#include "wsq/control/watchdog_controller.h"
// ConfiguredProfile is a plain aggregate; this is a header-only
// dependency — wsq_control does not link against wsq_sim.
#include "wsq/sim/profile_library.h"

namespace wsq {

/// Builds a fresh controller for one run; experiments construct one per
/// repetition so runs are independent (mirrors the paper's "10 runs ...
/// scheduled in a round-robin fashion").
using ControllerFactoryFn = std::function<std::unique_ptr<Controller>()>;

/// Switching-controller config for a library configuration, paper-style:
/// b1 from the config, limits from the config, everything else the
/// paper's standard parameters.
SwitchingConfig BaseFor(const ConfiguredProfile& conf, GainMode mode,
                        uint64_t seed = 42);

ControllerFactoryFn FixedFactory(int64_t size);

ControllerFactoryFn SwitchingFactory(const ConfiguredProfile& conf,
                                     GainMode mode, double b1_override = 0.0);

ControllerFactoryFn HybridFactory(
    const ConfiguredProfile& conf,
    HybridFlavor flavor = HybridFlavor::kNoSwitchBack,
    PhaseCriterion criterion = PhaseCriterion::kSignSwitches,
    int64_t reset_period = 0);

ControllerFactoryFn ModelFactory(const ConfiguredProfile& conf,
                                 IdentificationModel model);

ControllerFactoryFn SelfTuningFactory(const ConfiguredProfile& conf,
                                      IdentificationModel model,
                                      Continuation continuation);

/// Factory over ControllerFactory::FromName ("hybrid", "fixed:<N>", ...);
/// the returned factory yields nullptr for unknown names (repeated-run
/// harnesses surface that as kInvalidArgument).
ControllerFactoryFn NamedFactory(const std::string& name);

/// Wraps every controller `inner` produces in a divergence watchdog
/// (chaos runs use this to guarantee bounded degradation; see
/// WatchdogController). Propagates nullptr from `inner` unchanged.
ControllerFactoryFn WithWatchdog(ControllerFactoryFn inner,
                                 WatchdogConfig config = {});

}  // namespace wsq

#endif  // WSQ_CONTROL_FACTORIES_H_
