#include "wsq/control/mimd_controller.h"

#include <cmath>

namespace wsq {
namespace {

int PaperSign(double v) { return v > 0.0 ? 1 : -1; }

}  // namespace

Status MimdConfig::Validate() const {
  if (factor <= 1.0) {
    return Status::InvalidArgument("MIMD factor must be > 1");
  }
  if (averaging_horizon < 1) {
    return Status::InvalidArgument("averaging_horizon must be >= 1");
  }
  if (scale_window < 1) {
    return Status::InvalidArgument("scale_window must be >= 1");
  }
  if (!limits.Valid()) {
    return Status::InvalidArgument("block size limits invalid");
  }
  if (initial_block_size < 1) {
    return Status::InvalidArgument("initial_block_size must be >= 1");
  }
  return Status::Ok();
}

MimdController::MimdController(const MimdConfig& config) : config_(config) {}

int64_t MimdController::initial_block_size() const {
  return config_.limits.Clamp(static_cast<double>(config_.initial_block_size));
}

int64_t MimdController::GridValue(int p) const {
  const double x = static_cast<double>(config_.initial_block_size) *
                   std::pow(config_.factor, p);
  return config_.limits.Clamp(x);
}

double MimdController::SmoothedOutput(int p, double y) {
  auto [it, inserted] = scale_history_.try_emplace(
      p, static_cast<size_t>(config_.scale_window));
  it->second.Add(y);
  return it->second.Mean();
}

int64_t MimdController::NextBlockSize(double response_time_ms) {
  window_y_sum_ += response_time_ms;
  ++window_count_;
  if (window_count_ < config_.averaging_horizon) {
    return GridValue(exponent_);
  }

  const double avg_y = window_y_sum_ / static_cast<double>(window_count_);
  window_y_sum_ = 0.0;
  window_count_ = 0;
  ++steps_;

  const double x = static_cast<double>(GridValue(exponent_));
  const double y_hat = SmoothedOutput(exponent_, avg_y);

  if (!has_prev_) {
    // First step: no deltas; take one notch up, mirroring the switching
    // controllers' mandatory first increase.
    has_prev_ = true;
    prev_x_ = x;
    prev_y_hat_ = y_hat;
    ++exponent_;
    return GridValue(exponent_);
  }

  const double dx = x - prev_x_;
  const double dy = y_hat - prev_y_hat_;
  prev_x_ = x;
  prev_y_hat_ = y_hat;

  // Δx can be 0 when the grid is pinned at a limit; treat as "try the
  // other direction" via the paper sign convention (sign(0) = -1 grows x,
  // which the clamp then absorbs).
  exponent_ += -PaperSign(dy * dx);

  // Keep the exponent inside the band that maps to the limits so it
  // cannot wind up unboundedly while clamped.
  while (exponent_ > 0 && GridValue(exponent_ - 1) == config_.limits.max_size) {
    --exponent_;
  }
  while (exponent_ < 0 && GridValue(exponent_ + 1) == config_.limits.min_size) {
    ++exponent_;
  }
  return GridValue(exponent_);
}

void MimdController::Reset() {
  exponent_ = 0;
  window_y_sum_ = 0.0;
  window_count_ = 0;
  has_prev_ = false;
  prev_x_ = prev_y_hat_ = 0.0;
  steps_ = 0;
  scale_history_.clear();
}

StateSnapshot MimdController::DebugState() const {
  StateSnapshot snapshot = Controller::DebugState();
  snapshot.Add("factor", config_.factor);
  snapshot.Add("exponent", exponent_);
  snapshot.Add("command", GridValue(exponent_));
  snapshot.Add("scale_window", config_.scale_window);
  snapshot.Add("grid_points_visited",
               static_cast<int64_t>(scale_history_.size()));
  return snapshot;
}

}  // namespace wsq
