#include "wsq/control/hybrid_controller.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace wsq {

std::string_view PhaseCriterionName(PhaseCriterion criterion) {
  switch (criterion) {
    case PhaseCriterion::kSignSwitches:
      return "sign_switches";
    case PhaseCriterion::kWindowMeans:
      return "window_means";
  }
  return "unknown";
}

std::string_view GainPhaseName(GainPhase phase) {
  switch (phase) {
    case GainPhase::kTransient:
      return "transient";
    case GainPhase::kSteadyState:
      return "steady_state";
  }
  return "unknown";
}

Status HybridConfig::Validate() const {
  WSQ_RETURN_IF_ERROR(base.Validate());
  if (criterion_horizon < 2) {
    return Status::InvalidArgument("criterion_horizon must be >= 2");
  }
  if (criterion_threshold < 0) {
    return Status::InvalidArgument("criterion_threshold must be >= 0");
  }
  // Paper: s odd iff n' odd — otherwise |sum of n' signs| can never equal
  // s and the criterion either fires late or never.
  if ((criterion_horizon % 2) != (criterion_threshold % 2)) {
    return Status::InvalidArgument(
        "criterion_threshold must have the parity of criterion_horizon");
  }
  if (reset_period < 0) {
    return Status::InvalidArgument("reset_period must be >= 0");
  }
  return Status::Ok();
}

namespace {

SwitchingConfig TransientBase(const HybridConfig& config) {
  SwitchingConfig base = config.base;
  base.gain_mode = GainMode::kConstant;  // transient phase uses g = b1
  return base;
}

}  // namespace

HybridController::HybridController(const HybridConfig& config)
    : config_(config), core_(TransientBase(config)) {}

int64_t HybridController::NextBlockSize(double response_time_ms) {
  // Every measurement is one adaptivity step of the sliding-window core
  // (Eq. 2), so the supervisor evaluates after every call.
  const int64_t next = core_.NextBlockSize(response_time_ms);

  // Periodic reset for long-lived queries (Fig. 8): re-enter the
  // transient phase on a fixed schedule so the controller can re-adjust
  // to environment changes. The operating point is kept.
  if (config_.reset_period > 0 &&
      core_.adaptivity_steps() - last_reset_step_ >= config_.reset_period) {
    last_reset_step_ = core_.adaptivity_steps();
    core_.ClearHistories();
    history_mark_ = 0;
    if (phase_ == GainPhase::kSteadyState) {
      EnterPhase(GainPhase::kTransient);
    }
    return next;
  }

  if (phase_ == GainPhase::kTransient) {
    if (SteadyStateDetected()) EnterPhase(GainPhase::kSteadyState);
  } else if (config_.flavor == HybridFlavor::kSwitchBack) {
    if (TransientReentryDetected()) EnterPhase(GainPhase::kTransient);
  }
  return next;
}

bool HybridController::SteadyStateDetected() const {
  const size_t horizon = static_cast<size_t>(config_.criterion_horizon);

  if (config_.criterion == PhaseCriterion::kSignSwitches) {
    // Eq. (5): |sum of the last n' sign terms| <= s.
    const auto& signs = core_.sign_history();
    if (signs.size() < history_mark_ + horizon) return false;
    int sum = 0;
    for (size_t i = signs.size() - horizon; i < signs.size(); ++i) {
      sum += signs[i];
    }
    return std::abs(sum) <= config_.criterion_threshold;
  }

  // Eq. (6): compare the means of x̄ over two consecutive disjoint
  // windows of n' adaptivity steps.
  const auto& xs = core_.averaged_input_history();
  if (xs.size() < history_mark_ + 2 * horizon) return false;
  double recent = 0.0;
  double older = 0.0;
  for (size_t i = xs.size() - horizon; i < xs.size(); ++i) recent += xs[i];
  for (size_t i = xs.size() - 2 * horizon; i < xs.size() - horizon; ++i) {
    older += xs[i];
  }
  recent /= static_cast<double>(horizon);
  older /= static_cast<double>(horizon);
  const double threshold =
      config_.base.b1 / static_cast<double>(config_.criterion_horizon - 1);
  return std::fabs(recent - older) <= threshold;
}

bool HybridController::TransientReentryDetected() const {
  // Re-entry = the last n' sign terms all agree: the operating point is
  // being pushed consistently in one direction, i.e. the optimum moved.
  const size_t horizon = static_cast<size_t>(config_.criterion_horizon);
  const auto& signs = core_.sign_history();
  if (signs.size() < history_mark_ + horizon) return false;
  int sum = 0;
  for (size_t i = signs.size() - horizon; i < signs.size(); ++i) {
    sum += signs[i];
  }
  return static_cast<size_t>(std::abs(sum)) == horizon;
}

void HybridController::EnterPhase(GainPhase phase) {
  phase_ = phase;
  ++phase_transitions_;
  core_.set_gain_mode(phase == GainPhase::kTransient ? GainMode::kConstant
                                                     : GainMode::kAdaptive);
  // Entering steady state: re-center on the mean of the recent averaged
  // inputs (the saw-tooth oscillates around the stability point, so its
  // center — not the last extreme — estimates the optimum), hold there,
  // and rebuild the deltas from fresh measurements so the first
  // adaptive-gain step is not sized from transient-scale (Δx̄, Δȳ).
  // Entering a transient re-takes the b1 kick to start probing.
  if (phase == GainPhase::kSteadyState) {
    const auto& xs = core_.averaged_input_history();
    const size_t horizon =
        std::min(xs.size(), static_cast<size_t>(config_.criterion_horizon));
    if (horizon > 0) {
      double mean = 0.0;
      for (size_t i = xs.size() - horizon; i < xs.size(); ++i) mean += xs[i];
      core_.set_command(mean / static_cast<double>(horizon));
    }
  }
  core_.ResetDeltas(/*hold_position=*/phase == GainPhase::kSteadyState);
  // Criterion windows must not straddle the phase change.
  history_mark_ = core_.sign_history().size();
}

void HybridController::Reset() {
  core_.Reset();
  core_.set_gain_mode(GainMode::kConstant);
  phase_ = GainPhase::kTransient;
  phase_transitions_ = 0;
  history_mark_ = 0;
  last_reset_step_ = 0;
}

std::string HybridController::name() const {
  std::string out = "hybrid";
  if (config_.flavor == HybridFlavor::kSwitchBack) out += "_s";
  if (config_.criterion == PhaseCriterion::kWindowMeans) out += "_eq6";
  if (config_.reset_period > 0) {
    out += "_reset" + std::to_string(config_.reset_period);
  }
  return out;
}

StateSnapshot HybridController::DebugState() const {
  StateSnapshot snapshot = Controller::DebugState();
  snapshot.Add("phase", GainPhaseName(phase_));
  snapshot.Add("phase_transitions", phase_transitions_);
  snapshot.Add("criterion", PhaseCriterionName(config_.criterion));
  snapshot.Add("criterion_horizon", config_.criterion_horizon);
  snapshot.Add("criterion_threshold", config_.criterion_threshold);
  snapshot.Add("gain_mode", GainModeName(core_.gain_mode()));
  snapshot.Add("gain", core_.last_gain());
  snapshot.Add("b1", config_.base.b1);
  snapshot.Add("b2", config_.base.b2);
  snapshot.Add("dither_factor", config_.base.dither_factor);
  snapshot.Add("sign_switches", CountSignSwitches(core_.sign_history()));
  if (!core_.sign_history().empty()) {
    snapshot.Add("last_sign", core_.sign_history().back());
  }
  return snapshot;
}

}  // namespace wsq
