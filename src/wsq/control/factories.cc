#include "wsq/control/factories.h"

#include "wsq/control/hybrid_controller.h"
#include "wsq/control/model_based_controller.h"
#include "wsq/control/self_tuning_controller.h"
#include "wsq/control/switching_controller.h"

namespace wsq {

SwitchingConfig BaseFor(const ConfiguredProfile& conf, GainMode mode,
                        uint64_t seed) {
  SwitchingConfig config = PaperSwitchingConfig();
  config.gain_mode = mode;
  config.b1 = conf.paper_b1;
  config.limits = conf.limits;
  config.seed = seed;
  return config;
}

ControllerFactoryFn FixedFactory(int64_t size) {
  return [size]() {
    return std::unique_ptr<Controller>(new FixedController(size));
  };
}

ControllerFactoryFn SwitchingFactory(const ConfiguredProfile& conf,
                                     GainMode mode, double b1_override) {
  return [conf, mode, b1_override]() {
    SwitchingConfig config = BaseFor(conf, mode);
    if (b1_override > 0.0) config.b1 = b1_override;
    return std::unique_ptr<Controller>(
        new SwitchingExtremumController(config));
  };
}

ControllerFactoryFn HybridFactory(const ConfiguredProfile& conf,
                                  HybridFlavor flavor,
                                  PhaseCriterion criterion,
                                  int64_t reset_period) {
  return [conf, flavor, criterion, reset_period]() {
    HybridConfig config = PaperHybridConfig();
    config.base = BaseFor(conf, GainMode::kConstant);
    config.flavor = flavor;
    config.criterion = criterion;
    config.reset_period = reset_period;
    return std::unique_ptr<Controller>(new HybridController(config));
  };
}

ControllerFactoryFn ModelFactory(const ConfiguredProfile& conf,
                                 IdentificationModel model) {
  return [conf, model]() {
    ModelBasedConfig config = PaperModelBasedConfig();
    config.model = model;
    config.limits = conf.limits;
    return std::unique_ptr<Controller>(new ModelBasedController(config));
  };
}

ControllerFactoryFn SelfTuningFactory(const ConfiguredProfile& conf,
                                      IdentificationModel model,
                                      Continuation continuation) {
  return [conf, model, continuation]() {
    SelfTuningConfig config;
    config.identification = PaperModelBasedConfig();
    config.identification.model = model;
    config.identification.limits = conf.limits;
    config.continuation = continuation;
    config.controller = PaperHybridConfig();
    config.controller.base = BaseFor(conf, GainMode::kConstant);
    return std::unique_ptr<Controller>(new SelfTuningController(config));
  };
}

ControllerFactoryFn NamedFactory(const std::string& name) {
  return [name]() -> std::unique_ptr<Controller> {
    Result<std::unique_ptr<Controller>> made =
        ControllerFactory::FromName(name);
    if (!made.ok()) return nullptr;
    return std::move(made).value();
  };
}

ControllerFactoryFn WithWatchdog(ControllerFactoryFn inner,
                                 WatchdogConfig config) {
  return [inner = std::move(inner),
          config]() -> std::unique_ptr<Controller> {
    std::unique_ptr<Controller> controller = inner();
    if (controller == nullptr) return nullptr;
    return std::unique_ptr<Controller>(
        new WatchdogController(std::move(controller), config));
  };
}

}  // namespace wsq
