#include "wsq/control/watchdog_controller.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace wsq {

WatchdogController::WatchdogController(std::unique_ptr<Controller> inner,
                                       const WatchdogConfig& config)
    : inner_(std::move(inner)), config_(config) {
  config_.window = std::max(config_.window, 1);
  config_.max_clamps_in_window = std::max(config_.max_clamps_in_window, 1);
  config_.min_steps_between_resets =
      std::max(config_.min_steps_between_resets, 1);
  clamp_window_.assign(config_.window, 0);
}

int64_t WatchdogController::initial_block_size() const {
  // The initial command is guarded too: a misconfigured inner controller
  // must not open the query with an absurd request.
  return config_.limits.Clamp(
      static_cast<double>(inner_->initial_block_size()));
}

int64_t WatchdogController::NextBlockSize(double response_time_ms) {
  double metric = response_time_ms;
  if (!std::isfinite(metric) || metric < 0.0) {
    ++bad_inputs_;
    // Substitute the last well-formed measurement (1 ms before any) so
    // the inner control law never sees NaN/Inf — which would otherwise
    // poison its moving averages for the rest of the run.
    metric = has_good_metric_ ? last_good_metric_ : 1.0;
  } else {
    last_good_metric_ = metric;
    has_good_metric_ = true;
  }

  const int64_t raw = inner_->NextBlockSize(metric);
  int64_t size = raw;
  int clamped = 0;
  if (raw < config_.limits.min_size || raw > config_.limits.max_size) {
    size = config_.limits.Clamp(static_cast<double>(raw));
    ++clamped_outputs_;
    clamped = 1;
  }

  clamps_in_window_ += clamped - clamp_window_[window_pos_];
  clamp_window_[window_pos_] = clamped;
  window_pos_ = (window_pos_ + 1) % config_.window;
  ++steps_;

  if (clamps_in_window_ >= config_.max_clamps_in_window &&
      steps_ - last_reset_step_ >= config_.min_steps_between_resets) {
    // Sustained divergence: apply the paper's reset remedy — back to the
    // initial (constant-gain) state — and restart from the initial
    // command.
    inner_->Reset();
    ++watchdog_resets_;
    last_reset_step_ = steps_;
    clamp_window_.assign(config_.window, 0);
    clamps_in_window_ = 0;
    size = config_.limits.Clamp(
        static_cast<double>(inner_->initial_block_size()));
  }
  return size;
}

int64_t WatchdogController::adaptivity_steps() const {
  return inner_->adaptivity_steps();
}

void WatchdogController::Reset() {
  inner_->Reset();
  clamp_window_.assign(config_.window, 0);
  window_pos_ = 0;
  clamps_in_window_ = 0;
  steps_ = 0;
  last_reset_step_ = 0;
  last_good_metric_ = 0.0;
  has_good_metric_ = false;
  bad_inputs_ = 0;
  clamped_outputs_ = 0;
  watchdog_resets_ = 0;
}

std::string WatchdogController::name() const {
  return "watchdog(" + inner_->name() + ")";
}

StateSnapshot WatchdogController::DebugState() const {
  StateSnapshot snapshot;
  snapshot.Add("bad_inputs", bad_inputs_);
  snapshot.Add("clamped_outputs", clamped_outputs_);
  snapshot.Add("watchdog_resets", watchdog_resets_);
  snapshot.Add("clamps_in_window", clamps_in_window_);
  const StateSnapshot inner_state = inner_->DebugState();
  for (const auto& [key, value] : inner_state.entries()) {
    snapshot.Add("inner_" + key, value);
  }
  return snapshot;
}

}  // namespace wsq
