#ifndef WSQ_CONTROL_FIXED_CONTROLLER_H_
#define WSQ_CONTROL_FIXED_CONTROLLER_H_

#include <string>

#include "wsq/control/controller.h"

namespace wsq {

/// The static baseline of the paper's evaluation: a constant block size
/// for the whole query (the "fixed 1000 tuples" column of Table I and the
/// static 1K/10K/20K columns of Table III).
class FixedController final : public Controller {
 public:
  explicit FixedController(int64_t block_size);

  int64_t initial_block_size() const override { return block_size_; }
  int64_t NextBlockSize(double response_time_ms) override;
  int64_t adaptivity_steps() const override { return 0; }
  void Reset() override {}
  std::string name() const override;
  StateSnapshot DebugState() const override;

 private:
  int64_t block_size_;
};

}  // namespace wsq

#endif  // WSQ_CONTROL_FIXED_CONTROLLER_H_
